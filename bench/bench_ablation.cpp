/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out:
 *   (a) back-off lambda / k (dynamic-timing aggressiveness),
 *   (b) random-pairing period,
 *   (c) coin counter precision (power levels),
 *   (d) wrap-around neighborhoods,
 *   (e) 4-way arithmetic cost sensitivity.
 *
 * Not a paper figure — these quantify the sensitivity of the paper's
 * chosen configuration (1-way, wrap, dynamic timing, pairing every
 * 16th, 6-bit coins).
 */

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

/**
 * --metrics/--trace accumulator. All report() rows share one d = 12
 * mesh schema, so every observed replication merges into a single CSV;
 * the trace gets one process lane per observed row.
 */
struct ObsSink
{
    bench::ObsOptions obs;
    trace::MetricsSeries series;
    trace::Tracer master;
    std::uint32_t pid = 0;
};

void
report(const char *label, const coin::EngineConfig &cfg,
       const bench::TrialSetup &setup, ObsSink &sink, int trials = 60)
{
    // Trials fan out over the sweep harness; the fold is in trial
    // order, so the numbers don't depend on the thread count.
    auto s = bench::sweepParallel(setup, cfg, trials);
    std::printf("  %-28s %10.0f cycles %10.0f pkts %4d fail\n", label,
                s.timeCycles.mean(), s.packets.mean(), s.failures);
    if (!sink.obs.any())
        return;
    // One observed replication per row, re-run outside the sweep with
    // the sweep's own first seed, so the printed aggregates above stay
    // byte-identical with or without the flags.
    trace::Registry reg;
    auto r = bench::runTrial(
        setup, cfg, sweep::streamSeed(1, 0), nullptr, nullptr,
        [&sink, &reg](coin::MeshSim &mesh) {
            if (sink.obs.metrics)
                trace::attachMeshMetrics(mesh, reg, 2'048);
        });
    if (sink.obs.metrics)
        sink.series.merge(reg.takeSeries());
    if (sink.obs.trace) {
        trace::Tracer t;
        t.complete("ablation", label, 0, 0, r.time,
                   {{"packets",
                     static_cast<std::int64_t>(r.packets)},
                    {"converged",
                     static_cast<std::int64_t>(r.converged)}});
        sink.master.absorb(t, sink.pid++);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ObsSink sink;
    sink.obs = bench::parseObsFlags(argc, argv);
    bench::banner("Ablation", "sensitivity of the chosen configuration");

    bench::TrialSetup setup;
    setup.d = 12;
    setup.errThreshold = 1.0;

    coin::EngineConfig base;
    base.wrap = true;
    base.backoff.enabled = true;
    base.pairing.randomPairing = true;

    std::printf("\n(a) back-off lambda (d = 12):\n");
    for (double lambda : {1.25, 1.5, 2.0, 4.0}) {
        coin::EngineConfig cfg = base;
        cfg.backoff.lambda = lambda;
        char label[64];
        std::snprintf(label, sizeof label, "lambda = %.2f", lambda);
        report(label, cfg, setup, sink);
    }

    std::printf("\n(a') back-off shrink k:\n");
    for (sim::Tick k : {2u, 8u, 16u}) {
        coin::EngineConfig cfg = base;
        cfg.backoff.k = k;
        char label[64];
        std::snprintf(label, sizeof label, "k = %llu",
                      static_cast<unsigned long long>(k));
        report(label, cfg, setup, sink);
    }

    std::printf("\n(b) random-pairing period:\n");
    for (unsigned period : {4u, 8u, 16u, 64u}) {
        coin::EngineConfig cfg = base;
        cfg.pairing.period = period;
        char label[64];
        std::snprintf(label, sizeof label, "period = %u", period);
        report(label, cfg, setup, sink);
    }
    {
        coin::EngineConfig cfg = base;
        cfg.pairing.randomPairing = false;
        report("random pairing OFF", cfg, setup, sink);
    }

    std::printf("\n(c) coin precision (pool scales with levels):\n");
    for (double pool_frac : {0.25, 0.5, 0.75}) {
        bench::TrialSetup s2 = setup;
        s2.poolFraction = pool_frac;
        char label[64];
        std::snprintf(label, sizeof label, "pool = %.0f%% of demand",
                      pool_frac * 100.0);
        report(label, base, s2, sink);
    }

    std::printf("\n(d) wrap-around neighborhoods:\n");
    {
        coin::EngineConfig cfg = base;
        cfg.wrap = true;
        report("torus (paper)", cfg, setup, sink);
        cfg.wrap = false;
        report("plain mesh edges", cfg, setup, sink);
    }

    std::printf("\n(f) trace-driven DSE: replay the 3x3 AV WL-Dep "
                "activity trace recorded\n    from the full-SoC model "
                "onto the behavioral engine, sweeping the\n    "
                "random-pairing period:\n");
    {
        soc::PmConfig pm;
        pm.kind = soc::PmKind::BlitzCoin;
        pm.budgetMw = 60.0;
        soc::Soc s(soc::make3x3AvSoc(), pm, 11);
        auto st = s.run(soc::avDependent(s.config(), 3));
        std::printf("    trace: %zu edges over %.0f us\n",
                    st.activity.size(),
                    sim::ticksToUs(st.activity.horizon()));
        for (unsigned period : {4u, 16u, 64u}) {
            coin::EngineConfig cfg;
            cfg.pairing.period = period;
            coin::MeshSim mesh(
                noc::Topology(s.config().width, s.config().height,
                              true),
                cfg, 11);
            // Seed the same coin pool the 60 mW SoC domain carries.
            mesh.randomizeHas(s.pm().scale().poolCoins);
            auto rs = st.activity.replayOn(mesh);
            std::printf("    period %2u: busy %5.1f%%  %8llu pkts  "
                        "final maxErr %.2f\n",
                        period, rs.busyFraction * 100.0,
                        static_cast<unsigned long long>(rs.packets),
                        rs.finalMaxError);
        }
    }

    std::printf("\n(e) 4-way arithmetic pipeline cost:\n");
    for (sim::Tick extra : {0u, 4u, 16u}) {
        coin::EngineConfig cfg = base;
        cfg.mode = coin::ExchangeMode::FourWay;
        cfg.fourWayExtraCycles = extra;
        char label[64];
        std::snprintf(label, sizeof label, "4-way +%llu cycles",
                      static_cast<unsigned long long>(extra));
        report(label, cfg, setup, sink);
    }
    if (sink.obs.metrics)
        bench::writeMetricsCsv(sink.series, sink.obs.metricsPath);
    if (sink.obs.trace)
        bench::writeTraceJson(sink.master, sink.obs.tracePath);
    return 0;
}
