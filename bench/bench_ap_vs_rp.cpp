/**
 * @file
 * Section VI-A: Absolute-Proportional vs Relative-Proportional
 * allocation on the 3x3 AV SoC, across power budgets.
 *
 * Paper result: RP yields a 3.0-4.1% throughput increase over AP for
 * budgets from 60 to 120 mW, because AP forces low-power tiles to
 * inefficient high-voltage operating points.
 */

#include "bench_soc_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Sec. VI-A", "AP vs RP allocation, 3x3 AV SoC");

    std::printf("\n%10s | %12s | %12s | %8s\n", "budget", "AP exec",
                "RP exec", "RP gain");
    for (double budget : {60.0, 80.0, 100.0, 120.0}) {
        double exec_us[2] = {0.0, 0.0};
        int k = 0;
        for (auto alloc : {coin::AllocPolicy::AbsoluteProportional,
                           coin::AllocPolicy::RelativeProportional}) {
            soc::Soc s(soc::make3x3AvSoc(),
                       bench::pm(soc::PmKind::BlitzCoin, budget,
                                 alloc),
                       11);
            auto st = s.run(soc::avParallel(s.config()));
            exec_us[k++] = st.execTimeUs();
        }
        std::printf("%8.0fmW | %10.1fus | %10.1fus | %+6.1f%%\n",
                    budget, exec_us[0], exec_us[1],
                    (exec_us[0] / exec_us[1] - 1.0) * 100.0);
    }
    std::printf("\nShape check: RP wins at every budget "
                "(paper: +3.0-4.1%%).\n");
    return 0;
}
