/**
 * @file
 * Byzantine sweep: overdraw and starvation versus attacker count, with
 * and without the integrity guardian (DESIGN.md ch.8, EXPERIMENTS.md).
 *
 * A 6x6 mesh is seeded with the bench-standard heterogeneous demand
 * and half-provisioned pool, then the first k of three canned
 * attackers are armed: a coin Inflator at tile 18, a request Spammer
 * at tile 1, and a StuckGreedy hoarder at tile 2. Each (k, guardian)
 * cell replicates over seeds on the deterministic sweep harness.
 *
 * Guardian-off rows run with the audit watchdog disabled, so the raw
 * damage is visible: overdraw is the counterfeit surplus left in the
 * mesh (total - provisioned pool) and `missed` counts trials where the
 * attackers kept the cluster from ever converging. Guardian-on rows
 * arm the shadow-accounting guardian on the 4096-tick audit cadence;
 * overdraw is then measured over the *non-quarantined* population
 * after the remint watchdog reclaims each fenced tile, and should sit
 * within the configured leak bound (0 after the post-run reconcile).
 *
 * Output is bit-identical for any BLITZ_SWEEP_THREADS setting (ordered
 * fold over streamSeed-derived trials) and any BLITZ_SHARDS setting.
 *
 * `--metrics[=path]` / `--trace[=path]` / `--health[=path]` opt into
 * the observability plane (see bench_obs.hpp); without the flags the
 * printed numbers are byte-identical to a flag-free run.
 */

#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "fault/chaos.hpp"
#include "sim/shard.hpp"
#include "sweep/sweep.hpp"
#include "trace/flush_guard.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

struct Scenario
{
    int attackers = 0;
    bool guardian = false;
};

/** Aggregate over one scenario's replications. */
struct Row
{
    sim::Percentiles convergeTicks;
    sim::Summary overdraw;      ///< |total - pool| after the run
    sim::Summary counterfeited; ///< coins the attackers minted
    sim::Summary quarantines;   ///< tiles the guardian removed
    sim::Summary detections;    ///< detector strikes journaled
    sim::Summary reclaimed;     ///< coins the audit reminted
    int failures = 0;           ///< trials missing the deadline

    /// --metrics: per-replication snapshot series, folded in order.
    trace::MetricsSeries metrics;
    /// --trace: (pid, tracer) per replication, absorbed after the fold.
    std::vector<std::pair<std::uint32_t, std::shared_ptr<trace::Tracer>>>
        tracers;
    /// --health: per-replication outcome counters, folded in order.
    trace::HealthReport health;

    void
    merge(Row &&o)
    {
        convergeTicks.merge(o.convergeTicks);
        overdraw.merge(o.overdraw);
        counterfeited.merge(o.counterfeited);
        quarantines.merge(o.quarantines);
        detections.merge(o.detections);
        reclaimed.merge(o.reclaimed);
        failures += o.failures;
        if (!o.metrics.empty())
            metrics.merge(o.metrics);
        for (auto &t : o.tracers)
            tracers.push_back(std::move(t));
        health.absorb(o.health);
    }
};

constexpr sim::Tick deadline = 400'000;
constexpr double convergedTol = 2.5;

/** The canned attacker roster; a scenario arms the first k. */
void
armAttackers(fault::ChaosConfig &cc, int k)
{
    using fault::ByzantineBehavior;
    fault::ByzantineSpec inflator;
    inflator.node = 18;
    inflator.behavior = ByzantineBehavior::Inflator;
    inflator.amount = 8;
    inflator.period = 512;
    fault::ByzantineSpec spammer;
    spammer.node = 1;
    spammer.behavior = ByzantineBehavior::Spammer;
    fault::ByzantineSpec greedy;
    greedy.node = 2;
    greedy.behavior = ByzantineBehavior::StuckGreedy;
    const fault::ByzantineSpec roster[] = {inflator, spammer, greedy};
    for (int i = 0; i < k; ++i)
        cc.byzantine.specs.push_back(roster[i]);
}

Row
runTrial(const Scenario &sc, std::uint64_t seed,
         const bench::ObsOptions &obs, std::uint32_t pid)
{
    fault::ChaosConfig cc;
    cc.width = 6;
    cc.height = 6;
    cc.arena = &sim::threadArena();
    cc.seedBase = seed;
    cc.fault.seed = seed;
    cc.byzantine.seed = seed;
    if (std::getenv("BLITZ_SHARDS"))
        cc.shards = sim::defaultShards();
    armAttackers(cc, sc.attackers);
    if (sc.guardian) {
        cc.guardianEnabled = true;
        cc.auditPeriod = 4'096;
    }

    // Registry/tracer must outlive the cluster (its samplers read
    // cluster state until the cluster's event queue dies).
    trace::Registry reg;
    std::shared_ptr<trace::Tracer> tracer;
    fault::ChaosCluster cluster(cc);
    if (obs.metrics)
        cluster.attachMetrics(&reg, 1'024);
    if (obs.trace) {
        tracer = std::make_shared<trace::Tracer>();
        cluster.attachTrace(tracer.get());
    }
    const auto n = static_cast<std::size_t>(cc.width * cc.height);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        coin::Coins m = bench::typeLevel(static_cast<int>(i) % 4);
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        cluster.setHas(i, share);
    }
    cluster.sealProvision();
    cluster.startAll();

    std::optional<sim::Tick> t =
        cluster.runUntilConverged(convergedTol, 64, deadline);

    Row r;
    if (t)
        r.convergeTicks.add(static_cast<double>(*t));
    else
        ++r.failures;
    // Stop the exchange engines and drain in-flight traffic so the
    // totals below are settled, then (guardian rows) reconcile so the
    // remint watchdog closes whatever gap quarantine left.
    for (std::size_t i = 0; i < n; ++i)
        cluster.unit(i).stop();
    cluster.eq().runUntil(cluster.eq().now() + 20'000);
    if (sc.guardian)
        cluster.reconcile();

    const coin::Coins total = cluster.totalCoins();
    const coin::Coins od = total - pool;
    r.overdraw.add(static_cast<double>(od < 0 ? -od : od));
    if (cluster.byzantinePlan())
        r.counterfeited.add(static_cast<double>(
            cluster.byzantinePlan()->stats().counterfeited));
    else
        r.counterfeited.add(0.0);
    if (cluster.guardian()) {
        r.quarantines.add(
            static_cast<double>(cluster.guardian()->quarantines()));
        r.detections.add(
            static_cast<double>(cluster.guardian()->detections()));
    } else {
        r.quarantines.add(0.0);
        r.detections.add(0.0);
    }
    r.reclaimed.add(static_cast<double>(cluster.audit().coinsMinted()));
    if (obs.metrics)
        r.metrics = reg.takeSeries();
    if (obs.trace)
        r.tracers.emplace_back(pid, std::move(tracer));
    if (obs.health)
        cluster.fillHealth(r.health);
    return r;
}

Row
runScenario(const Scenario &sc, int trials, std::uint64_t rootSeed,
            const bench::ObsOptions &obs, std::uint32_t pidBase,
            sweep::PoolStats *stats)
{
    // Pre-size from the replication count: one sample per trial, so
    // the fold never regrows the accumulator's buffer.
    Row acc0;
    acc0.convergeTicks.reserve(static_cast<std::size_t>(trials));
    if (obs.trace)
        acc0.tracers.reserve(static_cast<std::size_t>(trials));
    sweep::SweepOptions opts;
    opts.stats = stats;
    return sweep::runSweepFold<Row>(
        static_cast<std::size_t>(trials), rootSeed,
        [&sc, &obs, pidBase](std::size_t i, std::uint64_t seed) {
            return runTrial(sc, seed, obs,
                            pidBase + static_cast<std::uint32_t>(i));
        },
        [](Row &acc, Row &r, std::size_t) { acc.merge(std::move(r)); },
        std::move(acc0), opts);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Byzantine sweep",
                  "overdraw and starvation vs. attacker count, with "
                  "and without the integrity guardian");
    std::printf("%-9s %8s | %10s %6s | %9s %9s %9s %6s %7s\n",
                "attackers", "guardian", "conv p50", "missed",
                "overdraw", "counterf", "reclaim", "quar", "detect");

    constexpr int trials = 8;
    constexpr std::uint64_t rootSeed = 2026;

    trace::Tracer master;
    trace::HealthReport healthAll;
    sweep::PoolStats poolAll;
    trace::FlushGuard::Registration crashFlush;
    trace::FlushGuard::Registration healthFlush;
    if (obs.any())
        trace::FlushGuard::installSignalHandlers();
    if (obs.trace)
        crashFlush =
            trace::FlushGuard::guardTracer(master, obs.tracePath);
    if (obs.health) {
        healthAll.setRun("bench_byzantine");
        healthFlush = trace::FlushGuard::guardHealth(healthAll,
                                                     obs.healthPath);
    }

    std::uint64_t scenarioIdx = 0;
    for (int attackers : {0, 1, 2, 3}) {
        for (bool guardian : {false, true}) {
            const Scenario sc{attackers, guardian};
            const auto pidBase =
                static_cast<std::uint32_t>(scenarioIdx) *
                static_cast<std::uint32_t>(trials);
            sweep::PoolStats pool;
            Row row = runScenario(
                sc, trials, sweep::streamSeed(rootSeed, scenarioIdx),
                obs, pidBase, obs.health ? &pool : nullptr);
            if (obs.metrics && !row.metrics.empty()) {
                char tag[48];
                std::snprintf(tag, sizeof tag, "s%02u-k%d-g%d",
                              static_cast<unsigned>(scenarioIdx),
                              sc.attackers, sc.guardian ? 1 : 0);
                bench::writeMetricsCsv(
                    row.metrics, bench::tagPath(obs.metricsPath, tag));
            }
            for (const auto &[pid, t] : row.tracers)
                if (t)
                    master.absorb(*t, pid);
            if (obs.health) {
                healthAll.absorb(row.health);
                poolAll.merge(pool);
            }
            ++scenarioIdx;
            const bool any = row.convergeTicks.count() > 0;
            std::printf("%-9d %8s | %10.0f %6d | %9.1f %9.1f %9.1f "
                        "%6.1f %7.1f\n",
                        sc.attackers, sc.guardian ? "on" : "off",
                        any ? row.convergeTicks.median() : 0.0,
                        row.failures, row.overdraw.mean(),
                        row.counterfeited.mean(), row.reclaimed.mean(),
                        row.quarantines.mean(), row.detections.mean());
        }
    }
    if (obs.trace) {
        crashFlush.release();
        bench::writeTraceJson(master, obs.tracePath);
    }
    if (obs.health) {
        healthFlush.release();
        bench::fillSweepHealth(healthAll, poolAll);
        bench::writeHealthJson(healthAll, obs.healthPath);
    }
    std::printf("\nGuardian-off rows leave the counterfeit surplus in "
                "the mesh; guardian-on rows quarantine the attackers "
                "and the audit watchdog reclaims the fenced coins.\n");
    return 0;
}
