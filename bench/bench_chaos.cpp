/**
 * @file
 * Chaos sweep: re-convergence and coin conservation under injected
 * faults (the robustness claim of Sections IV-A and VI-C, measured).
 *
 * Scenarios sweep drop rates, duplication/corruption, a tile
 * crash+restart window, and a timed mesh partition over 4x4 and 6x6
 * meshes, each replicated over seeds on the deterministic sweep
 * harness. Per scenario the bench reports how fast the cluster
 * re-converges after the last fault clears, how many coins the audit
 * watchdog had to remint, and the recovery-protocol counters. Every
 * trial ends in ChaosCluster::quiesce(), which *asserts* that the
 * seeded coin total is exactly restored — a conservation failure
 * aborts the bench rather than skewing a column.
 *
 * Output is bit-identical for any BLITZ_SWEEP_THREADS setting (ordered
 * fold over streamSeed-derived trials).
 */

#include <array>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "fault/chaos.hpp"
#include "sim/shard.hpp"
#include "sweep/sweep.hpp"
#include "trace/flush_guard.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

struct Scenario
{
    const char *name;
    int d = 4;
    double drop = 0.0;
    double duplicate = 0.0;
    double corrupt = 0.0;
    bool crash = false;
    bool partition = false;
};

/** Aggregate over one scenario's replications. */
struct Row
{
    sim::Percentiles reconvergeTicks; ///< past the last fault window
    sim::Summary gapClosed;           ///< coins the audit reminted
    sim::Summary dropsSeen;           ///< NoC packets destroyed
    sim::Summary recovered;           ///< deltas replayed via CoinRecover
    sim::Summary abandoned;           ///< losses left to the audit
    sim::Summary dupesIgnored;        ///< replays the stamps rejected
    int failures = 0;                 ///< trials missing the deadline

    /// --metrics: per-replication snapshot series, folded in order.
    trace::MetricsSeries metrics;
    /// --trace: (pid, tracer) per replication, absorbed after the fold.
    std::vector<std::pair<std::uint32_t, std::shared_ptr<trace::Tracer>>>
        tracers;
    /// --health: per-replication outcome counters, folded in order.
    trace::HealthReport health;

    void
    merge(Row &&o)
    {
        reconvergeTicks.merge(o.reconvergeTicks);
        gapClosed.merge(o.gapClosed);
        dropsSeen.merge(o.dropsSeen);
        recovered.merge(o.recovered);
        abandoned.merge(o.abandoned);
        dupesIgnored.merge(o.dupesIgnored);
        failures += o.failures;
        if (!o.metrics.empty())
            metrics.merge(o.metrics);
        for (auto &t : o.tracers)
            tracers.push_back(std::move(t));
        health.absorb(o.health);
    }
};

constexpr sim::Tick faultQuietTick = 12'000;
constexpr sim::Tick deadline = 400'000;
constexpr double convergedTol = 2.5;

Row
runTrial(const Scenario &sc, std::uint64_t seed,
         const bench::ObsOptions &obs, std::uint32_t pid)
{
    fault::ChaosConfig cc;
    cc.width = sc.d;
    cc.height = sc.d;
    // Event slab + packet pool recycle across this worker's trials
    // (the sweep harness resets the arena between replications).
    cc.arena = &sim::threadArena();
    cc.seedBase = seed;
    cc.fault.seed = seed;
    // BLITZ_SHARDS=K runs every trial's event kernel BSP-sharded over
    // K column bands (K=1 is the bit-identity baseline; results are
    // identical for every K by the sharded golden pins). Unset keeps
    // the legacy single-queue path.
    if (std::getenv("BLITZ_SHARDS"))
        cc.shards = sim::defaultShards();
    cc.fault.coinTrafficOnly = true;
    cc.fault.base.drop = sc.drop;
    cc.fault.base.duplicate = sc.duplicate;
    cc.fault.base.corrupt = sc.corrupt;
    const auto n = static_cast<std::size_t>(sc.d * sc.d);
    if (sc.crash) {
        // Two tiles power-fail mid-run and come back; their coins are
        // destroyed and must be reminted by the audit watchdog.
        cc.fault.outages.push_back(
            {static_cast<noc::NodeId>(n / 2), 3'000, faultQuietTick,
             false});
        cc.fault.outages.push_back(
            {static_cast<noc::NodeId>(1), 5'000, faultQuietTick, false});
        cc.auditPeriod = 4'096;
    }
    if (sc.partition) {
        noc::Topology topo(sc.d, sc.d, false);
        cc.fault.partitions.push_back(fault::columnPartition(
            topo, sc.d / 2 - 1, 2'000, faultQuietTick));
        cc.auditPeriod = 4'096;
    }

    // Registry/tracer must outlive the cluster (its samplers read
    // cluster state until the cluster's event queue dies).
    trace::Registry reg;
    std::shared_ptr<trace::Tracer> tracer;
    fault::ChaosCluster cluster(cc);
    if (obs.metrics)
        cluster.attachMetrics(&reg, 1'024);
    if (obs.trace) {
        tracer = std::make_shared<trace::Tracer>();
        cluster.attachTrace(tracer.get());
    }
    // Heterogeneous demand; the whole pool starts parked on the first
    // quarter of the mesh so convergence requires long-range transport.
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        coin::Coins m = bench::typeLevel(static_cast<int>(i) % 4);
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        cluster.setHas(i, share);
    }
    cluster.sealProvision();
    cluster.startAll();

    // Scenarios with timed fault windows measure *re*-convergence
    // after the last window clears; rate-only scenarios measure
    // convergence of the initial imbalance under sustained faults.
    const sim::Tick quiet =
        (sc.crash || sc.partition) ? faultQuietTick : 0;
    if (quiet > 0)
        cluster.eq().runUntil(quiet);
    std::optional<sim::Tick> t =
        cluster.runUntilConverged(convergedTol, 64, deadline);

    Row r;
    if (t) {
        r.reconvergeTicks.add(static_cast<double>(*t - quiet));
    } else {
        ++r.failures;
    }
    // Quiesce asserts exact conservation of the seeded total; the
    // pre-sweep gap is what the watchdog still had to close.
    auto report = cluster.quiesce(65'536);
    r.gapClosed.add(
        static_cast<double>(report.gap < 0 ? -report.gap : report.gap));
    r.dropsSeen.add(static_cast<double>(cluster.net().packetsDropped()));
    double rec = 0.0, aband = 0.0, dupes = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        rec += static_cast<double>(cluster.unit(i).updatesRecovered());
        aband +=
            static_cast<double>(cluster.unit(i).exchangesAbandoned());
        dupes +=
            static_cast<double>(cluster.unit(i).duplicatesIgnored());
    }
    r.recovered.add(rec);
    r.abandoned.add(aband);
    r.dupesIgnored.add(dupes);
    if (obs.metrics)
        r.metrics = reg.takeSeries();
    if (obs.trace)
        r.tracers.emplace_back(pid, std::move(tracer));
    if (obs.health)
        cluster.fillHealth(r.health);
    return r;
}

Row
runScenario(const Scenario &sc, int trials, std::uint64_t rootSeed,
            const bench::ObsOptions &obs, std::uint32_t pidBase,
            sweep::PoolStats *stats)
{
    // Pre-size from the replication count: the sample buffer gains at
    // most one entry per trial, so the fold never regrows it.
    Row acc0;
    acc0.reconvergeTicks.reserve(static_cast<std::size_t>(trials));
    if (obs.trace)
        acc0.tracers.reserve(static_cast<std::size_t>(trials));
    sweep::SweepOptions opts;
    opts.stats = stats;
    return sweep::runSweepFold<Row>(
        static_cast<std::size_t>(trials), rootSeed,
        [&sc, &obs, pidBase](std::size_t i, std::uint64_t seed) {
            return runTrial(sc, seed, obs,
                            pidBase + static_cast<std::uint32_t>(i));
        },
        [](Row &acc, Row &r, std::size_t) { acc.merge(std::move(r)); },
        std::move(acc0), opts);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Chaos sweep",
                  "re-convergence and exact coin conservation under "
                  "drops, duplication, corruption, crashes, and "
                  "partitions");
    std::printf("%-22s %4s %6s | %10s %10s %6s | %8s %8s %8s %8s\n",
                "scenario", "mesh", "drop", "reconv p50", "reconv p95",
                "missed", "gap", "drops", "recov", "abandon");

    constexpr int trials = 8;
    constexpr std::uint64_t rootSeed = 2026;

    std::vector<Scenario> scenarios;
    for (int d : {4, 6}) {
        for (double drop : {0.0, 0.02, 0.05, 0.10})
            scenarios.push_back({"drop", d, drop});
        scenarios.push_back({"dup+corrupt", d, 0.05, 0.02, 0.02});
        scenarios.push_back({"crash", d, 0.05, 0.0, 0.0, true});
        scenarios.push_back({"partition", d, 0.02, 0.0, 0.0, false,
                             true});
    }

    // One trace file for the whole run (a process lane per
    // replication); one metrics CSV per scenario, because the snapshot
    // schema carries per-tile columns (4x4 vs 6x6 differ) and summing
    // across fault configs would make the columns meaningless.
    trace::Tracer master;
    trace::HealthReport healthAll;
    sweep::PoolStats poolAll;
    // Crash-safe flush: if a conservation assert (or anything else)
    // kills the bench mid-sweep, the timeline absorbed so far still
    // lands on disk as valid JSON.
    trace::FlushGuard::Registration crashFlush;
    trace::FlushGuard::Registration healthFlush;
    if (obs.any())
        trace::FlushGuard::installSignalHandlers();
    if (obs.trace)
        crashFlush =
            trace::FlushGuard::guardTracer(master, obs.tracePath);
    if (obs.health) {
        healthAll.setRun("bench_chaos");
        healthFlush = trace::FlushGuard::guardHealth(healthAll,
                                                     obs.healthPath);
    }
    std::uint64_t scenarioIdx = 0;
    for (const Scenario &sc : scenarios) {
        const auto pidBase =
            static_cast<std::uint32_t>(scenarioIdx) *
            static_cast<std::uint32_t>(trials);
        sweep::PoolStats pool;
        Row row = runScenario(sc, trials,
                              sweep::streamSeed(rootSeed, scenarioIdx),
                              obs, pidBase,
                              obs.health ? &pool : nullptr);
        if (obs.health) {
            healthAll.absorb(row.health);
            poolAll.merge(pool);
        }
        if (obs.metrics && !row.metrics.empty()) {
            char tag[64];
            std::snprintf(tag, sizeof tag, "s%02u-%s-%dx%d",
                          static_cast<unsigned>(scenarioIdx), sc.name,
                          sc.d, sc.d);
            for (char *p = tag; *p; ++p)
                if (*p == '+')
                    *p = '_';
            bench::writeMetricsCsv(row.metrics,
                                   bench::tagPath(obs.metricsPath, tag));
        }
        for (const auto &[pid, t] : row.tracers)
            if (t)
                master.absorb(*t, pid);
        ++scenarioIdx;
        const bool any = row.reconvergeTicks.count() > 0;
        std::printf(
            "%-22s %dx%d %6.2f | %10.0f %10.0f %6d | %8.1f %8.0f "
            "%8.1f %8.1f\n",
            sc.name, sc.d, sc.d, sc.drop,
            any ? row.reconvergeTicks.median() : 0.0,
            any ? row.reconvergeTicks.p95() : 0.0, row.failures,
            row.gapClosed.mean(), row.dropsSeen.mean(),
            row.recovered.mean(), row.abandoned.mean());
    }
    if (obs.trace) {
        crashFlush.release();
        bench::writeTraceJson(master, obs.tracePath);
    }
    if (obs.health) {
        healthFlush.release();
        bench::fillSweepHealth(healthAll, poolAll);
        bench::writeHealthJson(healthAll, obs.healthPath);
    }
    std::printf("\nEvery trial quiesced with the seeded coin total "
                "exactly restored (asserted).\n");
    return 0;
}
