/**
 * @file
 * Sustained-churn study (empirical check of Fig. 21's right plot).
 *
 * Fig. 21 *derives* the fraction of time spent in power management
 * from the fitted response law: decisions arrive every T_w / N and
 * each costs T(N). This bench measures that fraction directly: per-
 * tile on/off phases with mean duration T_w (the Section I workload
 * model, via workload::PhaseGenerator) drive the behavioral mesh, and
 * the engine samples how often the coin distribution is out of
 * equilibrium (Err above threshold = a reallocation in flight).
 */

#include <array>

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "sweep/sweep.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"
#include "workload/phase_gen.hpp"

using namespace blitz;

namespace {

/**
 * Fraction of samples with Err above threshold during churn. When
 * @p reg / @p tracer are set (an observed replication), the mesh's
 * gauges sample on the engine's own cadence and the busy flag lands as
 * a counter track — pure reads, so the fraction is unchanged.
 */
double
churnFraction(int d, sim::Tick twTicks, std::uint64_t seed,
              trace::Registry *reg = nullptr,
              trace::Tracer *tracer = nullptr)
{
    coin::EngineConfig cfg; // paper defaults
    coin::MeshSim sim(noc::Topology::square(d), cfg, seed);
    const auto n = static_cast<std::uint32_t>(d * d);

    workload::PhaseGenConfig pg;
    pg.meanPhaseTicks = twTicks;
    workload::PhaseGenerator gen(n, pg, seed + 999);

    const sim::Tick horizon = 4 * twTicks;
    auto events = gen.generate(horizon);

    // Initial state: per-generator activity flags, coins spread.
    coin::Coins demand = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        coin::Coins m = gen.initialActive()[i] ? 16 : 0;
        sim.setMax(i, m);
        demand += 16; // pool sized for the average (half active)
    }
    sim.randomizeHas(demand / 2);
    if (reg)
        trace::attachMeshMetrics(sim, *reg, 2'048);
    sim.runUntilConverged(1.0, twTicks); // settle the initial state

    std::size_t next_event = 0;
    std::uint64_t samples = 0, busy = 0;
    const sim::Tick sample_period = 200;
    while (sim.now() < horizon) {
        // Apply any activity changes that are due.
        while (next_event < events.size() &&
               events[next_event].when <= sim.now()) {
            const auto &e = events[next_event];
            sim.setMax(e.tile, e.startsExecution ? 16 : 0);
            ++next_event;
        }
        sim.runFor(sample_period);
        ++samples;
        // Busy = some tile is still out of equilibrium beyond the
        // quantization band. The *mean* error cannot see a single
        // tile's transition on a large mesh (1/N dilution), but the
        // per-tile max can.
        const bool over = sim.maxError() > 2.0;
        busy += over ? 1 : 0;
        if (tracer)
            tracer->counter("churn", "pm_busy", 0, sim.now(),
                            over ? 1.0 : 0.0);
    }
    return static_cast<double>(busy) / static_cast<double>(samples);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Churn (extension of Fig. 21 right)",
                  "measured PM-time fraction under per-tile phase "
                  "churn");

    constexpr std::array<int, 5> ds{4, 8, 12, 16, 20};
    constexpr std::size_t seedsPerPoint = 5;

    // --metrics re-runs one observed replication per (T_w, d) point
    // outside the sweep (the mesh schema carries per-tile columns, so
    // each d gets its own tagged CSV); --trace collects the busy-flag
    // tracks in one file, a process lane per point. The sweep itself
    // is untouched, so the printed fractions never change.
    trace::Tracer master;
    std::uint32_t pid = 0;

    for (double tw_us : {250.0, 1000.0}) {
        const sim::Tick tw = sim::usToTicks(tw_us);
        std::printf("\nT_w = %.0f us:\n", tw_us);
        std::printf("%4s %6s | %12s | %14s\n", "d", "N",
                    "measured PM%", "analytic PM%");
        // All (d, seed) replications fan out over the sweep harness;
        // per-d summaries are folded in replication order.
        auto fracs = sweep::runSweep(
            ds.size() * seedsPerPoint, /*rootSeed=*/tw,
            [&](std::size_t i, std::uint64_t seed) {
                return churnFraction(ds[i / seedsPerPoint], tw, seed);
            });
        for (std::size_t k = 0; k < ds.size(); ++k) {
            int d = ds[k];
            sim::Summary frac;
            for (std::size_t s = 0; s < seedsPerPoint; ++s)
                frac.add(fracs[k * seedsPerPoint + s]);
            // Analytic prediction with the repo's fitted tau_BC
            // (bench_fig21): T(N) = 0.08 us sqrt(N).
            double n = static_cast<double>(d) * d;
            double analytic =
                n * (0.08 * std::sqrt(n)) / tw_us;
            std::printf("%4d %6.0f | %11.1f%% | %13.1f%%\n", d, n,
                        frac.mean() * 100.0, analytic * 100.0);
            if (obs.any()) {
                trace::Registry reg;
                trace::Tracer t;
                churnFraction(d, tw,
                              sweep::streamSeed(tw, k * seedsPerPoint),
                              obs.metrics ? &reg : nullptr,
                              obs.trace ? &t : nullptr);
                if (obs.metrics) {
                    char tag[32];
                    std::snprintf(tag, sizeof tag, "tw%.0f-d%d",
                                  tw_us, d);
                    bench::writeMetricsCsv(
                        reg.takeSeries(),
                        bench::tagPath(obs.metricsPath, tag));
                }
                if (obs.trace)
                    master.absorb(t, pid);
                ++pid;
            }
        }
    }
    if (obs.trace)
        bench::writeTraceJson(master, obs.tracePath);
    std::printf("\nShape check: measured fraction grows ~N^1.5 with "
                "size and inversely with T_w, tracking the analytic "
                "model's order of magnitude.\n");
    return 0;
}
