/**
 * @file
 * Shared helpers for the experiment benches.
 *
 * Each bench binary reproduces one table or figure of the paper: it
 * runs the relevant experiment and prints the same rows/series the
 * paper reports, plus a short header tying the output back to the
 * figure. Absolute values depend on this simulator's constants; the
 * *shapes* (who wins, scaling exponents, crossovers) are the
 * reproduction targets (see EXPERIMENTS.md).
 */

#ifndef BLITZ_BENCH_COMMON_HPP
#define BLITZ_BENCH_COMMON_HPP

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "coin/engine.hpp"
#include "sim/stats.hpp"
#include "sweep/sweep.hpp"

namespace blitz::bench {

/** Print the figure banner. */
inline void
banner(const char *figure, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("================================================="
                "=============\n");
}

/** Aggregate of a Monte-Carlo convergence sweep at one design point. */
struct TrialStats
{
    sim::Percentiles timeCycles;
    sim::Percentiles packets;
    sim::Summary startError;
    sim::Summary finalMaxError;
    int failures = 0;

    /** Fold another design point's aggregate into this one. */
    void
    merge(const TrialStats &other)
    {
        timeCycles.merge(other.timeCycles);
        packets.merge(other.packets);
        startError.merge(other.startError);
        finalMaxError.merge(other.finalMaxError);
        failures += other.failures;
    }
};

/** Mesh trial configuration. */
struct TrialSetup
{
    int d = 4;                 ///< mesh dimension (N = d*d)
    int accTypes = 4;          ///< heterogeneity degree (Fig. 8)
    double poolFraction = 0.5; ///< pool = fraction of total demand
    double errThreshold = 1.5;
    sim::Tick maxTime = 4'000'000;
};

/** max-coin level per accelerator type, mirroring the emulator. */
inline coin::Coins
typeLevel(int type)
{
    static const coin::Coins levels[8] = {16, 32, 8, 63, 24, 48, 12, 40};
    return levels[type % 8];
}

/**
 * Run one randomized convergence trial. @p instrument, when set, sees
 * the fully provisioned engine right before the run — the hook the
 * observability plane uses to attach sampling (attachMeshMetrics)
 * without this header depending on the trace layer.
 */
inline coin::RunResult
runTrial(const TrialSetup &setup, const coin::EngineConfig &cfg,
         std::uint64_t seed, double *startErr = nullptr,
         double *finalMaxErr = nullptr,
         const std::function<void(coin::MeshSim &)> &instrument = {})
{
    coin::MeshSim sim(noc::Topology::square(setup.d), cfg, seed);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
        coin::Coins m = typeLevel(static_cast<int>(i) % setup.accTypes);
        sim.setMax(i, m);
        demand += m;
    }
    sim.clusterHas(static_cast<coin::Coins>(
        static_cast<double>(demand) * setup.poolFraction));
    if (instrument)
        instrument(sim);
    if (startErr)
        *startErr = sim.globalError();
    auto r = sim.runUntilConverged(setup.errThreshold, setup.maxTime);
    if (finalMaxErr)
        *finalMaxErr = sim.maxError();
    return r;
}

/** Monte-Carlo sweep at one design point. */
inline TrialStats
sweep(const TrialSetup &setup, const coin::EngineConfig &cfg,
      int trials, std::uint64_t seedBase = 1)
{
    TrialStats out;
    out.timeCycles.reserve(static_cast<std::size_t>(trials));
    out.packets.reserve(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
        double start_err = 0.0, final_max = 0.0;
        auto r = runTrial(setup, cfg, seedBase + static_cast<std::uint64_t>(t),
                          &start_err, &final_max);
        if (!r.converged) {
            ++out.failures;
            continue;
        }
        out.timeCycles.add(static_cast<double>(r.time));
        out.packets.add(static_cast<double>(r.packets));
        out.startError.add(start_err);
        out.finalMaxError.add(final_max);
    }
    return out;
}

/**
 * Parallel Monte-Carlo sweep at one design point.
 *
 * Trial t runs with seed sweep::streamSeed(rootSeed, t) on the sweep
 * harness's thread pool; the per-trial aggregates are folded in index
 * order, so the result is bit-identical for any thread count (and to
 * a 1-thread run with the same root seed).
 */
inline TrialStats
sweepParallel(const TrialSetup &setup, const coin::EngineConfig &cfg,
              int trials, std::uint64_t rootSeed = 1,
              const sweep::SweepOptions &opts = {})
{
    auto one = [&setup, &cfg](std::size_t, std::uint64_t seed) {
        TrialStats s;
        double start_err = 0.0, final_max = 0.0;
        auto r = runTrial(setup, cfg, seed, &start_err, &final_max);
        if (!r.converged) {
            ++s.failures;
            return s;
        }
        s.timeCycles.add(static_cast<double>(r.time));
        s.packets.add(static_cast<double>(r.packets));
        s.startError.add(start_err);
        s.finalMaxError.add(final_max);
        return s;
    };
    // Pre-size the fold target: the sample buffers grow to exactly
    // one entry per converged trial, so the merge loop never regrows.
    TrialStats acc;
    acc.timeCycles.reserve(static_cast<std::size_t>(trials));
    acc.packets.reserve(static_cast<std::size_t>(trials));
    return sweep::runSweepFold<TrialStats>(
        static_cast<std::size_t>(trials), rootSeed, one,
        [](TrialStats &acc_, const TrialStats &s, std::size_t) {
            acc_.merge(s);
        },
        std::move(acc), opts);
}

} // namespace blitz::bench

#endif // BLITZ_BENCH_COMMON_HPP
