/**
 * @file
 * Fig. 1: the motivating scalability picture — response time of
 * software-centralized, hardware-centralized, and decentralized
 * power management vs the average interval between SoC-level activity
 * changes (T_w / N), for several workload phase durations.
 *
 * The software-centralized curve uses the paper's ~1 ms-per-small-SoC
 * characterization of software daemons scaling linearly in N; the
 * hardware curves use the constants this repo measures (see
 * bench_fig21 for the fitting). The intersection of a response curve
 * with a demand curve is N_max for that scheme.
 */

#include <cstdio>

#include "analytic/scaling.hpp"
#include "bench_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 1",
                  "response-time scaling vs workload demand curves");

    using analytic::ScalingLaw;
    using analytic::Scheme;
    // Representative constants: software daemon ~1 ms at N=10 (O(N));
    // hardware-centralized and decentralized from the paper's fits.
    const ScalingLaw sw{Scheme::CRR, 100.0, 1.0};  // software
    const ScalingLaw hw{Scheme::BCC, 0.66, 1.0};   // HW centralized
    const ScalingLaw bc{Scheme::BC, 0.20, 0.5};    // decentralized

    std::printf("\nresponse time (us) and demand T_w/N (us):\n");
    std::printf("%6s | %12s %12s %12s |", "N", "SW-central",
                "HW-central", "Decentral");
    for (double tw_ms : {1.0, 5.0, 20.0})
        std::printf(" Tw=%4.0fms", tw_ms);
    std::printf("\n");
    for (double n : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                     1000.0}) {
        std::printf("%6.0f | %12.1f %12.2f %12.2f |", n,
                    sw.responseUs(n), hw.responseUs(n),
                    bc.responseUs(n));
        for (double tw_ms : {1.0, 5.0, 20.0})
            std::printf(" %8.1f", tw_ms * 1000.0 / n);
        std::printf("\n");
    }

    std::printf("\nmaximum supported accelerators N_max "
                "(response = demand):\n%10s | %10s %10s %10s\n",
                "T_w (ms)", "SW-central", "HW-central", "Decentral");
    for (double tw_ms : {1.0, 5.0, 20.0}) {
        double tw = tw_ms * 1000.0;
        std::printf("%10.0f | %10.1f %10.1f %10.1f\n", tw_ms,
                    sw.nMax(tw), hw.nMax(tw), bc.nMax(tw));
    }
    std::printf("\nShape check: SW-central cannot reach N=10 at "
                "T_w <= 20 ms; decentralized handles N >= 100 at "
                "millisecond phase durations.\n");
    return 0;
}
