/**
 * @file
 * Fig. 1: the motivating scalability picture — response time of
 * software-centralized, hardware-centralized, and decentralized
 * power management vs the average interval between SoC-level activity
 * changes (T_w / N), for several workload phase durations.
 *
 * The software-centralized curve uses the paper's ~1 ms-per-small-SoC
 * characterization of software daemons scaling linearly in N; the
 * hardware curves use the constants this repo measures (see
 * bench_fig21 for the fitting). The intersection of a response curve
 * with a demand curve is N_max for that scheme.
 */

#include <array>
#include <cstdio>

#include "analytic/scaling.hpp"
#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "sweep/sweep.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"

using namespace blitz;

namespace {

/** One trial's outcome; the series is empty unless --metrics is on. */
struct Trial
{
    double us = -1.0;
    trace::MetricsSeries metrics;
};

/** One behavioral convergence trial for the decentralized fit. */
Trial
convergeUs(int d, std::uint64_t seed, bool metrics)
{
    coin::EngineConfig cfg; // paper defaults
    trace::Registry reg;
    coin::MeshSim sim(noc::Topology::square(d), cfg, seed);
    if (metrics)
        trace::attachMeshMetrics(sim, reg, 1'024);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
        coin::Coins m = 8 << (i % 3); // 8/16/32 mix
        sim.setMax(i, m);
        demand += m;
    }
    sim.clusterHas(demand / 2);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(20.0));
    Trial t;
    t.us = r.converged ? sim::ticksToUs(r.time) : -1.0;
    if (metrics)
        t.metrics = reg.takeSeries();
    return t;
}

/**
 * Fit the decentralized response constant from behavioral meshes —
 * the whole (d, seed) grid fans out over the sweep harness, and the
 * per-size means fold in replication order (thread-count
 * independent). With --metrics, each mesh size's snapshot series
 * merges in the same order into one CSV per size (schemas carry
 * per-tile columns, so sizes cannot share a file).
 */
analytic::ScalingLaw
measureDecentralized(const bench::ObsOptions &obs)
{
    constexpr std::array<int, 3> ds{4, 6, 8};
    constexpr std::size_t seedsPerPoint = 20;
    auto trials = sweep::runSweep(
        ds.size() * seedsPerPoint, /*rootSeed=*/1,
        [&](std::size_t i, std::uint64_t seed) {
            return convergeUs(ds[i / seedsPerPoint], seed,
                              obs.metrics);
        });
    std::vector<std::pair<double, double>> samples;
    for (std::size_t k = 0; k < ds.size(); ++k) {
        sim::Summary s;
        trace::MetricsSeries merged;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            Trial &t = trials[k * seedsPerPoint + i];
            if (t.us >= 0.0)
                s.add(t.us);
            if (!t.metrics.empty())
                merged.merge(t.metrics);
        }
        samples.emplace_back(
            static_cast<double>(ds[k]) * ds[k], s.mean());
        if (obs.metrics && !merged.empty()) {
            char tag[16];
            std::snprintf(tag, sizeof tag, "%dx%d", ds[k], ds[k]);
            bench::writeMetricsCsv(merged,
                                   bench::tagPath(obs.metricsPath, tag));
        }
    }
    return analytic::fitLaw(analytic::Scheme::BC, samples);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Fig. 1",
                  "response-time scaling vs workload demand curves");
    if (obs.trace)
        std::printf("(--trace ignored: the behavioral MeshSim has no "
                    "timeline hooks; use bench_chaos or the SoC "
                    "benches)\n");

    using analytic::ScalingLaw;
    using analytic::Scheme;
    // Representative constants: software daemon ~1 ms at N=10 (O(N));
    // hardware-centralized from the paper's fit. The decentralized
    // curve is measured here, from behavioral meshes swept in
    // parallel (paper fit: tau = 0.20, exponent 0.5).
    const ScalingLaw sw{Scheme::CRR, 100.0, 1.0};    // software
    const ScalingLaw hw{Scheme::BCC, 0.66, 1.0};     // HW centralized
    const ScalingLaw bc = measureDecentralized(obs); // decentralized
    std::printf("\nmeasured decentralized law: T(N) = %.3f us * "
                "N^%.1f\n", bc.tauUs, bc.exponent);

    std::printf("\nresponse time (us) and demand T_w/N (us):\n");
    std::printf("%6s | %12s %12s %12s |", "N", "SW-central",
                "HW-central", "Decentral");
    for (double tw_ms : {1.0, 5.0, 20.0})
        std::printf(" Tw=%4.0fms", tw_ms);
    std::printf("\n");
    for (double n : {2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                     1000.0}) {
        std::printf("%6.0f | %12.1f %12.2f %12.2f |", n,
                    sw.responseUs(n), hw.responseUs(n),
                    bc.responseUs(n));
        for (double tw_ms : {1.0, 5.0, 20.0})
            std::printf(" %8.1f", tw_ms * 1000.0 / n);
        std::printf("\n");
    }

    std::printf("\nmaximum supported accelerators N_max "
                "(response = demand):\n%10s | %10s %10s %10s\n",
                "T_w (ms)", "SW-central", "HW-central", "Decentral");
    for (double tw_ms : {1.0, 5.0, 20.0}) {
        double tw = tw_ms * 1000.0;
        std::printf("%10.0f | %10.1f %10.1f %10.1f\n", tw_ms,
                    sw.nMax(tw), hw.nMax(tw), bc.nMax(tw));
    }
    std::printf("\nShape check: SW-central cannot reach N=10 at "
                "T_w <= 20 ms; decentralized handles N >= 100 at "
                "millisecond phase durations.\n");
    return 0;
}
