/**
 * @file
 * Fig. 3: packets and time (NoC cycles) to convergence (Err < 1.5)
 * for the 1-way and 4-way exchange methods vs. mesh dimension d.
 *
 * Paper result: both methods scale with d = sqrt(N); 4-way needs fewer
 * exchanges (each carries more information) but more packets per
 * exchange (12 vs 8 per rotation).
 */

#include "bench_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 3",
                  "1-way vs 4-way convergence (Err < 1.5), 100 trials");

    // The paper's comparison uses the same fixed refresh interval for
    // both methods, without the later Section III-D optimizations.
    coin::EngineConfig one;
    one.mode = coin::ExchangeMode::OneWay;
    one.wrap = true;
    one.backoff.enabled = false;
    one.pairing.randomPairing = true;
    coin::EngineConfig four = one;
    four.mode = coin::ExchangeMode::FourWay;

    std::printf("%4s %6s | %12s %12s | %12s %12s\n", "d", "N",
                "1way cycles", "1way pkts", "4way cycles", "4way pkts");
    for (int d = 2; d <= 20; d += 2) {
        bench::TrialSetup setup;
        setup.d = d;
        setup.errThreshold = 1.5;
        auto s1 = bench::sweep(setup, one, 100);
        auto s4 = bench::sweep(setup, four, 100);
        std::printf("%4d %6d | %12.0f %12.0f | %12.0f %12.0f\n", d,
                    d * d, s1.timeCycles.mean(), s1.packets.mean(),
                    s4.timeCycles.mean(), s4.packets.mean());
        if (s1.failures || s4.failures) {
            std::printf("  (non-converged trials: 1-way %d, 4-way %d)\n",
                        s1.failures, s4.failures);
        }
    }
    std::printf("\nShape check: time grows ~linearly in d (i.e. "
                "sqrt(N)), packets grow ~N.\n");
    return 0;
}
