/**
 * @file
 * Fig. 4: convergence time of BlitzCoin vs TokenSmart across mesh
 * sizes, with spread statistics over many randomized trials.
 *
 * Paper result: BlitzCoin scales with sqrt(N), TS with N, giving ~11x
 * faster convergence at N = 400; TS also shows long-tail outliers from
 * its greedy/fair mode oscillation.
 */

#include "baselines/tokensmart.hpp"
#include "bench_common.hpp"

using namespace blitz;

namespace {

sim::Percentiles
tokenSmartSweep(std::size_t n, int trials)
{
    sim::Percentiles out;
    for (int t = 0; t < trials; ++t) {
        baselines::TokenSmartSim ts(n, baselines::TokenSmartConfig{},
                                    1000 + static_cast<std::uint64_t>(t));
        coin::Coins demand = 0;
        for (std::size_t i = 0; i < n; ++i) {
            // Homogeneous targets: TS's fair mode and BlitzCoin's
            // proportional equilibrium coincide, making the
            // convergence criterion identical for both.
            ts.setMax(i, 16);
            demand += 16;
        }
        // Clustered start to match the BlitzCoin trials: tokens
        // parked on a contiguous quarter of the ring.
        {
            sim::Rng r(5000 + static_cast<std::uint64_t>(t));
            std::size_t start = r.below(n);
            std::size_t span = std::max<std::size_t>(n / 4, 1);
            coin::Coins pool = demand / 2;
            for (coin::Coins c = 0; c < pool; ++c) {
                std::size_t i = (start + r.below(span)) % n;
                ts.setHas(i, ts.ledger().has(i) + 1);
            }
        }
        auto r = ts.runUntilConverged(1.5, 50'000'000);
        if (r.converged)
            out.add(static_cast<double>(r.time));
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner("Fig. 4",
                  "BlitzCoin vs TokenSmart convergence, 300 trials");

    coin::EngineConfig bc;
    bc.wrap = true;
    bc.backoff.enabled = false;
    bc.pairing.randomPairing = true;

    const int trials = 300;
    std::printf("%4s %6s | %10s %10s %10s | %10s %10s %10s | %7s\n",
                "d", "N", "BC mean", "BC p95", "BC max", "TS mean",
                "TS p95", "TS max", "TS/BC");
    for (int d = 4; d <= 20; d += 4) {
        bench::TrialSetup setup;
        setup.d = d;
        setup.accTypes = 1; // homogeneous, see tokenSmartSweep note
        setup.errThreshold = 1.5;
        auto bc_stats = bench::sweep(setup, bc, trials);
        auto ts_stats =
            tokenSmartSweep(static_cast<std::size_t>(d) * d, trials);
        std::printf(
            "%4d %6d | %10.0f %10.0f %10.0f | %10.0f %10.0f %10.0f "
            "| %6.1fx\n",
            d, d * d, bc_stats.timeCycles.mean(),
            bc_stats.timeCycles.p95(), bc_stats.timeCycles.maximum(),
            ts_stats.mean(), ts_stats.p95(), ts_stats.maximum(),
            ts_stats.mean() / bc_stats.timeCycles.mean());
    }
    std::printf("\nShape check: TS/BC ratio grows with d "
                "(~11x at d=20 in the paper); TS max >> TS mean "
                "(mode-oscillation outliers).\n");
    return 0;
}
