/**
 * @file
 * Fig. 6: conventional 1-way exchange vs 1-way with dynamic timing
 * (exponential back-off): packets and cycles to Err < 1.0.
 *
 * Paper result: dynamic timing reduces both the refresh traffic and
 * the total packets — already-converged regions go quiet — yielding an
 * overall speedup that grows with SoC size.
 */

#include "bench_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 6",
                  "1-way vs 1-way + dynamic timing (Err < 1.0)");

    coin::EngineConfig fixed;
    fixed.wrap = true;
    fixed.backoff.enabled = false;
    fixed.pairing.randomPairing = true;

    coin::EngineConfig dynamic = fixed;
    dynamic.backoff.enabled = true;

    std::printf("%4s %6s | %12s %12s | %12s %12s | %8s %8s\n", "d",
                "N", "fixed cyc", "fixed pkts", "dyn cyc", "dyn pkts",
                "cyc gain", "pkt gain");
    for (int d = 2; d <= 20; d += 2) {
        bench::TrialSetup setup;
        setup.d = d;
        setup.errThreshold = 1.0;
        auto sf = bench::sweep(setup, fixed, 100);
        auto sd = bench::sweep(setup, dynamic, 100, /*seedBase=*/1);
        std::printf("%4d %6d | %12.0f %12.0f | %12.0f %12.0f | "
                    "%7.2fx %7.2fx\n",
                    d, d * d, sf.timeCycles.mean(), sf.packets.mean(),
                    sd.timeCycles.mean(), sd.packets.mean(),
                    sf.timeCycles.mean() / sd.timeCycles.mean(),
                    sf.packets.mean() / sd.packets.mean());
    }

    // The steady-state side of the story: traffic after convergence.
    std::printf("\nSteady-state packets over 100 us after convergence "
                "(d = 10):\n");
    for (auto [name, cfg] :
         {std::pair<const char *, coin::EngineConfig>{"fixed", fixed},
          {"dynamic", dynamic}}) {
        coin::MeshSim sim(noc::Topology::square(10), cfg, 99);
        for (std::size_t i = 0; i < sim.ledger().size(); ++i)
            sim.setMax(i, bench::typeLevel(static_cast<int>(i) % 4));
        sim.randomizeHas(800);
        sim.runUntilConverged(1.0, 4'000'000);
        auto r = sim.runFor(sim::usToTicks(100.0));
        std::printf("  %-8s %8llu packets\n", name,
                    static_cast<unsigned long long>(r.packets));
    }
    return 0;
}
