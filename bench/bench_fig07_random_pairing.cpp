/**
 * @file
 * Fig. 7: histogram of the worst-case absolute error across all tiles
 * after convergence, with and without random pairing, for N = 100 and
 * N = 400 (1000 runs each).
 *
 * Paper result: without random pairing some tiles never reach their
 * target and the residual grows with SoC size; with it, every tile
 * converges to within the 1-coin quantization.
 */

#include "bench_common.hpp"
#include "sim/stats.hpp"

using namespace blitz;

namespace {

sim::Histogram
residualHistogram(int d, bool randomPairing, int runs)
{
    sim::Histogram hist(0.0, 8.0, 16);
    coin::EngineConfig cfg;
    cfg.wrap = true;
    cfg.backoff.enabled = true;
    cfg.pairing.randomPairing = randomPairing;

    for (int t = 0; t < runs; ++t) {
        coin::MeshSim sim(noc::Topology::square(d), cfg,
                          7'000 + static_cast<std::uint64_t>(t));
        coin::Coins demand = 0;
        // A quarter of the tiles idle: the idle islands are what
        // random pairing exists to cross.
        for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
            coin::Coins m =
                (i % 4 == 3) ? 0
                             : bench::typeLevel(static_cast<int>(i) % 4);
            sim.setMax(i, m);
            demand += m;
        }
        sim.randomizeHas(demand / 2);
        // Run for a fixed long horizon, then record the worst tile.
        sim.runUntilConverged(0.0, sim::usToTicks(200.0));
        hist.add(sim.maxError());
    }
    return hist;
}

} // namespace

int
main()
{
    bench::banner("Fig. 7",
                  "worst-case residual error histogram, 1000 runs");
    const int runs = 1000;
    for (int d : {10, 20}) {
        for (bool rp : {false, true}) {
            auto hist = residualHistogram(d, rp, runs);
            std::printf("\nN = %d, random pairing %s:\n", d * d,
                        rp ? "ON" : "OFF");
            std::printf("%s", hist.format(44).c_str());
        }
    }
    std::printf("\nShape check: OFF histograms have heavy tails that "
                "grow with N; ON histograms collapse below ~2 coins "
                "(1-coin quantization + alpha rounding).\n");
    return 0;
}
