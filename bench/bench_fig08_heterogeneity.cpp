/**
 * @file
 * Fig. 8: convergence time and initial error vs SoC size and degree
 * of heterogeneity (number of distinct accelerator types, accType).
 *
 * Paper result: higher heterogeneity raises the initial error of a
 * random coin assignment, which lengthens convergence; size scaling
 * stays ~sqrt(N) at every heterogeneity level.
 */

#include "bench_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 8",
                  "convergence vs heterogeneity (accType), 100 trials");

    coin::EngineConfig cfg;
    cfg.wrap = true;
    cfg.backoff.enabled = true;
    cfg.pairing.randomPairing = true;

    std::printf("%8s |", "accType");
    for (int d = 4; d <= 20; d += 4)
        std::printf("   d=%-2d cycles  start_err |", d);
    std::printf("\n");

    for (int acc_types : {1, 2, 4, 8}) {
        std::printf("%8d |", acc_types);
        for (int d = 4; d <= 20; d += 4) {
            bench::TrialSetup setup;
            setup.d = d;
            setup.accTypes = acc_types;
            setup.errThreshold = 1.0;
            auto s = bench::sweep(setup, cfg, 100);
            std::printf(" %12.0f %10.2f |", s.timeCycles.mean(),
                        s.startError.mean());
        }
        std::printf("\n");
    }
    std::printf("\nShape check: start_err and convergence time rise "
                "with accType at every size.\n");
    return 0;
}
