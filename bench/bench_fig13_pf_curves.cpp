/**
 * @file
 * Fig. 13: power/frequency characterization of the six accelerators.
 *
 * Prints each curve's operating points (V, F, P) plus the idle point,
 * the data every SoC-level experiment draws on. The paper measured
 * FFT/Viterbi/NVDLA on the 12 nm ASIC and characterized GEMM/Conv2D/
 * Vision with Cadence Joules; this table is the transcription used by
 * the simulator (see DESIGN.md for the calibration).
 */

#include <cstdio>

#include "bench_common.hpp"
#include "power/pf_curve.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 13", "accelerator power/frequency curves");

    for (const power::PfCurve *c : power::catalog::all()) {
        std::printf("\n%-8s  Fmax %6.0f MHz  Pmax %7.2f mW  "
                    "Pidle %5.2f mW (%.1fx below Pmin)\n",
                    c->name().c_str(), c->fMax(), c->pMax(),
                    c->pIdle(), c->pMin() / c->pIdle());
        std::printf("  %8s %10s %10s\n", "V (V)", "F (MHz)", "P (mW)");
        for (const auto &pt : c->points()) {
            std::printf("  %8.2f %10.1f %10.2f\n", pt.voltage,
                        pt.freqMhz, pt.powerMw);
        }
        // The sub-Fmin extension (triangle markers on the NVDLA
        // curve): frequency scaling at minimum voltage.
        double fmin = c->fMinCharacterized();
        std::printf("  %8s %10.1f %10.2f   (min-V frequency scaling)\n",
                    "-", fmin / 2.0, c->powerAt(fmin / 2.0));
        std::printf("  %8s %10.1f %10.2f   (idle)\n", "-", 0.0,
                    c->powerAt(0.0));
    }

    std::printf("\nSoC-level totals: 3x3 AV accelerators %.0f mW "
                "(budgets 120/60 = 30%%/15%%), 4x4 vision %.0f mW "
                "(450/900 = 33%%/66%%).\n",
                3 * power::catalog::fft().pMax() +
                    2 * power::catalog::viterbi().pMax() +
                    power::catalog::nvdla().pMax(),
                4 * power::catalog::gemm().pMax() +
                    5 * power::catalog::conv2d().pMax() +
                    4 * power::catalog::vision().pMax());
    return 0;
}
