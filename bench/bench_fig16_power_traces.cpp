/**
 * @file
 * Fig. 16: power traces of the autonomous-vehicle workload on the
 * 3x3 SoC — WL-Par at 120 mW and WL-Dep at 60 mW — under BC, BC-C and
 * C-RR, with a zoom on the reallocation after the NVDLA completes.
 *
 * Paper result: all three enforce the cap; BlitzCoin redistributes the
 * NVDLA's power fastest, so the remaining tiles speed up sooner and
 * the total runtime is shortest. Traces are also dumped as CSV next to
 * the binary for plotting.
 */

#include <fstream>

#include "bench_soc_common.hpp"

using namespace blitz;

namespace {

void
runScenario(const char *name, bool dependent, double budget)
{
    std::printf("\n%s @ %.0f mW:\n", name, budget);
    std::printf("  %-7s %13s %16s %12s %8s\n", "PM", "exec",
                "mean response", "avg power", "util");
    for (soc::PmKind kind : bench::adaptiveKinds) {
        soc::Soc s(soc::make3x3AvSoc(), bench::pm(kind, budget), 11);
        workload::Dag dag = dependent ? soc::avDependent(s.config(), 3)
                                      : soc::avParallel(s.config());
        auto st = s.run(dag);
        bench::row(soc::pmKindName(kind), st, 0.0);

        // Dump the trace for offline plotting (the figure itself).
        std::vector<std::string> names;
        for (noc::NodeId id : s.config().managedAccelerators())
            names.push_back(s.config().tile(id).name);
        std::string file = std::string("fig16_") + name + "_" +
                           soc::pmKindName(kind) + ".csv";
        std::ofstream(file) << st.trace->toCsv(names);

        // The zoomed transition: power redistribution speed right
        // after the first task completes.
        std::printf("          cap violations > 10%%: %.2f%% of "
                    "samples; trace -> %s\n",
                    st.trace->capViolationFraction(0.10) * 100.0,
                    file.c_str());
    }
}

} // namespace

int
main()
{
    bench::banner("Fig. 16",
                  "3x3 AV power traces, WL-Par @ 120 mW / WL-Dep @ 60 mW");
    runScenario("WL-Par", /*dependent=*/false,
                soc::budgets::av30Percent);
    runScenario("WL-Dep", /*dependent=*/true,
                soc::budgets::av15Percent);
    std::printf("\nShape check: caps enforced by all three; BC has "
                "the fastest response and shortest runtime.\n");
    return 0;
}
