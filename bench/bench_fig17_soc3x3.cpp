/**
 * @file
 * Fig. 17: execution time and PM response time on the 3x3 AV SoC,
 * for WL-Par and WL-Dep at 30% (120 mW) and 15% (60 mW) budgets.
 *
 * Paper result: BC-C beats C-RR by ~24% (better allocation); BC
 * additionally improves response 10.1x/12.1x over BC-C/C-RR and adds
 * throughput (9% vs BC-C, 34% vs C-RR on average).
 */

#include "bench_soc_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 17", "3x3 AV SoC execution & response times");

    sim::Summary bc_vs_bcc, bc_vs_crr, bcc_vs_crr;
    sim::Summary resp_gain_bcc, resp_gain_crr;

    for (bool dependent : {false, true}) {
        for (double budget :
             {soc::budgets::av30Percent, soc::budgets::av15Percent}) {
            std::printf("\n%s @ %.0f mW:\n",
                        dependent ? "WL-Dep" : "WL-Par", budget);
            std::printf("  %-7s %13s %16s %12s %8s\n", "PM", "exec",
                        "mean response", "avg power", "util");
            double exec[3] = {0, 0, 0};
            double resp[3] = {0, 0, 0};
            int k = 0;
            for (soc::PmKind kind : bench::adaptiveKinds) {
                soc::Soc s(soc::make3x3AvSoc(),
                           bench::pm(kind, budget), 11);
                workload::Dag dag =
                    dependent ? soc::avDependent(s.config(), 3)
                              : soc::avParallel(s.config());
                auto st = s.run(dag);
                bench::row(soc::pmKindName(kind), st, 0.0);
                exec[k] = st.execTimeUs();
                resp[k] = st.meanResponseUs();
                ++k;
            }
            bc_vs_bcc.add(exec[1] / exec[0]);
            bc_vs_crr.add(exec[2] / exec[0]);
            bcc_vs_crr.add(exec[2] / exec[1]);
            resp_gain_bcc.add(resp[1] / resp[0]);
            resp_gain_crr.add(resp[2] / resp[0]);
        }
    }

    std::printf("\nAverages over the four configurations:\n");
    std::printf("  exec speedup BC vs BC-C : %+5.1f%%  (paper ~9%%)\n",
                (bc_vs_bcc.mean() - 1.0) * 100.0);
    std::printf("  exec speedup BC vs C-RR : %+5.1f%%  (paper ~34%%)\n",
                (bc_vs_crr.mean() - 1.0) * 100.0);
    std::printf("  exec speedup BC-C vs C-RR: %+5.1f%% (paper ~24%%)\n",
                (bcc_vs_crr.mean() - 1.0) * 100.0);
    std::printf("  response gain vs BC-C   : %5.1fx (paper 10.1x)\n",
                resp_gain_bcc.mean());
    std::printf("  response gain vs C-RR   : %5.1fx (paper 12.1x)\n",
                resp_gain_crr.mean());
    return 0;
}
