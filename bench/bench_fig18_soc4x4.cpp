/**
 * @file
 * Fig. 18: execution time and PM response time on the 4x4 vision SoC
 * (N = 13), parallel workload at 450/900 mW (33%/66%) and dependent
 * workload at 450 mW.
 *
 * Paper result: trends confirm the 3x3 findings — BC-C gives ~20%
 * throughput over C-RR, BC improves response 8.3x and throughput 25%
 * over C-RR.
 */

#include "bench_soc_common.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 18", "4x4 vision SoC execution & response");

    struct Case
    {
        const char *name;
        bool dependent;
        double budget;
    };
    const Case cases[] = {
        {"WL-Par", false, soc::budgets::vision33Percent},
        {"WL-Par", false, soc::budgets::vision66Percent},
        {"WL-Dep", true, soc::budgets::vision33Percent},
    };

    sim::Summary bc_vs_crr_exec, bc_vs_crr_resp, bcc_vs_crr_exec;
    for (const Case &c : cases) {
        std::printf("\n%s @ %.0f mW:\n", c.name, c.budget);
        std::printf("  %-7s %13s %16s %12s %8s\n", "PM", "exec",
                    "mean response", "avg power", "util");
        double exec[3] = {0, 0, 0};
        double resp[3] = {0, 0, 0};
        int k = 0;
        for (soc::PmKind kind : bench::adaptiveKinds) {
            soc::Soc s(soc::make4x4VisionSoc(),
                       bench::pm(kind, c.budget), 13);
            workload::Dag dag = c.dependent
                                    ? soc::visionDependent(s.config(), 2)
                                    : soc::visionParallel(s.config());
            auto st = s.run(dag);
            bench::row(soc::pmKindName(kind), st, 0.0);
            exec[k] = st.execTimeUs();
            resp[k] = st.meanResponseUs();
            ++k;
        }
        bc_vs_crr_exec.add(exec[2] / exec[0]);
        bcc_vs_crr_exec.add(exec[2] / exec[1]);
        bc_vs_crr_resp.add(resp[2] / resp[0]);
    }

    std::printf("\nAverages over the three configurations:\n");
    std::printf("  exec speedup BC vs C-RR  : %+5.1f%% (paper ~25%%)\n",
                (bc_vs_crr_exec.mean() - 1.0) * 100.0);
    std::printf("  exec speedup BC-C vs C-RR: %+5.1f%% (paper ~20%%)\n",
                (bcc_vs_crr_exec.mean() - 1.0) * 100.0);
    std::printf("  response gain BC vs C-RR : %5.1fx (paper 8.3x)\n",
                bc_vs_crr_resp.mean());
    return 0;
}
