/**
 * @file
 * Fig. 19: the silicon-prototype experiment on the 6x6 SoC's 10-tile
 * PM cluster: budget utilization during a 7-accelerator workload,
 * coin allocation before/after convergence, and throughput against a
 * statically-allocated baseline for 7/5/4/3-accelerator workloads.
 *
 * Paper (measured) result: 97% budget utilization; residual coin
 * error under one coin; 27/26/26/19% throughput improvement over
 * static allocation.
 */

#include "bench_soc_common.hpp"
#include "soc/pm_impl.hpp"

using namespace blitz;

int
main()
{
    bench::banner("Fig. 19",
                  "6x6 silicon-prototype SoC, PM-cluster workloads");

    // --- coin redistribution at workload startup (bottom left) ----
    {
        soc::Soc s(soc::make6x6SiliconSoc(),
                   bench::pm(soc::PmKind::BlitzCoin,
                             soc::budgets::silicon),
                   29);
        auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
        workload::Dag dag = soc::siliconWorkload(s.config(), 7);

        // Start the units, launch the workload activity by hand and
        // snapshot coins before/after the convergence transient.
        bc.start();
        std::printf("\nCoin allocation at workload startup "
                    "(7 accelerators):\n  %-8s %6s %8s %8s\n", "tile",
                    "max", "before", "after");
        std::vector<std::pair<noc::NodeId, coin::Coins>> before;
        for (const auto &t : dag.tasks()) {
            bc.onTaskStart(t.tile);
        }
        for (const auto &t : dag.tasks())
            before.emplace_back(t.tile, bc.unit(t.tile).has());
        s.eventQueue().runUntil(s.eventQueue().now() +
                                sim::usToTicks(20.0));
        for (auto [tile, has0] : before) {
            std::printf("  %-8s %6lld %8lld %8lld\n",
                        s.config().tile(tile).name.c_str(),
                        static_cast<long long>(bc.maxCoins()[tile]),
                        static_cast<long long>(has0),
                        static_cast<long long>(bc.unit(tile).has()));
        }
        std::printf("  residual cluster error: %.2f coins "
                    "(paper: < 1 coin)\n", bc.clusterError());
    }

    // --- utilization and throughput vs static (top) ----------------
    std::printf("\nThroughput vs static allocation:\n");
    std::printf("  %7s | %12s %8s | %12s | %8s\n", "accels",
                "BC exec", "util", "Static exec", "gain");
    for (int accels : {7, 5, 4, 3}) {
        auto cfg = soc::make6x6SiliconSoc();
        auto dag = soc::siliconWorkload(cfg, accels);
        auto bc = bench::runSoc(cfg,
                                bench::pm(soc::PmKind::BlitzCoin,
                                          soc::budgets::silicon),
                                dag, 29);
        // The static baseline is provisioned for this workload's
        // tiles, as a fixed configuration would be.
        soc::PmConfig static_pm =
            bench::pm(soc::PmKind::StaticAlloc, soc::budgets::silicon);
        for (const auto &t : dag.tasks())
            static_pm.staticParticipants.push_back(t.tile);
        auto st = bench::runSoc(cfg, static_pm, dag, 29);
        std::printf("  %7d | %10.1f us %7.1f%% | %10.1f us | %+6.1f%%\n",
                    accels, bc.execTimeUs(),
                    bc.trace->budgetUtilization() * 100.0,
                    st.execTimeUs(),
                    (st.execTimeUs() / bc.execTimeUs() - 1.0) * 100.0);
    }
    std::printf("\nShape check: high utilization under the cap "
                "(paper 97%%) and double-digit gains over static "
                "(paper 27/26/26/19%%).\n");
    return 0;
}
