/**
 * @file
 * Fig. 20: coin counts during the activity transition at the end of
 * the NVDLA task in the 7-accelerator silicon workload, plus the
 * response times of BC, BC-C and C-RR for that same transition.
 *
 * Paper (measured) result: BlitzCoin settles in 0.68 us; BC-C and
 * C-RR take 1.4 us and 15.3 us (2.1x and 22.5x slower).
 */

#include "bench_soc_common.hpp"
#include "soc/pm_impl.hpp"

using namespace blitz;

namespace {

/** Response of one strategy to the end-of-NVDLA transition. */
double
transitionResponseUs(soc::PmKind kind)
{
    soc::Soc s(soc::make6x6SiliconSoc(),
               bench::pm(kind, soc::budgets::silicon), 31);
    workload::Dag dag = soc::siliconWorkload(s.config(), 7);
    auto st = s.run(dag);
    // The NVDLA ends first (Section V-D workload design); its end is
    // one of the measured transitions. Report the mean response over
    // the run's transitions, which that figure's single capture
    // represents.
    return st.meanResponseUs();
}

} // namespace

int
main()
{
    bench::banner("Fig. 20",
                  "coin exchange after the NVDLA task ends (6x6 SoC)");

    // --- the coin trace itself (BlitzCoin) -------------------------
    soc::Soc s(soc::make6x6SiliconSoc(),
               bench::pm(soc::PmKind::BlitzCoin, soc::budgets::silicon),
               31);
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    workload::Dag dag = soc::siliconWorkload(s.config(), 7);
    bc.start();
    for (const auto &t : dag.tasks())
        bc.onTaskStart(t.tile);
    s.eventQueue().runUntil(sim::usToTicks(30.0));

    // NVDLA task ends: capture the redistribution tick by tick.
    noc::NodeId nvdla = s.config().findTile("NVDLA0");
    sim::Tick t0 = s.eventQueue().now();
    bc.onTaskEnd(nvdla);

    std::printf("\ncoins held (sampled every 100 cycles = 125 ns):\n");
    std::printf("%8s |", "t (ns)");
    for (const auto &t : dag.tasks())
        std::printf(" %7s", s.config().tile(t.tile).name.c_str());
    std::printf(" | err\n");
    for (int k = 0; k <= 12; ++k) {
        s.eventQueue().runUntil(t0 + static_cast<sim::Tick>(k) * 100);
        std::printf("%8.0f |", sim::ticksToNs(
                                   static_cast<sim::Tick>(k) * 100));
        for (const auto &t : dag.tasks()) {
            std::printf(" %7lld",
                        static_cast<long long>(bc.unit(t.tile).has()));
        }
        std::printf(" | %.2f\n", bc.clusterError());
        if (bc.clusterError() < 1.0 && k > 0)
            break;
    }

    // --- response-time comparison ----------------------------------
    std::printf("\nresponse to activity transitions "
                "(mean over the 7-accel run):\n");
    double bc_us = transitionResponseUs(soc::PmKind::BlitzCoin);
    double bcc_us = transitionResponseUs(soc::PmKind::BlitzCoinCentral);
    double crr_us =
        transitionResponseUs(soc::PmKind::CentralRoundRobin);
    std::printf("  BC   : %7.3f us   (paper 0.68 us)\n", bc_us);
    std::printf("  BC-C : %7.3f us = %4.1fx BC (paper 1.4 us, 2.1x)\n",
                bcc_us, bcc_us / bc_us);
    std::printf("  C-RR : %7.3f us = %4.1fx BC (paper 15.3 us, 22.5x)\n",
                crr_us, crr_us / bc_us);
    return 0;
}
