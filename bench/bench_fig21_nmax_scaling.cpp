/**
 * @file
 * Fig. 21 (and Fig. 1): the scaling study. Fits the tau constants of
 * Equations 5.1-5.3 from response times measured on the simulated
 * SoCs (the paper fits from Figs. 17/18/20 data), then reports:
 *   left:  N_max vs workload phase duration T_w per scheme;
 *   right: fraction of time spent in power management vs N at
 *          T_w = 10 ms.
 *
 * Paper result: BlitzCoin supports 5.7-13.3x more accelerators than
 * BC-C/C-RR and 3.2-6.2x more than TS; ~1000 accelerators at
 * T_w >= 7 ms; 2.0% PM-time at N = 100 / T_w = 10 ms where C-RR needs
 * 96% and BC-C 66%.
 */

#include "analytic/scaling.hpp"
#include "baselines/tokensmart.hpp"
#include "bench_soc_common.hpp"

using namespace blitz;

namespace {

/** Measured (N, response us) samples for one strategy. */
std::vector<std::pair<double, double>>
measure(soc::PmKind kind)
{
    std::vector<std::pair<double, double>> samples;
    // 3x3 (N=6): dependent AV workload; 6x6 cluster (N=10); 4x4
    // (N=13): dependent vision workload — the same three design
    // points the paper fits from.
    {
        soc::Soc s(soc::make3x3AvSoc(),
                   bench::pm(kind, soc::budgets::av15Percent), 11);
        auto st = s.run(soc::avDependent(s.config(), 2));
        samples.emplace_back(6.0, st.meanResponseUs());
    }
    {
        soc::Soc s(soc::make6x6SiliconSoc(),
                   bench::pm(kind, soc::budgets::silicon), 11);
        auto st = s.run(soc::siliconWorkload(s.config(), 7));
        samples.emplace_back(10.0, st.meanResponseUs());
    }
    {
        soc::Soc s(soc::make4x4VisionSoc(),
                   bench::pm(kind, soc::budgets::vision33Percent), 11);
        auto st = s.run(soc::visionDependent(s.config(), 1));
        samples.emplace_back(13.0, st.meanResponseUs());
    }
    return samples;
}

/** TS response from the behavioral ring at matching sizes. */
std::vector<std::pair<double, double>>
measureTokenSmart()
{
    std::vector<std::pair<double, double>> samples;
    for (std::size_t n : {6u, 10u, 13u, 36u, 100u}) {
        sim::Summary t;
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            baselines::TokenSmartSim ts(
                n, baselines::TokenSmartConfig{}, seed);
            for (std::size_t i = 0; i < n; ++i)
                ts.setMax(i, 16);
            ts.randomizeHas(static_cast<coin::Coins>(8 * n));
            auto r = ts.runUntilConverged(1.5, 50'000'000);
            if (r.converged)
                t.add(sim::ticksToUs(r.time));
        }
        samples.emplace_back(static_cast<double>(n), t.mean());
    }
    return samples;
}

} // namespace

int
main()
{
    bench::banner("Fig. 21 (+Fig. 1)",
                  "fitted scaling laws, N_max(T_w), PM-time fraction");

    using analytic::ScalingLaw;
    using analytic::Scheme;

    std::vector<ScalingLaw> laws;
    std::printf("\nfitted constants (tau, us):\n");
    for (auto [scheme, kind] :
         {std::pair{Scheme::BC, soc::PmKind::BlitzCoin},
          {Scheme::BCC, soc::PmKind::BlitzCoinCentral},
          {Scheme::CRR, soc::PmKind::CentralRoundRobin}}) {
        auto law = analytic::fitLaw(scheme, measure(kind));
        std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   "
                    "[paper: BC 0.20, BC-C 0.66, C-RR 0.96]\n",
                    analytic::schemeName(scheme), law.tauUs,
                    law.exponent);
        laws.push_back(law);
    }
    laws.push_back(analytic::fitLaw(Scheme::TS, measureTokenSmart()));
    std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   [paper: 0.22]\n",
                "TS", laws.back().tauUs, laws.back().exponent);
    laws.push_back(analytic::priceTheoryLaw());
    std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   "
                "[literature, HW-scaled]\n",
                "PT", laws.back().tauUs, laws.back().exponent);

    // ---- left plot: N_max vs T_w ----------------------------------
    std::printf("\nN_max vs workload phase duration T_w:\n%8s |",
                "T_w(ms)");
    for (const auto &law : laws)
        std::printf(" %8s", analytic::schemeName(law.scheme));
    std::printf(" | BC gain over BC-C/C-RR/TS\n");
    for (double tw_ms : {0.2, 1.0, 2.0, 7.0, 10.0, 20.0}) {
        double tw = tw_ms * 1000.0;
        std::printf("%8.1f |", tw_ms);
        for (const auto &law : laws)
            std::printf(" %8.0f", law.nMax(tw));
        std::printf(" | %.1fx / %.1fx / %.1fx\n",
                    laws[0].nMax(tw) / laws[1].nMax(tw),
                    laws[0].nMax(tw) / laws[2].nMax(tw),
                    laws[0].nMax(tw) / laws[3].nMax(tw));
    }

    // ---- right plot: PM-time fraction vs N at T_w = 10 ms ---------
    std::printf("\nPM-time fraction at T_w = 10 ms "
                "(>100%% = cannot keep up):\n%8s |", "N");
    for (const auto &law : laws)
        std::printf(" %8s", analytic::schemeName(law.scheme));
    std::printf("\n");
    for (double n : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
        std::printf("%8.0f |", n);
        for (const auto &law : laws)
            std::printf(" %7.1f%%",
                        law.pmTimeFraction(n, 10000.0) * 100.0);
        std::printf("\n");
    }

    // ---- Fig. 1 view: response time vs the T_w/N demand curve -----
    std::printf("\nFig. 1 crossovers: response T(N) vs demand T_w/N "
                "(us), T_w = 5 ms:\n%8s | %10s %10s %10s | %10s\n",
                "N", "BC", "BC-C", "C-RR", "T_w/N");
    for (double n : {10.0, 50.0, 100.0, 500.0, 1000.0}) {
        std::printf("%8.0f | %10.2f %10.2f %10.2f | %10.2f\n", n,
                    laws[0].responseUs(n), laws[1].responseUs(n),
                    laws[2].responseUs(n), 5000.0 / n);
    }
    std::printf("\nShape check: BC's curve crosses the demand line at "
                "far larger N than the centralized schemes.\n");
    return 0;
}
