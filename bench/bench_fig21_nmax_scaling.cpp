/**
 * @file
 * Fig. 21 (and Fig. 1): the scaling study. Fits the tau constants of
 * Equations 5.1-5.3 from response times measured on the simulated
 * SoCs (the paper fits from Figs. 17/18/20 data), then reports:
 *   left:  N_max vs workload phase duration T_w per scheme;
 *   right: fraction of time spent in power management vs N at
 *          T_w = 10 ms.
 *
 * Paper result: BlitzCoin supports 5.7-13.3x more accelerators than
 * BC-C/C-RR and 3.2-6.2x more than TS; ~1000 accelerators at
 * T_w >= 7 ms; 2.0% PM-time at N = 100 / T_w = 10 ms where C-RR needs
 * 96% and BC-C 66%.
 */

#include "analytic/scaling.hpp"
#include "baselines/tokensmart.hpp"
#include "bench_obs.hpp"
#include "bench_soc_common.hpp"
#include "sweep/sweep.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

/**
 * One (strategy, design point) full-SoC run. The three design points
 * are 3x3 (N=6, dependent AV workload), 6x6 cluster (N=10), and 4x4
 * (N=13, dependent vision workload) — the same three the paper fits
 * from. @p reg / @p tracer, when set, ride the run via the Soc's own
 * attach points (observed re-runs only; the fitting grid passes null).
 */
std::pair<double, double>
measurePoint(soc::PmKind kind, std::size_t point,
             trace::Registry *reg = nullptr,
             trace::Tracer *tracer = nullptr)
{
    switch (point) {
    case 0: {
        soc::Soc s(soc::make3x3AvSoc(),
                   bench::pm(kind, soc::budgets::av15Percent), 11);
        s.attachMetrics(reg);
        s.attachTrace(tracer);
        auto st = s.run(soc::avDependent(s.config(), 2));
        return {6.0, st.meanResponseUs()};
    }
    case 1: {
        soc::Soc s(soc::make6x6SiliconSoc(),
                   bench::pm(kind, soc::budgets::silicon), 11);
        s.attachMetrics(reg);
        s.attachTrace(tracer);
        auto st = s.run(soc::siliconWorkload(s.config(), 7));
        return {10.0, st.meanResponseUs()};
    }
    default: {
        soc::Soc s(soc::make4x4VisionSoc(),
                   bench::pm(kind, soc::budgets::vision33Percent), 11);
        s.attachMetrics(reg);
        s.attachTrace(tracer);
        auto st = s.run(soc::visionDependent(s.config(), 1));
        return {13.0, st.meanResponseUs()};
    }
    }
}

/** One TS convergence trial on the behavioral ring. */
double
tokenSmartUs(std::size_t n, std::uint64_t seed)
{
    baselines::TokenSmartSim ts(n, baselines::TokenSmartConfig{}, seed);
    for (std::size_t i = 0; i < n; ++i)
        ts.setMax(i, 16);
    ts.randomizeHas(static_cast<coin::Coins>(8 * n));
    auto r = ts.runUntilConverged(1.5, 50'000'000);
    return r.converged ? sim::ticksToUs(r.time) : -1.0;
}

/** One entry of the flattened measurement grid. */
struct Measurement
{
    int series; ///< 0..2: hardware-model strategies; 3: TS ring
    double n;
    double value; ///< response us, or < 0 for a non-converged trial
};

constexpr std::array<soc::PmKind, 3> hwKinds{
    soc::PmKind::BlitzCoin, soc::PmKind::BlitzCoinCentral,
    soc::PmKind::CentralRoundRobin};
constexpr std::array<std::size_t, 5> tsSizes{6, 10, 13, 36, 100};
constexpr std::size_t tsSeeds = 20;
constexpr std::size_t hwTasks = hwKinds.size() * 3;
constexpr std::size_t tsTasks = tsSizes.size() * tsSeeds;

/**
 * All measurements — 9 full-SoC runs and 100 TS trials — fanned out
 * over the sweep harness as one task grid so the slow SoC runs overlap
 * the TS Monte-Carlo. Results come back in index order; the fold below
 * is therefore thread-count independent.
 */
std::vector<Measurement>
measureAll()
{
    return sweep::runSweep(
        hwTasks + tsTasks, /*rootSeed=*/11,
        [](std::size_t i, std::uint64_t) -> Measurement {
            if (i < hwTasks) {
                auto kind = hwKinds[i / 3];
                auto [n, us] = measurePoint(kind, i % 3);
                return {static_cast<int>(i / 3), n, us};
            }
            std::size_t t = i - hwTasks;
            std::size_t n = tsSizes[t / tsSeeds];
            return {3, static_cast<double>(n),
                    tokenSmartUs(n, t % tsSeeds + 1)};
        });
}

/** (N, response us) samples of one hardware-model strategy. */
std::vector<std::pair<double, double>>
samplesFor(const std::vector<Measurement> &all, int series)
{
    std::vector<std::pair<double, double>> samples;
    for (const auto &m : all) {
        if (m.series == series)
            samples.emplace_back(m.n, m.value);
    }
    return samples;
}

/** TS response per ring size, averaged over the converged trials. */
std::vector<std::pair<double, double>>
tokenSmartSamples(const std::vector<Measurement> &all)
{
    std::vector<std::pair<double, double>> samples;
    for (std::size_t n : tsSizes) {
        sim::Summary t;
        for (const auto &m : all) {
            if (m.series == 3 &&
                m.n == static_cast<double>(n) && m.value >= 0.0)
                t.add(m.value);
        }
        samples.emplace_back(static_cast<double>(n), t.mean());
    }
    return samples;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Fig. 21 (+Fig. 1)",
                  "fitted scaling laws, N_max(T_w), PM-time fraction");

    using analytic::ScalingLaw;
    using analytic::Scheme;

    auto measurements = measureAll();

    std::vector<ScalingLaw> laws;
    std::printf("\nfitted constants (tau, us):\n");
    const std::array<Scheme, 3> schemes{Scheme::BC, Scheme::BCC,
                                        Scheme::CRR};
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        auto law = analytic::fitLaw(
            schemes[s],
            samplesFor(measurements, static_cast<int>(s)));
        std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   "
                    "[paper: BC 0.20, BC-C 0.66, C-RR 0.96]\n",
                    analytic::schemeName(schemes[s]), law.tauUs,
                    law.exponent);
        laws.push_back(law);
    }
    laws.push_back(analytic::fitLaw(
        Scheme::TS, tokenSmartSamples(measurements)));
    std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   [paper: 0.22]\n",
                "TS", laws.back().tauUs, laws.back().exponent);
    laws.push_back(analytic::priceTheoryLaw());
    std::printf("  tau_%-5s = %.3f us (T ~ N^%.1f)   "
                "[literature, HW-scaled]\n",
                "PT", laws.back().tauUs, laws.back().exponent);

    // ---- left plot: N_max vs T_w ----------------------------------
    std::printf("\nN_max vs workload phase duration T_w:\n%8s |",
                "T_w(ms)");
    for (const auto &law : laws)
        std::printf(" %8s", analytic::schemeName(law.scheme));
    std::printf(" | BC gain over BC-C/C-RR/TS\n");
    for (double tw_ms : {0.2, 1.0, 2.0, 7.0, 10.0, 20.0}) {
        double tw = tw_ms * 1000.0;
        std::printf("%8.1f |", tw_ms);
        for (const auto &law : laws)
            std::printf(" %8.0f", law.nMax(tw));
        std::printf(" | %.1fx / %.1fx / %.1fx\n",
                    laws[0].nMax(tw) / laws[1].nMax(tw),
                    laws[0].nMax(tw) / laws[2].nMax(tw),
                    laws[0].nMax(tw) / laws[3].nMax(tw));
    }

    // ---- right plot: PM-time fraction vs N at T_w = 10 ms ---------
    std::printf("\nPM-time fraction at T_w = 10 ms "
                "(>100%% = cannot keep up):\n%8s |", "N");
    for (const auto &law : laws)
        std::printf(" %8s", analytic::schemeName(law.scheme));
    std::printf("\n");
    for (double n : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
        std::printf("%8.0f |", n);
        for (const auto &law : laws)
            std::printf(" %7.1f%%",
                        law.pmTimeFraction(n, 10000.0) * 100.0);
        std::printf("\n");
    }

    // ---- Fig. 1 view: response time vs the T_w/N demand curve -----
    std::printf("\nFig. 1 crossovers: response T(N) vs demand T_w/N "
                "(us), T_w = 5 ms:\n%8s | %10s %10s %10s | %10s\n",
                "N", "BC", "BC-C", "C-RR", "T_w/N");
    for (double n : {10.0, 50.0, 100.0, 500.0, 1000.0}) {
        std::printf("%8.0f | %10.2f %10.2f %10.2f | %10.2f\n", n,
                    laws[0].responseUs(n), laws[1].responseUs(n),
                    laws[2].responseUs(n), 5000.0 / n);
    }
    std::printf("\nShape check: BC's curve crosses the demand line at "
                "far larger N than the centralized schemes.\n");

    // --metrics/--trace: re-run the three BlitzCoin design points with
    // the Soc's observability plane attached (the fitting grid above
    // runs bare, so the fitted constants never change). Each point has
    // its own per-tile metric schema, hence one tagged CSV per point;
    // the trace gets one process lane per point.
    if (obs.any()) {
        static const char *tags[3] = {"av3x3", "silicon6x6",
                                      "vision4x4"};
        trace::Tracer master;
        for (std::size_t p = 0; p < 3; ++p) {
            trace::Registry reg;
            trace::Tracer t;
            measurePoint(soc::PmKind::BlitzCoin, p,
                         obs.metrics ? &reg : nullptr,
                         obs.trace ? &t : nullptr);
            if (obs.metrics)
                bench::writeMetricsCsv(
                    reg.takeSeries(),
                    bench::tagPath(obs.metricsPath, tags[p]));
            if (obs.trace)
                master.absorb(t, static_cast<std::uint32_t>(p));
        }
        if (obs.trace)
            bench::writeTraceJson(master, obs.tracePath);
    }
    return 0;
}
