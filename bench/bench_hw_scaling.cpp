/**
 * @file
 * Packet-accurate scaling validation (extension to Fig. 21).
 *
 * The paper's sqrt(N) claim is established with the behavioral
 * emulator and spot-checked on the small fabricated SoC. Here the
 * *full hardware model* — BlitzCoin FSMs exchanging routed packets
 * with per-link contention — is swept across synthetic d x d SoCs up
 * to 99 managed accelerators, measuring the settle time of a global
 * demand change. The cycle cost of real routing, link serialization
 * and FSM handshakes must not break the sub-linear scaling.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <array>

#include "bench_soc_common.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"
#include "sweep/sweep.hpp"

using namespace blitz;

namespace {

/** Settle time of a demand spike on a d x d all-managed cluster. */
double
settleUs(int d, std::uint64_t seed,
         coin::ExchangeMode mode = coin::ExchangeMode::OneWay)
{
    sim::EventQueue eq;
    noc::Topology topo(d, d, false);
    noc::Network net(eq, topo);
    std::vector<std::unique_ptr<blitzcoin::BlitzCoinUnit>> units;
    std::vector<bool> managed(topo.size(), true);
    auto hoods = coin::managedNeighborhoods(topo, managed);
    blitzcoin::UnitConfig ucfg;
    ucfg.mode = mode;
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq, net, id, ucfg, hoods[id], seed * 1000 + id));
        net.setHandler(id, [&units, id](const noc::Packet &pkt) {
            units[id]->handlePacket(pkt);
        });
    }
    // Fig. 3's exact setup at packet accuracy: every tile active with
    // equal demand, the coin pool parked on a random quarter of the
    // mesh (where the previous workload ran).
    sim::Rng rng(seed);
    std::vector<coin::Coins> has(topo.size(), 0);
    {
        noc::Topology wrapped(d, d, true);
        auto center = static_cast<noc::NodeId>(rng.below(topo.size()));
        noc::Coord cc = wrapped.coordOf(center);
        int r = std::max(d / 4, 1);
        for (coin::Coins c = 0; c < 8 * d * d; ++c) {
            noc::Coord at{
                (cc.x + static_cast<int>(rng.range(-r, r)) + d) % d,
                (cc.y + static_cast<int>(rng.range(-r, r)) + d) % d};
            ++has[wrapped.idOf(at)];
        }
    }
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units[id]->setMax(16);
        units[id]->setHas(has[id]);
        units[id]->start();
    }
    sim::Tick t0 = eq.now();

    auto error = [&units, d] {
        coin::Coins th = 0, tm = 0;
        for (auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / static_cast<double>(d * d);
    };
    while (eq.now() < t0 + 4'000'000) {
        eq.runUntil(eq.now() + 100);
        if (error() < 1.5)
            return sim::ticksToUs(eq.now() - t0);
    }
    return -1.0; // did not settle
}

} // namespace

int
main()
{
    bench::banner("HW-model scaling (extension)",
                  "packet-accurate settle time vs SoC size");

    std::printf("\n%4s %6s | %12s | %10s\n", "d", "N", "settle (us)",
                "us/sqrt(N)");
    // Each (d, seed) settle run is independent; fan the whole grid
    // out over the sweep harness and fold per d in seed order.
    constexpr std::array<int, 5> ds{3, 4, 6, 8, 10};
    constexpr std::size_t seedsPerPoint = 10;
    auto settles = sweep::runSweep(
        ds.size() * seedsPerPoint, /*rootSeed=*/1,
        [&](std::size_t i, std::uint64_t) {
            return settleUs(ds[i / seedsPerPoint],
                            i % seedsPerPoint + 1);
        });
    std::vector<std::pair<double, double>> samples;
    for (std::size_t k = 0; k < ds.size(); ++k) {
        int d = ds[k];
        sim::Summary s;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            double us = settles[k * seedsPerPoint + i];
            if (us >= 0.0)
                s.add(us);
        }
        samples.emplace_back(static_cast<double>(d) * d, s.mean());
        std::printf("%4d %6d | %12.3f | %10.3f\n", d, d * d, s.mean(),
                    s.mean() / d);
    }

    // Sub-linearity check: growing N by ~11x (9 -> 100) should grow
    // the settle time far less than 11x.
    double ratio = samples.back().second / samples.front().second;
    std::printf("\nsettle(N=100) / settle(N=9) = %.1fx for an 11.1x "
                "larger SoC (sqrt predicts 3.3x, linear 11.1x)\n",
                ratio);

    // The packet-level cost of the group datapath: 4-way needs the
    // snapshot locking of Section III-B, and lock contention slows
    // contended reallocation — the paper's argument for 1-way, shown
    // on real packets.
    std::printf("\n1-way vs 4-way at packet level (d = 6):\n");
    constexpr std::array<coin::ExchangeMode, 2> modes{
        coin::ExchangeMode::OneWay, coin::ExchangeMode::FourWay};
    auto modeSettles = sweep::runSweep(
        modes.size() * seedsPerPoint, /*rootSeed=*/2,
        [&](std::size_t i, std::uint64_t) {
            return settleUs(6, i % seedsPerPoint + 1,
                            modes[i / seedsPerPoint]);
        });
    for (std::size_t k = 0; k < modes.size(); ++k) {
        sim::Summary s;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            double us = modeSettles[k * seedsPerPoint + i];
            if (us >= 0.0)
                s.add(us);
        }
        std::printf("  %-6s settle %.3f us\n",
                    coin::exchangeModeName(modes[k]), s.mean());
    }
    return 0;
}
