/**
 * @file
 * Packet-accurate scaling validation (extension to Fig. 21).
 *
 * The paper's sqrt(N) claim is established with the behavioral
 * emulator and spot-checked on the small fabricated SoC. Here the
 * *full hardware model* — BlitzCoin FSMs exchanging routed packets
 * with per-link contention — is swept across synthetic d x d SoCs up
 * to 99 managed accelerators, measuring the settle time of a global
 * demand change. The cycle cost of real routing, link serialization
 * and FSM handshakes must not break the sub-linear scaling.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <array>

#include "bench_obs.hpp"
#include "bench_soc_common.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"
#include "sweep/sweep.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

/** One settle run plus its optional observability capture. */
struct SettleResult
{
    double us = -1.0;
    trace::MetricsSeries metrics;
    std::shared_ptr<trace::Tracer> tracer;
};

/** Settle time of a demand spike on a d x d all-managed cluster. */
SettleResult
settleRun(int d, std::uint64_t seed, const bench::ObsOptions &obs,
          coin::ExchangeMode mode = coin::ExchangeMode::OneWay)
{
    sim::EventQueue eq;
    noc::Topology topo(d, d, false);
    noc::Network net(eq, topo);
    std::vector<std::unique_ptr<blitzcoin::BlitzCoinUnit>> units;
    std::vector<bool> managed(topo.size(), true);
    auto hoods = coin::managedNeighborhoods(topo, managed);
    blitzcoin::UnitConfig ucfg;
    ucfg.mode = mode;
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq, net, id, ucfg, hoods[id], seed * 1000 + id));
        net.setHandler(id, [&units, id](const noc::Packet &pkt) {
            units[id]->handlePacket(pkt);
        });
    }
    // Fig. 3's exact setup at packet accuracy: every tile active with
    // equal demand, the coin pool parked on a random quarter of the
    // mesh (where the previous workload ran).
    sim::Rng rng(seed);
    std::vector<coin::Coins> has(topo.size(), 0);
    {
        noc::Topology wrapped(d, d, true);
        auto center = static_cast<noc::NodeId>(rng.below(topo.size()));
        noc::Coord cc = wrapped.coordOf(center);
        int r = std::max(d / 4, 1);
        for (coin::Coins c = 0; c < 8 * d * d; ++c) {
            noc::Coord at{
                (cc.x + static_cast<int>(rng.range(-r, r)) + d) % d,
                (cc.y + static_cast<int>(rng.range(-r, r)) + d) % d};
            ++has[wrapped.idOf(at)];
        }
    }
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units[id]->setMax(16);
        units[id]->setHas(has[id]);
        units[id]->start();
    }
    sim::Tick t0 = eq.now();

    auto error = [&units, d] {
        coin::Coins th = 0, tm = 0;
        for (auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / static_cast<double>(d * d);
    };

    // Observability rides the existing poll cadence: one metrics
    // snapshot / counter event per 100-tick probe, nothing extra
    // scheduled, so the flags cannot change the settle numbers.
    SettleResult res;
    trace::Registry reg;
    if (obs.metrics) {
        reg.sampled("imbalance_mean", error);
        reg.sampled("exchanges_moved", [&units] {
            double n = 0.0;
            for (auto &u : units)
                n += static_cast<double>(u->exchangesMoved());
            return n;
        });
    }
    if (obs.trace)
        res.tracer = std::make_shared<trace::Tracer>();

    while (eq.now() < t0 + 4'000'000) {
        eq.runUntil(eq.now() + 100);
        if (obs.metrics)
            reg.sample(eq.now());
        if (res.tracer)
            res.tracer->counter("settle", "imbalance", 0, eq.now(),
                                error());
        if (error() < 1.5) {
            res.us = sim::ticksToUs(eq.now() - t0);
            break;
        }
    }
    if (res.tracer)
        res.tracer->complete(
            "settle", "settle_run", 0, t0, eq.now(),
            {{"d", static_cast<std::int64_t>(d)},
             {"seed", static_cast<std::int64_t>(seed)},
             {"settled", static_cast<std::int64_t>(res.us >= 0.0)}});
    if (obs.metrics)
        res.metrics = reg.takeSeries();
    return res; // us stays -1.0 if the mesh did not settle
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("HW-model scaling (extension)",
                  "packet-accurate settle time vs SoC size");

    // --metrics/--trace capture rides along per settle run and is
    // folded in replication order, so the files are bit-identical at
    // any BLITZ_SWEEP_THREADS; the printed numbers never change.
    trace::Tracer master;
    trace::MetricsSeries masterSeries;
    auto fold = [&](std::vector<SettleResult> &rs,
                    std::uint32_t pidBase) {
        for (std::size_t i = 0; i < rs.size(); ++i) {
            if (!rs[i].metrics.empty())
                masterSeries.merge(rs[i].metrics);
            if (rs[i].tracer)
                master.absorb(*rs[i].tracer,
                              pidBase + static_cast<std::uint32_t>(i));
        }
    };

    std::printf("\n%4s %6s | %12s | %10s\n", "d", "N", "settle (us)",
                "us/sqrt(N)");
    // Each (d, seed) settle run is independent; fan the whole grid
    // out over the sweep harness and fold per d in seed order.
    constexpr std::array<int, 5> ds{3, 4, 6, 8, 10};
    constexpr std::size_t seedsPerPoint = 10;
    auto settles = sweep::runSweep(
        ds.size() * seedsPerPoint, /*rootSeed=*/1,
        [&](std::size_t i, std::uint64_t) {
            return settleRun(ds[i / seedsPerPoint],
                             i % seedsPerPoint + 1, obs);
        });
    fold(settles, 0);
    std::vector<std::pair<double, double>> samples;
    for (std::size_t k = 0; k < ds.size(); ++k) {
        int d = ds[k];
        sim::Summary s;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            double us = settles[k * seedsPerPoint + i].us;
            if (us >= 0.0)
                s.add(us);
        }
        samples.emplace_back(static_cast<double>(d) * d, s.mean());
        std::printf("%4d %6d | %12.3f | %10.3f\n", d, d * d, s.mean(),
                    s.mean() / d);
    }

    // Sub-linearity check: growing N by ~11x (9 -> 100) should grow
    // the settle time far less than 11x.
    double ratio = samples.back().second / samples.front().second;
    std::printf("\nsettle(N=100) / settle(N=9) = %.1fx for an 11.1x "
                "larger SoC (sqrt predicts 3.3x, linear 11.1x)\n",
                ratio);

    // The packet-level cost of the group datapath: 4-way needs the
    // snapshot locking of Section III-B, and lock contention slows
    // contended reallocation — the paper's argument for 1-way, shown
    // on real packets.
    std::printf("\n1-way vs 4-way at packet level (d = 6):\n");
    constexpr std::array<coin::ExchangeMode, 2> modes{
        coin::ExchangeMode::OneWay, coin::ExchangeMode::FourWay};
    auto modeSettles = sweep::runSweep(
        modes.size() * seedsPerPoint, /*rootSeed=*/2,
        [&](std::size_t i, std::uint64_t) {
            return settleRun(6, i % seedsPerPoint + 1, obs,
                             modes[i / seedsPerPoint]);
        });
    fold(modeSettles, 1'000);
    for (std::size_t k = 0; k < modes.size(); ++k) {
        sim::Summary s;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            double us = modeSettles[k * seedsPerPoint + i].us;
            if (us >= 0.0)
                s.add(us);
        }
        std::printf("  %-6s settle %.3f us\n",
                    coin::exchangeModeName(modes[k]), s.mean());
    }
    if (obs.metrics)
        bench::writeMetricsCsv(masterSeries, obs.metricsPath);
    if (obs.trace)
        bench::writeTraceJson(master, obs.tracePath);
    return 0;
}
