/**
 * @file
 * NoC-contention study (extension; motivated by Section IV-A).
 *
 * Coin-exchange messages share NoC plane 5 with memory-mapped-register
 * and interrupt traffic, so "a coin request can be delayed and arrive
 * at a time where the tile has already given its coins to another
 * neighbor, temporarily causing a negative coin count". This bench
 * injects configurable background register traffic on the service
 * plane of the 3x3 SoC, measures how BlitzCoin's settle time degrades,
 * and counts the negative-coin transients the paper's sign bit exists
 * to absorb. It also verifies coin conservation under the heaviest
 * congestion.
 *
 * `--metrics[=path]` / `--trace[=path]` / `--health[=path]` opt into
 * the observability plane (see bench_obs.hpp); without the flags the
 * printed numbers are byte-identical to a flag-free run.
 */

#include <memory>
#include <vector>

#include "bench_obs.hpp"
#include "bench_soc_common.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"
#include "sim/rng.hpp"
#include "trace/flush_guard.hpp"
#include "trace/metrics.hpp"
#include "trace/prof.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

struct Result
{
    double settleUs = 0.0;
    std::uint64_t negatives = 0;
    bool conserved = false;

    /// --metrics / --trace / --health: per-run observability output.
    trace::MetricsSeries metrics;
    std::shared_ptr<trace::Tracer> tracer;
    trace::HealthReport health;
};

/**
 * A 3x3 all-managed cluster with Poisson-ish background RegRead
 * traffic at the given injection rate (packets per node per cycle).
 */
Result
runWithBackground(double injectionRate, std::uint64_t seed,
                  const bench::ObsOptions &obs)
{
    // Registry/tracer outlive the queue: samplers and span-close
    // callbacks read unit state until the last event dies.
    trace::Registry reg;
    std::shared_ptr<trace::Tracer> tracer;
    if (obs.trace)
        tracer = std::make_shared<trace::Tracer>();
    sim::EventQueue eq;
    noc::Topology topo(3, 3, false);
    noc::Network net(eq, topo);
    std::vector<std::unique_ptr<blitzcoin::BlitzCoinUnit>> units;
    std::vector<bool> managed(topo.size(), true);
    auto hoods = coin::managedNeighborhoods(topo, managed);

    std::uint64_t negatives = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq, net, id, blitzcoin::UnitConfig{}, hoods[id],
            seed * 100 + id));
        net.setHandler(id, [&units, id](const noc::Packet &pkt) {
            units[id]->handlePacket(pkt);
        });
        units.back()->onCoinsChanged = [&negatives](coin::Coins has) {
            if (has < 0)
                ++negatives;
        };
        if (obs.trace)
            units.back()->setTrace(tracer.get());
    }

    // --metrics: sampled gauges on a fixed cadence (cluster coin
    // total, mean proportional error, negative transients so far).
    if (obs.metrics) {
        reg.sampled("coins.total", [&units] {
            coin::Coins total = 0;
            for (auto &u : units)
                total += u->has();
            return static_cast<double>(total);
        });
        reg.sampled("negatives", [&negatives] {
            return static_cast<double>(negatives);
        });
        auto sampler = std::make_shared<std::function<void()>>();
        *sampler = [&eq, &reg, sampler] {
            reg.sample(eq.now());
            eq.scheduleIn(512, *sampler);
        };
        eq.scheduleIn(512, *sampler);
    }

    // Background register traffic on the service plane.
    auto rng = std::make_shared<sim::Rng>(seed);
    auto injecting = std::make_shared<bool>(true);
    auto inject = std::make_shared<std::function<void()>>();
    *inject = [&eq, &net, &topo, rng, inject, injecting,
               injectionRate] {
        if (!*injecting)
            return;
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            // Rates above 1.0 inject multiple packets per node per
            // cycle, driving shared links past saturation.
            double want = injectionRate;
            while (want >= 1.0 || rng->chance(want)) {
                noc::Packet p;
                p.src = id;
                p.dst = static_cast<noc::NodeId>(
                    rng->below(topo.size()));
                p.plane = noc::Plane::Service;
                p.type = noc::MsgType::Generic;
                net.send(p);
                want -= 1.0;
                if (want <= 0.0)
                    break;
            }
        }
        eq.scheduleIn(1, *inject);
    };
    if (injectionRate > 0.0)
        eq.scheduleIn(1, *inject);

    // Converged start, then one reallocation: tile 0 takes over.
    const coin::Coins maxes[9] = {16, 16, 16, 16, 16, 16, 16, 16, 16};
    for (std::size_t i = 0; i < 9; ++i) {
        units[i]->setMax(maxes[i]);
        units[i]->setHas(8);
        units[i]->start();
    }
    eq.runUntil(20000);
    sim::Tick t0 = eq.now();
    units[0]->setMax(63); // demand spike: coins must flow to tile 0

    // Settle probe: proportional within 1 coin mean.
    auto error = [&units] {
        coin::Coins th = 0, tm = 0;
        for (auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / 9.0;
    };
    Result out;
    sim::Tick settle = 0;
    while (eq.now() < t0 + 200'000) {
        eq.runUntil(eq.now() + 50);
        if (error() < 1.0) {
            settle = eq.now() - t0;
            break;
        }
    }
    // settle == 0 means the probe never crossed: report the horizon.
    if (settle == 0)
        settle = 200'000;
    out.settleUs = sim::ticksToUs(settle);
    out.negatives = negatives;
    // Conservation check must quiesce first: a CoinUpdate in flight
    // means one side of a delta has landed and the other has not,
    // and saturated queues need time to flush once injection stops.
    *injecting = false;
    for (auto &u : units)
        u->stop();
    eq.runUntil(eq.now() + 400'000);
    coin::Coins total = 0;
    for (auto &u : units)
        total += u->has();
    out.conserved = total == 72;
    if (obs.metrics)
        out.metrics = reg.takeSeries();
    if (obs.trace)
        out.tracer = std::move(tracer);
    if (obs.health) {
        out.health.bumpDet("units",
                           static_cast<double>(units.size()));
        out.health.bumpDet("coin.total", static_cast<double>(total));
        out.health.bumpDet("coin.negative_transients",
                           static_cast<double>(negatives));
        out.health.bumpDet("coin.conserved",
                           out.conserved ? 1.0 : 0.0);
        std::uint64_t initiated = 0;
        std::uint64_t moved = 0;
        std::uint64_t timedOut = 0;
        for (auto &u : units) {
            initiated += u->exchangesInitiated();
            moved += u->exchangesMoved();
            timedOut += u->exchangesTimedOut();
        }
        out.health.bumpDet("exchanges.initiated",
                           static_cast<double>(initiated));
        out.health.bumpDet("exchanges.moved",
                           static_cast<double>(moved));
        out.health.bumpDet("exchanges.timed_out",
                           static_cast<double>(timedOut));
        out.health.bumpDet("noc.sent",
                           static_cast<double>(net.packetsSent()));
        out.health.bumpDet("noc.delivered",
                           static_cast<double>(net.packetsDelivered()));
        out.health.bumpDet("noc.dropped",
                           static_cast<double>(net.packetsDropped()));
        trace::fillQueueHealth(out.health, eq);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("NoC contention (extension)",
                  "coin exchange vs background service-plane traffic");

    trace::Tracer master;
    trace::MetricsSeries metricsAll;
    trace::HealthReport healthAll;
    trace::FlushGuard::Registration crashFlush;
    trace::FlushGuard::Registration healthFlush;
    if (obs.any())
        trace::FlushGuard::installSignalHandlers();
    if (obs.trace)
        crashFlush =
            trace::FlushGuard::guardTracer(master, obs.tracePath);
    if (obs.health) {
        healthAll.setRun("bench_noc_contention");
        healthFlush = trace::FlushGuard::guardHealth(healthAll,
                                                     obs.healthPath);
    }

    std::printf("\n%12s | %12s | %12s | %s\n", "inject rate",
                "settle (us)", "neg. events", "conserved");
    std::uint32_t pid = 0;
    for (double rate : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        sim::Summary settle;
        std::uint64_t negatives = 0;
        bool conserved = true;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            Result r = runWithBackground(rate, seed, obs);
            settle.add(r.settleUs);
            negatives += r.negatives;
            conserved = conserved && r.conserved;
            if (!r.metrics.empty())
                metricsAll.merge(r.metrics);
            if (r.tracer)
                master.absorb(*r.tracer, pid);
            healthAll.absorb(r.health);
            ++pid;
        }
        std::printf("%12.2f | %12.3f | %12llu | %s\n", rate,
                    settle.mean(),
                    static_cast<unsigned long long>(negatives),
                    conserved ? "yes" : "NO");
    }
    if (obs.metrics && !metricsAll.empty())
        bench::writeMetricsCsv(metricsAll, obs.metricsPath);
    if (obs.trace) {
        crashFlush.release();
        bench::writeTraceJson(master, obs.tracePath);
    }
    if (obs.health) {
        healthFlush.release();
        bench::writeHealthJson(healthAll, obs.healthPath);
    }
    std::printf("\nShape check: settle time degrades gracefully with "
                "congestion; negative transients (absorbed by the "
                "hardware sign bit) appear under load; coins are "
                "conserved at every rate.\n");
    return 0;
}
