/**
 * @file
 * NoC-contention study (extension; motivated by Section IV-A).
 *
 * Coin-exchange messages share NoC plane 5 with memory-mapped-register
 * and interrupt traffic, so "a coin request can be delayed and arrive
 * at a time where the tile has already given its coins to another
 * neighbor, temporarily causing a negative coin count". This bench
 * injects configurable background register traffic on the service
 * plane of the 3x3 SoC, measures how BlitzCoin's settle time degrades,
 * and counts the negative-coin transients the paper's sign bit exists
 * to absorb. It also verifies coin conservation under the heaviest
 * congestion.
 */

#include <memory>
#include <vector>

#include "bench_soc_common.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"
#include "sim/rng.hpp"

using namespace blitz;

namespace {

struct Result
{
    double settleUs = 0.0;
    std::uint64_t negatives = 0;
    bool conserved = false;
};

/**
 * A 3x3 all-managed cluster with Poisson-ish background RegRead
 * traffic at the given injection rate (packets per node per cycle).
 */
Result
runWithBackground(double injectionRate, std::uint64_t seed)
{
    sim::EventQueue eq;
    noc::Topology topo(3, 3, false);
    noc::Network net(eq, topo);
    std::vector<std::unique_ptr<blitzcoin::BlitzCoinUnit>> units;
    std::vector<bool> managed(topo.size(), true);
    auto hoods = coin::managedNeighborhoods(topo, managed);

    std::uint64_t negatives = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        units.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq, net, id, blitzcoin::UnitConfig{}, hoods[id],
            seed * 100 + id));
        net.setHandler(id, [&units, id](const noc::Packet &pkt) {
            units[id]->handlePacket(pkt);
        });
        units.back()->onCoinsChanged = [&negatives](coin::Coins has) {
            if (has < 0)
                ++negatives;
        };
    }

    // Background register traffic on the service plane.
    auto rng = std::make_shared<sim::Rng>(seed);
    auto injecting = std::make_shared<bool>(true);
    auto inject = std::make_shared<std::function<void()>>();
    *inject = [&eq, &net, &topo, rng, inject, injecting,
               injectionRate] {
        if (!*injecting)
            return;
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            // Rates above 1.0 inject multiple packets per node per
            // cycle, driving shared links past saturation.
            double want = injectionRate;
            while (want >= 1.0 || rng->chance(want)) {
                noc::Packet p;
                p.src = id;
                p.dst = static_cast<noc::NodeId>(
                    rng->below(topo.size()));
                p.plane = noc::Plane::Service;
                p.type = noc::MsgType::Generic;
                net.send(p);
                want -= 1.0;
                if (want <= 0.0)
                    break;
            }
        }
        eq.scheduleIn(1, *inject);
    };
    if (injectionRate > 0.0)
        eq.scheduleIn(1, *inject);

    // Converged start, then one reallocation: tile 0 takes over.
    const coin::Coins maxes[9] = {16, 16, 16, 16, 16, 16, 16, 16, 16};
    for (std::size_t i = 0; i < 9; ++i) {
        units[i]->setMax(maxes[i]);
        units[i]->setHas(8);
        units[i]->start();
    }
    eq.runUntil(20000);
    sim::Tick t0 = eq.now();
    units[0]->setMax(63); // demand spike: coins must flow to tile 0

    // Settle probe: proportional within 1 coin mean.
    auto error = [&units] {
        coin::Coins th = 0, tm = 0;
        for (auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / 9.0;
    };
    Result out;
    sim::Tick settle = 0;
    while (eq.now() < t0 + 200'000) {
        eq.runUntil(eq.now() + 50);
        if (error() < 1.0) {
            settle = eq.now() - t0;
            break;
        }
    }
    // settle == 0 means the probe never crossed: report the horizon.
    if (settle == 0)
        settle = 200'000;
    out.settleUs = sim::ticksToUs(settle);
    out.negatives = negatives;
    // Conservation check must quiesce first: a CoinUpdate in flight
    // means one side of a delta has landed and the other has not,
    // and saturated queues need time to flush once injection stops.
    *injecting = false;
    for (auto &u : units)
        u->stop();
    eq.runUntil(eq.now() + 400'000);
    coin::Coins total = 0;
    for (auto &u : units)
        total += u->has();
    out.conserved = total == 72;
    return out;
}

} // namespace

int
main()
{
    bench::banner("NoC contention (extension)",
                  "coin exchange vs background service-plane traffic");

    std::printf("\n%12s | %12s | %12s | %s\n", "inject rate",
                "settle (us)", "neg. events", "conserved");
    for (double rate : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        sim::Summary settle;
        std::uint64_t negatives = 0;
        bool conserved = true;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            Result r = runWithBackground(rate, seed);
            settle.add(r.settleUs);
            negatives += r.negatives;
            conserved = conserved && r.conserved;
        }
        std::printf("%12.2f | %12.3f | %12llu | %s\n", rate,
                    settle.mean(),
                    static_cast<unsigned long long>(negatives),
                    conserved ? "yes" : "NO");
    }
    std::printf("\nShape check: settle time degrades gracefully with "
                "congestion; negative transients (absorbed by the "
                "hardware sign bit) appear under load; coins are "
                "conserved at every rate.\n");
    return 0;
}
