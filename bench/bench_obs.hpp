/**
 * @file
 * Observability CLI plumbing shared by the benches and examples.
 *
 * `--metrics[=path]` and `--trace[=path]` opt a binary into the
 * observability plane: metric snapshots land in a CSV (merged across
 * sweep replications in replication order, so the file is
 * bit-identical at any thread count) and the event timeline lands in a
 * Chrome/Perfetto trace.json with one process lane per replication.
 * `--health[=path]` additionally writes the run's HealthReport — the
 * deterministic outcome counters plus sweep-pool utilization — as one
 * JSON document blitz-top renders. Without the flags nothing is
 * attached and the runs stay on the null-hook fast path — the flags
 * must never change any printed number.
 */

#ifndef BLITZ_BENCH_OBS_HPP
#define BLITZ_BENCH_OBS_HPP

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "sweep/sweep.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace blitz::bench {

/** Parsed --metrics/--trace/--health options. */
struct ObsOptions
{
    bool metrics = false;
    bool trace = false;
    bool health = false;
    std::string metricsPath = "metrics.csv";
    std::string tracePath = "trace.json";
    std::string healthPath = "health.json";

    bool any() const { return metrics || trace || health; }
};

/** Scan argv for --metrics[=path] / --trace[=path] / --health[=path]. */
inline ObsOptions
parseObsFlags(int argc, char **argv)
{
    ObsOptions o;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--metrics", 9) == 0) {
            o.metrics = true;
            if (argv[i][9] == '=')
                o.metricsPath = argv[i] + 10;
        } else if (std::strncmp(argv[i], "--trace", 7) == 0) {
            o.trace = true;
            if (argv[i][7] == '=')
                o.tracePath = argv[i] + 8;
        } else if (std::strncmp(argv[i], "--health", 8) == 0) {
            o.health = true;
            if (argv[i][8] == '=')
                o.healthPath = argv[i] + 9;
        }
    }
    return o;
}

/** Insert @p tag before the path's extension: a.csv -> a-4x4.csv. */
inline std::string
tagPath(const std::string &path, const std::string &tag)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || path.find('/', dot) != std::string::npos)
        return path + "-" + tag;
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

inline void
writeMetricsCsv(const trace::MetricsSeries &series,
                const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    series.writeCsv(os);
    std::printf("wrote %s (%zu snapshots)\n", path.c_str(),
                series.snapshots().size());
}

inline void
writeTraceJson(const trace::Tracer &tracer, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    tracer.writeJson(os);
    std::printf("wrote %s (%zu events%s)\n", path.c_str(),
                tracer.eventCount(),
                tracer.droppedEvents() ? ", overflow dropped some"
                                       : "");
}

inline void
writeHealthJson(const trace::HealthReport &report,
                const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    report.writeJson(os);
    std::printf("wrote %s (%zu deterministic, %zu wallclock keys)\n",
                path.c_str(), report.deterministic().size(),
                report.wallclock().size());
}

/**
 * Sweep-pool utilization into @p report's *wallclock* section. All of
 * it — including the thread count — stays out of the deterministic
 * section on purpose: the deterministic section must be identical at
 * any --threads, and the pool shape is part of the wall-clock story.
 */
inline void
fillSweepHealth(trace::HealthReport &report,
                const sweep::PoolStats &stats)
{
    report.bumpWall("sweep.threads",
                    static_cast<double>(stats.threads));
    report.bumpWall("sweep.replications",
                    static_cast<double>(stats.replications));
    report.bumpWall("sweep.wall_s", stats.wallSeconds);
    report.bumpWall("sweep.busy_s", stats.busySeconds());
    report.setWall("sweep.utilization", stats.utilization());
}

} // namespace blitz::bench

#endif // BLITZ_BENCH_OBS_HPP
