/**
 * @file
 * Observability CLI plumbing shared by the benches and examples.
 *
 * `--metrics[=path]` and `--trace[=path]` opt a binary into the
 * observability plane: metric snapshots land in a CSV (merged across
 * sweep replications in replication order, so the file is
 * bit-identical at any thread count) and the event timeline lands in a
 * Chrome/Perfetto trace.json with one process lane per replication.
 * Without the flags nothing is attached and the runs stay on the
 * null-hook fast path — the flags must never change any printed
 * number.
 */

#ifndef BLITZ_BENCH_OBS_HPP
#define BLITZ_BENCH_OBS_HPP

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace blitz::bench {

/** Parsed --metrics/--trace options. */
struct ObsOptions
{
    bool metrics = false;
    bool trace = false;
    std::string metricsPath = "metrics.csv";
    std::string tracePath = "trace.json";

    bool any() const { return metrics || trace; }
};

/** Scan argv for --metrics[=path] / --trace[=path]. */
inline ObsOptions
parseObsFlags(int argc, char **argv)
{
    ObsOptions o;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--metrics", 9) == 0) {
            o.metrics = true;
            if (argv[i][9] == '=')
                o.metricsPath = argv[i] + 10;
        } else if (std::strncmp(argv[i], "--trace", 7) == 0) {
            o.trace = true;
            if (argv[i][7] == '=')
                o.tracePath = argv[i] + 8;
        }
    }
    return o;
}

/** Insert @p tag before the path's extension: a.csv -> a-4x4.csv. */
inline std::string
tagPath(const std::string &path, const std::string &tag)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || path.find('/', dot) != std::string::npos)
        return path + "-" + tag;
    return path.substr(0, dot) + "-" + tag + path.substr(dot);
}

inline void
writeMetricsCsv(const trace::MetricsSeries &series,
                const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    series.writeCsv(os);
    std::printf("wrote %s (%zu snapshots)\n", path.c_str(),
                series.snapshots().size());
}

inline void
writeTraceJson(const trace::Tracer &tracer, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    tracer.writeJson(os);
    std::printf("wrote %s (%zu events%s)\n", path.c_str(),
                tracer.eventCount(),
                tracer.droppedEvents() ? ", overflow dropped some"
                                       : "");
}

} // namespace blitz::bench

#endif // BLITZ_BENCH_OBS_HPP
