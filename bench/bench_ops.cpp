/**
 * @file
 * Micro-benchmarks (google-benchmark) of the core operations: the
 * pairwise exchange arithmetic, the 5-tile group split, a full
 * behavioral convergence run, and the routed-NoC packet path. These
 * bound the simulator's own cost, not the modeled hardware's.
 *
 * Invoked with --perf-json[=path] the binary instead runs the
 * perf-regression harness: steady-state event-kernel and NoC
 * throughput for 4x4 and 6x6 configs, written as machine-readable
 * BENCH_ops.json next to a human-readable table. The `bench-perf`
 * CMake target wires this up; kBaseline below holds the numbers
 * recorded at the PR 3 seed so every future run reports its speedup
 * against the same reference.
 *
 * --perf-check[=path] additionally gates the run: before overwriting
 * the JSON, the fresh measurement is compared against the recorded
 * file and the process exits nonzero if any config's throughput fell
 * more than 3% — the observability plane's hook sites are compiled
 * into these paths with tracing disabled, so this is the "tracing off
 * is free" acceptance check. The same mode runs a paired in-process
 * gate for recording ON: the noc_steady_6x6 config is re-measured
 * with a ring-mode flight recorder attached, and must stay within 10%
 * of its unrecorded twin from the same invocation (self-referencing,
 * so the gate needs no new key in the recorded JSON). The bound is a
 * ratio of a fixed absolute cost (~4-5 ns/packet of journaling) to an
 * ever-faster baseline, so it was widened from 5% when the mega-mesh
 * hot-path work cut the unrecorded packet cost roughly in half — the
 * absolute overhead shrank in the same change.
 *
 * A second paired gate covers the introspection plane: the
 * noc_shard_16x16_s4 config is re-measured with a SuperstepProfiler
 * attached (per-phase timing + mailbox matrix on every superstep) and
 * must stay within 3% of its detached twin from the same invocation.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coin/engine.hpp"
#include "coin/exchange.hpp"
#include "noc/network.hpp"
#include "power/rail.hpp"
#include "power/thermal.hpp"
#include "record/recorder.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "soc/throttler.hpp"
#include "trace/prof.hpp"

using namespace blitz;

namespace {

void
BM_PairwiseDelta(benchmark::State &state)
{
    sim::Rng rng(1);
    std::vector<coin::TileCoins> tiles(1024);
    for (auto &t : tiles)
        t = coin::TileCoins{rng.range(0, 63), rng.range(0, 63)};
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(coin::pairwiseDelta(
            tiles[i % 1024], tiles[(i + 7) % 1024]));
        ++i;
    }
}
BENCHMARK(BM_PairwiseDelta);

void
BM_GroupSplit(benchmark::State &state)
{
    sim::Rng rng(2);
    std::vector<coin::TileCoins> group(5);
    for (auto &t : group)
        t = coin::TileCoins{rng.range(0, 63), rng.range(1, 63)};
    for (auto _ : state)
        benchmark::DoNotOptimize(coin::groupSplit(group));
}
BENCHMARK(BM_GroupSplit);

void
BM_MeshConvergence(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    coin::EngineConfig cfg;
    cfg.wrap = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        coin::MeshSim sim(noc::Topology::square(d), cfg, seed++);
        for (std::size_t i = 0; i < sim.ledger().size(); ++i)
            sim.setMax(i, 16);
        sim.randomizeHas(static_cast<coin::Coins>(8 * d * d));
        auto r = sim.runUntilConverged(1.5, 10'000'000);
        benchmark::DoNotOptimize(r.time);
    }
    state.SetLabel("tiles=" + std::to_string(d * d));
}
BENCHMARK(BM_MeshConvergence)->Arg(4)->Arg(10)->Arg(20);

void
BM_NocPacketDelivery(benchmark::State &state)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(8, 8, false));
    std::uint64_t delivered = 0;
    for (noc::NodeId id = 0; id < 64; ++id) {
        net.setHandler(id, [&delivered](const noc::Packet &) {
            ++delivered;
        });
    }
    sim::Rng rng(3);
    for (auto _ : state) {
        noc::Packet p;
        p.src = static_cast<noc::NodeId>(rng.below(64));
        p.dst = static_cast<noc::NodeId>(rng.below(64));
        net.send(p);
        eq.runUntil();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NocPacketDelivery);

// ------------------------------------------------ perf-regression harness

namespace perf {

struct Result
{
    const char *name;
    std::uint64_t events = 0;
    std::uint64_t packets = 0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds
                             : 0.0;
    }

    double
    packetsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(packets) / seconds
                             : 0.0;
    }

    double
    nsPerEvent() const
    {
        return events ? seconds * 1e9 / static_cast<double>(events)
                      : 0.0;
    }
};

/**
 * Reference throughput recorded at the PR 3 seed kernel
 * (std::function entries in a binary priority_queue, one lambda per
 * NoC hop), RelWithDebInfo, this repo's CI container. Kernel configs
 * compare events/sec; NoC configs compare packets/sec, since the
 * flattened fast path deliberately spends fewer events per packet.
 */
struct Baseline
{
    const char *name;
    double eventsPerSec;
    double packetsPerSec;
};

constexpr Baseline kBaseline[] = {
    {"event_kernel_4x4", 7.80e6, 0.0},
    {"event_kernel_6x6", 6.83e6, 0.0},
    {"noc_steady_4x4", 5.69e6, 1.26e6},
    {"noc_steady_6x6", 4.86e6, 0.83e6},
};

const Baseline *
baselineFor(const char *name)
{
    for (const Baseline &b : kBaseline) {
        if (std::strcmp(b.name, name) == 0)
            return &b;
    }
    return nullptr;
}

/**
 * Self-rescheduling periodic timer — the dominant event shape of the
 * SoC model (controller ticks, stat sampling). A fresh copy of the
 * functor is captured per event, so the kernel's per-event storage
 * cost is on the measured path.
 */
struct TimerEvent
{
    sim::EventQueue *eq;
    std::uint64_t *fired;
    sim::Tick period;

    void
    operator()() const
    {
        ++*fired;
        eq->scheduleIn(period, *this);
    }
};

/**
 * Periodic traffic source: every @p period ticks, send one packet to
 * a xorshift32-chosen destination. Deterministic and self-contained,
 * so the measurement is identical run to run.
 */
struct SenderEvent
{
    noc::Network *net;
    sim::EventQueue *eq;
    noc::NodeId src;
    std::uint32_t rngState;
    std::uint32_t nodes;
    sim::Tick period;

    void
    operator()() const
    {
        std::uint32_t x = rngState;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        noc::Packet p;
        p.src = src;
        p.dst = static_cast<noc::NodeId>(x % nodes);
        net->send(p);
        SenderEvent next = *this;
        next.rngState = x;
        eq->scheduleIn(period, next);
    }
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Steady-state event-kernel throughput on a d*d timer population.
 * Mega-mesh configs pass a larger @p periodBase so a 10^6-timer
 * population settles at a realistic events-per-tick density instead
 * of multiplying the warmup cost by the node count.
 */
Result
perfEventKernel(const char *name, int d, std::uint64_t targetEvents,
                sim::Tick periodBase = 2, sim::Tick periodSpread = 7,
                sim::Tick warmTicks = 4096)
{
    sim::EventQueue eq;
    const std::int64_t n = static_cast<std::int64_t>(d) * d;
    std::uint64_t fired = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const auto period = static_cast<sim::Tick>(
            periodBase + (static_cast<sim::Tick>(i) % periodSpread));
        eq.schedule(1 + (static_cast<sim::Tick>(i) % period),
                    TimerEvent{&eq, &fired, period});
    }
    eq.runUntil(warmTicks); // warm up: reach steady state

    Result best{name};
    for (int rep = 0; rep < 3; ++rep) {
        std::uint64_t executed = 0;
        const auto t0 = std::chrono::steady_clock::now();
        while (executed < targetEvents)
            executed += eq.runUntil(eq.now() + 8192);
        const double secs = secondsSince(t0);
        if (best.seconds == 0.0 || secs / static_cast<double>(executed) <
                                       best.seconds /
                                           static_cast<double>(best.events)) {
            best.events = executed;
            best.seconds = secs;
        }
    }
    return best;
}

/**
 * Steady-state NoC throughput: every node injects one packet every 32
 * ticks to a pseudo-random destination, no fault hook installed — the
 * fault-free path the acceptance criterion targets.
 */
Result
perfNocSteady(const char *name, int d, std::uint64_t targetPackets,
              record::FlightRecorder *rec = nullptr,
              sim::Tick period = 32, noc::NodeId senderStride = 1,
              sim::Tick warmTicks = 4096)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(d, d, false));
    net.setRecorder(rec);
    const auto n = static_cast<std::uint32_t>(d * d);
    std::uint64_t delivered = 0;
    for (noc::NodeId id = 0; id < n; ++id) {
        net.setHandler(id, [&delivered](const noc::Packet &) {
            ++delivered;
        });
    }
    // Mega-mesh configs thin the sender population (stride) and slow
    // the cadence (period): per-packet hop cost is what's measured,
    // and 10^5 sources at a 32-tick period would only multiply warmup.
    for (noc::NodeId id = 0; id < n; id += senderStride) {
        eq.schedule(
            1 + (id % 29),
            SenderEvent{&net, &eq, id, 0x9e3779b9u + id, n, period});
    }
    eq.runUntil(warmTicks);

    Result best{name};
    for (int rep = 0; rep < 3; ++rep) {
        std::uint64_t executed = 0;
        const std::uint64_t packets0 = delivered;
        const auto t0 = std::chrono::steady_clock::now();
        while (delivered - packets0 < targetPackets)
            executed += eq.runUntil(eq.now() + 8192);
        const double secs = secondsSince(t0);
        const std::uint64_t packets = delivered - packets0;
        if (best.seconds == 0.0 ||
            secs / static_cast<double>(packets) <
                best.seconds / static_cast<double>(best.packets)) {
            best.events = executed;
            best.packets = packets;
            best.seconds = secs;
        }
    }
    return best;
}

/**
 * Large-mesh NoC steady state under the BSP-sharded kernel: same
 * traffic shape as perfNocSteady, but the mesh is partitioned into
 * @p shards column bands run bulk-synchronously. Senders are pinned
 * to their node's shard; deliveries execute at the destination's
 * locus, so the per-node sink counters have one writing shard each.
 * With @p profiled the superstep profiler rides along, charging every
 * execute/drain/barrier phase and the mailbox matrix — the attached
 * side of the profiler_overhead gate.
 */
Result
perfNocSharded(const char *name, int d, std::uint32_t shards,
               std::uint64_t targetPackets, bool profiled = false)
{
    sim::EventQueue eq;
    sim::ShardGroup group(
        eq, shards,
        sim::columnBands(static_cast<std::uint32_t>(d),
                         static_cast<std::uint32_t>(d), shards));
    trace::SuperstepProfiler prof;
    if (profiled)
        prof.attach(group);
    noc::Network net(eq, noc::Topology(d, d, false));
    net.enableSharding(group);
    const auto n = static_cast<std::uint32_t>(d * d);
    std::vector<std::uint64_t> sunk(n, 0);
    std::uint64_t *sp = sunk.data();
    for (noc::NodeId id = 0; id < n; ++id)
        net.setHandler(id,
                       [sp, id](const noc::Packet &) { ++sp[id]; });
    for (noc::NodeId id = 0; id < n; ++id) {
        eq.scheduleAtNode(
            id, 1 + (id % 29),
            SenderEvent{&net, &eq, id, 0x9e3779b9u + id, n, 32});
    }
    eq.runUntil(4096);

    Result best{name};
    for (int rep = 0; rep < 3; ++rep) {
        std::uint64_t executed = 0;
        const std::uint64_t packets0 = net.packetsDelivered();
        const auto t0 = std::chrono::steady_clock::now();
        while (net.packetsDelivered() - packets0 < targetPackets)
            executed += eq.runUntil(eq.now() + 8192);
        const double secs = secondsSince(t0);
        const std::uint64_t packets =
            net.packetsDelivered() - packets0;
        if (best.seconds == 0.0 ||
            secs / static_cast<double>(packets) <
                best.seconds / static_cast<double>(best.packets)) {
            best.events = executed;
            best.packets = packets;
            best.seconds = secs;
        }
    }
    return best;
}

/**
 * Steady-state physics-plane step cost: RC integration with a chain
 * of couplings, rail-current reconstruction with the hysteresis
 * latch, and arbiter engage/release churn over a 36-tile population —
 * the per-sample work the plane adds inside the event kernel. The
 * square-wave drive cycles both the thermal trip band and the rail
 * latch so the mutation paths stay on the measured path.
 */
Result
perfPhysicsStep(const char *name, std::uint64_t targetSteps)
{
    constexpr std::size_t kTiles = 36;
    power::ThermalConfig tc;
    tc.node.cJPerC = 1e-6;
    power::ThermalModel thermal(kTiles, tc);
    for (std::uint32_t i = 0; i + 1 < kTiles; ++i)
        thermal.addCoupling(i, i + 1, 1e-3);
    power::RailSet rails(kTiles);
    power::RailConfig rc;
    rc.limitMa = 900.0;
    rails.addRail(rc);
    for (std::size_t t = 0; t < kTiles; ++t)
        rails.assignTile(0, t);
    soc::ThrottleArbiter arb(kTiles);

    double powerMw[kTiles];
    std::uint64_t stepNo = 0;
    auto one = [&] {
        const bool hot = (stepNo / 256) % 2 == 0;
        for (std::size_t t = 0; t < kTiles; ++t)
            powerMw[t] = hot ? 40.0 : 5.0;
        thermal.step(500.0, powerMw);
        rails.update(powerMw);
        for (std::size_t t = 0; t < kTiles; ++t) {
            if (thermal.temperatureC(t) >= 48.0)
                arb.set(t, soc::ThrottleSource::Thermal, 400.0);
            else if (thermal.temperatureC(t) <= 47.5)
                arb.clear(t, soc::ThrottleSource::Thermal);
        }
        if (rails.edge(0) == power::RailEdge::Engaged) {
            for (std::size_t t = 0; t < kTiles; ++t)
                arb.set(t, soc::ThrottleSource::Rail, 300.0);
        } else if (rails.edge(0) == power::RailEdge::Released) {
            for (std::size_t t = 0; t < kTiles; ++t)
                arb.clear(t, soc::ThrottleSource::Rail);
        }
        ++stepNo;
    };
    for (int i = 0; i < 4096; ++i)
        one();

    Result best{name};
    for (int rep = 0; rep < 3; ++rep) {
        const std::uint64_t steps0 = stepNo;
        const auto t0 = std::chrono::steady_clock::now();
        while (stepNo - steps0 < targetSteps)
            one();
        const double secs = secondsSince(t0);
        const std::uint64_t steps = stepNo - steps0;
        if (best.seconds == 0.0 ||
            secs / static_cast<double>(steps) <
                best.seconds / static_cast<double>(best.events)) {
            best.events = steps;
            best.seconds = secs;
        }
    }
    return best;
}

/**
 * Recorded throughput for @p name from a previous BENCH_ops.json:
 * events_per_sec for kernel configs, packets_per_sec for NoC configs.
 * Returns 0 when the file or the config is missing (nothing to gate
 * against). The parser only needs to read the format written below.
 */
double
recordedThroughput(const char *jsonPath, const char *name, bool noc)
{
    std::FILE *f = std::fopen(jsonPath, "r");
    if (!f)
        return 0.0;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);

    const std::string anchor = "\"name\": \"" + std::string(name) + "\"";
    const std::size_t at = text.find(anchor);
    if (at == std::string::npos)
        return 0.0;
    const char *key =
        noc ? "\"packets_per_sec\": " : "\"events_per_sec\": ";
    const std::size_t k = text.find(key, at);
    // Stay within this config's object.
    const std::size_t end = text.find('}', at);
    if (k == std::string::npos || (end != std::string::npos && k > end))
        return 0.0;
    return std::atof(text.c_str() + k + std::strlen(key));
}

int
perfMain(const char *jsonPath, const char *checkPath)
{
    // Ring mode bounds memory during the long measurement while still
    // exercising the real per-delivery journaling path.
    record::RecorderConfig ringCfg;
    ringCfg.chunkRecords = 1 << 14;
    ringCfg.maxChunks = 8;
    record::FlightRecorder ringRec(ringCfg);

    const Result results[] = {
        perfEventKernel("event_kernel_4x4", 4, 4'000'000),
        perfEventKernel("event_kernel_6x6", 6, 4'000'000),
        perfNocSteady("noc_steady_4x4", 4, 200'000),
        perfNocSteady("noc_steady_6x6", 6, 200'000),
        perfNocSteady("noc_steady_6x6_recorded", 6, 200'000, &ringRec),
        // Large-mesh shard scaling: the same 16x16 workload at 1 and 4
        // shards. s1 takes the single-active-shard inline path — fully
        // deterministic and single-threaded, so it IS gated like the
        // unsharded configs. s4 runs real worker threads, so its
        // wall-clock (and the s4-vs-s1 ratio printed below) is only
        // meaningful on a machine with >= 4 idle cores — recorded for
        // inspection, never gated.
        perfNocSharded("noc_shard_16x16_s1", 16, 1, 200'000),
        perfNocSharded("noc_shard_16x16_s4", 16, 4, 200'000),
        // Same workload with the superstep profiler attached; recorded
        // for inspection and compared against its detached twin by the
        // paired profiler_overhead gate below, never gated on its own
        // wall-clock (worker threads contend with the host).
        perfNocSharded("noc_shard_16x16_s4_prof", 16, 4, 200'000,
                       true),
        // Mega-mesh hot path (ISSUE 8): per-packet hop cost at 10^4
        // and 10^5 nodes, and raw kernel throughput at 10^6 timers.
        // Slower cadences / thinned senders keep the wall-clock
        // bounded; the measured quantity is still the steady-state
        // per-event cost of the same hot path the 6x6 configs hit.
        perfNocSteady("noc_steady_100x100", 100, 100'000, nullptr,
                      512, 1, 2048),
        perfNocSteady("noc_steady_316x316", 316, 100'000, nullptr,
                      512, 16, 2048),
        perfEventKernel("event_kernel_1000x1000", 1000, 4'000'000,
                        512, 257, 1024),
        // Physics plane (ISSUE 9): per-step cost of the thermal
        // integrator + rail latch + throttle arbiter at SoC scale.
        // "Events" are plane steps; gated on events_per_sec.
        perfPhysicsStep("physics_steady_36", 2'000'000),
    };

    double shardS1 = 0.0, shardS4 = 0.0, shardS4Prof = 0.0;
    for (const Result &r : results) {
        if (std::strcmp(r.name, "noc_shard_16x16_s1") == 0)
            shardS1 = r.packetsPerSec();
        if (std::strcmp(r.name, "noc_shard_16x16_s4") == 0)
            shardS4 = r.packetsPerSec();
        if (std::strcmp(r.name, "noc_shard_16x16_s4_prof") == 0)
            shardS4Prof = r.packetsPerSec();
    }
    if (shardS1 > 0.0) {
        std::printf("shard-scaling     noc_shard_16x16 s4/s1 = %.2fx "
                    "(threads contend with the host; see comment)\n",
                    shardS4 / shardS1);
    }

    // Gate before overwriting: each config's throughput must stay
    // within 3% of the recorded run. Failures are reported by NAME so
    // a CI log (or a human) can see which row regressed without
    // diffing the JSON.
    std::string regressed;
    auto noteRegression = [&regressed](const char *name) {
        if (!regressed.empty())
            regressed += ", ";
        regressed += name;
    };
    if (checkPath) {
        // Paired overhead gate: recording ON vs OFF, both measured
        // this invocation, so the bound holds on any machine without
        // a recorded baseline for the new config.
        const double off = results[3].packetsPerSec();
        const double on = results[4].packetsPerSec();
        if (off > 0.0) {
            const double ratio = on / off;
            const bool bad = ratio < 0.90;
            std::printf("perf-check %-18s %12.3e vs %12.3e  %+.1f%%%s\n",
                        "recording_overhead", on, off,
                        (ratio - 1.0) * 100.0,
                        bad ? "  REGRESSION (>10% overhead)" : "");
            if (bad)
                noteRegression("recording_overhead");
        }
        // Paired profiler gate: the superstep profiler charges clocks
        // and bumps counters on every superstep, and the introspection
        // plane's budget is 3% on the sharded hot path. Attached and
        // detached twins come from the same invocation, so the bound
        // holds on any machine without a recorded baseline.
        if (shardS4 > 0.0) {
            const double ratio = shardS4Prof / shardS4;
            const bool bad = ratio < 0.97;
            std::printf("perf-check %-18s %12.3e vs %12.3e  %+.1f%%%s\n",
                        "profiler_overhead", shardS4Prof, shardS4,
                        (ratio - 1.0) * 100.0,
                        bad ? "  REGRESSION (>3% overhead)" : "");
            if (bad)
                noteRegression("profiler_overhead");
        }
        for (const Result &r : results) {
            // Multi-threaded shard entries (s2/s4/...) measure
            // thread-level parallelism; their wall-clock depends on
            // host core count and load, so they are recorded for
            // inspection but never gated. The single-shard row runs
            // inline on one thread and is gated like the rest.
            if (std::strncmp(r.name, "noc_shard_", 10) == 0 &&
                std::strcmp(r.name + std::strlen(r.name) - 3, "_s1") !=
                    0)
                continue;
            const bool noc = r.packets > 0;
            const double recorded =
                recordedThroughput(checkPath, r.name, noc);
            if (recorded <= 0.0) {
                std::printf("perf-check %-18s no recorded baseline\n",
                            r.name);
                continue;
            }
            const double cur =
                noc ? r.packetsPerSec() : r.eventsPerSec();
            const double ratio = cur / recorded;
            // The single-shard inline path shows ~5% run-to-run
            // variance (drain-time run-merging is sensitive to bucket
            // shape), so its gate is wider than the 3% default to
            // stay meaningful without flapping.
            const double floor =
                std::strncmp(r.name, "noc_shard_", 10) == 0 ? 0.92
                                                            : 0.97;
            const bool bad = ratio < floor;
            std::printf("perf-check %-18s %12.3e vs %12.3e  %+.1f%%%s\n",
                        r.name, cur, recorded, (ratio - 1.0) * 100.0,
                        bad ? "  REGRESSION" : "");
            if (bad)
                noteRegression(r.name);
        }
    }

    std::printf("%-18s %12s %10s %12s %9s\n", "config", "events/sec",
                "ns/event", "packets/sec", "speedup");
    std::FILE *js = nullptr;
    if (jsonPath) {
        js = std::fopen(jsonPath, "w");
        if (!js) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         jsonPath);
            return 1;
        }
        std::fprintf(js, "{\n  \"bench\": \"bench_ops\",\n"
                         "  \"configs\": [\n");
    }
    for (std::size_t i = 0; i < std::size(results); ++i) {
        const Result &r = results[i];
        const Baseline *b = baselineFor(r.name);
        const bool noc = r.packets > 0;
        // Kernel configs compare events/sec; NoC configs compare
        // packets/sec (the flattened path spends fewer events/packet).
        const double base =
            b ? (noc ? b->packetsPerSec : b->eventsPerSec) : 0.0;
        const double cur = noc ? r.packetsPerSec() : r.eventsPerSec();
        const double speedup = base > 0.0 ? cur / base : 0.0;

        std::printf("%-18s %12.3e %10.1f %12.3e %8.2fx\n", r.name,
                    r.eventsPerSec(), r.nsPerEvent(), r.packetsPerSec(),
                    speedup);
        if (!js)
            continue;
        std::fprintf(
            js,
            "    {\"name\": \"%s\", \"events\": %llu, "
            "\"packets\": %llu, \"seconds\": %.6f,\n"
            "     \"events_per_sec\": %.1f, \"ns_per_event\": %.3f, "
            "\"packets_per_sec\": %.1f,\n"
            "     \"baseline_events_per_sec\": %.1f, "
            "\"baseline_packets_per_sec\": %.1f, "
            "\"speedup_vs_baseline\": %.3f}%s\n",
            r.name, static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.packets), r.seconds,
            r.eventsPerSec(), r.nsPerEvent(), r.packetsPerSec(),
            b ? b->eventsPerSec : 0.0, b ? b->packetsPerSec : 0.0,
            speedup, i + 1 < std::size(results) ? "," : "");
    }
    if (js) {
        std::fprintf(js, "  ]\n}\n");
        std::fclose(js);
        std::printf("\nwrote %s\n", jsonPath);
    }
    if (!regressed.empty()) {
        std::fprintf(stderr,
                     "perf-check: regressed more than 3%% vs %s: %s\n",
                     checkPath, regressed.c_str());
        return 1;
    }
    return 0;
}

} // namespace perf

} // namespace

int
main(int argc, char **argv)
{
    const char *jsonPath = nullptr;
    const char *checkPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--perf-check", 12) == 0) {
            checkPath = argv[i][12] == '=' ? argv[i] + 13
                                           : "BENCH_ops.json";
        } else if (std::strncmp(argv[i], "--perf-json", 11) == 0) {
            jsonPath = argv[i][11] == '=' ? argv[i] + 12
                                          : "BENCH_ops.json";
        }
    }
    // Check-only runs (no --perf-json) leave the recorded file
    // untouched, so a failing gate can be re-run against the same
    // baseline.
    if (jsonPath || checkPath)
        return perf::perfMain(jsonPath, checkPath);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
