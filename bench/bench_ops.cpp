/**
 * @file
 * Micro-benchmarks (google-benchmark) of the core operations: the
 * pairwise exchange arithmetic, the 5-tile group split, a full
 * behavioral convergence run, and the routed-NoC packet path. These
 * bound the simulator's own cost, not the modeled hardware's.
 */

#include <benchmark/benchmark.h>

#include "coin/engine.hpp"
#include "coin/exchange.hpp"
#include "noc/network.hpp"
#include "sim/rng.hpp"

using namespace blitz;

namespace {

void
BM_PairwiseDelta(benchmark::State &state)
{
    sim::Rng rng(1);
    std::vector<coin::TileCoins> tiles(1024);
    for (auto &t : tiles)
        t = coin::TileCoins{rng.range(0, 63), rng.range(0, 63)};
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(coin::pairwiseDelta(
            tiles[i % 1024], tiles[(i + 7) % 1024]));
        ++i;
    }
}
BENCHMARK(BM_PairwiseDelta);

void
BM_GroupSplit(benchmark::State &state)
{
    sim::Rng rng(2);
    std::vector<coin::TileCoins> group(5);
    for (auto &t : group)
        t = coin::TileCoins{rng.range(0, 63), rng.range(1, 63)};
    for (auto _ : state)
        benchmark::DoNotOptimize(coin::groupSplit(group));
}
BENCHMARK(BM_GroupSplit);

void
BM_MeshConvergence(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    coin::EngineConfig cfg;
    cfg.wrap = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        coin::MeshSim sim(noc::Topology::square(d), cfg, seed++);
        for (std::size_t i = 0; i < sim.ledger().size(); ++i)
            sim.setMax(i, 16);
        sim.randomizeHas(static_cast<coin::Coins>(8 * d * d));
        auto r = sim.runUntilConverged(1.5, 10'000'000);
        benchmark::DoNotOptimize(r.time);
    }
    state.SetLabel("tiles=" + std::to_string(d * d));
}
BENCHMARK(BM_MeshConvergence)->Arg(4)->Arg(10)->Arg(20);

void
BM_NocPacketDelivery(benchmark::State &state)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(8, 8, false));
    std::uint64_t delivered = 0;
    for (noc::NodeId id = 0; id < 64; ++id) {
        net.setHandler(id, [&delivered](const noc::Packet &) {
            ++delivered;
        });
    }
    sim::Rng rng(3);
    for (auto _ : state) {
        noc::Packet p;
        p.src = static_cast<noc::NodeId>(rng.below(64));
        p.dst = static_cast<noc::NodeId>(rng.below(64));
        net.send(p);
        eq.runUntil();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_NocPacketDelivery);

} // namespace

BENCHMARK_MAIN();
