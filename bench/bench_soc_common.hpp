/**
 * @file
 * Shared helpers for the SoC-level benches (Figs. 16-20).
 */

#ifndef BLITZ_BENCH_SOC_COMMON_HPP
#define BLITZ_BENCH_SOC_COMMON_HPP

#include <array>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

namespace blitz::bench {

/** Build a PM config for a strategy at a budget (RP allocation). */
inline soc::PmConfig
pm(soc::PmKind kind, double budgetMw,
   coin::AllocPolicy alloc = coin::AllocPolicy::RelativeProportional)
{
    soc::PmConfig cfg;
    cfg.kind = kind;
    cfg.alloc = alloc;
    cfg.budgetMw = budgetMw;
    return cfg;
}

/** Run one workload on a fresh SoC instance. */
inline soc::SocRunStats
runSoc(const soc::SocConfig &config, const soc::PmConfig &pmCfg,
       const workload::Dag &dag, std::uint64_t seed = 11)
{
    soc::Soc s(config, pmCfg, seed);
    return s.run(dag);
}

/** Print one strategy-comparison row. */
inline void
row(const char *label, const soc::SocRunStats &st, double baselineUs)
{
    std::printf("  %-7s %10.1f us %s %9.3f us %9.1f mW %7.1f%% %s\n",
                label, st.execTimeUs(),
                baselineUs > 0.0
                    ? (std::string("(x") +
                       std::to_string(baselineUs / st.execTimeUs())
                           .substr(0, 4) +
                       ")")
                          .c_str()
                    : "      ",
                st.meanResponseUs(), st.trace->averageTotalMw(),
                st.trace->budgetUtilization() * 100.0,
                st.completed ? "" : "INCOMPLETE");
}

/** The three adaptive strategies compared throughout Section VI. */
inline const std::array<soc::PmKind, 3> adaptiveKinds = {
    soc::PmKind::BlitzCoin, soc::PmKind::BlitzCoinCentral,
    soc::PmKind::CentralRoundRobin};

} // namespace blitz::bench

#endif // BLITZ_BENCH_SOC_COMMON_HPP
