/**
 * @file
 * Table I: BlitzCoin compared to implemented state-of-the-art designs.
 *
 * The BC / BC-C / C-RR / TS rows are *measured* on this repo's
 * simulator at N = 13 (the 4x4 vision SoC), mirroring the paper's
 * "response time @ N=13" column; the literature rows reproduce the
 * paper's citations verbatim for context.
 */

#include "baselines/tokensmart.hpp"
#include "baselines/tokensmart_hw.hpp"
#include "bench_soc_common.hpp"

using namespace blitz;

namespace {

/** Min/max response over the Fig. 18 configurations at N = 13. */
std::pair<double, double>
responseRange(soc::PmKind kind)
{
    double lo = 1e30, hi = 0.0;
    struct Case
    {
        bool dependent;
        double budget;
    };
    for (Case c : {Case{false, soc::budgets::vision33Percent},
                   Case{false, soc::budgets::vision66Percent},
                   Case{true, soc::budgets::vision33Percent}}) {
        soc::Soc s(soc::make4x4VisionSoc(), bench::pm(kind, c.budget),
                   13);
        workload::Dag dag = c.dependent
                                ? soc::visionDependent(s.config(), 1)
                                : soc::visionParallel(s.config());
        auto st = s.run(dag);
        lo = std::min(lo, st.meanResponseUs());
        hi = std::max(hi, st.meanResponseUs());
    }
    return {lo, hi};
}

double
tokenSmartResponseUs()
{
    // Packet-accurate ring on a 4x4 mesh with 13 active members (the
    // Table I design point): one tile's task ends, its tokens return
    // to the pool, and the ring redistributes. Response = time until
    // the on-tile distribution matches the new equilibrium.
    sim::Summary t;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        sim::EventQueue eq;
        noc::Network net(eq, noc::Topology(4, 4, false));
        // Per-node processing calibrated the same way as the
        // centralized controllers' firmware cost: the paper's TS row
        // (2.9 us at N=13) implies ~160 cycles of token accounting
        // per visit in its hardware-scaled implementation.
        baselines::TokenSmartHwConfig cfg;
        cfg.nodeCycles = 160;
        baselines::TokenSmartHwRing ring(eq, net, cfg);
        // 13 active tiles (three passive, as on the 4x4 SoC).
        for (std::size_t i = 0; i < 13; ++i) {
            ring.setMax(i, 16);
            ring.setHas(i, 8);
        }
        ring.start();
        eq.runUntil(20000 + seed * 1999); // vary the ring phase
        sim::Tick t0 = eq.now();
        ring.setMax(12, 0); // task end: 8 tokens must redistribute
        while (eq.now() < t0 + 1'000'000) {
            eq.runUntil(eq.now() + 20);
            if (ring.globalError() < 1.0 && ring.has(12) == 0)
                break;
        }
        t.add(sim::ticksToUs(eq.now() - t0));
    }
    return t.mean();
}

} // namespace

int
main()
{
    bench::banner("Table I", "comparison with state-of-the-art designs");

    auto bc = responseRange(soc::PmKind::BlitzCoin);
    auto bcc = responseRange(soc::PmKind::BlitzCoinCentral);
    auto crr = responseRange(soc::PmKind::CentralRoundRobin);
    double ts = tokenSmartResponseUs();

    std::printf("\n%-12s %-10s %-14s %-10s %-7s %-20s %-10s\n",
                "Strategy", "Ref", "Control", "DVFS-dom", "Levels",
                "Response @ N=13", "Scaling");
    std::printf("%-12s %-10s %-14s %-10s %-7d %6.2f-%-5.2f us      "
                "%-10s\n",
                "BlitzCoin", "BC(meas)", "Decentralized", "Hetero", 64,
                bc.first, bc.second, "O(sqrt N)");
    std::printf("%-12s %-10s %-14s %-10s %-7d %6.2f-%-5.2f us      "
                "%-10s\n",
                "", "BC-C(meas)", "Centralized", "Hetero", 64,
                bcc.first, bcc.second, "O(N)");
    std::printf("%-12s %-10s %-14s %-10s %-7d %6.2f-%-5.2f us      "
                "%-10s\n",
                "Round robin", "C-RR(meas)", "Centralized", "Hetero",
                64, crr.first, crr.second, "O(N)");
    std::printf("%-12s %-10s %-14s %-10s %-7d %6.2f us%12s %-10s\n",
                "Fair-greedy", "TS(meas,HW)", "Decentralized",
                "Hetero", 64, ts, "", "O(N)");
    std::printf("\nliterature rows (from the paper, for context):\n");
    std::printf("  [42] centralized, 4 levels, ~1 ms @ N=12\n");
    std::printf("  [43] TokenSmart SW, 4 levels, ~4 ms @ N=12\n");
    std::printf("  [81] price theory, 8 levels, 6.6-11.4 ms @ N=256\n");
    std::printf("  [49] NoC voting, 3 levels, 8.19 us @ N=16, O(1), "
                "no global cap\n");
    std::printf("  [50] power tokens, 2-5 levels, 12.4 ns @ N=16, "
                "O(N), centralized\n");

    std::printf("\npaper's measured column: BC 0.39-0.77 us, "
                "BC-C 3.8-8.0 us, C-RR 3.7-6.4 us, TS 2.9 us.\n");
    return 0;
}
