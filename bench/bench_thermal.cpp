/**
 * @file
 * Physics-plane sweep: thermal-emergency and brownout response with
 * the throttler enforced vs merely observed (DESIGN.md ch.10,
 * EXPERIMENTS.md).
 *
 * Thermal-emergency rows run a 3x3 AV SoC under BlitzCoin with a fast
 * thermal path (tau = 300 us) and a per-tile trip band swept across
 * the budgeted steady-state temperature. Observe rows attach the
 * plane with enforcement off, so the peak junction temperature shows
 * the uncontrolled overshoot; enforce rows arm the arbiter, which
 * must hold the peak near the trip while the workload still
 * completes. Brownout rows put every accelerator on one shared
 * regulator rail and sweep its current limit below the budget's
 * draw; the latch clamps the members and sags their supplies.
 *
 * `leaks` counts trials where the cluster's coin total diverged from
 * the provisioned pool — the throttler clamps frequencies *after* the
 * coin allocation, so any nonzero count is a protocol violation, not
 * a tuning artifact. Output is bit-identical for any
 * BLITZ_SWEEP_THREADS setting (ordered fold over streamSeed-derived
 * trials).
 *
 * `--metrics[=path]` / `--trace[=path]` / `--health[=path]` opt into
 * the observability plane (see bench_obs.hpp); without the flags the
 * printed numbers are byte-identical to a flag-free run.
 */

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_obs.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "soc/throttler.hpp"
#include "sweep/sweep.hpp"
#include "trace/flush_guard.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

/** Aggregate over one scenario's replications. */
struct Row
{
    sim::Percentiles execUs;
    sim::Summary peakC;      ///< hottest junction seen in the run
    sim::Summary engages;    ///< arbiter cap engagements
    sim::Summary railPeakMa; ///< peak current on the shared rail
    int failures = 0;        ///< trials missing completion
    int leaks = 0;           ///< coin-conservation violations

    /// --metrics: per-replication snapshot series, folded in order.
    trace::MetricsSeries metrics;
    /// --trace: (pid, tracer) per replication, absorbed after the fold.
    std::vector<std::pair<std::uint32_t, std::shared_ptr<trace::Tracer>>>
        tracers;
    /// --health: per-replication outcome counters, folded in order.
    trace::HealthReport health;

    void
    merge(Row &&o)
    {
        execUs.merge(o.execUs);
        peakC.merge(o.peakC);
        engages.merge(o.engages);
        railPeakMa.merge(o.railPeakMa);
        failures += o.failures;
        leaks += o.leaks;
        if (!o.metrics.empty())
            metrics.merge(o.metrics);
        for (auto &t : o.tracers)
            tracers.push_back(std::move(t));
        health.absorb(o.health);
    }
};

Row
runTrial(const soc::PhysicsConfig &phys, std::uint64_t seed,
         const bench::ObsOptions &obs, std::uint32_t pid)
{
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = soc::budgets::av30Percent;
    soc::Soc s(soc::make3x3AvSoc(), pm, seed);
    soc::PhysicsPlane plane(phys);
    s.attachPhysics(plane);
    // Registry/tracer must outlive the Soc (samplers read its state
    // until the event queue dies).
    trace::Registry reg;
    std::shared_ptr<trace::Tracer> tracer;
    if (obs.metrics)
        s.attachMetrics(&reg);
    if (obs.trace) {
        tracer = std::make_shared<trace::Tracer>();
        s.attachTrace(tracer.get());
    }

    const auto st = s.run(soc::avParallel(s.config()));

    Row r;
    if (st.completed)
        r.execUs.add(st.execTimeUs());
    else
        ++r.failures;
    r.peakC.add(plane.peakTempC());
    r.engages.add(static_cast<double>(plane.arbiter().engages()));
    r.railPeakMa.add(plane.rails().size() > 0 ? plane.rails().peakMa(0)
                                              : 0.0);
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    if (bc.clusterCoins() != bc.scale().poolCoins)
        ++r.leaks;
    if (obs.metrics)
        r.metrics = reg.takeSeries();
    if (obs.trace)
        r.tracers.emplace_back(pid, std::move(tracer));
    if (obs.health)
        s.fillHealth(r.health);
    return r;
}

Row
runScenario(const soc::PhysicsConfig &phys, int trials,
            std::uint64_t rootSeed, const bench::ObsOptions &obs,
            std::uint32_t pidBase, sweep::PoolStats *stats)
{
    Row acc0;
    acc0.execUs.reserve(static_cast<std::size_t>(trials));
    if (obs.trace)
        acc0.tracers.reserve(static_cast<std::size_t>(trials));
    sweep::SweepOptions opts;
    opts.stats = stats;
    return sweep::runSweepFold<Row>(
        static_cast<std::size_t>(trials), rootSeed,
        [&phys, &obs, pidBase](std::size_t i, std::uint64_t seed) {
            return runTrial(phys, seed, obs,
                            pidBase + static_cast<std::uint32_t>(i));
        },
        [](Row &acc, Row &r, std::size_t) { acc.merge(std::move(r)); },
        std::move(acc0), opts);
}

soc::PhysicsConfig
thermalEmergency(double tripC, bool enforce)
{
    soc::PhysicsConfig phys;
    phys.thermal.node.cJPerC = 1e-6; // tau = 300 us
    phys.trip.tripC = tripC;
    phys.trip.releaseC = tripC - 0.5;
    phys.trip.capFraction = 0.4;
    phys.enforce = enforce;
    return phys;
}

soc::PhysicsConfig
brownout(double limitMa, bool enforce)
{
    soc::PhysicsConfig phys;
    soc::RailSpec spec; // ~141 mA demand at the 120 mW budget
    spec.rail.vNominal = 0.85;
    spec.rail.limitMa = limitMa;
    spec.rail.releaseFraction = 0.6;
    spec.capFraction = 0.4;
    spec.droopV = 0.05;
    phys.rails.push_back(spec);
    phys.enforce = enforce;
    return phys;
}

void
printRow(const char *kind, double param, bool enforce, Row &row)
{
    const bool any = row.execUs.count() > 0;
    std::printf("%-9s %8.1f %8s | %9.1f %6d | %8.2f %8.1f %9.1f %6d\n",
                kind, param, enforce ? "on" : "off",
                any ? row.execUs.median() : 0.0, row.failures,
                row.peakC.mean(), row.engages.mean(),
                row.railPeakMa.mean(), row.leaks);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    bench::banner("Physics sweep",
                  "thermal-emergency and brownout response, throttler "
                  "enforced vs observed");
    std::printf("%-9s %8s %8s | %9s %6s | %8s %8s %9s %6s\n", "kind",
                "param", "throttle", "exec p50", "missed", "peak C",
                "engages", "rail mA", "leaks");

    constexpr int trials = 6;
    constexpr std::uint64_t rootSeed = 2054;

    // One trace / health file for the whole run; metrics CSVs are
    // per scenario (the snapshot schema is shared here, but keeping
    // the bench_chaos convention makes the files self-describing).
    trace::Tracer master;
    trace::HealthReport healthAll;
    sweep::PoolStats poolAll;
    trace::FlushGuard::Registration crashFlush;
    trace::FlushGuard::Registration healthFlush;
    if (obs.any())
        trace::FlushGuard::installSignalHandlers();
    if (obs.trace)
        crashFlush =
            trace::FlushGuard::guardTracer(master, obs.tracePath);
    if (obs.health) {
        healthAll.setRun("bench_thermal");
        healthFlush = trace::FlushGuard::guardHealth(healthAll,
                                                     obs.healthPath);
    }

    std::uint64_t scenarioIdx = 0;
    auto finishRow = [&](const char *kind, Row &row) {
        if (obs.metrics && !row.metrics.empty()) {
            char tag[48];
            std::snprintf(tag, sizeof tag, "s%02u-%s",
                          static_cast<unsigned>(scenarioIdx), kind);
            bench::writeMetricsCsv(row.metrics,
                                   bench::tagPath(obs.metricsPath, tag));
        }
        for (const auto &[pid, t] : row.tracers)
            if (t)
                master.absorb(*t, pid);
        healthAll.absorb(row.health);
    };
    auto runOne = [&](const char *kind, double param, bool enforce,
                      const soc::PhysicsConfig &phys) {
        const auto pidBase = static_cast<std::uint32_t>(scenarioIdx) *
                             static_cast<std::uint32_t>(trials);
        sweep::PoolStats pool;
        Row row = runScenario(phys, trials,
                              sweep::streamSeed(rootSeed, scenarioIdx),
                              obs, pidBase,
                              obs.health ? &pool : nullptr);
        if (obs.health)
            poolAll.merge(pool);
        printRow(kind, param, enforce, row);
        finishRow(kind, row);
        ++scenarioIdx;
    };
    for (double tripC : {48.0, 50.0, 52.0})
        for (bool enforce : {false, true})
            runOne("thermal", tripC, enforce,
                   thermalEmergency(tripC, enforce));
    for (double limitMa : {120.0, 100.0, 80.0})
        for (bool enforce : {false, true})
            runOne("brownout", limitMa, enforce,
                   brownout(limitMa, enforce));
    if (obs.trace) {
        crashFlush.release();
        bench::writeTraceJson(master, obs.tracePath);
    }
    if (obs.health) {
        healthFlush.release();
        bench::fillSweepHealth(healthAll, poolAll);
        bench::writeHealthJson(healthAll, obs.healthPath);
    }
    std::printf("\nObserve rows integrate the same physics without "
                "actuating, so their peak C column is the uncontrolled "
                "overshoot; enforce rows hold the peak near the trip "
                "band at some cost in execution time. A nonzero leaks "
                "column would be a coin-conservation violation.\n");
    return 0;
}
