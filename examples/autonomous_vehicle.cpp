/**
 * @file
 * The paper's motivating scenario: the 3x3 autonomous-vehicle SoC
 * (3 FFT depth-estimation tiles, 2 Viterbi V2V decoders, 1 NVDLA)
 * running the dependent mini-ERA pipeline under a 60 mW cap.
 *
 * Compares fully-decentralized BlitzCoin against the centralized
 * round-robin baseline: same workload, same budget, different
 * power-management response — BlitzCoin finishes sooner because power
 * freed by a completing task reaches the still-running tiles in under
 * a microsecond.
 */

#include <cstdio>

#include "bench_obs.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

using namespace blitz;

namespace {

/**
 * With --metrics / --trace the run is observed: power and coin
 * snapshots every 256 NoC cycles into a per-PM CSV, and the full PM
 * timeline into one Chrome trace with a process lane per PM kind —
 * open it in Perfetto to see the three managers' reactions side by
 * side. The flags never change the printed table.
 */
soc::SocRunStats
runWith(soc::PmKind kind, double budgetMw,
        const bench::ObsOptions &obs, trace::Tracer *master,
        std::uint32_t pid)
{
    soc::PmConfig pm;
    pm.kind = kind;
    pm.alloc = coin::AllocPolicy::RelativeProportional;
    pm.budgetMw = budgetMw;

    trace::Registry reg;
    trace::Tracer tracer;
    soc::Soc s(soc::make3x3AvSoc(), pm, /*seed=*/7);
    if (obs.metrics)
        s.attachMetrics(&reg, /*interval=*/256);
    if (obs.trace)
        s.attachTrace(&tracer);
    workload::Dag dag = soc::avDependent(s.config(), /*frames=*/3);
    soc::SocRunStats st = s.run(dag);
    if (obs.metrics)
        bench::writeMetricsCsv(
            reg.series(),
            bench::tagPath(obs.metricsPath, soc::pmKindName(kind)));
    if (obs.trace)
        master->absorb(tracer, pid);
    return st;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    const double budget = soc::budgets::av15Percent; // 60 mW

    std::printf("3x3 AV SoC, WL-Dep (3 frames), budget %.0f mW\n\n",
                budget);
    std::printf("%-6s %12s %14s %14s %10s %10s\n", "PM", "exec (us)",
                "response (us)", "avg pwr (mW)", "util", "packets");

    trace::Tracer master;
    std::uint32_t pid = 0;
    for (soc::PmKind kind : {soc::PmKind::BlitzCoin,
                             soc::PmKind::BlitzCoinCentral,
                             soc::PmKind::CentralRoundRobin}) {
        soc::SocRunStats st = runWith(kind, budget, obs, &master, pid++);
        std::printf("%-6s %12.1f %14.3f %14.1f %9.1f%% %10llu%s\n",
                    soc::pmKindName(kind), st.execTimeUs(),
                    st.meanResponseUs(),
                    st.trace->averageTotalMw(),
                    st.trace->budgetUtilization() * 100.0,
                    static_cast<unsigned long long>(st.nocPackets),
                    st.completed ? "" : "  (INCOMPLETE)");
    }
    if (obs.trace)
        bench::writeTraceJson(master, obs.tracePath);
    return 0;
}
