/**
 * @file
 * The paper's motivating scenario: the 3x3 autonomous-vehicle SoC
 * (3 FFT depth-estimation tiles, 2 Viterbi V2V decoders, 1 NVDLA)
 * running the dependent mini-ERA pipeline under a 60 mW cap.
 *
 * Compares fully-decentralized BlitzCoin against the centralized
 * round-robin baseline: same workload, same budget, different
 * power-management response — BlitzCoin finishes sooner because power
 * freed by a completing task reaches the still-running tiles in under
 * a microsecond.
 */

#include <cstdio>

#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

using namespace blitz;

namespace {

soc::SocRunStats
runWith(soc::PmKind kind, double budgetMw)
{
    soc::PmConfig pm;
    pm.kind = kind;
    pm.alloc = coin::AllocPolicy::RelativeProportional;
    pm.budgetMw = budgetMw;

    soc::Soc s(soc::make3x3AvSoc(), pm, /*seed=*/7);
    workload::Dag dag = soc::avDependent(s.config(), /*frames=*/3);
    return s.run(dag);
}

} // namespace

int
main()
{
    const double budget = soc::budgets::av15Percent; // 60 mW

    std::printf("3x3 AV SoC, WL-Dep (3 frames), budget %.0f mW\n\n",
                budget);
    std::printf("%-6s %12s %14s %14s %10s %10s\n", "PM", "exec (us)",
                "response (us)", "avg pwr (mW)", "util", "packets");

    for (soc::PmKind kind : {soc::PmKind::BlitzCoin,
                             soc::PmKind::BlitzCoinCentral,
                             soc::PmKind::CentralRoundRobin}) {
        soc::SocRunStats st = runWith(kind, budget);
        std::printf("%-6s %12.1f %14.3f %14.1f %9.1f%% %10llu%s\n",
                    soc::pmKindName(kind), st.execTimeUs(),
                    st.meanResponseUs(),
                    st.trace->averageTotalMw(),
                    st.trace->budgetUtilization() * 100.0,
                    static_cast<unsigned long long>(st.nocPackets),
                    st.completed ? "" : "  (INCOMPLETE)");
    }
    return 0;
}
