/**
 * @file
 * The 4x4 computer-vision SoC (Fig. 12 right): 4 GEMM, 5 Conv2D and
 * 4 Vision accelerators running a frame pipeline
 * (Vision -> Conv2D -> GEMM) under a 450 mW cap.
 *
 * Demonstrates the two allocation strategies of Section V-B on the
 * same workload: Relative-Proportional (RP) lands every tile at the
 * same relative operating point, Absolute-Proportional (AP) gives
 * every tile the same absolute power — and loses throughput because
 * the big GEMM tiles starve while the small Vision tiles saturate.
 * Also dumps the BlitzCoin power trace as CSV for plotting.
 */

#include <cstdio>
#include <fstream>

#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

using namespace blitz;

namespace {

soc::SocRunStats
run(coin::AllocPolicy alloc, bool dumpTrace)
{
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.alloc = alloc;
    pm.budgetMw = soc::budgets::vision33Percent;

    soc::Soc s(soc::make4x4VisionSoc(), pm, /*seed=*/21);
    // The *parallel* workload mixes all three accelerator types
    // concurrently — that heterogeneity is what separates AP from RP
    // (a staged pipeline is type-homogeneous within each stage, where
    // the two strategies coincide).
    workload::Dag dag = soc::visionParallel(s.config());
    auto st = s.run(dag);

    if (dumpTrace) {
        std::vector<std::string> names;
        for (noc::NodeId id : s.config().managedAccelerators())
            names.push_back(s.config().tile(id).name);
        std::ofstream("computer_vision_trace.csv")
            << st.trace->toCsv(names);
    }
    return st;
}

} // namespace

int
main()
{
    std::printf("4x4 vision SoC, all 13 accelerators concurrent "
                "(WL-Par), %.0f mW budget\n\n",
                soc::budgets::vision33Percent);

    auto rp = run(coin::AllocPolicy::RelativeProportional, true);
    auto ap = run(coin::AllocPolicy::AbsoluteProportional, false);

    std::printf("%-22s %12s %12s %10s\n", "allocation", "exec (us)",
                "avg power", "util");
    std::printf("%-22s %12.1f %10.1fmW %9.1f%%\n",
                "Relative-Proportional", rp.execTimeUs(),
                rp.trace->averageTotalMw(),
                rp.trace->budgetUtilization() * 100.0);
    std::printf("%-22s %12.1f %10.1fmW %9.1f%%\n",
                "Absolute-Proportional", ap.execTimeUs(),
                ap.trace->averageTotalMw(),
                ap.trace->budgetUtilization() * 100.0);
    std::printf("\nRP throughput gain: %+.1f%% "
                "(the Section VI-A effect)\n",
                (ap.execTimeUs() / rp.execTimeUs() - 1.0) * 100.0);
    std::printf("BlitzCoin trace written to "
                "computer_vision_trace.csv\n");
    return 0;
}
