/**
 * @file
 * Extending BlitzCoin to CPU tiles (the Section IV-C discussion).
 *
 * The paper keeps CPUs outside BlitzCoin because a CPU's
 * power-to-frequency mapping shifts with the workload. This example
 * walks the published extension path end-to-end:
 *
 *   1. calibrate an activity-counter power proxy on a synthetic
 *      characterization rig (Floyd [18] / Huang [75] style);
 *   2. run a CPU through compute-bound, memory-bound and idle-ish
 *      phases, estimating the activity factor each epoch;
 *   3. rescale the coin->frequency LUT with that factor, and compare
 *      the frequency the same 8-coin budget buys against the static
 *      worst-case LUT.
 *
 * The adaptive LUT recovers the headroom a low-activity phase leaves
 * on the table while never exceeding the coin budget.
 */

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <vector>

#include "blitzcoin/adaptive_lut.hpp"
#include "blitzcoin/coin_lut.hpp"
#include "power/activity_proxy.hpp"
#include "sim/rng.hpp"

using namespace blitz;

namespace {

constexpr double nomF = 800.0;
constexpr double nomV = 1.0;

// The "silicon": a hidden ground-truth CPU power model the rig
// measures and the proxy has to learn.
double
siliconPower(const power::ActivityCounters &c, double f, double v)
{
    auto r = c.rates();
    double s = (v / nomV) * (v / nomV) * (f / nomF);
    return 10.0 * v + s * (6.0 + 26.0 * r[0] + 15.0 * r[1] + 20.0 * r[2]);
}

power::ActivityCounters
phaseCounters(const char *phase, sim::Rng &rng)
{
    power::ActivityCounters c;
    c.cycles = 100000;
    double ipc, mem, fp;
    if (std::string_view(phase) == "compute") {
        ipc = rng.uniform(1.6, 2.0);
        mem = rng.uniform(0.05, 0.15);
        fp = rng.uniform(0.5, 0.8);
    } else if (std::string_view(phase) == "memory") {
        ipc = rng.uniform(0.4, 0.7);
        mem = rng.uniform(0.4, 0.6);
        fp = rng.uniform(0.0, 0.1);
    } else { // spin-wait
        ipc = rng.uniform(0.1, 0.3);
        mem = rng.uniform(0.0, 0.05);
        fp = 0.0;
    }
    c.instructions = static_cast<std::uint64_t>(ipc * c.cycles);
    c.memAccesses = static_cast<std::uint64_t>(mem * c.cycles);
    c.fpOps = static_cast<std::uint64_t>(fp * c.cycles);
    return c;
}

} // namespace

int
main()
{
    sim::Rng rng(2024);

    // ---- 1. characterization rig ----------------------------------
    std::vector<power::ProxySample> rig;
    for (int i = 0; i < 120; ++i) {
        power::ProxySample s;
        const char *phases[3] = {"compute", "memory", "spin"};
        s.counters = phaseCounters(phases[i % 3], rng);
        s.freqMhz = rng.uniform(200.0, 800.0);
        s.voltage = rng.uniform(0.5, 1.0);
        s.measuredMw = siliconPower(s.counters, s.freqMhz, s.voltage) +
                       rng.normal(0.0, 0.5); // measurement noise
        rig.push_back(s);
    }
    auto proxy = power::PowerProxy::calibrate(rig, nomF, nomV);
    std::printf("proxy calibrated: mean |err| = %.2f mW over the rig\n",
                proxy.meanAbsErrorMw(rig));

    // ---- 2 & 3. phase-adaptive LUT --------------------------------
    // Model the CPU on the FFT-like curve (worst-case characterized
    // power) inside a 120 mW 3x3-style domain; the tile holds 8 coins.
    auto scale = coin::makeScale(120.0, {55.0, 27.5, 180.0}, 6);
    blitzcoin::CoinLut fixed(power::catalog::fft(), scale, 6);
    blitzcoin::AdaptiveCoinLut adaptive(power::catalog::fft(), scale);
    const coin::Coins held = 8;

    std::printf("\n%-8s %8s %8s | %12s %12s | %10s\n", "phase", "IPC",
                "act", "static MHz", "adaptive MHz", "power");
    for (const char *phase : {"compute", "memory", "spin", "compute"}) {
        auto c = phaseCounters(phase, rng);
        // Activity factor: estimated dynamic power at the worst-case
        // characterization point, relative to the worst case itself.
        double est = proxy.estimateMw(c, nomF, nomV);
        double worst = power::catalog::fft().pMax();
        double act = std::min(est / worst, 1.0);

        double f_static = fixed.freqFor(held);
        double f_adaptive = adaptive.freqFor(held, act);
        std::printf("%-8s %8.2f %8.2f | %12.0f %12.0f | %7.1f mW\n",
                    phase, c.rates()[0], act, f_static, f_adaptive,
                    adaptive.powerFor(held, act));
    }
    std::printf("\nSame coins, workload-aware frequency: low-activity "
                "phases run faster at equal power, and the budget is "
                "never exceeded.\n");
    return 0;
}
