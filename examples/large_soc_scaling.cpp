/**
 * @file
 * Scalability walk-through: why decentralized power management is the
 * only scheme that survives hundreds of accelerators.
 *
 * Part 1 sweeps behavioral meshes from 4x4 to 20x20 and shows the
 * sqrt(N) convergence trend directly. Part 2 fits the Section V-E
 * scaling laws from those measurements and extrapolates N_max for
 * millisecond-scale workloads, reproducing the paper's headline
 * "BlitzCoin supports ~1000 accelerators at T_w >= 7 ms".
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "analytic/scaling.hpp"
#include "bench_obs.hpp"
#include "coin/engine.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "sweep/sweep.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"

using namespace blitz;

namespace {

/** One trial: convergence time (< 0 if missed) plus, with --metrics,
 *  the ledger snapshot series for this replication. */
struct Trial
{
    double cycles = -1.0;
    trace::MetricsSeries metrics;
};

/** One behavioral convergence trial. */
Trial
convergeCycles(int d, std::uint64_t seed, bool metrics)
{
    coin::EngineConfig cfg; // paper defaults
    trace::Registry reg;
    coin::MeshSim sim(noc::Topology::square(d), cfg, seed);
    if (metrics)
        trace::attachMeshMetrics(sim, reg, 1'024);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
        coin::Coins m = 8 << (i % 3); // 8/16/32 mix
        sim.setMax(i, m);
        demand += m;
    }
    sim.clusterHas(demand / 2);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(20.0));
    Trial t;
    t.cycles = r.converged ? static_cast<double>(r.time) : -1.0;
    if (metrics)
        t.metrics = reg.takeSeries();
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    if (obs.trace)
        std::printf("(--trace ignored: the behavioral MeshSim has no "
                    "timeline hooks; try an SoC example or "
                    "bench_chaos)\n");
    std::printf("Part 1: behavioral convergence sweep "
                "(1-way, dynamic timing, random pairing)\n\n");
    std::printf("%4s %6s %14s %14s %12s\n", "d", "N", "cycles (mean)",
                "us @ 800MHz", "cycles/d");

    // Sweep harness: all (d, seed) replications run in parallel with
    // seeds derived from the root, and the per-size means fold in
    // replication order — same numbers at any thread count.
    std::vector<int> ds;
    for (int d = 4; d <= 20; d += 2)
        ds.push_back(d);
    constexpr std::size_t seedsPerPoint = 30;
    auto trials = sweep::runSweep(
        ds.size() * seedsPerPoint, /*rootSeed=*/1,
        [&](std::size_t i, std::uint64_t seed) {
            return convergeCycles(ds[i / seedsPerPoint], seed,
                                  obs.metrics);
        });

    std::vector<std::pair<double, double>> samples;
    for (std::size_t k = 0; k < ds.size(); ++k) {
        int d = ds[k];
        sim::Summary cycles;
        trace::MetricsSeries merged;
        for (std::size_t i = 0; i < seedsPerPoint; ++i) {
            Trial &t = trials[k * seedsPerPoint + i];
            if (t.cycles >= 0.0)
                cycles.add(t.cycles);
            if (!t.metrics.empty())
                merged.merge(t.metrics);
        }
        // Per-size CSVs: the schema carries one column per tile, so
        // mesh sizes cannot share a file.
        if (obs.metrics && !merged.empty()) {
            char tag[16];
            std::snprintf(tag, sizeof tag, "%dx%d", d, d);
            bench::writeMetricsCsv(merged,
                                   bench::tagPath(obs.metricsPath, tag));
        }
        samples.emplace_back(static_cast<double>(d) * d,
                             sim::ticksToUs(static_cast<sim::Tick>(
                                 cycles.mean())));
        std::printf("%4d %6d %14.0f %14.2f %12.1f\n", d, d * d,
                    cycles.mean(),
                    sim::ticksToUs(
                        static_cast<sim::Tick>(cycles.mean())),
                    cycles.mean() / d);
    }
    std::printf("\n(cycles/d roughly constant -> time ~ d = sqrt(N))\n");

    std::printf("\nPart 2: fitted law and N_max extrapolation\n\n");
    auto law = analytic::fitLaw(analytic::Scheme::BC, samples);
    std::printf("  T(N) = %.3f us * sqrt(N)\n\n", law.tauUs);
    std::printf("%10s %10s\n", "T_w (ms)", "N_max");
    for (double tw_ms : {0.2, 1.0, 7.0, 20.0})
        std::printf("%10.1f %10.0f\n", tw_ms, law.nMax(tw_ms * 1000.0));
    std::printf("\nA centralized scheme with the same per-tile cost "
                "would manage %.0fx fewer tiles at T_w = 7 ms.\n",
                law.nMax(7000.0) /
                    analytic::ScalingLaw{analytic::Scheme::CRR,
                                         law.tauUs, 1.0}
                        .nMax(7000.0));
    return 0;
}
