/**
 * @file
 * Quickstart: run the BlitzCoin coin-exchange to convergence on a
 * small mesh and watch the ledger settle.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Add --metrics[=path.csv] to record a snapshot of the ledger (per-tile
 * balances, global error, packet counters) every 8 NoC cycles and
 * dump it as CSV — the zero-instrumentation way to watch convergence.
 */

#include <cstdio>
#include <string>

#include "bench_obs.hpp"
#include "coin/engine.hpp"
#include "noc/topology.hpp"
#include "sim/types.hpp"
#include "trace/attach.hpp"

using namespace blitz;

int
main(int argc, char **argv)
{
    const bench::ObsOptions obs = bench::parseObsFlags(argc, argv);
    if (obs.trace)
        std::printf("(--trace ignored: the behavioral MeshSim has no "
                    "timeline hooks; try an SoC example or "
                    "bench_chaos)\n");
    // A 4x4 mesh of tiles. Tile targets (max coins) model a mix of
    // small and large accelerators; two tiles are idle (max = 0).
    const noc::Topology topo = noc::Topology::square(4);

    coin::EngineConfig cfg;           // paper defaults:
    cfg.mode = coin::ExchangeMode::OneWay; //  1-way exchange,
    cfg.wrap = true;                  //  wrap-around neighborhoods,
    cfg.backoff.enabled = true;       //  dynamic timing,
    cfg.pairing.randomPairing = true; //  random pairing every 16th.

    trace::Registry reg;
    coin::MeshSim sim(topo, cfg, /*seed=*/42);
    // The 4x4 demo converges in well under 100 cycles — sample densely.
    if (obs.metrics)
        trace::attachMeshMetrics(sim, reg, /*interval=*/8);

    const coin::Coins maxes[16] = {8, 16, 32, 8, 0, 16, 63, 16,
                                   8, 32, 16, 8, 16, 0, 8, 16};
    for (std::size_t i = 0; i < 16; ++i)
        sim.setMax(i, maxes[i]);

    // Scatter a pool worth half the aggregate demand at random.
    sim.randomizeHas(140);

    std::printf("initial  Err = %6.2f coins (alpha = %.3f)\n",
                sim.globalError(), sim.ledger().alpha());

    coin::RunResult r =
        sim.runUntilConverged(/*errThreshold=*/1.0,
                              /*maxTime=*/sim::msToTicks(1.0));

    std::printf("converged: %s after %.2f us "
                "(%llu NoC cycles, %llu packets, %llu exchanges)\n",
                r.converged ? "yes" : "NO",
                sim::ticksToUs(r.time),
                static_cast<unsigned long long>(r.time),
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.exchanges));
    std::printf("final    Err = %6.2f coins\n\n", sim.globalError());

    std::printf("tile  max  has   has/max\n");
    for (std::size_t i = 0; i < 16; ++i) {
        const auto &t = sim.ledger().tile(i);
        std::printf("%4zu  %3lld  %3lld   %s\n", i,
                    static_cast<long long>(t.max),
                    static_cast<long long>(t.has),
                    t.max ? std::to_string(
                                static_cast<double>(t.has) /
                                static_cast<double>(t.max)).c_str()
                          : "-");
    }
    std::printf("\ntotal coins: %lld (pool was 140; conserved)\n",
                static_cast<long long>(sim.ledger().totalHas()));
    if (obs.metrics)
        bench::writeMetricsCsv(reg.series(), obs.metricsPath);
    return 0;
}
