/**
 * @file
 * Thermal-cap extension (Sections III-A/III-B): hotspot mitigation by
 * rejecting coins.
 *
 * A 6x6 mesh of identical accelerators develops a thermal hotspot in
 * its center quadrant; the center tiles are given hard coin caps.
 * The exchange then refuses to push budget into the hot region while
 * conserving the global pool — the displaced coins raise the
 * allocation of the cool tiles instead.
 */

#include <algorithm>
#include <cstdio>

#include "coin/engine.hpp"
#include "sim/types.hpp"

using namespace blitz;

int
main()
{
    const int d = 6;
    const noc::Topology topo = noc::Topology::square(d);

    coin::EngineConfig cfg; // paper-default 1-way engine
    cfg.thermalCaps.assign(topo.size(), coin::uncapped);

    // Hot quadrant: the four center tiles get a hard 6-coin cap.
    std::vector<noc::NodeId> hot;
    for (int y = 2; y <= 3; ++y) {
        for (int x = 2; x <= 3; ++x) {
            noc::NodeId id = topo.idOf(noc::Coord{x, y});
            cfg.thermalCaps[id] = 6;
            hot.push_back(id);
        }
    }

    coin::MeshSim sim(topo, cfg, /*seed=*/5);
    for (std::size_t i = 0; i < topo.size(); ++i)
        sim.setMax(i, 32);
    // Pool sized so the uncapped fair share (12) exceeds the hot cap.
    for (std::size_t i = 0; i < topo.size(); ++i)
        sim.setHas(i, std::find(hot.begin(), hot.end(), i) == hot.end()
                          ? 13
                          : 1);

    auto r = sim.runUntilConverged(1.5, sim::msToTicks(5.0));
    std::printf("converged: %s after %.2f us; total coins %lld "
                "(conserved)\n\n",
                r.converged ? "yes" : "NO", sim::ticksToUs(r.time),
                static_cast<long long>(sim.ledger().totalHas()));

    std::printf("coin map (capped tiles marked *):\n");
    double hot_sum = 0.0, cool_sum = 0.0;
    for (int y = 0; y < d; ++y) {
        for (int x = 0; x < d; ++x) {
            noc::NodeId id = topo.idOf(noc::Coord{x, y});
            bool capped = cfg.thermalCaps[id] != coin::uncapped;
            std::printf(" %3lld%c",
                        static_cast<long long>(sim.ledger().has(id)),
                        capped ? '*' : ' ');
            (capped ? hot_sum : cool_sum) +=
                static_cast<double>(sim.ledger().has(id));
        }
        std::printf("\n");
    }
    std::printf("\nhot-quadrant mean: %.1f coins (cap 6); "
                "cool mean: %.1f coins (uncapped share would be "
                "%.1f)\n",
                hot_sum / 4.0, cool_sum / 32.0,
                static_cast<double>(sim.ledger().totalHas()) / 36.0);
    std::printf("The hot tiles never exceed their cap; their budget "
                "shifts to the cool region.\n");
    return 0;
}
