#include "scaling.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace blitz::analytic {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::BC:  return "BC";
      case Scheme::BCC: return "BC-C";
      case Scheme::CRR: return "C-RR";
      case Scheme::TS:  return "TS";
      case Scheme::PT:  return "PT";
    }
    return "?";
}

double
schemeExponent(Scheme s)
{
    switch (s) {
      case Scheme::BC:
        return 0.5; // mesh diffusion: T ~ sqrt(N)
      case Scheme::BCC:
      case Scheme::CRR:
      case Scheme::TS:
        return 1.0; // sequential polling / token passing: T ~ N
      case Scheme::PT:
        // Hierarchical bidding is sub-linear but not diffusion-fast;
        // 0.8 reproduces the reported growth between configurations.
        return 0.8;
    }
    return 1.0;
}

double
ScalingLaw::responseUs(double n) const
{
    return tauUs * std::pow(n, exponent);
}

double
ScalingLaw::nMax(double twUs) const
{
    BLITZ_ASSERT(tauUs > 0.0, "law not fitted");
    // T(N) = T_w / N  =>  tau N^e = T_w / N  =>  N = (T_w/tau)^(1/(e+1))
    return std::pow(twUs / tauUs, 1.0 / (exponent + 1.0));
}

double
ScalingLaw::pmTimeFraction(double n, double twUs) const
{
    return n * responseUs(n) / twUs;
}

ScalingLaw
fitLaw(Scheme scheme,
       const std::vector<std::pair<double, double>> &samples)
{
    if (samples.empty())
        sim::fatal("cannot fit a scaling law to zero samples");
    const double e = schemeExponent(scheme);
    // d/dtau sum (T - tau N^e)^2 = 0  =>  tau = sum(T N^e) / sum(N^2e)
    double num = 0.0;
    double den = 0.0;
    for (const auto &[n, t_us] : samples) {
        if (n <= 0.0)
            sim::fatal("scaling sample with non-positive N");
        const double basis = std::pow(n, e);
        num += t_us * basis;
        den += basis * basis;
    }
    return ScalingLaw{scheme, num / den, e};
}

ScalingLaw
priceTheoryLaw()
{
    // Reported: ~9 ms mid-range at N = 256 clusters in software;
    // hardware normalization of 10^2.5 (the paper's scaling factor).
    const double sw_response_us = 9000.0;
    const double hw_scale = std::pow(10.0, 2.5);
    const double e = schemeExponent(Scheme::PT);
    const double tau = (sw_response_us / hw_scale) / std::pow(256.0, e);
    return ScalingLaw{Scheme::PT, tau, e};
}

} // namespace blitz::analytic
