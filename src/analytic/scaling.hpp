/**
 * @file
 * Analytical scaling model (Section V-E, Equations 5.1-5.3).
 *
 * Response times of the evaluated schemes follow power laws in the
 * number of managed accelerators N:
 *
 *      T(N) = tau * N^e     with e = 1 for the centralized schemes
 *                           (C-RR, BC-C) and the sequential-ring TS,
 *                           and e = 1/2 for BlitzCoin's mesh diffusion.
 *
 * A scheme keeps up with a workload whose accelerator-level phase
 * duration is T_w as long as T(N) < T_w / N; the crossing point defines
 * N_max:  N_max = (T_w / tau)^(1/(e+1)).
 *
 * The tau constants are *fitted from measured response times* — the
 * same procedure the paper applies to its Figs. 17/18/20 data — which
 * is why this module only provides the regression and the closed forms.
 */

#ifndef BLITZ_ANALYTIC_SCALING_HPP
#define BLITZ_ANALYTIC_SCALING_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace blitz::analytic {

/** Power-management schemes compared by the scaling study. */
enum class Scheme : std::uint8_t
{
    BC,  ///< BlitzCoin (decentralized mesh diffusion)
    BCC, ///< BlitzCoin allocation, centralized controller
    CRR, ///< centralized round-robin
    TS,  ///< TokenSmart sequential ring
    PT,  ///< hierarchical price theory (literature data, HW-scaled)
};

const char *schemeName(Scheme s);

/** Scaling exponent e of T(N) = tau * N^e for a scheme. */
double schemeExponent(Scheme s);

/** One fitted response-time law. */
struct ScalingLaw
{
    Scheme scheme = Scheme::BC;
    double tauUs = 0.0;   ///< scale constant (us)
    double exponent = 1.0;

    /** Response time at N accelerators (us). */
    double responseUs(double n) const;

    /**
     * Largest N a workload with phase duration @p twUs supports:
     * the N where T(N) = T_w / N.
     */
    double nMax(double twUs) const;

    /**
     * Fraction of wall-clock time spent in power management for an
     * N-accelerator SoC at phase duration twUs: decisions arrive every
     * T_w / N and each costs T(N), so the fraction is N * T(N) / T_w.
     * Values above 1 mean the scheme cannot keep up (N > N_max).
     */
    double pmTimeFraction(double n, double twUs) const;
};

/**
 * Least-squares fit of tau for a fixed exponent: minimizes
 * sum_i (T_i - tau * N_i^e)^2 over the (N, T_us) samples.
 * @pre at least one sample with N > 0.
 */
ScalingLaw fitLaw(Scheme scheme,
                  const std::vector<std::pair<double, double>> &samples);

/**
 * The paper's literature-derived PT law: 6.62-11.4 ms at N = 256 in
 * software, scaled down by 2.5 orders of magnitude for a hypothetical
 * hardware implementation (the same normalization the paper applies).
 */
ScalingLaw priceTheoryLaw();

} // namespace blitz::analytic

#endif // BLITZ_ANALYTIC_SCALING_HPP
