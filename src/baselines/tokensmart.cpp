#include "tokensmart.hpp"

#include <algorithm>

namespace blitz::baselines {

TokenSmartSim::TokenSmartSim(std::size_t tiles,
                             const TokenSmartConfig &cfg,
                             std::uint64_t seed)
    : cfg_(cfg), rng_(seed), ledger_(tiles), starvedLoops_(tiles, 0)
{
    BLITZ_ASSERT(cfg_.visitCycles > 0, "visit latency must be positive");
}

void
TokenSmartSim::setMax(std::size_t i, coin::Coins max)
{
    ledger_.setMax(i, max);
    // Activity changes reset the starvation bookkeeping; the policy
    // re-evaluates from greedy, as in the reference design.
    std::fill(starvedLoops_.begin(), starvedLoops_.end(), 0);
    mode_ = TsMode::Greedy;
    fairSatisfiedLoops_ = 0;
}

void
TokenSmartSim::setHas(std::size_t i, coin::Coins has)
{
    ledger_.setHas(i, has);
}

void
TokenSmartSim::randomizeHas(coin::Coins poolCoins)
{
    BLITZ_ASSERT(poolCoins >= 0, "coin pool cannot be negative");
    // Tokens start scattered: some on tiles, some with the carrier.
    for (coin::Coins c = 0; c < poolCoins; ++c) {
        auto slot = rng_.below(ledger_.size() + 1);
        if (slot == ledger_.size()) {
            ++pool_;
        } else {
            ledger_.setHas(slot, ledger_.has(slot) + 1);
        }
    }
}

coin::Coins
TokenSmartSim::targetOf(std::size_t i) const
{
    if (ledger_.max(i) == 0)
        return 0;
    if (mode_ == TsMode::Greedy)
        return ledger_.max(i);
    // Fair mode: equal share of every circulating token across the
    // active tiles.
    coin::Coins total = ledger_.totalHas() + pool_;
    coin::Coins active = 0;
    for (std::size_t k = 0; k < ledger_.size(); ++k) {
        if (ledger_.max(k) > 0)
            ++active;
    }
    return active > 0 ? total / active : 0;
}

coin::Coins
TokenSmartSim::visit()
{
    const std::size_t i = pos_;
    const coin::Coins target = targetOf(i);
    const coin::Coins held = ledger_.has(i);
    coin::Coins moved = 0;

    if (held > target) {
        // Return surplus to the carrier.
        moved = held - target;
        ledger_.setHas(i, target);
        pool_ += moved;
        starvedLoops_[i] = 0;
    } else if (held < target) {
        coin::Coins take = std::min(target - held, pool_);
        if (take > 0) {
            ledger_.setHas(i, held + take);
            pool_ -= take;
            moved = take;
        }
        if (held + take < target) {
            ++starvedLoops_[i];
        } else {
            starvedLoops_[i] = 0;
        }
    } else {
        starvedLoops_[i] = 0;
    }

    pos_ = (pos_ + 1) % ledger_.size();
    now_ += cfg_.visitCycles;
    ++packets_;
    if (moved != 0)
        ++exchanges_;
    if (pos_ == 0)
        updateMode();
    return moved;
}

void
TokenSmartSim::updateMode()
{
    if (mode_ == TsMode::Greedy) {
        for (std::size_t i = 0; i < ledger_.size(); ++i) {
            if (starvedLoops_[i] >= cfg_.starvationLoops) {
                mode_ = TsMode::Fair;
                fairSatisfiedLoops_ = 0;
                std::fill(starvedLoops_.begin(), starvedLoops_.end(),
                          0);
                return;
            }
        }
    } else {
        // Fall back to greedy after the fair targets have held for a
        // while; this is the oscillation source the paper observes.
        bool satisfied = true;
        for (std::size_t i = 0; i < ledger_.size(); ++i) {
            if (ledger_.max(i) > 0 && ledger_.has(i) < targetOf(i))
                satisfied = false;
        }
        if (satisfied) {
            if (++fairSatisfiedLoops_ >= cfg_.fairHoldLoops) {
                mode_ = TsMode::Greedy;
                fairSatisfiedLoops_ = 0;
            }
        } else {
            fairSatisfiedLoops_ = 0;
        }
    }
}

coin::RunResult
TokenSmartSim::runUntilConverged(double errThreshold, sim::Tick maxTime)
{
    coin::RunResult result;
    const std::uint64_t packets0 = packets_;
    const std::uint64_t exchanges0 = exchanges_;

    // The carrier's free tokens count against the distribution error:
    // coins in flight serve no tile. Converged means the tiles alone
    // satisfy the threshold and the pool holds only what no tile wants.
    while (now_ <= maxTime) {
        if (ledger_.globalError() < errThreshold) {
            result.converged = true;
            result.time = now_;
            break;
        }
        visit();
    }
    result.packets = packets_ - packets0;
    result.exchanges = exchanges_ - exchanges0;
    if (!result.converged)
        result.time = now_;
    return result;
}

} // namespace blitz::baselines
