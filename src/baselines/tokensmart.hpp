/**
 * @file
 * TokenSmart (TS) baseline: ring-based sequential token passing.
 *
 * Reimplementation of the decentralized scheme of Shah et al. [43] at
 * the same behavioral level as the BlitzCoin engine, for the Fig. 4
 * comparison. A single pool of tokens circulates around a ring that
 * visits every tile; in the default *greedy* mode each visited tile
 * takes what it needs (up to its target) from the pool and returns any
 * surplus. When some tile stays starved for a configurable number of
 * full loops, the global policy switches to a *fair* mode that targets
 * an equal share per active tile; once the fair targets are met the
 * policy may fall back to greedy. The pool traverses the ring one tile
 * per visit, so reallocation inherently costs O(N) — the property the
 * paper contrasts with BlitzCoin's O(sqrt(N)) diffusion — and the
 * greedy/fair oscillation produces the long-tail outliers visible in
 * Fig. 4.
 */

#ifndef BLITZ_BASELINES_TOKENSMART_HPP
#define BLITZ_BASELINES_TOKENSMART_HPP

#include <cstdint>
#include <vector>

#include "coin/engine.hpp"
#include "coin/ledger.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace blitz::baselines {

/** TS policy mode. */
enum class TsMode : std::uint8_t { Greedy, Fair };

/** TokenSmart parameters. */
struct TokenSmartConfig
{
    /** Cycles per ring visit (hop + local bookkeeping). */
    sim::Tick visitCycles = 4;
    /** Full starved loops before the policy switches to fair. */
    unsigned starvationLoops = 2;
    /** Full satisfied loops in fair mode before reverting to greedy. */
    unsigned fairHoldLoops = 2;
};

/**
 * Behavioral TokenSmart simulator over an N-tile ring.
 *
 * The API mirrors coin::MeshSim so the Fig. 4 bench can drive both
 * through the same harness.
 */
class TokenSmartSim
{
  public:
    TokenSmartSim(std::size_t tiles, const TokenSmartConfig &cfg,
                  std::uint64_t seed);

    const coin::Ledger &ledger() const { return ledger_; }
    TsMode mode() const { return mode_; }
    sim::Tick now() const { return now_; }

    /** Program a tile's target token count. */
    void setMax(std::size_t i, coin::Coins max);

    /** Set a tile's holdings (initialization). */
    void setHas(std::size_t i, coin::Coins has);

    /**
     * Scatter @p poolCoins over the free pool and tiles at random,
     * mirroring MeshSim::randomizeHas.
     */
    void randomizeHas(coin::Coins poolCoins);

    /** Run until Err < threshold or maxTime elapses. */
    coin::RunResult runUntilConverged(double errThreshold,
                                      sim::Tick maxTime);

  private:
    /** Token target of tile i under the current mode. */
    coin::Coins targetOf(std::size_t i) const;

    /** Process the pool's visit to the tile at ring position pos_. */
    coin::Coins visit();

    void updateMode();

    TokenSmartConfig cfg_;
    sim::Rng rng_;
    coin::Ledger ledger_;
    coin::Coins pool_ = 0; ///< free tokens traveling with the carrier
    std::size_t pos_ = 0;
    sim::Tick now_ = 0;
    TsMode mode_ = TsMode::Greedy;
    std::vector<unsigned> starvedLoops_;
    unsigned fairSatisfiedLoops_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t exchanges_ = 0;
};

} // namespace blitz::baselines

#endif // BLITZ_BASELINES_TOKENSMART_HPP
