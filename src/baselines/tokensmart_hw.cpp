#include "tokensmart_hw.hpp"

#include <cmath>

namespace blitz::baselines {

TokenSmartHwRing::TokenSmartHwRing(sim::EventQueue &eq,
                                   noc::Network &net,
                                   const TokenSmartHwConfig &cfg)
    : eq_(eq), net_(net), cfg_(cfg)
{
    BLITZ_ASSERT(cfg_.nodeCycles > 0, "node latency must be positive");
    const noc::Topology &topo = net.topology();

    // Boustrophedon (serpentine) ring: consecutive members are mesh
    // neighbors, so every pool hop is a single NoC hop.
    ringPosOfMesh_.assign(topo.size(), 0);
    for (int y = 0; y < topo.height(); ++y) {
        for (int x = 0; x < topo.width(); ++x) {
            int col = (y % 2 == 0) ? x : topo.width() - 1 - x;
            Node n;
            n.meshId = topo.idOf(noc::Coord{col, y});
            ringPosOfMesh_[n.meshId] = nodes_.size();
            nodes_.push_back(n);
        }
    }

    for (const Node &n : nodes_) {
        std::size_t pos = ringPosOfMesh_[n.meshId];
        net_.setHandler(n.meshId, [this, pos](const noc::Packet &) {
            arriveAt(pos);
        });
    }
}

void
TokenSmartHwRing::setMax(std::size_t meshId, coin::Coins max)
{
    BLITZ_ASSERT(max >= 0, "max tokens cannot be negative");
    nodes_[ringPosOfMesh_.at(meshId)].max = max;
    // Activity change: policy re-evaluates from greedy, as in the
    // reference design.
    for (Node &n : nodes_)
        n.starvedLoops = 0;
    mode_ = TsMode::Greedy;
    fairSatisfiedLoops_ = 0;
}

void
TokenSmartHwRing::setHas(std::size_t meshId, coin::Coins has)
{
    nodes_[ringPosOfMesh_.at(meshId)].has = has;
}

coin::Coins
TokenSmartHwRing::has(std::size_t meshId) const
{
    return nodes_[ringPosOfMesh_.at(meshId)].has;
}

coin::Coins
TokenSmartHwRing::totalTokens() const
{
    coin::Coins sum = poolTokens_;
    for (const Node &n : nodes_)
        sum += n.has;
    return sum;
}

double
TokenSmartHwRing::globalError() const
{
    coin::Coins th = 0, tm = 0;
    for (const Node &n : nodes_) {
        th += n.has;
        tm += n.max;
    }
    if (tm == 0)
        return 0.0;
    const double alpha =
        static_cast<double>(th) / static_cast<double>(tm);
    double sum = 0.0;
    for (const Node &n : nodes_) {
        sum += std::abs(static_cast<double>(n.has) -
                        alpha * static_cast<double>(n.max));
    }
    return sum / static_cast<double>(nodes_.size());
}

coin::Coins
TokenSmartHwRing::targetOf(const Node &n) const
{
    if (n.max == 0)
        return 0;
    if (mode_ == TsMode::Greedy)
        return n.max;
    // Fair mode: equal share of the circulating total. The census
    // physically travels with the pool packet; the model reads it
    // from the ring state the packet would carry.
    if (activeCount_ == 0)
        return 0;
    return totalTokens() / static_cast<coin::Coins>(activeCount_);
}

void
TokenSmartHwRing::start()
{
    if (started_)
        return;
    started_ = true;
    activeCount_ = 0;
    for (const Node &n : nodes_)
        activeCount_ += n.max > 0 ? 1 : 0;
    eq_.scheduleIn(1, [this] { arriveAt(0); });
}

void
TokenSmartHwRing::arriveAt(std::size_t pos)
{
    // FSM processing before the pool moves on.
    eq_.scheduleIn(cfg_.nodeCycles, [this, pos] {
        Node &n = nodes_[pos];
        const coin::Coins target = targetOf(n);
        if (n.has > target) {
            poolTokens_ += n.has - target;
            n.has = target;
            n.starvedLoops = 0;
        } else if (n.has < target) {
            coin::Coins take = std::min(target - n.has, poolTokens_);
            poolTokens_ -= take;
            n.has += take;
            if (n.has < target) {
                ++n.starvedLoops;
                satisfiedThisLoop_ = false;
            } else {
                n.starvedLoops = 0;
            }
        } else {
            n.starvedLoops = 0;
        }

        if (pos + 1 == nodes_.size()) {
            // Loop boundary: refresh the census and the policy mode.
            activeCount_ = 0;
            for (const Node &m : nodes_)
                activeCount_ += m.max > 0 ? 1 : 0;
            if (mode_ == TsMode::Greedy) {
                for (const Node &m : nodes_) {
                    if (m.starvedLoops >= cfg_.starvationLoops) {
                        mode_ = TsMode::Fair;
                        fairSatisfiedLoops_ = 0;
                        for (Node &r : nodes_)
                            r.starvedLoops = 0;
                        break;
                    }
                }
            } else if (satisfiedThisLoop_) {
                if (++fairSatisfiedLoops_ >= cfg_.fairHoldLoops) {
                    mode_ = TsMode::Greedy;
                    fairSatisfiedLoops_ = 0;
                }
            } else {
                fairSatisfiedLoops_ = 0;
            }
            satisfiedThisLoop_ = true;
        }
        forward(pos);
    });
}

void
TokenSmartHwRing::forward(std::size_t fromPos)
{
    std::size_t next = (fromPos + 1) % nodes_.size();
    noc::Packet pkt;
    pkt.src = nodes_[fromPos].meshId;
    pkt.dst = nodes_[next].meshId;
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::Generic;
    pkt.payload[0] = poolTokens_; // the pool rides in the packet
    ++hops_;
    net_.send(pkt);
}

} // namespace blitz::baselines
