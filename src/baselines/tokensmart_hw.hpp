/**
 * @file
 * Packet-accurate TokenSmart: the ring protocol over the routed NoC.
 *
 * The behavioral TokenSmartSim (tokensmart.hpp) charges an abstract
 * visit cost; this model sends the token pool as a real NoC packet
 * around a ring embedded in the mesh (boustrophedon order, so every
 * ring hop is one mesh hop). Each node processes the pool for a fixed
 * FSM latency, takes or returns tokens against the current policy
 * target, and forwards the packet. Global policy state travels *with*
 * the pool — mode, circulating-total, and per-loop activity census —
 * because a sequential token scheme has exactly one point of
 * serialization to hang it on. That serialization is the O(N)
 * response the paper contrasts with BlitzCoin's diffusion.
 */

#ifndef BLITZ_BASELINES_TOKENSMART_HW_HPP
#define BLITZ_BASELINES_TOKENSMART_HW_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "coin/ledger.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "tokensmart.hpp"

namespace blitz::baselines {

/** Configuration of the hardware TokenSmart ring. */
struct TokenSmartHwConfig
{
    /** FSM cycles to process the pool at each node. */
    sim::Tick nodeCycles = 4;
    /** Starved loops before a node demands fair mode. */
    unsigned starvationLoops = 2;
    /** Satisfied full loops in fair mode before reverting to greedy. */
    unsigned fairHoldLoops = 2;
};

/**
 * The full ring: one node per mesh tile, pool packet circulating.
 *
 * Nodes are reached through Network handlers installed by this class;
 * it must therefore own the service-plane handler of every member
 * tile (fine for baseline measurement rigs).
 */
class TokenSmartHwRing
{
  public:
    /**
     * @param eq shared event queue.
     * @param net NoC carrying the pool packet.
     * @param cfg ring parameters.
     *
     * Every mesh tile becomes a ring member, ordered boustrophedon so
     * consecutive members are mesh neighbors.
     */
    TokenSmartHwRing(sim::EventQueue &eq, noc::Network &net,
                     const TokenSmartHwConfig &cfg = TokenSmartHwConfig{});

    std::size_t size() const { return nodes_.size(); }

    /** Program a node's token target. */
    void setMax(std::size_t meshId, coin::Coins max);

    /** Set a node's holdings (initialization). */
    void setHas(std::size_t meshId, coin::Coins has);

    /** Seed the carrier pool (initialization). */
    void seedPool(coin::Coins tokens) { poolTokens_ = tokens; }

    /** Launch the pool packet from ring position 0. */
    void start();

    /** Tokens currently held on a node. */
    coin::Coins has(std::size_t meshId) const;

    /** Tokens on all nodes plus the circulating pool. */
    coin::Coins totalTokens() const;

    /** Mean distribution error Err (same formula as the ledger's). */
    double globalError() const;

    /** Current policy mode. */
    TsMode mode() const { return mode_; }

    /** Pool-packet hops taken so far. */
    std::uint64_t hops() const { return hops_; }

  private:
    struct Node
    {
        noc::NodeId meshId = 0;
        coin::Coins has = 0;
        coin::Coins max = 0;
        unsigned starvedLoops = 0;
    };

    /** Pool packet arrives at ring position @p pos. */
    void arriveAt(std::size_t pos);

    /** Forward the pool to the next ring position. */
    void forward(std::size_t fromPos);

    /** Token target of a node under the current mode. */
    coin::Coins targetOf(const Node &n) const;

    sim::EventQueue &eq_;
    noc::Network &net_;
    TokenSmartHwConfig cfg_;
    std::vector<Node> nodes_;      ///< ring order
    std::vector<std::size_t> ringPosOfMesh_;
    coin::Coins poolTokens_ = 0;
    TsMode mode_ = TsMode::Greedy;
    unsigned fairSatisfiedLoops_ = 0;
    bool satisfiedThisLoop_ = true;
    std::size_t activeCount_ = 0;
    bool started_ = false;
    std::uint64_t hops_ = 0;
};

} // namespace blitz::baselines

#endif // BLITZ_BASELINES_TOKENSMART_HW_HPP
