#include "adaptive_lut.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace blitz::blitzcoin {

AdaptiveCoinLut::AdaptiveCoinLut(const power::PfCurve &curve,
                                 const coin::CoinScale &scale,
                                 double minActivity)
    : curve_(&curve), scale_(scale), minActivity_(minActivity)
{
    if (minActivity_ <= 0.0 || minActivity_ > 1.0)
        sim::fatal("activity floor must be in (0, 1]");
    BLITZ_ASSERT(scale_.mwPerCoin() > 0.0, "coin scale not initialized");
}

double
AdaptiveCoinLut::powerAt(double freqMhz, double activityFactor) const
{
    // Idle floor is activity-independent (leakage + clock tree); the
    // headroom above it scales with the switched fraction.
    return curve_->pIdle() +
           activityFactor * (curve_->powerAt(freqMhz) - curve_->pIdle());
}

double
AdaptiveCoinLut::freqFor(coin::Coins has, double activityFactor) const
{
    if (has <= 0)
        return 0.0;
    const double a = std::clamp(activityFactor, minActivity_, 1.0);
    const double budget = scale_.powerOf(has);
    if (budget <= curve_->pIdle())
        return 0.0;
    // Invert P(f, a) = pIdle + a (P(f) - pIdle) <= budget.
    const double equivalent =
        curve_->pIdle() + (budget - curve_->pIdle()) / a;
    return curve_->freqForPower(equivalent);
}

double
AdaptiveCoinLut::powerFor(coin::Coins has, double activityFactor) const
{
    const double a = std::clamp(activityFactor, minActivity_, 1.0);
    return powerAt(freqFor(has, activityFactor), a);
}

} // namespace blitz::blitzcoin
