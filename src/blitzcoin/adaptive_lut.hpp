/**
 * @file
 * Activity-adaptive coin->frequency LUT: the CPU-tile extension.
 *
 * Fixed-function accelerators have one power profile, so their LUT is
 * static (coin_lut.hpp). A CPU's power at a given frequency varies
 * with what it runs — the reason Section IV-C excludes CPUs from the
 * paper's implementation. With an activity-counter power proxy
 * (power/activity_proxy.hpp) the firmware can periodically rescale
 * the LUT: if the current workload switches only a fraction `a` of
 * the characterized worst-case capacitance, the same coin budget buys
 * a higher frequency. This class performs that rescaling so the tile
 * always extracts the most performance its coins pay for.
 */

#ifndef BLITZ_BLITZCOIN_ADAPTIVE_LUT_HPP
#define BLITZ_BLITZCOIN_ADAPTIVE_LUT_HPP

#include "coin/allocation.hpp"
#include "coin/ledger.hpp"
#include "power/pf_curve.hpp"

namespace blitz::blitzcoin {

/** Coin->frequency mapping parameterized by measured activity. */
class AdaptiveCoinLut
{
  public:
    /**
     * @param curve worst-case (characterization) power curve.
     * @param scale coin scale of the power domain.
     * @param minActivity floor on the activity factor; prevents a
     *        momentarily idle core from being granted a frequency its
     *        next busy phase cannot afford.
     */
    AdaptiveCoinLut(const power::PfCurve &curve,
                    const coin::CoinScale &scale,
                    double minActivity = 0.2);

    /**
     * Frequency target for a holding under the current activity (MHz).
     * @param has coin count (negative transients map to 0).
     * @param activityFactor fraction of the characterized worst-case
     *        dynamic power the present workload switches, from the
     *        power proxy; 1.0 reproduces the static LUT.
     */
    double freqFor(coin::Coins has, double activityFactor) const;

    /**
     * Actual power drawn at the granted frequency under the activity
     * (mW) — always within the coin budget by construction.
     */
    double powerFor(coin::Coins has, double activityFactor) const;

  private:
    /** Power drawn at frequency f under activity a (mW). */
    double powerAt(double freqMhz, double activityFactor) const;

    const power::PfCurve *curve_;
    coin::CoinScale scale_;
    double minActivity_;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_ADAPTIVE_LUT_HPP
