#include "audit.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "guardian.hpp"
#include "record/provenance.hpp"
#include "record/recorder.hpp"
#include "sim/logging.hpp"

namespace blitz::blitzcoin {

ClusterAudit::ClusterAudit(coin::Coins expected)
    : expected_(expected)
{
    BLITZ_ASSERT(expected >= 0, "provisioned coin total cannot be negative");
}

void
ClusterAudit::track(BlitzCoinUnit &unit)
{
    units_.push_back(&unit);
}

AuditReport
ClusterAudit::audit() const
{
    AuditReport r;
    r.expected = expected_;
    if (plane_) {
        // Streaming census over the SoA columns. Rows no unit writes
        // (unmanaged nodes) stay zeroed and contribute nothing, so the
        // sum equals the unit walk whenever every tracked unit writes
        // through — the invariant the soa_plane_test pins.
        const coin::PlaneCensus c = plane_->census();
        r.counted = c.counted;
        r.crashedUnits = c.crashed;
        r.quarantinedUnits = c.quarantined;
    } else {
        for (const BlitzCoinUnit *u : units_) {
            if (u->quarantined())
                ++r.quarantinedUnits;
            else if (u->crashed())
                ++r.crashedUnits;
            else
                r.counted += u->has();
        }
    }
    r.gap = r.expected - r.counted;
    return r;
}

AuditReport
ClusterAudit::reconcile()
{
    AuditReport r = audit();
    if (r.gap == 0)
        return r;

    std::vector<BlitzCoinUnit *> alive;
    for (BlitzCoinUnit *u : units_) {
        if (!u->crashed() && !u->quarantined())
            alive.push_back(u);
    }
    if (alive.empty())
        return r; // whole cluster down; the next sweep will close it

    // Shares proportional to the max target: reminted coins go where
    // the demand is. A fully idle cluster splits evenly.
    std::vector<coin::Coins> weight(alive.size());
    coin::Coins total_weight = 0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        weight[i] = std::max<coin::Coins>(alive[i]->max(), 0);
        total_weight += weight[i];
    }
    if (total_weight == 0) {
        std::fill(weight.begin(), weight.end(), 1);
        total_weight = static_cast<coin::Coins>(alive.size());
    }

    // Largest-remainder apportionment of |gap| so the correction is
    // exact; ties break on the lower index for determinism.
    const coin::Coins magnitude = std::abs(r.gap);
    const coin::Coins sign = r.gap < 0 ? -1 : 1;
    std::vector<coin::Coins> share(alive.size());
    std::vector<coin::Coins> remainder(alive.size());
    coin::Coins assigned = 0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        share[i] = magnitude * weight[i] / total_weight;
        remainder[i] = magnitude * weight[i] % total_weight;
        assigned += share[i];
    }
    std::vector<std::size_t> order(alive.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&remainder](std::size_t a, std::size_t b) {
                         return remainder[a] > remainder[b];
                     });
    for (std::size_t k = 0; assigned < magnitude; ++k) {
        ++share[order[k % order.size()]];
        ++assigned;
    }

    const sim::Tick tick = clock_ ? clock_() : 0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        if (share[i] == 0)
            continue;
        alive[i]->setHas(alive[i]->has() + sign * share[i]);
        const auto tile = alive[i]->self();
        if (guardian_)
            guardian_->noteGrant(tile, sign * share[i]);
        if (sign > 0) {
            // A remint consumes lost lineages oldest-first, so the
            // recorded lineage range names the crashes it repairs.
            record::ProvenanceLedger::RemintRange span{
                record::ProvenanceLedger::kNoLineage,
                record::ProvenanceLedger::kNoLineage};
            if (prov_)
                span = prov_->remint(tile, share[i], tick);
            if (recorder_)
                recorder_->mint(tick, tile, share[i],
                                static_cast<std::int64_t>(span.first),
                                static_cast<std::int64_t>(span.last),
                                /*remintFlag=*/true);
        } else {
            if (prov_)
                prov_->burn(tile, share[i], tick);
            if (recorder_)
                recorder_->burn(tick, tile, share[i]);
        }
    }
    ++gapsClosed_;
    if (sign > 0)
        minted_ += magnitude;
    else
        burned_ += magnitude;
    return r;
}

std::string
ClusterAudit::describeGap() const
{
    return prov_ ? prov_->gapReport() : std::string{};
}

} // namespace blitz::blitzcoin
