/**
 * @file
 * Decentralized coin audit / remint watchdog.
 *
 * The exchange protocol conserves coins against any loss it can
 * reconcile (see unit.hpp), but two faults are beyond its reach: a
 * crashed tile destroys the coins in its registers, and an exchange
 * whose outcome was evicted from the partner's served log leaves one
 * half applied. The paper's Section VI-C sketches the remedy — a slow,
 * low-priority audit sweep that re-counts the cluster and mints or
 * burns the difference against the provisioned total.
 *
 * The model implements the audit as a cluster-scoped watchdog. In the
 * RTL this would be a rotating-token scan on the service plane; here
 * the scan's *outcome* is modeled (the census plus the largest-remainder
 * correction), keeping the packet cost out of the measured traffic
 * while preserving the architectural contract: after reconcile(), the
 * sum over alive units equals the seeded total exactly.
 */

#ifndef BLITZ_BLITZCOIN_AUDIT_HPP
#define BLITZ_BLITZCOIN_AUDIT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coin/ledger.hpp"
#include "coin/state_plane.hpp"
#include "unit.hpp"

namespace blitz::record {
class FlightRecorder;
class ProvenanceLedger;
}

namespace blitz::blitzcoin {

class IntegrityGuardian;

/** Result of one audit sweep. */
struct AuditReport
{
    /** Coins counted across alive (non-crashed) units. */
    coin::Coins counted = 0;
    /** Provisioned total the cluster should hold. */
    coin::Coins expected = 0;
    /** expected - counted: positive means coins were destroyed. */
    coin::Coins gap = 0;
    /** Units skipped because they were crashed at sweep time. */
    std::size_t crashedUnits = 0;
    /** Units skipped because the guardian quarantined them. */
    std::size_t quarantinedUnits = 0;
};

/**
 * Audit watchdog over a set of BlitzCoin units.
 *
 * Does not own the units; the harness (ChaosCluster, Soc) registers
 * them once and calls audit()/reconcile() at its chosen cadence.
 */
class ClusterAudit
{
  public:
    /** @param expected the provisioned cluster coin total. */
    explicit ClusterAudit(coin::Coins expected);

    /** Register a unit in the sweep (not owned; must outlive this). */
    void track(BlitzCoinUnit &unit);

    /**
     * Census from the SoA state plane (nullptr reverts to the unit
     * walk). Every tracked unit must write through to @p plane —
     * attach it to the units first — or the census diverges from the
     * registers. With the plane attached, audit() is a linear scan of
     * two packed columns instead of a pointer chase through N
     * ~500-byte unit objects; at mega-mesh sizes that turns the sweep
     * from a cache-miss walk into streaming reads. reconcile() still
     * repairs through the unit registers (the authority) either way.
     */
    void attachPlane(const coin::StatePlane *plane) { plane_ = plane; }

    coin::Coins expected() const { return expected_; }

    /** Retarget the provisioned total (cluster reprovisioning). */
    void setExpected(coin::Coins expected) { expected_ = expected; }

    /** Census of the alive units; no state is modified. */
    AuditReport audit() const;

    /**
     * Close the gap: mint (or burn) the difference across alive units,
     * each share proportional to the unit's max target — coins return
     * where the demand is — with largest-remainder rounding so the
     * correction is exact. Idle sweeps (gap 0) are free. Returns the
     * pre-correction report.
     */
    AuditReport reconcile();

    /** Sweeps that found a non-zero gap. */
    std::uint64_t gapsClosed() const { return gapsClosed_; }

    /** Total coins minted (positive gaps) across all sweeps. */
    coin::Coins coinsMinted() const { return minted_; }

    /** Total coins burned (negative gaps) across all sweeps. */
    coin::Coins coinsBurned() const { return burned_; }

    /**
     * Attach the flight recorder / provenance ledger. reconcile()
     * then journals every correction as Remint/Burn records and
     * threads audit remints through the ledger's lost-lineage FIFO —
     * the link that turns "gap of N" into a causal chain.
     */
    void
    setRecorder(record::FlightRecorder *rec,
                record::ProvenanceLedger *prov = nullptr)
    {
        recorder_ = rec;
        prov_ = prov;
    }

    /** Tick source for journaled corrections (harness-provided). */
    void
    setClock(std::function<sim::Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    /**
     * Attach the integrity guardian. reconcile() then reports every
     * correction as a legitimate grant so the guardian's conservation
     * books don't flag audit remints as counterfeit coins.
     */
    void setGuardian(IntegrityGuardian *guardian)
    {
        guardian_ = guardian;
    }

    /**
     * The causal chains behind any conservation violation the ledger
     * has seen: which lineages were destroyed where, how they got
     * there, and whether a sweep has reminted them yet. Empty when no
     * ledger is attached or nothing was ever lost.
     */
    std::string describeGap() const;

  private:
    coin::Coins expected_;
    std::vector<BlitzCoinUnit *> units_;
    const coin::StatePlane *plane_ = nullptr; ///< census source; may be null
    record::FlightRecorder *recorder_ = nullptr;
    record::ProvenanceLedger *prov_ = nullptr;
    IntegrityGuardian *guardian_ = nullptr;
    /** Tick source for journaled corrections (see setClock). */
    std::function<sim::Tick()> clock_;
    std::uint64_t gapsClosed_ = 0;
    coin::Coins minted_ = 0;
    coin::Coins burned_ = 0;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_AUDIT_HPP
