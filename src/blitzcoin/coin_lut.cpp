#include "coin_lut.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace blitz::blitzcoin {

CoinLut::CoinLut(const power::PfCurve &curve,
                 const coin::CoinScale &scale, int coinBits)
    : curve_(&curve)
{
    BLITZ_ASSERT(coinBits >= 2 && coinBits <= 16,
                 "coin precision out of range");
    const double mw_per_coin = scale.mwPerCoin();
    BLITZ_ASSERT(mw_per_coin > 0.0, "coin scale not initialized");

    const std::size_t entries = std::size_t{1} << coinBits;
    table_.reserve(entries);
    for (std::size_t c = 0; c < entries; ++c) {
        double budget = static_cast<double>(c) * mw_per_coin;
        table_.push_back(curve.freqForPower(budget));
    }
}

double
CoinLut::freqFor(coin::Coins has) const
{
    if (has <= 0)
        return 0.0; // transient underflow parks the clock
    auto idx = std::min<std::size_t>(static_cast<std::size_t>(has),
                                     table_.size() - 1);
    return table_[idx];
}

double
CoinLut::powerFor(coin::Coins has) const
{
    return curve_->powerAt(freqFor(has));
}

} // namespace blitz::blitzcoin
