/**
 * @file
 * Coin-count to frequency-target lookup table.
 *
 * Step (2) of the hardware pipeline (Section IV-A): a LUT converts the
 * tile's coin count into a frequency target based on an offline
 * pre-characterization of the tile's power profile. One entry per coin
 * value — 6-bit coins give the 64 power levels the paper highlights
 * against the 2-5 levels of prior designs.
 */

#ifndef BLITZ_BLITZCOIN_COIN_LUT_HPP
#define BLITZ_BLITZCOIN_COIN_LUT_HPP

#include <vector>

#include "coin/allocation.hpp"
#include "coin/ledger.hpp"
#include "power/pf_curve.hpp"

namespace blitz::blitzcoin {

/** Per-tile table mapping held coins to the UVFR frequency target. */
class CoinLut
{
  public:
    /**
     * Pre-characterize a tile.
     * @param curve the tile's power/frequency curve.
     * @param scale coin scale of the power domain (mW per coin).
     * @param coinBits counter precision; table has 2^coinBits entries.
     */
    CoinLut(const power::PfCurve &curve, const coin::CoinScale &scale,
            int coinBits = 6);

    /**
     * Frequency target for a holding (MHz). Negative transient counts
     * map to 0; counts beyond the table saturate at the last entry.
     */
    double freqFor(coin::Coins has) const;

    /** Number of table entries. */
    std::size_t size() const { return table_.size(); }

    /** Power the tile consumes when granted @p has coins (mW). */
    double powerFor(coin::Coins has) const;

  private:
    std::vector<double> table_; ///< MHz per coin count
    const power::PfCurve *curve_;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_COIN_LUT_HPP
