#include "csr.hpp"

#include <cmath>

namespace blitz::blitzcoin {

CsrBlock::CsrBlock(BlitzCoinUnit &unit)
    : unit_(&unit)
{
}

std::int64_t
CsrBlock::read(CsrReg reg) const
{
    switch (reg) {
      case CsrReg::CoinCount:
        return unit_->has();
      case CsrReg::CoinTarget:
        return unit_->max();
      case CsrReg::ExchangesInit:
        return static_cast<std::int64_t>(unit_->exchangesInitiated());
      case CsrReg::ExchangesMoved:
        return static_cast<std::int64_t>(unit_->exchangesMoved());
      case CsrReg::MaxCoins:
        return unit_->max();
      case CsrReg::ThermalCap:
        return unit_->config().thermalCap;
      case CsrReg::RefreshBase:
        return static_cast<std::int64_t>(
            unit_->config().backoff.baseInterval);
      case CsrReg::BackoffLambda8:
        return static_cast<std::int64_t>(
            std::llround(unit_->config().backoff.lambda * 8.0));
      case CsrReg::BackoffK:
        return static_cast<std::int64_t>(unit_->config().backoff.k);
      case CsrReg::PairingPeriod:
        return unit_->config().pairing.period;
      case CsrReg::Enable:
        return unit_->running() ? 1 : 0;
    }
    return 0; // unmapped addresses read as zero
}

bool
CsrBlock::write(CsrReg reg, std::int64_t value)
{
    UnitConfig cfg = unit_->config();
    switch (reg) {
      case CsrReg::MaxCoins:
        if (value < 0)
            return false;
        unit_->setMax(value);
        return true;
      case CsrReg::ThermalCap:
        cfg.thermalCap = value < 0 ? coin::uncapped : value;
        break;
      case CsrReg::RefreshBase:
        if (value < 1)
            return false;
        cfg.backoff.baseInterval = static_cast<sim::Tick>(value);
        cfg.backoff.minInterval = std::min<sim::Tick>(
            cfg.backoff.minInterval, cfg.backoff.baseInterval);
        break;
      case CsrReg::BackoffLambda8:
        if (value < 8) // lambda < 1 would shrink on idle
            return false;
        cfg.backoff.lambda = static_cast<double>(value) / 8.0;
        break;
      case CsrReg::BackoffK:
        if (value < 0)
            return false;
        cfg.backoff.k = static_cast<sim::Tick>(value);
        break;
      case CsrReg::PairingPeriod:
        if (value < 2)
            return false;
        cfg.pairing.period = static_cast<unsigned>(value);
        break;
      case CsrReg::Enable:
        if (value == 1) {
            unit_->start();
        } else if (value == 0) {
            unit_->stop();
        } else {
            return false;
        }
        return true;
      default:
        return false; // status registers are read-only
    }
    unit_->reconfigure(cfg);
    return true;
}

} // namespace blitz::blitzcoin
