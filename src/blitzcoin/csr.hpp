/**
 * @file
 * Control and Status Registers of the NoC-domain socket (Fig. 11).
 *
 * The ESP integration places a CSR block next to the BlitzCoin FSM:
 * configuration registers for the coin exchange (refresh cadence,
 * back-off law, pairing period, thermal cap, coin target) and
 * status registers (coin count, exchange counters) that software on
 * the CPU tile reads and writes through memory-mapped NoC requests.
 * This model services RegRead/RegWrite packets and applies
 * configuration changes to a live BlitzCoinUnit, which is how the
 * paper's bare-metal programs select power-management strategies at
 * runtime.
 */

#ifndef BLITZ_BLITZCOIN_CSR_HPP
#define BLITZ_BLITZCOIN_CSR_HPP

#include <cstdint>

#include "unit.hpp"

namespace blitz::blitzcoin {

/** Register addresses within the BlitzCoin CSR block. */
enum class CsrReg : std::int64_t
{
    // -- status (read-only) ------------------------------------------
    CoinCount = 0x00,     ///< current has (sign-extended)
    CoinTarget = 0x08,    ///< current max
    ExchangesInit = 0x10, ///< exchanges initiated
    ExchangesMoved = 0x18,///< exchanges that moved coins
    // -- configuration (read/write) ----------------------------------
    MaxCoins = 0x20,      ///< program the activity target
    ThermalCap = 0x28,    ///< per-tile coin cap
    RefreshBase = 0x30,   ///< base refresh interval (cycles)
    BackoffLambda8 = 0x38,///< lambda in 1/8ths (fixed point)
    BackoffK = 0x40,      ///< additive shrink k
    PairingPeriod = 0x48, ///< random pairing every Nth exchange
    Enable = 0x50,        ///< 1 = exchanging, 0 = stopped
};

/**
 * CSR front-end for one BlitzCoin unit.
 *
 * The owning tile routes RegRead/RegWrite packets whose payload[3]
 * carries a CsrReg address into read()/write(); coin-exchange packets
 * keep going straight to the unit. Configuration writes that affect
 * protocol parameters rebuild the unit's timer/pairing state through
 * its reconfigure hook.
 */
class CsrBlock
{
  public:
    /** @param unit the unit this block fronts (must outlive it). */
    explicit CsrBlock(BlitzCoinUnit &unit);

    /** Read a register; unknown addresses read as 0. */
    std::int64_t read(CsrReg reg) const;

    /**
     * Write a register; writes to read-only/unknown addresses are
     * ignored (matching memory-mapped-IO convention).
     * @return true when the write took effect.
     */
    bool write(CsrReg reg, std::int64_t value);

    /** Packet-level service: @return reply payload for a RegRead. */
    std::int64_t
    handleRead(std::int64_t addr) const
    {
        return read(static_cast<CsrReg>(addr));
    }

    /** Packet-level service for a RegWrite. */
    bool
    handleWrite(std::int64_t addr, std::int64_t value)
    {
        return write(static_cast<CsrReg>(addr), value);
    }

  private:
    BlitzCoinUnit *unit_;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_CSR_HPP
