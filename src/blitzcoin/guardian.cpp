#include "guardian.hpp"

#include <algorithm>
#include <bit>

#include "record/provenance.hpp"
#include "record/recorder.hpp"
#include "trace/tracer.hpp"

namespace blitz::blitzcoin {

IntegrityGuardian::IntegrityGuardian(const GuardianConfig &cfg)
    : cfg_(cfg)
{
}

void
IntegrityGuardian::track(BlitzCoinUnit &unit)
{
    TileState &st = tiles_[unit.self()];
    BLITZ_ASSERT(st.unit == nullptr, "unit tracked twice");
    st.unit = &unit;
    st.sentry = std::make_unique<GuardSentry>();
    unit.setSentry(st.sentry.get());
}

void
IntegrityGuardian::noteGrant(noc::NodeId tile, coin::Coins amount)
{
    auto it = tiles_.find(tile);
    if (it != tiles_.end())
        it->second.shadow += amount;
}

TileHealth
IntegrityGuardian::health(noc::NodeId tile) const
{
    auto it = tiles_.find(tile);
    return it == tiles_.end() ? TileHealth::Healthy
                              : it->second.health;
}

coin::Coins
IntegrityGuardian::shadow(noc::NodeId tile) const
{
    auto it = tiles_.find(tile);
    return it == tiles_.end() ? 0 : it->second.shadow;
}

coin::Coins
IntegrityGuardian::deviation(noc::NodeId tile) const
{
    auto it = tiles_.find(tile);
    if (it == tiles_.end())
        return 0;
    return it->second.unit->has() - it->second.shadow;
}

int
IntegrityGuardian::strikes(noc::NodeId tile) const
{
    auto it = tiles_.find(tile);
    return it == tiles_.end() ? 0 : it->second.strikes;
}

void
IntegrityGuardian::recordEvent(std::uint8_t event, noc::NodeId tile,
                               std::int64_t strikes, std::int64_t mask,
                               std::int64_t evidence)
{
    const sim::Tick now = clock_ ? clock_() : 0;
    if (recorder_)
        recorder_->guardian(now, event, tile, strikes, mask, evidence);
    if (tracer_) {
        static const char *const names[] = {"detect", "warn",
                                            "throttle", "quarantine",
                                            "amnesty"};
        tracer_->instant("guardian", names[event], tile, now,
                         {{"strikes", strikes},
                          {"mask", mask},
                          {"evidence", evidence}});
    }
}

void
IntegrityGuardian::sweep()
{
    ++sweeps_;
    for (auto &[id, st] : tiles_) {
        st.flowAgainst = 0;
        st.spamEvidence = 0;
        st.staleEvidence = 0;
    }

    // Phase A: fold every live sentry window into counterparty
    // evidence. A tile's own sentry never touches its own books —
    // that is the property a liar cannot subvert.
    for (auto &[id, st] : tiles_) {
        if (st.health == TileHealth::Quarantined) {
            st.sentry->clearWindow();
            continue;
        }
        for (const auto &[partner, w] : st.sentry->links()) {
            auto it = tiles_.find(partner);
            if (it == tiles_.end())
                continue;
            it->second.flowAgainst += w.net;
            it->second.spamEvidence += w.served + w.throttled;
            it->second.staleEvidence += w.stale;
        }
        st.sentry->clearWindow();
        st.unit->resetThrottleWindow();
    }

    // Demand-weighted fair share for the hoard detector, over the
    // countable population (matches the audit census).
    coin::Coins counted = 0;
    coin::Coins totalMax = 0;
    for (const auto &[id, st] : tiles_) {
        if (st.health == TileHealth::Quarantined ||
            st.unit->crashed())
            continue;
        counted += st.unit->has();
        totalMax += std::max<coin::Coins>(st.unit->max(), 0);
    }
    const double alpha =
        totalMax > 0
            ? static_cast<double>(counted) /
                  static_cast<double>(totalMax)
            : 0.0;

    // Phase B: shadow update + detectors + escalation, node order.
    // Quarantines are deferred to the end so shun/rebaseline cannot
    // perturb detector evaluation of later tiles in the same sweep.
    std::vector<noc::NodeId> quarantineNow;
    for (auto &[id, st] : tiles_) {
        if (st.health == TileHealth::Quarantined)
            continue;
        if (st.unit->crashed()) {
            // Architectural state is gone; the books restart from the
            // counter the tile revives with.
            st.shadow = 0;
            st.lastDev = 0;
            st.lastExcess = 0;
            st.consConsec = st.hoardConsec = st.spamConsec = 0;
            st.wasCrashed = true;
            continue;
        }
        st.shadow -= st.flowAgainst;
        if (st.wasCrashed) {
            // First sweep back up: resync and sit this window out —
            // exchanges straddling the revival are unattributable.
            st.shadow = st.unit->has();
            st.lastDev = 0;
            st.lastExcess = 0;
            st.consConsec = st.hoardConsec = st.spamConsec = 0;
            st.wasCrashed = false;
            continue;
        }

        std::uint32_t mask = 0;
        const coin::Coins dev = st.unit->has() - st.shadow;
        if (dev > cfg_.conservationSlack && dev > st.lastDev) {
            if (++st.consConsec >= cfg_.conservationPersist)
                mask |= kDetConservation;
        } else {
            st.consConsec = 0;
        }
        st.lastDev = dev;

        const coin::Coins fair = static_cast<coin::Coins>(
            alpha *
            static_cast<double>(
                std::max<coin::Coins>(st.unit->max(), 0)));
        const coin::Coins excess = st.unit->has() - fair;
        if (excess >= cfg_.hoardExcessMin && excess >= st.lastExcess) {
            if (++st.hoardConsec >= cfg_.hoardPersist)
                mask |= kDetHoard;
        } else {
            st.hoardConsec = 0;
        }
        st.lastExcess = excess;

        if (st.spamEvidence >= cfg_.spamServedMax) {
            if (++st.spamConsec >= cfg_.spamPersist)
                mask |= kDetSpam;
        } else {
            st.spamConsec = 0;
        }

        if (st.staleEvidence >= cfg_.staleWindowMax)
            mask |= kDetStale;

        if (mask == 0)
            continue;
        if (mask & kDetConservation) {
            ++detections_;
            recordEvent(kGuardianDetect, id, st.strikes,
                        kDetConservation, dev);
        }
        if (mask & kDetHoard) {
            ++detections_;
            recordEvent(kGuardianDetect, id, st.strikes, kDetHoard,
                        excess);
        }
        if (mask & kDetSpam) {
            ++detections_;
            recordEvent(kGuardianDetect, id, st.strikes, kDetSpam,
                        static_cast<std::int64_t>(st.spamEvidence));
        }
        if (mask & kDetStale) {
            ++detections_;
            recordEvent(kGuardianDetect, id, st.strikes, kDetStale,
                        static_cast<std::int64_t>(st.staleEvidence));
        }
        st.strikes += std::popcount(mask);
        escalate(id, st, quarantineNow);
    }
    // One conviction per sweep: a forger's reports pollute its
    // victims' books fast enough that they can cross the threshold in
    // the same sweep it does. Convict the strongest case only (most
    // strikes, then largest deviation, then lowest id) — the amnesty
    // inside quarantineTile() vacates the rest, and real co-attackers
    // re-earn their conviction from live evidence within a few
    // windows.
    if (!quarantineNow.empty()) {
        noc::NodeId best = quarantineNow.front();
        for (std::size_t i = 1; i < quarantineNow.size(); ++i) {
            const noc::NodeId cand = quarantineNow[i];
            const TileState &b = tiles_.at(best);
            const TileState &c = tiles_.at(cand);
            const coin::Coins bdev = b.unit->has() - b.shadow;
            const coin::Coins cdev = c.unit->has() - c.shadow;
            if (c.strikes > b.strikes ||
                (c.strikes == b.strikes && cdev > bdev))
                best = cand;
        }
        quarantineTile(best);
    }
}

void
IntegrityGuardian::escalate(noc::NodeId id, TileState &st,
                            std::vector<noc::NodeId> &quarantineNow)
{
    if (st.strikes >= cfg_.quarantineStrikes &&
        st.health < TileHealth::Quarantined) {
        quarantineNow.push_back(id);
        return;
    }
    if (st.strikes >= cfg_.throttleStrikes &&
        st.health < TileHealth::Throttled) {
        st.health = TileHealth::Throttled;
        ++throttles_;
        for (auto &[oid, ost] : tiles_) {
            if (oid != id && ost.health != TileHealth::Quarantined)
                ost.unit->setServeThrottle(id,
                                           cfg_.throttleServeBudget);
        }
        recordEvent(kGuardianThrottle, id, st.strikes, 0,
                    cfg_.throttleServeBudget);
        if (onEscalate)
            onEscalate(id, TileHealth::Throttled);
        return;
    }
    if (st.strikes >= cfg_.warnStrikes &&
        st.health < TileHealth::Warned) {
        st.health = TileHealth::Warned;
        ++warnings_;
        recordEvent(kGuardianWarn, id, st.strikes, 0, 0);
        if (onEscalate)
            onEscalate(id, TileHealth::Warned);
    }
}

void
IntegrityGuardian::quarantineTile(noc::NodeId id)
{
    TileState &st = tiles_.at(id);
    if (st.health == TileHealth::Quarantined)
        return;
    st.health = TileHealth::Quarantined;
    ++quarantines_;
    const coin::Coins fenced = st.unit->has();
    st.unit->quarantine();
    for (auto &[oid, ost] : tiles_) {
        if (oid != id && ost.health != TileHealth::Quarantined)
            ost.unit->shun(id);
    }
    // Hand the tile's lineages to the ledger as lost: the very next
    // audit reconcile remints them to honest tiles with a causal
    // chain, reclaiming the fenced budget.
    if (prov_)
        prov_->crash(id, clock_ ? clock_() : 0);
    recordEvent(kGuardianQuarantine, id, st.strikes, 0, fenced);
    if (onEscalate)
        onEscalate(id, TileHealth::Quarantined);
    // Amnesty: a convicted liar's testimony is stricken. Its forged
    // reports have been polluting its victims' books (a forged reply
    // inflates the victim's deviation as fast as a share of the
    // forger's own), so every verdict that may have ridden on them is
    // vacated — books re-baselined, strikes cleared, warn/throttle
    // state lifted. Honest victims come out clean; real co-attackers
    // keep generating evidence and re-convict themselves.
    for (auto &[oid, ost] : tiles_) {
        if (ost.health == TileHealth::Quarantined)
            continue;
        ost.shadow = ost.unit->crashed() ? 0 : ost.unit->has();
        ost.lastDev = 0;
        ost.lastExcess = 0;
        ost.consConsec = ost.hoardConsec = ost.spamConsec = 0;
        if (ost.strikes > 0 || ost.health != TileHealth::Healthy) {
            recordEvent(kGuardianAmnesty, oid, ost.strikes, 0, 0);
            ost.strikes = 0;
            ost.health = TileHealth::Healthy;
            for (auto &[uid, ust] : tiles_) {
                if (ust.health != TileHealth::Quarantined)
                    ust.unit->clearServeThrottle(oid);
            }
        }
    }
}

} // namespace blitz::blitzcoin
