/**
 * @file
 * Runtime integrity guardian: neighbor-local detection, escalation,
 * and quarantine of Byzantine tiles (DESIGN.md ch.8).
 *
 * The paper's conservation and convergence claims assume every tile
 * runs the protocol honestly. The guardian removes that assumption at
 * runtime: each tracked unit carries a GuardSentry — an observation
 * tap recording, per link, the coins this tile actually gained from
 * each counterparty plus serve/stale/throttle evidence — and the
 * guardian folds those windows into per-tile shadow books on the
 * ClusterAudit cadence.
 *
 * The accounting is counterparty-only: tile T's shadow balance is its
 * granted coins minus what *other* tiles' sentries report having
 * gained from T. A tile's own sentry never feeds its own shadow, so a
 * compromised tile cannot talk its books straight — every coin it
 * counterfeits (local inflation, forged exchange replies) shows up as
 * a strictly growing deviation between its architectural counter and
 * its shadow. Hoarding, request spamming, and stale replays get their
 * own detectors (see the table in DESIGN.md ch.8).
 *
 * Escalation is warn -> throttle -> quarantine, with one *conviction*
 * per sweep: of the tiles past the quarantine threshold, only the
 * strongest case (most strikes, then largest deviation) is removed,
 * and every survivor is granted amnesty — its strikes, escalation
 * state, and shadow books are vacated. A liar's forged reports
 * pollute its victims' books at a rate comparable to its own, so
 * victims can reach the threshold in the very sweep that convicts the
 * attacker; striking the convicted tile's testimony and re-trying
 * everyone against live evidence is what keeps honest tiles out of
 * quarantine, while real co-attackers re-convict themselves within a
 * few windows from evidence they cannot stop generating. Quarantine
 * fences the tile's counter, makes every neighbor shun it (re-forming
 * the exchange neighborhood), hands its lineages to the provenance
 * ledger as lost, and lets the ClusterAudit remint watchdog reclaim
 * the fenced coins — total budget is conserved within a bounded leak
 * window. Every detection, escalation, and amnesty is journaled to
 * the flight recorder, so verdicts are replay-auditable.
 *
 * Sharding: sentry writes happen at the owning unit's locus (single
 * writer inside a superstep); sweep() runs in the serial lane between
 * supersteps, where it is the only active context — the escalation
 * state it rewrites across units is race-free by the BSP contract,
 * and sweeps are bit-identical at any shard count.
 */

#ifndef BLITZ_BLITZCOIN_GUARDIAN_HPP
#define BLITZ_BLITZCOIN_GUARDIAN_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "unit.hpp"

namespace blitz::blitzcoin {

/**
 * Per-tile observation tap. The owning unit records what it actually
 * gained per counterparty (noteFlow: the applied delta, which even a
 * compromised unit cannot falsify — it is literally the counter
 * adjustment) plus the serve/stale/throttle evidence counters. The
 * guardian reads and clears the window once per sweep.
 */
class GuardSentry
{
  public:
    /** One counterparty's window of observations. */
    struct LinkWindow
    {
        coin::Coins net = 0;          ///< coins gained from the peer
        std::uint32_t served = 0;     ///< 1-way serves for the peer
        std::uint32_t stale = 0;      ///< stale/replayed updates seen
        std::uint32_t throttled = 0;  ///< serves dropped by throttle
    };

    void
    noteFlow(noc::NodeId partner, coin::Coins delta)
    {
        links_[partner].net += delta;
    }

    void noteServed(noc::NodeId initiator) { ++links_[initiator].served; }
    void noteStale(noc::NodeId from) { ++links_[from].stale; }

    void
    noteThrottled(noc::NodeId initiator)
    {
        ++links_[initiator].throttled;
    }

    /** Deterministic (node-ordered) view of the current window. */
    const std::map<noc::NodeId, LinkWindow> &links() const
    {
        return links_;
    }

    void clearWindow() { links_.clear(); }

  private:
    std::map<noc::NodeId, LinkWindow> links_;
};

/** Detector bits (recorder "mask" field / strike accounting). */
inline constexpr std::uint32_t kDetConservation = 1u << 0;
inline constexpr std::uint32_t kDetHoard = 1u << 1;
inline constexpr std::uint32_t kDetSpam = 1u << 2;
inline constexpr std::uint32_t kDetStale = 1u << 3;

/** Guardian recorder event codes (record::Record flag field). */
inline constexpr std::uint8_t kGuardianDetect = 0;
inline constexpr std::uint8_t kGuardianWarn = 1;
inline constexpr std::uint8_t kGuardianThrottle = 2;
inline constexpr std::uint8_t kGuardianQuarantine = 3;
inline constexpr std::uint8_t kGuardianAmnesty = 4;

/** Escalation ladder per tile (monotonic). */
enum class TileHealth : std::uint8_t
{
    Healthy = 0,
    Warned = 1,
    Throttled = 2,
    Quarantined = 3,
};

/**
 * Detector thresholds and the escalation ladder. Defaults are tuned
 * against the honest protocol's worst case on the 4096-tick audit
 * cadence (see DESIGN.md ch.8 for the derivations):
 *  - conservation: a discontent tile initiates at most every
 *    minInterval + RTT ~= 11 ticks; in-flight exchanges straddling a
 *    sweep skew the books by at most a few pairwise deltas, so the
 *    slack sits above that and the deviation must keep *growing*.
 *  - spam: the honest initiation ceiling is ~372 serves per window
 *    (4096 / (minInterval 8 + RTT 3)); a spammer driving its cadence
 *    to 2-4 ticks lands at 600+.
 *  - hoard: a tile's excess over its demand-weighted fair share must
 *    be non-draining for several consecutive windows — convergence
 *    transients and partition imbalances drain or end sooner.
 */
struct GuardianConfig
{
    /** Conservation deviation below this is in-flight noise. */
    coin::Coins conservationSlack = 48;
    /** Consecutive growing-deviation windows before a strike. */
    int conservationPersist = 2;
    /** Serves (incl. throttled attempts) per window that spell spam. */
    std::uint32_t spamServedMax = 384;
    /** Consecutive spam windows before a strike. */
    int spamPersist = 2;
    /** Minimum excess over the fair share to count as hoarding. */
    coin::Coins hoardExcessMin = 16;
    /** Consecutive non-draining excess windows before a strike. */
    int hoardPersist = 3;
    /** Stale/replayed updates per window before a strike. */
    std::uint32_t staleWindowMax = 12;
    /** Strike thresholds of the escalation ladder. */
    int warnStrikes = 1;
    int throttleStrikes = 2;
    int quarantineStrikes = 4;
    /** Per-initiator serve budget per window once throttled. */
    std::uint32_t throttleServeBudget = 2;
    /**
     * Bounded leak window: the cluster total may deviate from the
     * provisioned budget by at most this many coins once every
     * attacker is quarantined and the audit has swept (acceptance
     * bound for tests/benches, not a detector input).
     */
    coin::Coins leakBound = 96;
};

/**
 * The guardian proper. track() every unit of the cluster (including
 * the ones that later turn out to be compromised — the guardian has
 * no side channel), wire noteGrant() into every legitimate mint/burn
 * site (provisioning, audit corrections), and call sweep() on the
 * audit cadence from the serial lane, *before* ClusterAudit::
 * reconcile() so a quarantine decision is visible to the census that
 * reclaims the fenced coins in the same tick.
 */
class IntegrityGuardian
{
  public:
    explicit IntegrityGuardian(const GuardianConfig &cfg = {});

    /** Track @p unit: installs its sentry tap. */
    void track(BlitzCoinUnit &unit);

    /**
     * Book a legitimate external grant (provisioning setHas, audit
     * mint/burn share) against @p tile's shadow balance. Keeping the
     * books in sync here is what makes audit corrections invisible to
     * the conservation detector.
     */
    void noteGrant(noc::NodeId tile, coin::Coins amount);

    /**
     * One detection pass: absorb every sentry window, update the
     * shadow books, run the detectors, escalate. Serial-lane only.
     */
    void sweep();

    TileHealth health(noc::NodeId tile) const;
    coin::Coins shadow(noc::NodeId tile) const;
    /** Architectural counter minus shadow balance (counterfeit). */
    coin::Coins deviation(noc::NodeId tile) const;
    int strikes(noc::NodeId tile) const;

    std::uint64_t sweepsRun() const { return sweeps_; }
    std::uint64_t detections() const { return detections_; }
    std::uint64_t warnings() const { return warnings_; }
    std::uint64_t throttles() const { return throttles_; }
    std::uint64_t quarantines() const { return quarantines_; }

    /**
     * Escalation callback (tile, new health), fired from the serial
     * lane after the transition is applied — the PM layer hooks the
     * safe-frequency fallback here.
     */
    std::function<void(noc::NodeId, TileHealth)> onEscalate;

    /**
     * Attach the flight recorder (every detection and escalation is
     * journaled) and optionally the provenance ledger (a quarantined
     * tile's lineages are booked as lost so the remint watchdog
     * reclaims them with a causal chain).
     */
    void
    setRecorder(record::FlightRecorder *rec,
                record::ProvenanceLedger *prov = nullptr)
    {
        recorder_ = rec;
        prov_ = prov;
    }

    void setTrace(trace::Tracer *t) { tracer_ = t; }

    /** Clock for journaled event timestamps (the anchor queue's). */
    void setClock(std::function<sim::Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    const GuardianConfig &config() const { return cfg_; }

  private:
    struct TileState
    {
        BlitzCoinUnit *unit = nullptr;
        std::unique_ptr<GuardSentry> sentry;
        coin::Coins shadow = 0;   ///< granted - counterparty-observed
        coin::Coins lastDev = 0;  ///< previous sweep's deviation
        coin::Coins lastExcess = 0;
        int consConsec = 0;
        int hoardConsec = 0;
        int spamConsec = 0;
        int strikes = 0;
        TileHealth health = TileHealth::Healthy;
        bool wasCrashed = false; ///< resync the books on revival
        // Per-sweep scratch (counterparty evidence folded in phase A).
        coin::Coins flowAgainst = 0;
        std::uint64_t spamEvidence = 0;
        std::uint64_t staleEvidence = 0;
    };

    void recordEvent(std::uint8_t event, noc::NodeId tile,
                     std::int64_t strikes, std::int64_t mask,
                     std::int64_t evidence);
    void escalate(noc::NodeId id, TileState &st,
                  std::vector<noc::NodeId> &quarantineNow);
    void quarantineTile(noc::NodeId id);

    GuardianConfig cfg_;
    std::map<noc::NodeId, TileState> tiles_;
    record::FlightRecorder *recorder_ = nullptr;
    record::ProvenanceLedger *prov_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    std::function<sim::Tick()> clock_;
    std::uint64_t sweeps_ = 0;
    std::uint64_t detections_ = 0;
    std::uint64_t warnings_ = 0;
    std::uint64_t throttles_ = 0;
    std::uint64_t quarantines_ = 0;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_GUARDIAN_HPP
