#include "unit.hpp"

namespace blitz::blitzcoin {

namespace {

/** Guard interval after which a lost exchange is abandoned (cycles). */
constexpr sim::Tick exchangeTimeout = 512;

/** Re-poll delay when the FSM is busy with an in-flight exchange. */
constexpr sim::Tick busyRetry = 4;

} // namespace

BlitzCoinUnit::BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                             noc::NodeId self, const UnitConfig &cfg,
                             std::uint64_t seed)
    : eq_(eq), net_(net), self_(self), cfg_(cfg), rng_(seed),
      timer_(cfg.backoff),
      selector_(net.topology(), self, cfg.pairing, rng_)
{
}

BlitzCoinUnit::BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                             noc::NodeId self, const UnitConfig &cfg,
                             const coin::Neighborhood &hood,
                             std::uint64_t seed)
    : eq_(eq), net_(net), self_(self), cfg_(cfg), rng_(seed),
      timer_(cfg.backoff),
      selector_(hood.neighbors, hood.far, cfg.pairing, rng_)
{
}

void
BlitzCoinUnit::reconfigure(const UnitConfig &cfg)
{
    cfg_ = cfg;
    timer_ = coin::BackoffTimer(cfg_.backoff);
    // Rebuild the selector with the same logical neighborhood; copies
    // are taken first because assignment replaces the source lists.
    std::vector<noc::NodeId> neighbors = selector_.neighbors();
    std::vector<noc::NodeId> far = selector_.far();
    selector_ = coin::PartnerSelector(std::move(neighbors),
                                      std::move(far), cfg_.pairing,
                                      rng_);
    if (running_)
        scheduleNext(timer_.interval());
}

void
BlitzCoinUnit::setHas(coin::Coins has)
{
    state_.has = has;
    coinsChanged();
}

void
BlitzCoinUnit::setMax(coin::Coins max)
{
    BLITZ_ASSERT(max >= 0, "max coins cannot be negative");
    state_.max = max;
    // Activity start/end is the trigger for requesting or relinquishing
    // coins: snap the refresh cadence back and fire right away.
    timer_.resetOnActivity();
    if (running_)
        scheduleNext(1);
}

void
BlitzCoinUnit::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleNext(1 + rng_.below(cfg_.backoff.baseInterval));
}

void
BlitzCoinUnit::stop()
{
    running_ = false;
    ++timerGen_; // invalidate any scheduled wakeup
}

void
BlitzCoinUnit::scheduleNext(sim::Tick delay)
{
    const std::uint64_t gen = ++timerGen_;
    eq_.scheduleIn(delay, [this, gen] {
        if (gen != timerGen_ || !running_)
            return;
        initiate();
    });
}

void
BlitzCoinUnit::initiate()
{
    if (awaitingUpdate_ || snapshotHeld_) {
        scheduleNext(busyRetry);
        return;
    }
    if (cfg_.mode == coin::ExchangeMode::FourWay) {
        initiateFourWay();
        return;
    }
    noc::NodeId partner = selector_.next(isolated());
    noc::Packet pkt;
    pkt.src = self_;
    pkt.dst = partner;
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::CoinStatus;
    pkt.payload[0] = state_.has;
    pkt.payload[1] = state_.max;
    pkt.payload[2] = cfg_.thermalCap;
    pkt.payload[3] = 0; // 1-way opening, not a request reply
    net_.send(pkt);
    ++initiated_;
    awaitingUpdate_ = true;

    // Abandon the exchange if the update never lands (packet dropped by
    // a fault-injection harness); the partner's half, if it happened,
    // still conserves coins because the delta is applied on both ends
    // from the same arithmetic.
    const std::uint64_t gen = timerGen_;
    eq_.scheduleIn(exchangeTimeout, [this, gen] {
        if (!awaitingUpdate_ || gen != timerGen_)
            return;
        awaitingUpdate_ = false;
        if (running_)
            scheduleNext(timer_.intervalFor(discontent() || isolated()));
    });
}

void
BlitzCoinUnit::handlePacket(const noc::Packet &pkt)
{
    switch (pkt.type) {
      case noc::MsgType::CoinStatus:
        // payload[3] != 0 marks a status sent in *reply* to our
        // CoinRequest (it carries the round tag); 0 is a 1-way
        // opening.
        if (pkt.payload[3] != 0) {
            collectStatus(pkt);
        } else {
            serveStatus(pkt);
        }
        break;
      case noc::MsgType::CoinRequest:
        serveRequest(pkt);
        break;
      case noc::MsgType::CoinUpdate:
        applyUpdate(pkt);
        break;
      default:
        break; // other service-plane traffic is not ours
    }
}

void
BlitzCoinUnit::serveStatus(const noc::Packet &pkt)
{
    // One FSM cycle to compute the rebalance (Section IV-A).
    eq_.scheduleIn(cfg_.fsmCycles, [this, pkt] {
        coin::TileCoins remote{pkt.payload[0], pkt.payload[1]};
        coin::Coins remote_cap = pkt.payload[2];
        coin::Coins delta = coin::pairwiseDelta(
            remote, state_, remote_cap, cfg_.thermalCap);

        if (delta != 0) {
            state_.has += delta;
            coinsChanged();
        }
        timer_.onExchange(delta != 0);
        iso_.onExchange(delta != 0, remote.max);
        // Receiving coins is evidence of a transition in flight: bring
        // the next self-initiated exchange forward so the wave keeps
        // propagating (a backed-off wakeup may be far in the future).
        if (delta != 0 && running_ && !awaitingUpdate_)
            scheduleNext(timer_.intervalFor(discontent() || isolated()));

        noc::Packet reply;
        reply.src = self_;
        reply.dst = pkt.src;
        reply.plane = noc::Plane::Service;
        reply.type = noc::MsgType::CoinUpdate;
        reply.payload[0] = -delta;
        // Echo this tile's registers so the initiator sees its
        // partner's state too (needed by the isolation detector).
        reply.payload[1] = state_.has;
        reply.payload[2] = state_.max;
        net_.send(reply);
    });
}

void
BlitzCoinUnit::applyUpdate(const noc::Packet &pkt)
{
    coin::Coins delta = pkt.payload[0];
    if (delta != 0) {
        state_.has += delta;
        ++moved_;
        coinsChanged();
    }
    timer_.onExchange(delta != 0);
    iso_.onExchange(delta != 0, pkt.payload[2]);
    if (pkt.payload[3] == 1) {
        // Group (4-way) update from a center tile: apply-only. It
        // must not clear this tile's own in-flight exchange state,
        // but it does release the snapshot lock it corresponds to.
        if (snapshotHeld_ && pkt.src == snapshotHolder_) {
            snapshotHeld_ = false;
            ++snapshotGen_; // retire the pending release timeout
        }
        if (delta != 0 && running_ && !awaitingUpdate_)
            scheduleNext(timer_.intervalFor(discontent() || isolated()));
        return;
    }
    awaitingUpdate_ = false;
    if (running_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::initiateFourWay()
{
    // Algorithm 1: request status from every logical neighbor, then
    // compute the 5-tile fair split and push updates.
    gathered_.clear();
    awaitedStatuses_ = selector_.neighbors().size();
    awaitingUpdate_ = true; // FSM busy until the round completes
    const std::uint64_t gen = ++fourWayGen_;
    ++initiated_;
    for (noc::NodeId n : selector_.neighbors()) {
        noc::Packet pkt;
        pkt.src = self_;
        pkt.dst = n;
        pkt.plane = noc::Plane::Service;
        pkt.type = noc::MsgType::CoinRequest;
        // Round tag: replies echo it so a late reply from a timed-out
        // round can never be gathered into a newer one (which would
        // double-count that neighbor and destabilize the split).
        pkt.payload[0] = static_cast<std::int64_t>(gen);
        net_.send(pkt);
    }
    // Complete with whatever arrived if a reply is lost.
    eq_.scheduleIn(exchangeTimeout, [this, gen] {
        if (gen != fourWayGen_ || !awaitingUpdate_)
            return;
        completeFourWay();
    });
}

void
BlitzCoinUnit::serveRequest(const noc::Packet &pkt)
{
    eq_.scheduleIn(cfg_.fsmCycles, [this, pkt] {
        // The conflict the paper describes (tile C requests B while
        // A-B is in flight): a busy tile does NOT reply. The center
        // completes with the members it could lock; the requester's
        // retry comes on its next refresh.
        if (awaitingUpdate_ || snapshotHeld_)
            return;
        // Freeze the coin count until the center's update lands, so
        // the snapshot it computes with stays valid.
        snapshotHeld_ = true;
        snapshotHolder_ = pkt.src;
        const std::uint64_t sgen = ++snapshotGen_;
        eq_.scheduleIn(exchangeTimeout, [this, sgen] {
            if (snapshotHeld_ && snapshotGen_ == sgen)
                snapshotHeld_ = false; // center died; release
        });

        noc::Packet reply;
        reply.src = self_;
        reply.dst = pkt.src;
        reply.plane = noc::Plane::Service;
        reply.type = noc::MsgType::CoinStatus;
        reply.payload[0] = state_.has;
        reply.payload[1] = state_.max;
        reply.payload[2] = cfg_.thermalCap;
        reply.payload[3] = pkt.payload[0]; // echo the round tag
        net_.send(reply);
    });
}

void
BlitzCoinUnit::collectStatus(const noc::Packet &pkt)
{
    if (!awaitingUpdate_ || cfg_.mode != coin::ExchangeMode::FourWay)
        return; // stale reply from a timed-out round
    if (pkt.payload[3] != static_cast<std::int64_t>(fourWayGen_))
        return; // reply belongs to an earlier, abandoned round
    for (const auto &[node, tc] : gathered_) {
        if (node == pkt.src)
            return; // duplicate delivery
    }
    gathered_.emplace_back(pkt.src,
                           coin::TileCoins{pkt.payload[0],
                                           pkt.payload[1]});
    if (gathered_.size() >= awaitedStatuses_)
        completeFourWay();
}

void
BlitzCoinUnit::completeFourWay()
{
    ++fourWayGen_; // invalidate the timeout guard
    awaitingUpdate_ = false;
    // Concurrent rounds can leave the gathered snapshots inconsistent
    // (a neighbor's coins moved between its status and now); a
    // negative apparent total is the tell. Abort and retry later —
    // part of the synchronization hazard that makes the 4-way
    // datapath more complex than the pairwise one (Section III-B).
    coin::Coins snapshot_total = state_.has;
    for (const auto &[node, tc] : gathered_)
        snapshot_total += tc.has;
    if (!gathered_.empty() && snapshot_total >= 0) {
        std::vector<coin::TileCoins> group;
        group.reserve(gathered_.size() + 1);
        group.push_back(state_);
        for (const auto &[node, tc] : gathered_)
            group.push_back(tc);
        std::vector<coin::Coins> split = coin::groupSplit(group);

        coin::Coins out_total = 0;
        bool moved = false;
        for (std::size_t k = 0; k < gathered_.size(); ++k) {
            coin::Coins delta = split[k + 1] - gathered_[k].second.has;
            out_total += delta;
            if (delta != 0)
                moved = true;
            noc::Packet upd;
            upd.src = self_;
            upd.dst = gathered_[k].first;
            upd.plane = noc::Plane::Service;
            upd.type = noc::MsgType::CoinUpdate;
            upd.payload[0] = delta;
            upd.payload[1] = state_.has;
            upd.payload[2] = state_.max;
            upd.payload[3] = 1; // group update (apply-only)
            net_.send(upd);
        }
        // Conservation: the center absorbs the negated sum, applied
        // against its *current* count (stale snapshots show up as the
        // transient negatives the sign bit exists for).
        if (out_total != 0) {
            state_.has -= out_total;
            ++moved_;
            coinsChanged();
        }
        timer_.onExchange(moved);
        for (const auto &[node, tc] : gathered_)
            iso_.onExchange(moved, tc.max);
        gathered_.clear();
    } else {
        gathered_.clear();
        timer_.onExchange(false);
    }
    if (running_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::coinsChanged()
{
    if (onCoinsChanged)
        onCoinsChanged(state_.has);
}

} // namespace blitz::blitzcoin
