#include "unit.hpp"

#include <algorithm>

#include "guardian.hpp"
#include "record/provenance.hpp"
#include "record/recorder.hpp"
#include "trace/tracer.hpp"

namespace blitz::blitzcoin {

using namespace wire;

namespace {

/** Guard interval for 4-way rounds and snapshot locks (cycles). */
constexpr sim::Tick exchangeTimeout = 512;

/** Re-poll delay when the FSM is busy with an in-flight exchange. */
constexpr sim::Tick busyRetry = 4;

/** Unresolved-exchange backlog bound (initiator side). */
constexpr std::size_t maxUnresolved = 32;

} // namespace

BlitzCoinUnit::BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                             noc::NodeId self, const UnitConfig &cfg,
                             std::uint64_t seed)
    : eq_(eq), net_(net), self_(self), cfg_(cfg), rng_(seed),
      timer_(cfg.backoff),
      selector_(net.topology(), self, cfg.pairing, rng_)
{
}

BlitzCoinUnit::BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                             noc::NodeId self, const UnitConfig &cfg,
                             const coin::Neighborhood &hood,
                             std::uint64_t seed)
    : eq_(eq), net_(net), self_(self), cfg_(cfg), rng_(seed),
      timer_(cfg.backoff),
      selector_(hood.neighbors, hood.far, cfg.pairing, rng_)
{
}

void
BlitzCoinUnit::reconfigure(const UnitConfig &cfg)
{
    cfg_ = cfg;
    timer_ = coin::BackoffTimer(cfg_.backoff);
    // Rebuild the selector with the same logical neighborhood; copies
    // are taken first because assignment replaces the source lists.
    std::vector<noc::NodeId> neighbors = selector_.neighbors();
    std::vector<noc::NodeId> far = selector_.far();
    selector_ = coin::PartnerSelector(std::move(neighbors),
                                      std::move(far), cfg_.pairing,
                                      rng_);
    if (plane_)
        plane_->writeBackoff(self_, timer_.interval());
    if (running_)
        scheduleNext(timer_.interval());
}

void
BlitzCoinUnit::attachPlane(coin::StatePlane *plane)
{
    plane_ = plane;
    planeSyncAll();
}

coin::TilePhase
BlitzCoinUnit::planePhase() const
{
    if (quarantined_)
        return coin::TilePhase::Quarantined;
    if (crashed_)
        return coin::TilePhase::Crashed;
    return running_ ? coin::TilePhase::Running
                    : coin::TilePhase::Idle;
}

void
BlitzCoinUnit::planeSyncAll()
{
    if (!plane_)
        return;
    plane_->writeHas(self_, state_.has);
    plane_->writeMax(self_, state_.max);
    plane_->writeBackoff(self_, timer_.interval());
    plane_->writePhase(self_, planePhase());
}

void
BlitzCoinUnit::timerExchanged(bool movedCoins)
{
    timer_.onExchange(movedCoins);
    if (plane_)
        plane_->writeBackoff(self_, timer_.interval());
}

void
BlitzCoinUnit::setHas(coin::Coins has)
{
    state_.has = has;
    coinsChanged();
}

void
BlitzCoinUnit::setMax(coin::Coins max)
{
    BLITZ_ASSERT(max >= 0, "max coins cannot be negative");
    state_.max = max;
    // Activity start/end is the trigger for requesting or relinquishing
    // coins: snap the refresh cadence back and fire right away.
    timer_.resetOnActivity();
    if (plane_) {
        plane_->writeMax(self_, state_.max);
        plane_->writeBackoff(self_, timer_.interval());
    }
    if (running_)
        scheduleNext(1);
}

void
BlitzCoinUnit::start()
{
    if (running_ || crashed_ || quarantined_)
        return;
    running_ = true;
    if (plane_)
        plane_->writePhase(self_, planePhase());
    scheduleNext(1 + rng_.below(cfg_.backoff.baseInterval));
}

void
BlitzCoinUnit::stop()
{
    running_ = false;
    ++timerGen_; // invalidate any scheduled wakeup
    if (plane_)
        plane_->writePhase(self_, planePhase());
}

void
BlitzCoinUnit::traceExchange(const PendingExchange &p,
                             coin::Coins delta, const char *outcome)
{
    tracer_->complete(
        "coin", "exchange", self_, p.startTick, eq_.now(),
        {{"xid", static_cast<std::int64_t>(p.xid)},
         {"partner", static_cast<std::int64_t>(p.partner)},
         {"delta", delta},
         {"outcome", outcome}});
}

void
BlitzCoinUnit::crash()
{
    if (tracer_)
        tracer_->instant("fault", "unit_crash", self_, eq_.now(),
                         {{"coins_lost", state_.has}});
    if (recorder_)
        recorder_->crash(eq_.now(), self_, state_.has);
    if (prov_)
        prov_->crash(self_, eq_.now());
    stop();
    crashed_ = true;
    // Architectural registers and all protocol tracking are lost. The
    // coins held here vanish from the cluster total; the audit watchdog
    // is the only mechanism that can restore them.
    state_ = coin::TileCoins{};
    awaitingUpdate_ = false;
    pending_.reset();
    unresolved_.clear();
    servedLog_.clear();
    groupSeen_.clear();
    gathered_.clear();
    awaitedStatuses_ = 0;
    snapshotHeld_ = false;
    ++snapshotGen_;
    ++fourWayGen_;
    iso_ = coin::IsolationDetector{};
    planeSyncAll(); // registers cleared, phase Crashed, timer moot
    coinsChanged();
}

void
BlitzCoinUnit::restart()
{
    if (!crashed_)
        return;
    crashed_ = false;
    if (tracer_)
        tracer_->instant("fault", "unit_restart", self_, eq_.now());
    if (recorder_)
        recorder_->restart(eq_.now(), self_, 0);
    timer_ = coin::BackoffTimer(cfg_.backoff);
    planeSyncAll(); // back to Idle with empty registers
    // nextXid_ deliberately keeps counting across the crash: a partner
    // still holding pre-crash entries in its served log must never
    // mistake a fresh exchange for a replay of an old one.
}

void
BlitzCoinUnit::quarantine()
{
    if (quarantined_)
        return;
    if (tracer_)
        tracer_->instant("guardian", "unit_quarantined", self_,
                         eq_.now(), {{"coins_fenced", state_.has}});
    stop();
    quarantined_ = true;
    // Drop all in-flight tracking: a quarantined tile must not keep
    // pumping recovery probes or resolve late updates. Its counter is
    // left fenced (not zeroed) — the audit census excludes it.
    awaitingUpdate_ = false;
    pending_.reset();
    unresolved_.clear();
    gathered_.clear();
    awaitedStatuses_ = 0;
    snapshotHeld_ = false;
    ++snapshotGen_;
    ++fourWayGen_;
    if (plane_)
        plane_->writePhase(self_, planePhase());
}

void
BlitzCoinUnit::shun(noc::NodeId node)
{
    if (!shunned_.insert(node).second)
        return;
    auto strip = [node](std::vector<noc::NodeId> v) {
        v.erase(std::remove(v.begin(), v.end(), node), v.end());
        return v;
    };
    std::vector<noc::NodeId> neighbors = strip(selector_.neighbors());
    std::vector<noc::NodeId> far = strip(selector_.far());
    if (neighbors.empty() && !far.empty()) {
        // The exchange neighborhood re-forms around the hole: far
        // partners are promoted so the tile is never left mute.
        neighbors = std::move(far);
        far.clear();
    }
    if (neighbors.empty())
        return; // fully cut off; exchanges will time out and abandon
    selector_ = coin::PartnerSelector(std::move(neighbors),
                                      std::move(far), cfg_.pairing,
                                      rng_);
}

void
BlitzCoinUnit::setServeThrottle(noc::NodeId initiator,
                                std::uint32_t budget)
{
    throttle_[initiator] = ServeThrottle{budget, 0};
}

void
BlitzCoinUnit::clearServeThrottle(noc::NodeId initiator)
{
    throttle_.erase(initiator);
}

void
BlitzCoinUnit::resetThrottleWindow()
{
    for (auto &[node, th] : throttle_)
        th.used = 0;
}

void
BlitzCoinUnit::scheduleNext(sim::Tick delay)
{
    // Every initiation lands here right after the timer adapts, so one
    // write keeps the plane's refresh-interval column current.
    if (plane_)
        plane_->writeBackoff(self_, timer_.interval());
    if (adversary_)
        delay = std::max<sim::Tick>(adversary_->adviseInterval(delay),
                                    1);
    const std::uint64_t gen = ++timerGen_;
    eq_.scheduleIn(delay, [this, gen] {
        if (gen != timerGen_ || !running_)
            return;
        initiate();
    });
}

void
BlitzCoinUnit::initiate()
{
    if (awaitingUpdate_ || snapshotHeld_) {
        scheduleNext(busyRetry);
        return;
    }
    if (cfg_.mode == coin::ExchangeMode::FourWay) {
        initiateFourWay();
        return;
    }
    noc::NodeId partner = selector_.next(isolated());
    const std::uint64_t xid = nextXid_++;
    // A compromised tile may advertise forged registers (soliciting
    // coins it does not need, or hiding coins it hoards).
    coin::Coins aHas = state_.has;
    coin::Coins aMax = state_.max;
    coin::Coins aCap = cfg_.thermalCap;
    if (adversary_)
        adversary_->adviseStatus(aHas, aMax, aCap);
    noc::Packet pkt;
    pkt.src = self_;
    pkt.dst = partner;
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::CoinStatus;
    pkt.payload[0] = aHas;
    pkt.payload[1] = aMax;
    pkt.payload[2] = aCap;
    pkt.payload[3] = packTag(xid, FlagOneWay);
    net_.send(pkt);
    ++initiated_;
    awaitingUpdate_ = true;
    pending_ = PendingExchange{xid, partner, 0, eq_.now()};

    // If the update never lands, free the FSM and hand the exchange to
    // the background reconciliation machinery — initiation must keep
    // flowing even on a fully dead link.
    eq_.scheduleIn(cfg_.recoverTimeout, [this, xid] {
        onExchangeTimeout(xid);
    });
}

void
BlitzCoinUnit::onExchangeTimeout(std::uint64_t xid)
{
    if (crashed_ || !pending_ || pending_->xid != xid)
        return; // resolved in time (or superseded by a crash)
    ++timedOut_;
    if (tracer_)
        tracer_->instant(
            "coin", "exchange_timeout", self_, eq_.now(),
            {{"xid", static_cast<std::int64_t>(xid)},
             {"partner",
              static_cast<std::int64_t>(pending_->partner)}});
    if (recorder_)
        recorder_->exchange(eq_.now(), record::kOutcomeTimeout, self_,
                            pending_->partner,
                            static_cast<std::int64_t>(xid), 0);
    timerExchanged(false); // failures back the cadence off too
    if (unresolved_.size() >= maxUnresolved) {
        // Backlog full (the network is effectively down): the oldest
        // loss is handed to the audit watchdog.
        ++abandoned_;
        if (tracer_)
            traceExchange(unresolved_.front(), 0, "abandoned");
        if (recorder_)
            recorder_->exchange(
                eq_.now(), record::kOutcomeAbandoned, self_,
                unresolved_.front().partner,
                static_cast<std::int64_t>(unresolved_.front().xid), 0);
        unresolved_.erase(unresolved_.begin());
    }
    unresolved_.push_back(*pending_);
    pending_.reset();
    awaitingUpdate_ = false;
    pumpRecovery(xid);
    if (running_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::pumpRecovery(std::uint64_t xid)
{
    auto it = std::find_if(unresolved_.begin(), unresolved_.end(),
                           [xid](const PendingExchange &p) {
                               return p.xid == xid;
                           });
    if (it == unresolved_.end() || crashed_)
        return; // resolved (or wiped by a crash) in the meantime
    if (it->recoverTries >= cfg_.maxRecoverAttempts) {
        ++abandoned_;
        if (tracer_)
            traceExchange(*it, 0, "abandoned");
        if (recorder_)
            recorder_->exchange(eq_.now(), record::kOutcomeAbandoned,
                                self_, it->partner,
                                static_cast<std::int64_t>(it->xid), 0);
        unresolved_.erase(it);
        return;
    }
    const int tries = ++it->recoverTries;
    if (tracer_)
        tracer_->instant("coin", "recover_probe", self_, eq_.now(),
                         {{"xid", static_cast<std::int64_t>(xid)},
                          {"try", tries}});
    noc::Packet probe;
    probe.src = self_;
    probe.dst = it->partner;
    probe.plane = noc::Plane::Service;
    probe.type = noc::MsgType::CoinRecover;
    probe.payload[0] = static_cast<std::int64_t>(xid);
    net_.send(probe);
    ++recoversSent_;
    // Probe cadence doubles like the refresh back-off: lost probes on a
    // congested mesh must not add to the congestion.
    const sim::Tick wait = cfg_.recoverTimeout
                           << std::min(tries, 4);
    eq_.scheduleIn(wait, [this, xid] { pumpRecovery(xid); });
}

void
BlitzCoinUnit::handlePacket(const noc::Packet &pkt)
{
    if (crashed_ || quarantined_)
        return; // powered off / fenced off: deaf to the service plane
    if (!shunned_.empty() && shunned_.count(pkt.src) != 0) {
        ++shunnedDrops_; // quarantined neighbor: drop unheard
        return;
    }
    if (pkt.corrupted) {
        // Link CRC flagged the flit as damaged; detected corruption is
        // a loss and rides the same recovery path.
        ++corruptedDropped_;
        if (tracer_)
            tracer_->instant("coin", "corrupt_dropped", self_,
                             eq_.now());
        return;
    }
    switch (pkt.type) {
      case noc::MsgType::CoinStatus:
        // The flag byte distinguishes a 1-way opening from a status
        // sent in *reply* to our CoinRequest (4-way gathering).
        if (tagFlag(pkt.payload[3]) == FlagGroup) {
            collectStatus(pkt);
        } else {
            serveStatus(pkt);
        }
        break;
      case noc::MsgType::CoinRequest:
        serveRequest(pkt);
        break;
      case noc::MsgType::CoinRecover:
        serveRecover(pkt);
        break;
      case noc::MsgType::CoinUpdate:
        applyUpdate(pkt);
        break;
      default:
        break; // other service-plane traffic is not ours
    }
}

void
BlitzCoinUnit::sendOneWayUpdate(noc::NodeId dst, std::uint64_t xid,
                                coin::Coins delta, int flag)
{
    noc::Packet reply;
    reply.src = self_;
    reply.dst = dst;
    reply.plane = noc::Plane::Service;
    reply.type = noc::MsgType::CoinUpdate;
    reply.payload[0] = delta;
    // Echo this tile's registers so the initiator sees its partner's
    // state too (needed by the isolation detector).
    reply.payload[1] = state_.has;
    reply.payload[2] = state_.max;
    reply.payload[3] = packTag(xid, flag);
    net_.send(reply);
}

void
BlitzCoinUnit::serveStatus(const noc::Packet &pkt)
{
    // One FSM cycle to compute the rebalance (Section IV-A).
    eq_.scheduleIn(cfg_.fsmCycles, [this, pkt] {
        if (crashed_ || quarantined_)
            return;
        auto th = throttle_.find(pkt.src);
        if (th != throttle_.end()) {
            if (th->second.used >= th->second.budget) {
                // Guardian throttle: this initiator exhausted its
                // serve budget for the window. The attempt is still
                // evidence, so the sentry keeps counting it — and the
                // refusal is answered with a null update rather than
                // silence, so the initiator's exchange resolves at its
                // *own* cadence instead of collapsing into timeouts
                // (a spammer keeps revealing its rate to the books, an
                // honest initiator is merely served nothing).
                ++throttledDrops_;
                if (sentry_)
                    sentry_->noteThrottled(pkt.src);
                sendOneWayUpdate(pkt.src, tagValue(pkt.payload[3]), 0,
                                 FlagOneWay);
                return;
            }
            ++th->second.used;
        }
        const std::uint64_t xid = tagValue(pkt.payload[3]);
        auto &log = servedLog_[pkt.src];
        for (const ServedExchange &e : log) {
            if (e.xid == xid) {
                // Duplicated CoinStatus: the rebalance already ran.
                // Replay the recorded update instead of applying the
                // exchange a second time.
                ++duplicatesIgnored_;
                if (tracer_)
                    tracer_->instant(
                        "coin", "dup_status_replayed", self_,
                        eq_.now(),
                        {{"xid", static_cast<std::int64_t>(xid)},
                         {"initiator",
                          static_cast<std::int64_t>(pkt.src)}});
                if (sentry_)
                    sentry_->noteServed(pkt.src);
                sendOneWayUpdate(pkt.src, xid, e.delta, FlagOneWay);
                return;
            }
        }

        coin::TileCoins remote{pkt.payload[0], pkt.payload[1]};
        coin::Coins remote_cap = pkt.payload[2];
        coin::Coins delta = coin::pairwiseDelta(
            remote, state_, remote_cap, cfg_.thermalCap);

        // A compromised partner can split the exchange: apply one
        // delta locally while reporting another. The honest split is
        // (applied = delta, reported = -delta); anything else mints or
        // destroys coins — the guardian's conservation books catch it.
        coin::Coins applied = delta;
        coin::Coins reported = -delta;
        if (adversary_)
            adversary_->adviseServe(pkt.src, xid, delta, applied,
                                    reported);

        if (applied != 0) {
            state_.has += applied;
            coinsChanged();
        }
        // The partner's apply is where coins settle: journal the
        // served half and book the lineage movement (applied > 0 means
        // the initiator's coins flowed here).
        if (recorder_)
            recorder_->exchange(eq_.now(), record::kOutcomeServed,
                                pkt.src, self_,
                                static_cast<std::int64_t>(xid),
                                applied);
        if (prov_ && applied != 0)
            prov_->transfer(pkt.src, self_, applied, xid, eq_.now());
        if (sentry_) {
            if (applied != 0)
                sentry_->noteFlow(pkt.src, applied);
            sentry_->noteServed(pkt.src);
        }
        timerExchanged(applied != 0);
        iso_.onExchange(applied != 0, remote.max);
        // Receiving coins is evidence of a transition in flight: bring
        // the next self-initiated exchange forward so the wave keeps
        // propagating (a backed-off wakeup may be far in the future).
        if (applied != 0 && running_ && !awaitingUpdate_)
            scheduleNext(timer_.intervalFor(discontent() || isolated()));

        // Remember the outcome so a duplicated status or a CoinRecover
        // probe can replay it without moving coins again.
        log.push_back(ServedExchange{xid, reported});
        while (log.size() > cfg_.servedLogDepth)
            log.pop_front();
        sendOneWayUpdate(pkt.src, xid, reported, FlagOneWay);
    });
}

void
BlitzCoinUnit::serveRecover(const noc::Packet &pkt)
{
    eq_.scheduleIn(cfg_.fsmCycles, [this, pkt] {
        if (crashed_ || quarantined_)
            return;
        const std::uint64_t xid =
            static_cast<std::uint64_t>(pkt.payload[0]);
        auto it = servedLog_.find(pkt.src);
        if (it != servedLog_.end()) {
            for (const ServedExchange &e : it->second) {
                if (e.xid == xid) {
                    // The exchange ran here; replay its recorded delta.
                    sendOneWayUpdate(pkt.src, xid, e.delta, FlagOneWay);
                    return;
                }
            }
            if (!it->second.empty() && xid < it->second.back().xid) {
                // Older than the log's horizon: the outcome was served
                // and since evicted. Only the audit can close this.
                sendOneWayUpdate(pkt.src, xid, 0, FlagUnknown);
                return;
            }
        }
        // Never served: the CoinStatus itself was lost in transit, so
        // no coins moved on either side — a clean null resolution.
        sendOneWayUpdate(pkt.src, xid, 0, FlagOneWay);
    });
}

void
BlitzCoinUnit::applyResolvedDelta(coin::Coins delta,
                                  coin::Coins partnerMax,
                                  noc::NodeId partner)
{
    if (delta != 0) {
        state_.has += delta;
        ++moved_;
        coinsChanged();
        if (sentry_)
            sentry_->noteFlow(partner, delta);
    }
    timerExchanged(delta != 0);
    iso_.onExchange(delta != 0, partnerMax);
}

void
BlitzCoinUnit::applyUpdate(const noc::Packet &pkt)
{
    if (tagFlag(pkt.payload[3]) == FlagGroup) {
        applyGroupUpdate(pkt);
        return;
    }
    const std::uint64_t xid = tagValue(pkt.payload[3]);
    if (pending_ && pending_->xid == xid) {
        // The normal path: the update resolves the in-flight exchange.
        if (tracer_)
            traceExchange(*pending_, pkt.payload[0], "ok");
        if (recorder_)
            recorder_->exchange(eq_.now(), record::kOutcomeOk, self_,
                                pending_->partner,
                                static_cast<std::int64_t>(xid),
                                pkt.payload[0]);
        pending_.reset();
        awaitingUpdate_ = false;
        applyResolvedDelta(pkt.payload[0], pkt.payload[2], pkt.src);
        if (running_)
            scheduleNext(timer_.intervalFor(discontent() || isolated()));
        return;
    }
    auto it = std::find_if(unresolved_.begin(), unresolved_.end(),
                           [xid](const PendingExchange &p) {
                               return p.xid == xid;
                           });
    if (it == unresolved_.end()) {
        // No exchange waits on this stamp: a duplicated delivery, a
        // replayed recover answer for an already-resolved exchange, or
        // a stamp retired by a crash. Applying it would double-count.
        ++duplicatesIgnored_;
        if (sentry_)
            sentry_->noteStale(pkt.src);
        if (tracer_)
            tracer_->instant(
                "coin", "stale_update_dropped", self_, eq_.now(),
                {{"xid", static_cast<std::int64_t>(xid)}});
        return;
    }
    const PendingExchange resolved = *it;
    unresolved_.erase(it);
    if (tagFlag(pkt.payload[3]) == FlagUnknown) {
        // The partner evicted the outcome; its half (if any) stands
        // unmatched until the audit watchdog reconciles.
        ++abandoned_;
        if (tracer_)
            traceExchange(resolved, 0, "unknown");
        if (recorder_)
            recorder_->exchange(eq_.now(), record::kOutcomeUnknown,
                                self_, resolved.partner,
                                static_cast<std::int64_t>(xid), 0);
        return;
    }
    // A late or recovered update: the exchange concludes off the
    // critical path, conserving the pair's coins.
    ++recovered_;
    if (tracer_)
        traceExchange(resolved, pkt.payload[0], "recovered");
    if (recorder_)
        recorder_->exchange(eq_.now(), record::kOutcomeRecovered, self_,
                            resolved.partner,
                            static_cast<std::int64_t>(xid),
                            pkt.payload[0]);
    applyResolvedDelta(pkt.payload[0], pkt.payload[2], pkt.src);
    if (running_ && !awaitingUpdate_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::applyGroupUpdate(const noc::Packet &pkt)
{
    // Group (4-way) update from a center tile: apply-only. It must not
    // clear this tile's own in-flight exchange state, but it does
    // release the snapshot lock it corresponds to.
    const std::uint64_t tag = tagValue(pkt.payload[3]);
    std::uint64_t &last = groupSeen_[pkt.src];
    if (tag <= last) {
        ++duplicatesIgnored_; // duplicated delivery of this round
        if (sentry_)
            sentry_->noteStale(pkt.src);
        return;
    }
    last = tag;
    if (snapshotHeld_ && pkt.src == snapshotHolder_) {
        snapshotHeld_ = false;
        ++snapshotGen_; // retire the pending release timeout
    }
    coin::Coins delta = pkt.payload[0];
    if (delta != 0) {
        state_.has += delta;
        ++moved_;
        coinsChanged();
        if (sentry_)
            sentry_->noteFlow(pkt.src, delta);
    }
    if (recorder_)
        recorder_->exchange(eq_.now(), record::kOutcomeServed, pkt.src,
                            self_, static_cast<std::int64_t>(tag),
                            delta);
    if (prov_ && delta != 0)
        prov_->transfer(pkt.src, self_, delta, tag, eq_.now());
    timerExchanged(delta != 0);
    iso_.onExchange(delta != 0, pkt.payload[2]);
    if (delta != 0 && running_ && !awaitingUpdate_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::initiateFourWay()
{
    // Algorithm 1: request status from every logical neighbor, then
    // compute the 5-tile fair split and push updates.
    gathered_.clear();
    awaitedStatuses_ = selector_.neighbors().size();
    awaitingUpdate_ = true; // FSM busy until the round completes
    const std::uint64_t gen = ++fourWayGen_;
    ++initiated_;
    for (noc::NodeId n : selector_.neighbors()) {
        noc::Packet pkt;
        pkt.src = self_;
        pkt.dst = n;
        pkt.plane = noc::Plane::Service;
        pkt.type = noc::MsgType::CoinRequest;
        // Round tag: replies echo it so a late reply from a timed-out
        // round can never be gathered into a newer one (which would
        // double-count that neighbor and destabilize the split).
        pkt.payload[0] = static_cast<std::int64_t>(gen);
        net_.send(pkt);
    }
    // Complete with whatever arrived if a reply is lost.
    eq_.scheduleIn(exchangeTimeout, [this, gen] {
        if (gen != fourWayGen_ || !awaitingUpdate_)
            return;
        completeFourWay();
    });
}

void
BlitzCoinUnit::serveRequest(const noc::Packet &pkt)
{
    eq_.scheduleIn(cfg_.fsmCycles, [this, pkt] {
        if (crashed_)
            return;
        // The conflict the paper describes (tile C requests B while
        // A-B is in flight): a busy tile does NOT reply. The center
        // completes with the members it could lock; the requester's
        // retry comes on its next refresh.
        if (awaitingUpdate_ || snapshotHeld_)
            return;
        // Freeze the coin count until the center's update lands, so
        // the snapshot it computes with stays valid.
        snapshotHeld_ = true;
        snapshotHolder_ = pkt.src;
        const std::uint64_t sgen = ++snapshotGen_;
        eq_.scheduleIn(exchangeTimeout, [this, sgen] {
            if (snapshotHeld_ && snapshotGen_ == sgen)
                snapshotHeld_ = false; // center died; release
        });

        noc::Packet reply;
        reply.src = self_;
        reply.dst = pkt.src;
        reply.plane = noc::Plane::Service;
        reply.type = noc::MsgType::CoinStatus;
        reply.payload[0] = state_.has;
        reply.payload[1] = state_.max;
        reply.payload[2] = cfg_.thermalCap;
        // Echo the round tag, marked as a 4-way reply.
        reply.payload[3] = packTag(
            static_cast<std::uint64_t>(pkt.payload[0]), FlagGroup);
        net_.send(reply);
    });
}

void
BlitzCoinUnit::collectStatus(const noc::Packet &pkt)
{
    if (!awaitingUpdate_ || cfg_.mode != coin::ExchangeMode::FourWay)
        return; // stale reply from a timed-out round
    if (tagValue(pkt.payload[3]) != fourWayGen_)
        return; // reply belongs to an earlier, abandoned round
    for (const auto &[node, tc] : gathered_) {
        if (node == pkt.src)
            return; // duplicate delivery
    }
    gathered_.emplace_back(pkt.src,
                           coin::TileCoins{pkt.payload[0],
                                           pkt.payload[1]});
    if (gathered_.size() >= awaitedStatuses_)
        completeFourWay();
}

void
BlitzCoinUnit::completeFourWay()
{
    const std::uint64_t roundTag = fourWayGen_;
    ++fourWayGen_; // invalidate the timeout guard
    awaitingUpdate_ = false;
    // Concurrent rounds can leave the gathered snapshots inconsistent
    // (a neighbor's coins moved between its status and now); a
    // negative apparent total is the tell. Abort and retry later —
    // part of the synchronization hazard that makes the 4-way
    // datapath more complex than the pairwise one (Section III-B).
    coin::Coins snapshot_total = state_.has;
    for (const auto &[node, tc] : gathered_)
        snapshot_total += tc.has;
    if (!gathered_.empty() && snapshot_total >= 0) {
        std::vector<coin::TileCoins> group;
        group.reserve(gathered_.size() + 1);
        group.push_back(state_);
        for (const auto &[node, tc] : gathered_)
            group.push_back(tc);
        std::vector<coin::Coins> split = coin::groupSplit(group);

        coin::Coins out_total = 0;
        bool moved = false;
        for (std::size_t k = 0; k < gathered_.size(); ++k) {
            coin::Coins delta = split[k + 1] - gathered_[k].second.has;
            out_total += delta;
            if (delta != 0)
                moved = true;
            noc::Packet upd;
            upd.src = self_;
            upd.dst = gathered_[k].first;
            upd.plane = noc::Plane::Service;
            upd.type = noc::MsgType::CoinUpdate;
            upd.payload[0] = delta;
            upd.payload[1] = state_.has;
            upd.payload[2] = state_.max;
            // Group update (apply-only), stamped with the round so a
            // duplicated delivery cannot apply twice.
            upd.payload[3] = packTag(roundTag, FlagGroup);
            net_.send(upd);
        }
        // Conservation: the center absorbs the negated sum, applied
        // against its *current* count (stale snapshots show up as the
        // transient negatives the sign bit exists for).
        if (out_total != 0) {
            state_.has -= out_total;
            ++moved_;
            coinsChanged();
        }
        timerExchanged(moved);
        for (const auto &[node, tc] : gathered_)
            iso_.onExchange(moved, tc.max);
        gathered_.clear();
    } else {
        gathered_.clear();
        timerExchanged(false);
    }
    if (running_)
        scheduleNext(timer_.intervalFor(discontent() || isolated()));
}

void
BlitzCoinUnit::coinsChanged()
{
    if (plane_)
        plane_->writeHas(self_, state_.has);
    if (onCoinsChanged)
        onCoinsChanged(state_.has);
}

} // namespace blitz::blitzcoin
