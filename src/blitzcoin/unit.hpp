/**
 * @file
 * The BlitzCoin hardware unit: a per-tile FSM in the NoC power domain.
 *
 * This is the packet-accurate model of Section IV: each tile owns one
 * unit holding the (sign-extended) coin counter and the max target. On
 * its (dynamically timed) refresh the unit initiates a 1-way exchange —
 * CoinStatus out, CoinUpdate back — with a partner chosen by neighbor
 * rotation or randomized pairing. The partner computes the rebalance in
 * one FSM cycle and applies its half immediately; the initiator applies
 * the returned delta when the update lands. Because other exchanges can
 * interleave on the NoC, a tile's count can transiently go negative;
 * the sign bit absorbs it and steady state is always non-negative.
 *
 * There is deliberately no shared state between units: the only
 * communication is NoC packets, which is what makes the model a faithful
 * stand-in for the RTL.
 */

#ifndef BLITZ_BLITZCOIN_UNIT_HPP
#define BLITZ_BLITZCOIN_UNIT_HPP

#include <functional>
#include <memory>

#include "coin/backoff.hpp"
#include "coin/engine.hpp"
#include "coin/exchange.hpp"
#include "coin/neighborhood.hpp"
#include "coin/pairing.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace blitz::blitzcoin {

/** Configuration of one BlitzCoin unit. */
struct UnitConfig
{
    /**
     * Exchange algorithm. OneWay is the paper's chosen embodiment;
     * FourWay implements Algorithm 1 at packet level (request ->
     * status x4 -> update x4) with the snapshot locking the paper
     * says the group datapath requires — busy members refuse to
     * reply, so contended rounds complete partially and throughput
     * drops, which is exactly the Section III-B argument for 1-way.
     */
    coin::ExchangeMode mode = coin::ExchangeMode::OneWay;
    coin::BackoffConfig backoff{};
    coin::PairingConfig pairing{};
    /** Coin counter width (excluding the sign bit). */
    int coinBits = 6;
    /** Coin-update FSM latency (1 cycle in the RTL). */
    sim::Tick fsmCycles = 1;
    /** Thermal cap on this tile's holdings (::coin::uncapped if none). */
    coin::Coins thermalCap = coin::uncapped;
};

/**
 * Per-tile BlitzCoin FSM.
 *
 * The owning tile wires handlePacket() into its service-plane demux and
 * observes coin changes through the onCoinsChanged callback (which feeds
 * the LUT + UVFR pipeline).
 */
class BlitzCoinUnit
{
  public:
    /**
     * @param eq shared event queue.
     * @param net NoC carrying the coin traffic.
     * @param self tile node id.
     * @param cfg unit parameters.
     * @param seed per-tile RNG seed (pairing staggering).
     */
    BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                  noc::NodeId self, const UnitConfig &cfg,
                  std::uint64_t seed);

    /**
     * Construct with an explicit logical neighborhood — the PM-cluster
     * case where only a subset of tiles exchanges coins.
     */
    BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                  noc::NodeId self, const UnitConfig &cfg,
                  const coin::Neighborhood &hood, std::uint64_t seed);

    noc::NodeId self() const { return self_; }
    coin::Coins has() const { return state_.has; }
    coin::Coins max() const { return state_.max; }
    bool running() const { return running_; }
    const UnitConfig &config() const { return cfg_; }

    /**
     * Apply a new configuration at runtime (CSR writes, Fig. 11).
     * Protocol parameters (back-off law, pairing period, thermal cap)
     * take effect from the next exchange; the logical neighborhood is
     * preserved.
     */
    void reconfigure(const UnitConfig &cfg);

    /** Initialize holdings (before start()). */
    void setHas(coin::Coins has);

    /**
     * Program the activity target. Called by the tile when execution
     * starts (max > 0) or ends (max = 0); fires an immediate exchange.
     */
    void setMax(coin::Coins max);

    /** Begin periodic exchange initiation. */
    void start();

    /** Stop initiating (incoming exchanges are still served). */
    void stop();

    /** Service-plane packet delivery from the tile's demux. */
    void handlePacket(const noc::Packet &pkt);

    /** Observer invoked whenever the coin count changes. */
    std::function<void(coin::Coins)> onCoinsChanged;

    /** Exchanges initiated by this unit. */
    std::uint64_t exchangesInitiated() const { return initiated_; }

    /** Exchanges that moved at least one coin. */
    std::uint64_t exchangesMoved() const { return moved_; }

  private:
    /**
     * Locally computable imbalance: holding coins with no need, or
     * active with none — either keeps the refresh cadence capped so
     * the tile does not back off while it has business to transact.
     */
    bool
    discontent() const
    {
        return (state_.max == 0 && state_.has > 0) ||
               (state_.max > 0 && state_.has == 0);
    }

    /** Active tile stranded in an idle neighborhood (Fig. 5). */
    bool
    isolated() const
    {
        return state_.max > 0 && iso_.isolated();
    }

    void scheduleNext(sim::Tick delay);
    void initiate();
    void initiateFourWay();
    void serveStatus(const noc::Packet &pkt);
    void serveRequest(const noc::Packet &pkt);
    void collectStatus(const noc::Packet &pkt);
    void completeFourWay();
    void applyUpdate(const noc::Packet &pkt);
    void coinsChanged();

    sim::EventQueue &eq_;
    noc::Network &net_;
    noc::NodeId self_;
    UnitConfig cfg_;
    sim::Rng rng_;
    coin::TileCoins state_{};
    coin::BackoffTimer timer_;
    coin::PartnerSelector selector_;
    coin::IsolationDetector iso_;
    bool running_ = false;
    bool awaitingUpdate_ = false;
    /** In-flight 4-way exchange: statuses gathered so far. */
    std::vector<std::pair<noc::NodeId, coin::TileCoins>> gathered_;
    std::size_t awaitedStatuses_ = 0;
    std::uint64_t fourWayGen_ = 0;
    /**
     * 4-way snapshot lock: after replying a status to a center, the
     * coin count is frozen until that center's update lands (or a
     * timeout). This is the synchronization primitive the paper says
     * the 4-way datapath requires (Section III-B); without it,
     * concurrent group rebalances act on stale snapshots and diverge.
     */
    bool snapshotHeld_ = false;
    noc::NodeId snapshotHolder_ = 0;
    std::uint64_t snapshotGen_ = 0;
    std::uint64_t timerGen_ = 0; ///< invalidates superseded wakeups
    std::uint64_t initiated_ = 0;
    std::uint64_t moved_ = 0;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_UNIT_HPP
