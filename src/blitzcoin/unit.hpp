/**
 * @file
 * The BlitzCoin hardware unit: a per-tile FSM in the NoC power domain.
 *
 * This is the packet-accurate model of Section IV: each tile owns one
 * unit holding the (sign-extended) coin counter and the max target. On
 * its (dynamically timed) refresh the unit initiates a 1-way exchange —
 * CoinStatus out, CoinUpdate back — with a partner chosen by neighbor
 * rotation or randomized pairing. The partner computes the rebalance in
 * one FSM cycle and applies its half immediately; the initiator applies
 * the returned delta when the update lands. Because other exchanges can
 * interleave on the NoC, a tile's count can transiently go negative;
 * the sign bit absorbs it and steady state is always non-negative.
 *
 * Loss recovery (beyond the paper's text, see DESIGN.md "Fault model &
 * recovery"): every 1-way exchange carries a per-initiator sequence
 * stamp. The partner logs the last few (stamp, delta) pairs it served;
 * if the CoinUpdate never lands, the initiator times out, frees its FSM,
 * and reconciles in the background with CoinRecover probes — the partner
 * replays the logged delta (or reports that the exchange never
 * happened), so a dropped, delayed, or duplicated packet degrades
 * convergence instead of leaking coins. Only an unrecoverable loss (a
 * crashed partner) leaves a gap, which the ClusterAudit watchdog remints.
 *
 * There is deliberately no shared state between units: the only
 * communication is NoC packets, which is what makes the model a faithful
 * stand-in for the RTL.
 */

#ifndef BLITZ_BLITZCOIN_UNIT_HPP
#define BLITZ_BLITZCOIN_UNIT_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "coin/backoff.hpp"
#include "coin/engine.hpp"
#include "coin/state_plane.hpp"
#include "coin/exchange.hpp"
#include "coin/neighborhood.hpp"
#include "coin/pairing.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace blitz::trace {
class Tracer;
}

namespace blitz::record {
class FlightRecorder;
class ProvenanceLedger;
}

namespace blitz::blitzcoin {

class GuardSentry; // guardian.hpp: per-tile neighbor observation taps

/**
 * payload[3] wire encoding shared by CoinStatus and CoinUpdate: the
 * low byte is a flag, the rest is a message tag — the exchange stamp
 * (xid) for 1-way traffic, the round generation for 4-way. Hoisted
 * here (from unit.cpp) so adversary models can forge well-formed
 * protocol packets without duplicating the encoding.
 */
namespace wire {

enum WireFlag : int
{
    FlagOneWay = 0,  ///< 1-way exchange; tag is the initiator's xid
    FlagGroup = 1,   ///< 4-way reply / group update; tag is the round
    FlagUnknown = 2, ///< recover reply: outcome evicted from the log
};

constexpr std::int64_t
packTag(std::uint64_t tag, int flag)
{
    return static_cast<std::int64_t>((tag << 8) |
                                     static_cast<std::uint64_t>(flag));
}

constexpr int
tagFlag(std::int64_t word)
{
    return static_cast<int>(word & 0xff);
}

constexpr std::uint64_t
tagValue(std::int64_t word)
{
    return static_cast<std::uint64_t>(word) >> 8;
}

} // namespace wire

/**
 * Byzantine compromise of one unit: a hook consulted at the three
 * seams where a lying tile can diverge from the protocol — the
 * registers it advertises, the split between what a served exchange
 * applies locally and what it reports on the wire, and the initiation
 * cadence. The default implementations are the honest protocol, so a
 * hook overriding nothing is a no-op. Hooks must be pure (no RNG, no
 * scheduling): active behaviors (counterfeit pulses, stale replays)
 * belong in the ByzantinePlan's locus-pinned drivers.
 */
class AdversaryHook
{
  public:
    virtual ~AdversaryHook() = default;

    /** Mutate the registers advertised in an outgoing CoinStatus. */
    virtual void
    adviseStatus(coin::Coins & /*has*/, coin::Coins & /*max*/,
                 coin::Coins & /*cap*/)
    {
    }

    /**
     * Split a served 1-way exchange. @p honest is the pairwise delta
     * this tile would gain; @p applied is what it actually adds to its
     * counter, @p reported what it sends back (the initiator applies
     * it verbatim). Honest behavior keeps applied == honest and
     * reported == -honest; any other split mints or destroys coins.
     */
    virtual void
    adviseServe(noc::NodeId /*initiator*/, std::uint64_t /*xid*/,
                coin::Coins /*honest*/, coin::Coins & /*applied*/,
                coin::Coins & /*reported*/)
    {
    }

    /** Override the next initiation interval (request spamming). */
    virtual sim::Tick
    adviseInterval(sim::Tick honest)
    {
        return honest;
    }
};

/** Configuration of one BlitzCoin unit. */
struct UnitConfig
{
    /**
     * Exchange algorithm. OneWay is the paper's chosen embodiment;
     * FourWay implements Algorithm 1 at packet level (request ->
     * status x4 -> update x4) with the snapshot locking the paper
     * says the group datapath requires — busy members refuse to
     * reply, so contended rounds complete partially and throughput
     * drops, which is exactly the Section III-B argument for 1-way.
     */
    coin::ExchangeMode mode = coin::ExchangeMode::OneWay;
    coin::BackoffConfig backoff{};
    coin::PairingConfig pairing{};
    /** Coin counter width (excluding the sign bit). */
    int coinBits = 6;
    /** Coin-update FSM latency (1 cycle in the RTL). */
    sim::Tick fsmCycles = 1;
    /** Thermal cap on this tile's holdings (::coin::uncapped if none). */
    coin::Coins thermalCap = coin::uncapped;
    /**
     * 1-way exchange timeout: ticks without the CoinUpdate before the
     * FSM is freed and background reconciliation begins.
     */
    sim::Tick recoverTimeout = 512;
    /**
     * CoinRecover probes per lost exchange (exponential backoff,
     * mirroring the BackoffTimer growth law) before the loss is left
     * to the audit/remint watchdog.
     */
    int maxRecoverAttempts = 6;
    /** Per-initiator depth of the partner's served-exchange log. */
    std::size_t servedLogDepth = 8;
};

/**
 * Per-tile BlitzCoin FSM.
 *
 * The owning tile wires handlePacket() into its service-plane demux and
 * observes coin changes through the onCoinsChanged callback (which feeds
 * the LUT + UVFR pipeline).
 */
class BlitzCoinUnit
{
  public:
    /**
     * @param eq shared event queue.
     * @param net NoC carrying the coin traffic.
     * @param self tile node id.
     * @param cfg unit parameters.
     * @param seed per-tile RNG seed (pairing staggering).
     */
    BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                  noc::NodeId self, const UnitConfig &cfg,
                  std::uint64_t seed);

    /**
     * Construct with an explicit logical neighborhood — the PM-cluster
     * case where only a subset of tiles exchanges coins.
     */
    BlitzCoinUnit(sim::EventQueue &eq, noc::Network &net,
                  noc::NodeId self, const UnitConfig &cfg,
                  const coin::Neighborhood &hood, std::uint64_t seed);

    noc::NodeId self() const { return self_; }
    coin::Coins has() const { return state_.has; }
    coin::Coins max() const { return state_.max; }
    bool running() const { return running_; }
    /** Current adaptive refresh interval (test/plane-mirror access). */
    sim::Tick backoffInterval() const { return timer_.interval(); }
    const UnitConfig &config() const { return cfg_; }

    /**
     * Apply a new configuration at runtime (CSR writes, Fig. 11).
     * Protocol parameters (back-off law, pairing period, thermal cap)
     * take effect from the next exchange; the logical neighborhood is
     * preserved.
     */
    void reconfigure(const UnitConfig &cfg);

    /** Initialize holdings (before start(), or when reminting). */
    void setHas(coin::Coins has);

    /**
     * Program the activity target. Called by the tile when execution
     * starts (max > 0) or ends (max = 0); fires an immediate exchange.
     */
    void setMax(coin::Coins max);

    /** Begin periodic exchange initiation. */
    void start();

    /** Stop initiating (incoming exchanges are still served). */
    void stop();

    /**
     * Power-fail the tile: all architectural state — coins, target,
     * in-flight exchange tracking, served-exchange log — is lost and
     * the unit goes deaf until restart(). Coins held here at the crash
     * are destroyed; the ClusterAudit watchdog remints them.
     */
    void crash();

    /**
     * Bring a crashed unit back up with empty registers. The exchange
     * sequence counter deliberately survives the crash so stale
     * partner logs can never alias a post-restart exchange. Call
     * start() (and setMax/setHas) afterwards as at first boot.
     */
    void restart();

    /** True while crashed (deaf to packets, no initiation). */
    bool crashed() const { return crashed_; }

    /**
     * Quarantine the tile (integrity guardian verdict): initiation
     * stops, the unit goes deaf, and all in-flight exchange tracking
     * is dropped so recovery probes cannot keep pumping packets. The
     * coin counter is left fenced in place — the ClusterAudit census
     * excludes quarantined tiles, so the watchdog remints the honest
     * share elsewhere and the fenced counter never re-enters the
     * budget. Sticky: survives crash()/restart() and blocks start().
     */
    void quarantine();

    /** True once quarantined (sticky). */
    bool quarantined() const { return quarantined_; }

    /**
     * Stop exchanging with @p node (a quarantined neighbor): its
     * packets are dropped at the demux and the partner selector is
     * rebuilt without it (far partners are promoted if the neighbor
     * list would empty — the mesh re-forms around the hole). If no
     * partner remains at all the old selector is kept; exchanges
     * aimed at the shunned node then time out and abandon.
     */
    void shun(noc::NodeId node);

    /** True if @p node's packets are being dropped. */
    bool
    isShunned(noc::NodeId node) const
    {
        return shunned_.count(node) != 0;
    }

    /**
     * Cap 1-way serves for @p initiator at @p budget per guardian
     * window (escalation step between warn and quarantine). Serves
     * past the budget are dropped (and counted for the sentry, so
     * evidence keeps accruing while throttled).
     */
    void setServeThrottle(noc::NodeId initiator, std::uint32_t budget);

    /** Lift the serve cap for @p initiator (guardian amnesty). */
    void clearServeThrottle(noc::NodeId initiator);

    /** Reset all per-window throttle counters (each guardian sweep). */
    void resetThrottleWindow();

    /** Packets dropped because their source is shunned. */
    std::uint64_t shunnedDrops() const { return shunnedDrops_; }

    /** Serves dropped by an exhausted throttle budget. */
    std::uint64_t throttledDrops() const { return throttledDrops_; }

    /** The live partner selection state (shun retarget tests). */
    const coin::PartnerSelector &selector() const { return selector_; }

    /** Install a Byzantine behavior hook (nullptr = honest). */
    void setAdversary(AdversaryHook *a) { adversary_ = a; }

    /**
     * Attach the SoA state plane (nullptr detaches). The unit
     * write-through-mirrors its hot scalars — coin count, max target,
     * lifecycle phase, refresh interval — into its own NodeId row at
     * every mutation, and never reads the plane back: attachment is a
     * pure observer, digest-neutral, and shard-safe (a tile writes
     * only its own row, always at its own locus).
     */
    void attachPlane(coin::StatePlane *plane);

    /**
     * Attach the guardian's observation tap. Pure observer on the
     * honest path: every write happens at this unit's locus, and the
     * guardian reads/clears the window from the serial lane between
     * supersteps, so sharded runs stay race-free and bit-identical.
     */
    void setSentry(GuardSentry *s) { sentry_ = s; }

    /** Service-plane packet delivery from the tile's demux. */
    void handlePacket(const noc::Packet &pkt);

    /** Observer invoked whenever the coin count changes. */
    std::function<void(coin::Coins)> onCoinsChanged;

    /** Exchanges initiated by this unit. */
    std::uint64_t exchangesInitiated() const { return initiated_; }

    /** Exchanges that moved at least one coin. */
    std::uint64_t exchangesMoved() const { return moved_; }

    /** 1-way exchanges whose update timed out at least once. */
    std::uint64_t exchangesTimedOut() const { return timedOut_; }

    /** CoinRecover probes sent. */
    std::uint64_t recoveriesSent() const { return recoversSent_; }

    /** Lost updates whose delta was recovered via reconciliation. */
    std::uint64_t updatesRecovered() const { return recovered_; }

    /** Duplicate/stale packets discarded by the sequence stamps. */
    std::uint64_t duplicatesIgnored() const { return duplicatesIgnored_; }

    /** Corrupted (CRC-flagged) packets discarded at the demux. */
    std::uint64_t corruptedDropped() const { return corruptedDropped_; }

    /**
     * Exchanges abandoned with their outcome unknown after all
     * CoinRecover attempts — the cases only the audit watchdog can
     * close (a crashed or partitioned partner).
     */
    std::uint64_t exchangesAbandoned() const { return abandoned_; }

    /** Lost exchanges still being reconciled in the background. */
    std::size_t recoveriesInFlight() const { return unresolved_.size(); }

    /**
     * Attach an event tracer (or detach with nullptr). When set, the
     * unit emits one complete span per resolved 1-way exchange
     * (initiation to resolution, tagged with partner / delta /
     * outcome) and instants for timeouts, recovery probes, duplicate
     * drops, and crash/restart edges. Null by default: the disabled
     * path is a single branch per protocol milestone, none of them on
     * the packet hot path.
     */
    void setTrace(trace::Tracer *t) { tracer_ = t; }

    /**
     * Attach the flight recorder (and optionally the provenance
     * ledger). When set, the unit journals every protocol milestone —
     * served exchanges, resolutions (ok/recovered/unknown), timeouts,
     * abandonments, crash/restart edges — and books settled coin
     * movements against the ledger's per-tile lineage FIFOs. Both are
     * pure observers (no RNG, no state reads the protocol depends
     * on), so attached runs stay bit-identical to detached ones.
     * Nullptr detaches; the disabled path is one branch per milestone.
     */
    void
    setRecorder(record::FlightRecorder *rec,
                record::ProvenanceLedger *prov = nullptr)
    {
        recorder_ = rec;
        prov_ = prov;
    }

  private:
    /** One 1-way exchange this initiator has not yet resolved. */
    struct PendingExchange
    {
        std::uint64_t xid = 0;
        noc::NodeId partner = 0;
        int recoverTries = 0;
        sim::Tick startTick = 0; ///< initiation time, for trace spans
    };

    /** (stamp, delta-for-initiator) pair remembered per initiator. */
    struct ServedExchange
    {
        std::uint64_t xid = 0;
        coin::Coins delta = 0;
    };

    /**
     * Locally computable imbalance: holding coins with no need, or
     * active with none — either keeps the refresh cadence capped so
     * the tile does not back off while it has business to transact.
     */
    bool
    discontent() const
    {
        return (state_.max == 0 && state_.has > 0) ||
               (state_.max > 0 && state_.has == 0);
    }

    /** Active tile stranded in an idle neighborhood (Fig. 5). */
    bool
    isolated() const
    {
        return state_.max > 0 && iso_.isolated();
    }

    /** The plane phase encoding this unit's lifecycle flags. */
    coin::TilePhase planePhase() const;

    /** Mirror every hot column into the plane row (cold paths). */
    void planeSyncAll();

    /**
     * Adapt the refresh timer after an exchange and mirror the new
     * interval. Every timer_.onExchange goes through here so the
     * plane's backoff column never lags the timer — some exchange
     * outcomes (zero-delta, unit not running) schedule no wakeup, so
     * scheduleNext alone would leave the row stale.
     */
    void timerExchanged(bool movedCoins);

    void scheduleNext(sim::Tick delay);
    void initiate();
    void initiateFourWay();
    void serveStatus(const noc::Packet &pkt);
    void serveRequest(const noc::Packet &pkt);
    void serveRecover(const noc::Packet &pkt);
    void collectStatus(const noc::Packet &pkt);
    void completeFourWay();
    void applyUpdate(const noc::Packet &pkt);
    void applyGroupUpdate(const noc::Packet &pkt);
    void coinsChanged();

    /** Send the 1-way CoinUpdate reply carrying @p delta for @p xid. */
    void sendOneWayUpdate(noc::NodeId dst, std::uint64_t xid,
                          coin::Coins delta, int flag);

    /** Timeout of the in-flight exchange @p xid. */
    void onExchangeTimeout(std::uint64_t xid);

    /** Background reconciliation driver for an unresolved exchange. */
    void pumpRecovery(std::uint64_t xid);

    /** Conclude a resolved 1-way exchange (normal or recovered). */
    void applyResolvedDelta(coin::Coins delta, coin::Coins partnerMax,
                            noc::NodeId partner);

    /** Emit the exchange span for @p p resolving now as @p outcome. */
    void traceExchange(const PendingExchange &p, coin::Coins delta,
                       const char *outcome);

    sim::EventQueue &eq_;
    noc::Network &net_;
    trace::Tracer *tracer_ = nullptr;
    record::FlightRecorder *recorder_ = nullptr;
    record::ProvenanceLedger *prov_ = nullptr;
    AdversaryHook *adversary_ = nullptr;
    GuardSentry *sentry_ = nullptr;
    coin::StatePlane *plane_ = nullptr; ///< SoA mirror; may be null
    noc::NodeId self_;
    UnitConfig cfg_;
    sim::Rng rng_;
    coin::TileCoins state_{};
    coin::BackoffTimer timer_;
    coin::PartnerSelector selector_;
    coin::IsolationDetector iso_;
    bool running_ = false;
    bool crashed_ = false;
    bool quarantined_ = false;
    bool awaitingUpdate_ = false;
    /** Sources whose packets are dropped (quarantined neighbors). */
    std::set<noc::NodeId> shunned_;
    /** Per-initiator serve cap imposed by the guardian. */
    struct ServeThrottle
    {
        std::uint32_t budget = 0;
        std::uint32_t used = 0;
    };
    std::map<noc::NodeId, ServeThrottle> throttle_;
    /** Current in-flight 1-way exchange (at most one). */
    std::optional<PendingExchange> pending_;
    /** Timed-out exchanges being reconciled in the background. */
    std::vector<PendingExchange> unresolved_;
    /** Per-initiator log of recently served exchanges (partner side). */
    std::map<noc::NodeId, std::deque<ServedExchange>> servedLog_;
    /** Per-center stamp of the last applied group update (dedup). */
    std::map<noc::NodeId, std::uint64_t> groupSeen_;
    /** Monotonic exchange stamp; survives crash/restart (see restart). */
    std::uint64_t nextXid_ = 1;
    /** In-flight 4-way exchange: statuses gathered so far. */
    std::vector<std::pair<noc::NodeId, coin::TileCoins>> gathered_;
    std::size_t awaitedStatuses_ = 0;
    std::uint64_t fourWayGen_ = 0;
    /**
     * 4-way snapshot lock: after replying a status to a center, the
     * coin count is frozen until that center's update lands (or a
     * timeout). This is the synchronization primitive the paper says
     * the 4-way datapath requires (Section III-B); without it,
     * concurrent group rebalances act on stale snapshots and diverge.
     */
    bool snapshotHeld_ = false;
    noc::NodeId snapshotHolder_ = 0;
    std::uint64_t snapshotGen_ = 0;
    std::uint64_t timerGen_ = 0; ///< invalidates superseded wakeups
    std::uint64_t initiated_ = 0;
    std::uint64_t moved_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t recoversSent_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t duplicatesIgnored_ = 0;
    std::uint64_t corruptedDropped_ = 0;
    std::uint64_t abandoned_ = 0;
    std::uint64_t shunnedDrops_ = 0;
    std::uint64_t throttledDrops_ = 0;
};

} // namespace blitz::blitzcoin

#endif // BLITZ_BLITZCOIN_UNIT_HPP
