#include "allocation.hpp"

#include <algorithm>
#include <cmath>

namespace blitz::coin {

const char *
allocPolicyName(AllocPolicy p)
{
    switch (p) {
      case AllocPolicy::AbsoluteProportional: return "AP";
      case AllocPolicy::RelativeProportional: return "RP";
    }
    return "?";
}

CoinScale
makeScale(double budgetMw, const std::vector<double> &pMaxMw, int coinBits)
{
    if (budgetMw <= 0.0)
        sim::fatal("budget must be positive, got ", budgetMw, " mW");
    BLITZ_ASSERT(coinBits >= 2 && coinBits <= 16,
                 "coin precision out of range");
    double largest = 0.0;
    for (double p : pMaxMw)
        largest = std::max(largest, p);
    if (largest <= 0.0)
        sim::fatal("no tile has positive peak power");

    const auto levels = static_cast<double>((1 << coinBits) - 1);
    const double mw_per_coin = largest / levels;
    auto pool = static_cast<Coins>(std::llround(budgetMw / mw_per_coin));
    return CoinScale{std::max<Coins>(pool, 1), budgetMw};
}

std::vector<Coins>
computeMaxCoins(AllocPolicy policy, const std::vector<double> &pMaxMw,
                const std::vector<bool> &active, const CoinScale &scale,
                int coinBits)
{
    BLITZ_ASSERT(pMaxMw.size() == active.size(),
                 "pMax/active size mismatch");
    const Coins saturation = (Coins{1} << coinBits) - 1;
    const double mw_per_coin = scale.mwPerCoin();
    BLITZ_ASSERT(mw_per_coin > 0.0, "coin scale not initialized");

    std::vector<Coins> out(pMaxMw.size(), 0);
    for (std::size_t i = 0; i < pMaxMw.size(); ++i) {
        if (!active[i] || pMaxMw[i] <= 0.0)
            continue; // inactive tiles relinquish coins (max = 0)
        Coins target;
        if (policy == AllocPolicy::RelativeProportional) {
            target = static_cast<Coins>(
                std::llround(pMaxMw[i] / mw_per_coin));
        } else {
            // AP: identical max per active tile. Any common value gives
            // the equal-power equilibrium; full scale maximizes the
            // resolution of the per-tile coin counter.
            target = saturation;
        }
        out[i] = std::clamp<Coins>(target, 1, saturation);
    }
    return out;
}

} // namespace blitz::coin
