/**
 * @file
 * Power-allocation strategies: how `max` coin targets are programmed.
 *
 * BlitzCoin converges to has_i/max_i equal across tiles; *what* that
 * equilibrium means is decided by the max programming (Section V-B):
 *
 *  - Absolute Proportional (AP): every active tile gets the same max,
 *    so the equilibrium gives every tile the same absolute power.
 *  - Relative Proportional (RP): max is proportional to the tile's
 *    power at Fmax, so every tile lands at the same *relative*
 *    operating point — the workload-aware strategy the paper finds
 *    3.0-4.1% faster because no tile is forced to an inefficient
 *    high-voltage point.
 *
 * The same scale also defines the coin's physical meaning: with a pool
 * of `poolCoins` enforcing `budgetMw`, one coin is worth
 * budgetMw / poolCoins milliwatts.
 */

#ifndef BLITZ_COIN_ALLOCATION_HPP
#define BLITZ_COIN_ALLOCATION_HPP

#include <cstdint>
#include <vector>

#include "ledger.hpp"

namespace blitz::coin {

/** Allocation strategy selector. */
enum class AllocPolicy : std::uint8_t
{
    AbsoluteProportional, ///< equal max per active tile (AP)
    RelativeProportional, ///< max proportional to tile Pmax (RP)
};

const char *allocPolicyName(AllocPolicy p);

/** Coin-space description of one SoC power domain. */
struct CoinScale
{
    /** Total coins circulating; fixes the enforced budget. */
    Coins poolCoins = 0;
    /** SoC power budget the pool represents (mW). */
    double budgetMw = 0.0;

    /** Power represented by one coin (mW). */
    double
    mwPerCoin() const
    {
        return poolCoins > 0 ? budgetMw / static_cast<double>(poolCoins)
                             : 0.0;
    }

    /** Power represented by a holding (mW). */
    double
    powerOf(Coins has) const
    {
        return static_cast<double>(has) * mwPerCoin();
    }
};

/**
 * Compute per-tile max coin targets.
 *
 * @param policy AP or RP.
 * @param pMaxMw each tile's power at Fmax; <= 0 marks a tile that never
 *        participates (memory/IO/CPU tiles).
 * @param active whether each tile currently executes; inactive tiles
 *        get max = 0 and relinquish their coins.
 * @param scale coin scale of the domain (defines mW per coin).
 * @param coinBits counter precision; the hardware implements 6 bits
 *        (64 power levels, Section IV-A) and max targets saturate there.
 * @return max coins per tile.
 */
std::vector<Coins> computeMaxCoins(AllocPolicy policy,
                                   const std::vector<double> &pMaxMw,
                                   const std::vector<bool> &active,
                                   const CoinScale &scale,
                                   int coinBits = 6);

/**
 * Pool size that exactly represents the budget at the given precision:
 * the largest tile maps to (2^coinBits - 1) coins under RP, and the
 * pool is the budget expressed in those coin units.
 */
CoinScale makeScale(double budgetMw, const std::vector<double> &pMaxMw,
                    int coinBits = 6);

} // namespace blitz::coin

#endif // BLITZ_COIN_ALLOCATION_HPP
