/**
 * @file
 * Dynamic-timing exponential back-off (Section III-D optimization a).
 *
 * Each tile schedules its next status update adaptively: an exchange
 * that moved zero coins means the neighborhood is balanced, so the
 * interval is scaled up by lambda; an exchange that moved coins means
 * activity is in flight, so the interval shrinks by a constant k. The
 * combination converges quickly after a workload change yet stays quiet
 * in steady state — which both speeds convergence and cuts NoC traffic
 * (Fig. 6).
 */

#ifndef BLITZ_COIN_BACKOFF_HPP
#define BLITZ_COIN_BACKOFF_HPP

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace blitz::coin {

/** Back-off policy parameters. */
struct BackoffConfig
{
    bool enabled = true;
    sim::Tick baseInterval = 16; ///< refreshCount after an activity change
    double lambda = 2.0;         ///< multiplicative growth on idle
    sim::Tick k = 8;             ///< additive shrink on coin movement
    sim::Tick minInterval = 8;
    sim::Tick maxInterval = 2048;
    /**
     * Interval ceiling while the tile is locally discontent — holding
     * coins it no longer needs (max = 0, has > 0) or active with an
     * empty purse (max > 0, has = 0). Both conditions are computable
     * from the tile's own registers, so the rule stays decentralized.
     * Without it, a tile whose mesh neighbors are all idle can only
     * hand coins off through its every-16th random pairing, and full
     * exponential back-off stretches that to tens of microseconds.
     */
    sim::Tick discontentCap = 64;
};

/** Per-tile adaptive refresh interval. */
class BackoffTimer
{
  public:
    explicit BackoffTimer(const BackoffConfig &cfg = BackoffConfig{})
        : cfg_(cfg), interval_(cfg.baseInterval)
    {
        BLITZ_ASSERT(cfg.minInterval > 0, "min interval must be positive");
        BLITZ_ASSERT(cfg.maxInterval >= cfg.minInterval,
                     "interval range is empty");
        BLITZ_ASSERT(cfg.lambda >= 1.0, "lambda must be >= 1");
    }

    /** Current interval between status updates (ticks). */
    sim::Tick interval() const { return interval_; }

    /** Interval honoring the discontent ceiling (see BackoffConfig). */
    sim::Tick
    intervalFor(bool discontent) const
    {
        return discontent ? std::min(interval_, cfg_.discontentCap)
                          : interval_;
    }

    /**
     * Adapt after an exchange.
     * @param movedCoins true when the exchange transferred any coins.
     */
    void
    onExchange(bool movedCoins)
    {
        if (!cfg_.enabled)
            return;
        if (movedCoins) {
            // Coins in motion mean a transition is in progress: snap a
            // backed-off tile to the base cadence, then trim k per
            // further movement. Without the snap a tile that has idled
            // up to maxInterval would take many transitions to wake,
            // stalling the cascade that spreads a reallocation.
            interval_ = std::min(interval_, cfg_.baseInterval);
            interval_ = interval_ > cfg_.k + cfg_.minInterval
                            ? interval_ - cfg_.k
                            : cfg_.minInterval;
        } else {
            auto scaled = static_cast<sim::Tick>(
                std::llround(static_cast<double>(interval_) *
                             cfg_.lambda));
            interval_ = std::min(std::max(scaled, interval_ + 1),
                                 cfg_.maxInterval);
        }
    }

    /** Snap back to the base cadence (local activity change). */
    void
    resetOnActivity()
    {
        interval_ = cfg_.baseInterval;
    }

  private:
    BackoffConfig cfg_;
    sim::Tick interval_;
};

} // namespace blitz::coin

#endif // BLITZ_COIN_BACKOFF_HPP
