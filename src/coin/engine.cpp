#include "engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "record/recorder.hpp"
#include "trace/metrics.hpp"

namespace blitz::coin {

const char *
exchangeModeName(ExchangeMode m)
{
    switch (m) {
      case ExchangeMode::OneWay:  return "1-way";
      case ExchangeMode::FourWay: return "4-way";
    }
    return "?";
}

MeshSim::MeshSim(const noc::Topology &topo, const EngineConfig &cfg,
                 std::uint64_t seed)
    : topo_(topo.width(), topo.height(), cfg.wrap), cfg_(cfg), rng_(seed),
      ledger_(topo_.size()), pending_(topo_.size(), 0)
{
    BLITZ_ASSERT(cfg_.thermalCaps.empty() ||
                 cfg_.thermalCaps.size() == topo_.size(),
                 "thermal cap list size mismatch");
    timers_.reserve(topo_.size());
    selectors_.reserve(topo_.size());
    iso_.resize(topo_.size());
    for (noc::NodeId i = 0; i < topo_.size(); ++i) {
        timers_.emplace_back(cfg_.backoff);
        selectors_.emplace_back(topo_, i, cfg_.pairing, rng_);
        // Stagger initial firings across one base interval so the mesh
        // does not act in lockstep.
        scheduleTile(i, 1 + rng_.below(cfg_.backoff.baseInterval));
    }
}

Coins
MeshSim::capOf(std::size_t i) const
{
    return cfg_.thermalCaps.empty() ? uncapped : cfg_.thermalCaps[i];
}

Coins
MeshSim::neighborhoodCoins(std::size_t i) const
{
    Coins sum = ledger_.has(i);
    for (noc::NodeId n : selectors_[i].neighbors())
        sum += ledger_.has(n);
    return sum;
}

Coins
MeshSim::effectiveCap(std::size_t i) const
{
    Coins cap = capOf(i);
    if (cfg_.neighborhoodCap == uncapped)
        return cap;
    // Acceptance headroom of the 5-tile cross, expressed as the
    // largest holding this tile may grow to without breaching the
    // group cap.
    Coins group_room =
        cfg_.neighborhoodCap - (neighborhoodCoins(i) - ledger_.has(i));
    return std::min(cap, std::max<Coins>(group_room, 0));
}

void
MeshSim::rebuildError()
{
    alpha_ = ledger_.alpha();
    errSum_ = 0.0;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
        errSum_ += std::abs(
            static_cast<double>(ledger_.has(i)) -
            alpha_ * static_cast<double>(ledger_.max(i)));
    }
}

double
MeshSim::globalError() const
{
    return errSum_ / static_cast<double>(ledger_.size());
}

void
MeshSim::setMax(std::size_t i, Coins max)
{
    ledger_.setMax(i, max);
    rebuildError(); // alpha changed; all contributions shift
    timers_[i].resetOnActivity();
    // An activity change triggers an immediate status update from the
    // affected tile (the start/end of execution drives the request or
    // relinquishment of coins, Section III-A).
    scheduleTile(static_cast<std::uint32_t>(i), now_ + 1);
}

void
MeshSim::setHas(std::size_t i, Coins has)
{
    ledger_.setHas(i, has);
    rebuildError();
}

void
MeshSim::randomizeHas(Coins pool)
{
    BLITZ_ASSERT(pool >= 0, "coin pool cannot be negative");
    for (Coins c = 0; c < pool; ++c) {
        auto i = static_cast<std::size_t>(rng_.below(ledger_.size()));
        ledger_.setHas(i, ledger_.has(i) + 1);
    }
    rebuildError();
}

void
MeshSim::clusterHas(Coins pool)
{
    BLITZ_ASSERT(pool >= 0, "coin pool cannot be negative");
    // Random center; coins land uniformly within a Chebyshev radius
    // of ~d/4 around it (wrapping), i.e. about a quarter of the mesh.
    noc::Topology wrapped(topo_.width(), topo_.height(), true);
    const auto center =
        static_cast<noc::NodeId>(rng_.below(topo_.size()));
    const noc::Coord cc = wrapped.coordOf(center);
    const int rx = std::max(topo_.width() / 4, 1);
    const int ry = std::max(topo_.height() / 4, 1);
    for (Coins c = 0; c < pool; ++c) {
        int dx = static_cast<int>(rng_.range(-rx, rx));
        int dy = static_cast<int>(rng_.range(-ry, ry));
        noc::Coord at{(cc.x + dx + topo_.width()) % topo_.width(),
                      (cc.y + dy + topo_.height()) % topo_.height()};
        auto i = static_cast<std::size_t>(wrapped.idOf(at));
        ledger_.setHas(i, ledger_.has(i) + 1);
    }
    rebuildError();
}

void
MeshSim::scheduleTile(std::uint32_t tile, sim::Tick when)
{
    ++pending_[tile];
    heap_.push(Firing{when, tile, pending_[tile]});
}

void
MeshSim::drainSamples(sim::Tick upTo)
{
    // State is piecewise constant between firings, so the registers at
    // each cadence boundary the run crossed are exactly the current
    // ones; emit each due snapshot at its nominal tick.
    while (nextSample_ <= upTo) {
        metrics_->sample(nextSample_);
        nextSample_ += sampleEvery_;
    }
}

Coins
MeshSim::doPairwise(std::uint32_t i, std::uint32_t j)
{
    const double err_i = std::abs(
        static_cast<double>(ledger_.has(i)) -
        alpha_ * static_cast<double>(ledger_.max(i)));
    const double err_j = std::abs(
        static_cast<double>(ledger_.has(j)) -
        alpha_ * static_cast<double>(ledger_.max(j)));

    Coins delta = pairwiseDelta(ledger_.tile(i), ledger_.tile(j),
                                effectiveCap(i), effectiveCap(j));
    if (delta != 0) {
        ledger_.transfer(i, j, delta);
        if (recorder_)
            recorder_->transfer(now_, i, j, delta,
                                static_cast<std::int64_t>(exchanges_));
    }

    errSum_ -= err_i + err_j;
    errSum_ += std::abs(static_cast<double>(ledger_.has(i)) -
                        alpha_ * static_cast<double>(ledger_.max(i)));
    errSum_ += std::abs(static_cast<double>(ledger_.has(j)) -
                        alpha_ * static_cast<double>(ledger_.max(j)));
    return std::llabs(delta);
}

Coins
MeshSim::doFourWay(std::uint32_t center,
                   const std::vector<noc::NodeId> &members)
{
    std::vector<TileCoins> &group = groupScratch_;
    std::vector<Coins> &caps = capsScratch_;
    group.clear();
    caps.clear();
    group.reserve(members.size() + 1);
    group.push_back(ledger_.tile(center));
    caps.push_back(effectiveCap(center));
    for (noc::NodeId n : members) {
        group.push_back(ledger_.tile(n));
        caps.push_back(effectiveCap(n));
    }

    const bool capped = !cfg_.thermalCaps.empty() ||
                        cfg_.neighborhoodCap != uncapped;
    std::vector<Coins> split =
        groupSplit(group, capped ? std::span<const Coins>(caps)
                                 : std::span<const Coins>{});

    Coins moved = 0;
    for (std::size_t k = 0; k < members.size(); ++k) {
        Coins delta = split[k + 1] - ledger_.has(members[k]);
        if (delta != 0) {
            ledger_.transfer(center, members[k], delta);
            if (recorder_)
                recorder_->transfer(
                    now_, center, members[k], delta,
                    static_cast<std::int64_t>(exchanges_));
            moved += std::llabs(delta);
        }
    }
    rebuildError(); // alpha is unchanged but up to 5 tiles moved
    return moved;
}

sim::Tick
MeshSim::fire(std::uint32_t tile)
{
    sim::Tick completion;
    Coins moved;
    if (cfg_.mode == ExchangeMode::OneWay) {
        noc::NodeId partner = selectors_[tile].next(isolated(tile));
        const auto dist = static_cast<sim::Tick>(
            topo_.distance(tile, partner));
        // status hop(s) + FSM compute + update hop(s)
        completion = now_ + dist * cfg_.hopCycles + cfg_.fsmCycles +
                     dist * cfg_.hopCycles;
        if (cfg_.lossRate > 0.0 && rng_.chance(cfg_.lossRate)) {
            // The status leg was lost: no rebalance ran anywhere. The
            // initiator times out, backs off, and refires later.
            ++losses_;
            packets_ += 1;
            timers_[tile].onExchange(false);
            completion = now_ + cfg_.lossRecoveryCycles;
            scheduleTile(tile,
                         completion +
                             timers_[tile].intervalFor(
                                 discontent(tile) || isolated(tile)));
            return completion;
        }
        bool updateLost =
            cfg_.lossRate > 0.0 && rng_.chance(cfg_.lossRate);
        if (updateLost) {
            // The update leg was lost: the partner's half already ran
            // and reconciliation replays the delta to the initiator —
            // same arithmetic, so the atomic ledger transfer below is
            // exactly the recovered outcome; only time and packets are
            // spent (timeout + probe + replayed update).
            ++losses_;
            packets_ += 2;
            completion += cfg_.lossRecoveryCycles;
        }
        packets_ += 2;
        moved = doPairwise(tile, partner);
        timers_[partner].onExchange(moved != 0);
        iso_[tile].onExchange(moved != 0, ledger_.max(partner));
        iso_[partner].onExchange(moved != 0, ledger_.max(tile));
        // Wake the partner at its (now shortened) cadence so the
        // reallocation wave propagates instead of waiting out a
        // backed-off interval.
        if (moved != 0)
            scheduleTile(partner,
                         completion +
                             timers_[partner].intervalFor(
                                 discontent(partner) ||
                                 isolated(partner)));
    } else {
        // request + status + update to each of the (up to) 4 neighbors;
        // neighbor hops are distance 1 by construction.
        const auto &all = selectors_[tile].neighbors();
        std::vector<noc::NodeId> &survivors = survivorScratch_;
        survivors.clear();
        const std::vector<noc::NodeId> *members = &all;
        if (cfg_.lossRate > 0.0) {
            // A lost request or status leg excludes that member from
            // the round (the center completes with whoever replied,
            // exactly as the packet model does).
            survivors.reserve(all.size());
            for (noc::NodeId n : all) {
                if (rng_.chance(cfg_.lossRate))
                    ++losses_;
                else
                    survivors.push_back(n);
            }
            members = &survivors;
        }
        const auto fan = static_cast<sim::Tick>(all.size());
        completion = now_ + 3 * cfg_.hopCycles + cfg_.fsmCycles +
                     cfg_.fourWayExtraCycles;
        packets_ += 3 * fan;
        moved = doFourWay(tile, *members);
        for (noc::NodeId n : *members) {
            timers_[n].onExchange(moved != 0);
            if (moved != 0)
                scheduleTile(n, completion +
                                    timers_[n].intervalFor(
                                        discontent(n) || isolated(n)));
        }
    }
    ++exchanges_;
    timers_[tile].onExchange(moved != 0);
    scheduleTile(tile,
                 completion + timers_[tile].intervalFor(
                                  discontent(tile) || isolated(tile)));
    return completion;
}

RunResult
MeshSim::runUntilConverged(double errThreshold, sim::Tick maxTime)
{
    RunResult result;
    const std::uint64_t packets0 = packets_;
    const std::uint64_t exchanges0 = exchanges_;

    if (globalError() < errThreshold) {
        result.converged = true;
        result.time = now_;
        return result;
    }

    while (!heap_.empty() && heap_.top().when <= maxTime) {
        Firing f = heap_.top();
        heap_.pop();
        if (f.stamp != pending_[f.tile])
            continue; // superseded by an activity-change reschedule
        if (metrics_)
            drainSamples(f.when);
        now_ = f.when;
        sim::Tick completion = fire(f.tile);
        if (globalError() < errThreshold) {
            result.converged = true;
            result.time = completion;
            break;
        }
    }
    if (!result.converged) {
        now_ = std::min(maxTime, now_);
        result.time = now_;
    }
    if (metrics_)
        drainSamples(now_);
    result.packets = packets_ - packets0;
    result.exchanges = exchanges_ - exchanges0;
    return result;
}

RunResult
MeshSim::runFor(sim::Tick duration)
{
    RunResult result;
    const std::uint64_t packets0 = packets_;
    const std::uint64_t exchanges0 = exchanges_;
    const sim::Tick deadline = now_ + duration;

    while (!heap_.empty() && heap_.top().when <= deadline) {
        Firing f = heap_.top();
        heap_.pop();
        if (f.stamp != pending_[f.tile])
            continue;
        if (metrics_)
            drainSamples(f.when);
        now_ = f.when;
        fire(f.tile);
    }
    now_ = deadline;
    if (metrics_)
        drainSamples(deadline);
    result.converged = false;
    result.time = now_;
    result.packets = packets_ - packets0;
    result.exchanges = exchanges_ - exchanges0;
    return result;
}

} // namespace blitz::coin
