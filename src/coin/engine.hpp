/**
 * @file
 * Behavioral coin-exchange engine (the paper's "in-house simulator").
 *
 * Section III evaluates BlitzCoin's algorithm with Monte-Carlo runs of a
 * step-level emulator: tiles fire on their refresh timers, pick partners,
 * and rebalance atomically while the engine accounts NoC cycles and
 * packets analytically. This engine reproduces that methodology — it is
 * the vehicle for Figs. 3, 4, 6, 7 and 8 and for the design-space
 * ablations. The full packet-accurate model lives in src/blitzcoin and
 * is used for the SoC-level experiments.
 */

#ifndef BLITZ_COIN_ENGINE_HPP
#define BLITZ_COIN_ENGINE_HPP

#include <cstdint>
#include <queue>
#include <vector>

#include "backoff.hpp"
#include "exchange.hpp"
#include "ledger.hpp"
#include "noc/topology.hpp"
#include "pairing.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace blitz::trace {
class Registry;
}

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::coin {

/** Which exchange algorithm the engine runs. */
enum class ExchangeMode : std::uint8_t
{
    OneWay,  ///< Algorithm 2: pairwise, rotating through neighbors
    FourWay, ///< Algorithm 1: center + 4 neighbors at once
};

const char *exchangeModeName(ExchangeMode m);

/** Engine configuration; defaults match the paper's chosen embodiment. */
struct EngineConfig
{
    ExchangeMode mode = ExchangeMode::OneWay;
    /** Torus wrap-around neighborhoods (Fig. 5 left). */
    bool wrap = true;
    /** Dynamic timing; .enabled=false gives the fixed-interval variant. */
    BackoffConfig backoff{};
    /** Random pairing; .randomPairing=false disables it. */
    PairingConfig pairing{};
    /** Per-hop NoC latency in cycles. */
    sim::Tick hopCycles = 1;
    /** Coin-update FSM latency; 1 cycle in the hardware (Section IV-A). */
    sim::Tick fsmCycles = 1;
    /**
     * Extra latency of the 4-way arithmetic: the many-operand update
     * needs pipelining and synchronization the pairwise datapath avoids
     * (Section III-B).
     */
    sim::Tick fourWayExtraCycles = 4;
    /** Optional per-tile thermal caps (empty = uncapped). */
    std::vector<Coins> thermalCaps;
    /**
     * Optional neighborhood thermal cap (Section III-B's sub-group
     * form): a tile rejects incoming coins when its own holdings plus
     * its mesh neighbors' would exceed this value — bounding the power
     * density of any 5-tile cross on the die. ::uncapped disables it.
     */
    Coins neighborhoodCap = uncapped;
    /**
     * Behavioral packet-loss model, mirroring the packet-accurate
     * recovery protocol's *outcome* (see blitzcoin/unit.hpp): each leg
     * of an exchange is lost with this probability. A lost status leg
     * makes the firing a no-op (the initiator times out); a lost
     * update leg still applies the rebalance — reconciliation replays
     * the delta — but completion is delayed by lossRecoveryCycles and
     * the probe/replay packets are accounted. Coins stay conserved
     * structurally (the ledger moves both halves atomically). The RNG
     * is only consulted when the rate is non-zero, so existing seeded
     * trials replay bit-identically.
     */
    double lossRate = 0.0;
    /** Added completion latency when an update leg must be recovered. */
    sim::Tick lossRecoveryCycles = 512;
};

/** Outcome of a convergence run. */
struct RunResult
{
    bool converged = false;
    sim::Tick time = 0;          ///< tick of the converging exchange
    std::uint64_t packets = 0;   ///< NoC messages used
    std::uint64_t exchanges = 0; ///< exchange operations performed
};

/**
 * Step-level mesh simulator for the coin-exchange algorithm.
 *
 * Determinism: all randomness (initial holdings, partner staggering,
 * same-tick ordering) derives from the seed passed at construction.
 */
class MeshSim
{
  public:
    /**
     * @param topo mesh shape (copied). Wrap-around is taken from
     *        cfg.wrap, overriding the topology flag.
     * @param cfg engine parameters.
     * @param seed RNG seed for this trial.
     */
    MeshSim(const noc::Topology &topo, const EngineConfig &cfg,
            std::uint64_t seed);

    const noc::Topology &topology() const { return topo_; }
    const Ledger &ledger() const { return ledger_; }
    sim::Tick now() const { return now_; }

    /** Program a tile's target; resets its refresh timer. */
    void setMax(std::size_t i, Coins max);

    /** Set a tile's holdings (initialization). */
    void setHas(std::size_t i, Coins has);

    /**
     * Scatter @p pool coins uniformly at random over the tiles —
     * the random initialization of the paper's Monte-Carlo runs.
     */
    void randomizeHas(Coins pool);

    /**
     * Scatter @p pool coins over a random contiguous region covering
     * roughly a quarter of the mesh. This is the physically relevant
     * initialization — coins start parked where the previous workload
     * ran — and it creates the long-range transport that makes
     * convergence time scale with the mesh diameter (Fig. 3); a
     * uniform scatter has only local imbalance and converges in O(1)
     * rounds at any size.
     */
    void clusterHas(Coins pool);

    /** Global mean error Err (cached; O(1)). */
    double globalError() const;

    /** Largest per-tile error (Fig. 7 metric; O(N)). */
    double maxError() const { return ledger_.maxError(); }

    /**
     * Run until Err < @p errThreshold or @p maxTime passes.
     * Counters (packets/exchanges) are measured from the call, not from
     * construction, so response-time probes can reuse one engine.
     */
    RunResult runUntilConverged(double errThreshold, sim::Tick maxTime);

    /** Run for a fixed duration regardless of convergence. */
    RunResult runFor(sim::Tick duration);

    /** Total packets since construction. */
    std::uint64_t totalPackets() const { return packets_; }

    /** Total exchanges since construction. */
    std::uint64_t totalExchanges() const { return exchanges_; }

    /** Exchange legs lost to the behavioral loss model. */
    std::uint64_t totalLosses() const { return losses_; }

    /**
     * Coins held by a tile's cross neighborhood (itself included) —
     * the quantity the neighborhood thermal cap bounds.
     */
    Coins neighborhoodCoins(std::size_t i) const;

    /**
     * Attach a metrics registry sampled every @p interval ticks (or
     * detach with nullptr). The engine calls Registry::sample at each
     * cadence boundary its run loops cross; sampling reads state and
     * touches no RNG, so an attached registry leaves trial outcomes
     * bit-identical. Register the gauges (trace::attachMeshMetrics)
     * before the first run.
     */
    void
    setSampling(trace::Registry *reg, sim::Tick interval)
    {
        metrics_ = reg;
        sampleEvery_ = interval;
        nextSample_ = now_ + interval;
    }

    /**
     * Attach the flight recorder (nullptr detaches). Every non-zero
     * coin movement — one Transfer record per pairwise rebalance, one
     * per group-member delta — is journaled with the running exchange
     * count as its transaction id. Pure observer: no RNG, no timing,
     * so seeded trials stay bit-identical.
     */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

  private:
    struct Firing
    {
        sim::Tick when;
        std::uint32_t tile;
        std::uint64_t stamp; ///< matches pending_[tile] or it is stale

        bool
        operator>(const Firing &o) const
        {
            if (when != o.when)
                return when > o.when;
            return tile > o.tile;
        }
    };

    /** Recompute alpha and the cached error sum from scratch. */
    void rebuildError();

    /** Execute one firing; returns the exchange completion tick. */
    sim::Tick fire(std::uint32_t tile);

    /** Perform a pairwise exchange; returns coins moved (absolute). */
    Coins doPairwise(std::uint32_t i, std::uint32_t j);

    /** 4-way group exchange over @p members; returns coins moved. */
    Coins doFourWay(std::uint32_t center,
                    const std::vector<noc::NodeId> &members);

    void scheduleTile(std::uint32_t tile, sim::Tick when);

    /** Emit every due snapshot with tick <= @p upTo. */
    void drainSamples(sim::Tick upTo);

    Coins capOf(std::size_t i) const;

    /**
     * Acceptance cap of a tile combining its own thermal cap with the
     * neighborhood (power-density) cap.
     */
    Coins effectiveCap(std::size_t i) const;

    /** Local imbalance that pins the tile at a short refresh cadence. */
    bool
    discontent(std::size_t i) const
    {
        const TileCoins &t = ledger_.tile(i);
        return (t.max == 0 && t.has > 0) || (t.max > 0 && t.has == 0);
    }

    /** Active tile stranded in an idle neighborhood (Fig. 5). */
    bool
    isolated(std::size_t i) const
    {
        return ledger_.max(i) > 0 && iso_[i].isolated();
    }

    noc::Topology topo_;
    EngineConfig cfg_;
    sim::Rng rng_;
    Ledger ledger_;
    std::vector<BackoffTimer> timers_;
    std::vector<PartnerSelector> selectors_;
    /**
     * Exchange-round scratch, reused across firings so the hot loop
     * (one group build per 4-way round, one survivor filter per lossy
     * round) stops allocating. Valid only within a single call.
     */
    std::vector<TileCoins> groupScratch_;
    std::vector<Coins> capsScratch_;
    std::vector<noc::NodeId> survivorScratch_;
    std::vector<IsolationDetector> iso_;
    std::vector<std::uint64_t> pending_;
    std::priority_queue<Firing, std::vector<Firing>,
                        std::greater<Firing>> heap_;
    sim::Tick now_ = 0;
    trace::Registry *metrics_ = nullptr;
    record::FlightRecorder *recorder_ = nullptr;
    sim::Tick sampleEvery_ = 0;
    sim::Tick nextSample_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t exchanges_ = 0;
    std::uint64_t losses_ = 0;
    // Cached error state: alpha_ changes only on setMax/setHas.
    double alpha_ = 0.0;
    double errSum_ = 0.0;
};

} // namespace blitz::coin

#endif // BLITZ_COIN_ENGINE_HPP
