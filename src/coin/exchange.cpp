#include "exchange.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace blitz::coin {

namespace {

/** round(num / den) to nearest, half away from zero; den > 0. */
Coins
roundDiv(Coins num, Coins den)
{
    BLITZ_ASSERT(den > 0, "roundDiv needs a positive denominator");
    if (num >= 0)
        return (num + den / 2) / den;
    return -((-num + den / 2) / den);
}

/** Acceptance headroom of a tile under its thermal cap. */
Coins
headroom(const TileCoins &t, Coins cap)
{
    if (cap == uncapped)
        return uncapped;
    return std::max<Coins>(0, cap - t.has);
}

} // namespace

Coins
pairwiseDelta(const TileCoins &i, const TileCoins &j, Coins capI,
              Coins capJ)
{
    const Coins total = i.has + j.has;
    const Coins m = i.max + j.max;
    if (m == 0) {
        // Both tiles inactive: coins stay put; a later exchange with an
        // active tile (possibly via random pairing) will collect them.
        return 0;
    }
    const Coins new_i = roundDiv(i.max * total, m);
    Coins into_i = new_i - i.has; // positive: coins flow j -> i

    // Thermal caps limit what a tile will *accept*, never what it may
    // already hold (Section III-B hotspot rejection).
    if (into_i > 0) {
        into_i = std::min(into_i, headroom(i, capI));
    } else if (into_i < 0) {
        into_i = -std::min(-into_i, headroom(j, capJ));
    }
    return -into_i; // signed flow i -> j
}

std::vector<Coins>
groupSplit(std::span<const TileCoins> group, std::span<const Coins> caps)
{
    BLITZ_ASSERT(!group.empty(), "empty exchange group");
    BLITZ_ASSERT(caps.empty() || caps.size() == group.size(),
                 "cap list size mismatch");

    const std::size_t n = group.size();
    Coins total = 0;
    Coins m = 0;
    for (const auto &t : group) {
        total += t.has;
        m += t.max;
    }
    BLITZ_ASSERT(total >= 0, "group exchange with negative coin total");

    std::vector<Coins> out(n);

    // Acceptance limit of a tile: its cap, but never less than what it
    // already holds (caps bound what a tile accepts, not what it has).
    auto limit_of = [&](std::size_t k) {
        Coins cap = caps.empty() ? uncapped : caps[k];
        return cap == uncapped ? uncapped : std::max(group[k].has, cap);
    };
#ifndef NDEBUG
    auto conserved = [&] {
        return std::accumulate(out.begin(), out.end(), Coins{0}) ==
               total;
    };
#define BLITZ_CHECK_CONSERVED()                                        \
    BLITZ_ASSERT(conserved(), "groupSplit lost or minted coins")
#else
#define BLITZ_CHECK_CONSERVED() ((void)0)
#endif

    if (m == 0) {
        for (std::size_t k = 0; k < n; ++k)
            out[k] = group[k].has;
        BLITZ_CHECK_CONSERVED();
        return out;
    }

    // Waterfill: tiles whose fair share exceeds their acceptance limit
    // are frozen at that limit and the remainder is re-split among the
    // rest. Terminates in <= n rounds (each round freezes >= 1 tile).
    std::vector<bool> frozen(n, false);
    Coins remaining = total;
    Coins mActive = m;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t k = 0; k < n && mActive > 0; ++k) {
            if (frozen[k])
                continue;
            Coins cap = caps.empty() ? uncapped : caps[k];
            // A tile accepts at most up to its cap but always keeps
            // what it already holds.
            Coins limit = cap == uncapped
                              ? uncapped
                              : std::max(group[k].has, cap);
            if (limit == uncapped)
                continue;
            Coins fair = roundDiv(group[k].max * remaining, mActive);
            if (fair > limit) {
                out[k] = limit;
                frozen[k] = true;
                remaining -= limit;
                mActive -= group[k].max;
                changed = true;
            }
        }
    }

    // Fair split of what remains: floor shares plus largest-remainder
    // distribution, deterministic (ties resolve to the lowest index).
    std::vector<std::size_t> active;
    for (std::size_t k = 0; k < n; ++k) {
        if (!frozen[k])
            active.push_back(k);
    }
    if (active.empty()) {
        BLITZ_CHECK_CONSERVED();
        return out;
    }

    if (mActive == 0) {
        // Only inactive tiles remain unfrozen; park leftover coins on
        // them first-fit in index order, honoring each tile's
        // acceptance limit so a capped-but-idle tile never ends the
        // exchange above its cap. Only if every parking spot is full
        // does conservation win and the residue stay with the first.
        for (std::size_t k : active)
            out[k] = 0;
        Coins residue = remaining;
        for (std::size_t k : active) {
            if (residue <= 0)
                break;
            Coins lim = limit_of(k);
            Coins take = lim == uncapped ? residue
                                         : std::min(residue, lim);
            out[k] = take;
            residue -= take;
        }
        if (residue > 0)
            out[active.front()] += residue;
        BLITZ_CHECK_CONSERVED();
        return out;
    }

    Coins assigned = 0;
    std::vector<std::pair<Coins, std::size_t>> fracs; // (remainder, idx)
    for (std::size_t k : active) {
        Coins num = group[k].max * remaining;
        Coins share = num >= 0 ? num / mActive
                               : -((-num + mActive - 1) / mActive);
        out[k] = share;
        assigned += share;
        fracs.emplace_back(num - share * mActive, k);
    }
    Coins leftover = remaining - assigned;
    std::sort(fracs.begin(), fracs.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    // Largest-remainder distribution, skipping tiles already at their
    // acceptance limit so the +1 never breaches a cap.
    std::size_t stuck = 0;
    for (std::size_t r = 0; leftover > 0; ++r) {
        std::size_t k = fracs[r % fracs.size()].second;
        if (out[k] < limit_of(k)) {
            ++out[k];
            --leftover;
            stuck = 0;
        } else if (++stuck >= fracs.size()) {
            // Every unfrozen tile is at its limit: conservation wins
            // and the residue stays with the first of them.
            out[fracs[0].second] += leftover;
            leftover = 0;
        }
    }

    BLITZ_CHECK_CONSERVED();
    return out;
}
#undef BLITZ_CHECK_CONSERVED

} // namespace blitz::coin
