/**
 * @file
 * Coin-exchange arithmetic: the paper's Algorithms 1 and 2.
 *
 * Both variants compute, for a group of tiles, the allocation that gives
 * every tile the same has/max ratio while conserving the group total
 * exactly (integer coins, deterministic rounding). The 1-way form is a
 * single pairwise rebalance; the 4-way form rebalances a center tile and
 * its (up to) four neighbors at once.
 *
 * Optional per-tile caps implement the thermal/hotspot extension of
 * Section III-B: a capped tile never accepts coins beyond its cap, and
 * the surplus stays with the partner(s).
 */

#ifndef BLITZ_COIN_EXCHANGE_HPP
#define BLITZ_COIN_EXCHANGE_HPP

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "ledger.hpp"

namespace blitz::coin {

/** Sentinel for "no thermal cap". */
inline constexpr Coins uncapped = std::numeric_limits<Coins>::max();

/**
 * Pairwise (1-way) exchange arithmetic.
 *
 * @param i initiator state (has, max).
 * @param j partner state.
 * @param capI thermal cap on tile i's holdings (::uncapped if none).
 * @param capJ thermal cap on tile j's holdings.
 * @return signed number of coins flowing i -> j (negative means j -> i).
 *         0 when neither tile is active or the pair is balanced.
 *
 * Postcondition: applying the delta equalizes has/max between the two
 * tiles within one-coin rounding, subject to the caps, and conserves
 * has_i + has_j exactly.
 */
Coins pairwiseDelta(const TileCoins &i, const TileCoins &j,
                    Coins capI = uncapped, Coins capJ = uncapped);

/**
 * Group (4-way) exchange arithmetic over a center tile and neighbors.
 *
 * @param group states of the participating tiles (center first by
 *        convention, though the math is symmetric).
 * @param caps optional per-tile caps (empty = uncapped).
 * @return new `has` value per tile, same order; sums to the group total.
 *
 * Coins are assigned as floor(max_i * total / M) with the remainder
 * distributed by largest fractional part (ties to the lower index), the
 * deterministic analog of the paper's "within rounding error" fairness.
 */
std::vector<Coins> groupSplit(std::span<const TileCoins> group,
                              std::span<const Coins> caps = {});

} // namespace blitz::coin

#endif // BLITZ_COIN_EXCHANGE_HPP
