#include "ledger.hpp"

#include <algorithm>
#include <cmath>

namespace blitz::coin {

Ledger::Ledger(std::size_t n)
    : tiles_(n)
{
    BLITZ_ASSERT(n > 0, "ledger needs at least one tile");
}

void
Ledger::setMax(std::size_t i, Coins max)
{
    BLITZ_ASSERT(i < tiles_.size(), "tile index out of range");
    BLITZ_ASSERT(max >= 0, "max coins cannot be negative");
    totalMax_ += max - tiles_[i].max;
    tiles_[i].max = max;
}

void
Ledger::setHas(std::size_t i, Coins has)
{
    BLITZ_ASSERT(i < tiles_.size(), "tile index out of range");
    totalHas_ += has - tiles_[i].has;
    tiles_[i].has = has;
}

void
Ledger::transfer(std::size_t from, std::size_t to, Coins amount)
{
    BLITZ_ASSERT(from < tiles_.size() && to < tiles_.size(),
                 "tile index out of range");
    BLITZ_ASSERT(from != to, "transfer to self");
    tiles_[from].has -= amount;
    tiles_[to].has += amount;
    ++transfers_;
    coinsMoved_ += static_cast<std::uint64_t>(
        amount < 0 ? -amount : amount);
}

double
Ledger::alpha() const
{
    if (totalMax_ == 0)
        return 0.0;
    return static_cast<double>(totalHas_) /
           static_cast<double>(totalMax_);
}

double
Ledger::tileError(std::size_t i) const
{
    BLITZ_ASSERT(i < tiles_.size(), "tile index out of range");
    return std::abs(static_cast<double>(tiles_[i].has) -
                    alpha() * static_cast<double>(tiles_[i].max));
}

double
Ledger::globalError() const
{
    double sum = 0.0;
    const double a = alpha();
    for (const auto &t : tiles_) {
        sum += std::abs(static_cast<double>(t.has) -
                        a * static_cast<double>(t.max));
    }
    return sum / static_cast<double>(tiles_.size());
}

double
Ledger::maxError() const
{
    double worst = 0.0;
    const double a = alpha();
    for (const auto &t : tiles_) {
        worst = std::max(worst,
                         std::abs(static_cast<double>(t.has) -
                                  a * static_cast<double>(t.max)));
    }
    return worst;
}

void
Ledger::clear()
{
    std::fill(tiles_.begin(), tiles_.end(), TileCoins{});
    totalHas_ = 0;
    totalMax_ = 0;
    transfers_ = 0;
    coinsMoved_ = 0;
}

} // namespace blitz::coin
