#include "ledger.hpp"

#include <algorithm>
#include <cmath>

namespace blitz::coin {

Ledger::Ledger(std::size_t n)
    : has_(n, 0), max_(n, 0)
{
    BLITZ_ASSERT(n > 0, "ledger needs at least one tile");
}

void
Ledger::setMax(std::size_t i, Coins max)
{
    BLITZ_ASSERT(i < max_.size(), "tile index out of range");
    BLITZ_ASSERT(max >= 0, "max coins cannot be negative");
    totalMax_ += max - max_[i];
    max_[i] = max;
}

void
Ledger::setHas(std::size_t i, Coins has)
{
    BLITZ_ASSERT(i < has_.size(), "tile index out of range");
    totalHas_ += has - has_[i];
    has_[i] = has;
}

void
Ledger::transfer(std::size_t from, std::size_t to, Coins amount)
{
    BLITZ_ASSERT(from < has_.size() && to < has_.size(),
                 "tile index out of range");
    BLITZ_ASSERT(from != to, "transfer to self");
    has_[from] -= amount;
    has_[to] += amount;
    ++transfers_;
    coinsMoved_ += static_cast<std::uint64_t>(
        amount < 0 ? -amount : amount);
}

double
Ledger::alpha() const
{
    if (totalMax_ == 0)
        return 0.0;
    return static_cast<double>(totalHas_) /
           static_cast<double>(totalMax_);
}

double
Ledger::tileError(std::size_t i) const
{
    BLITZ_ASSERT(i < has_.size(), "tile index out of range");
    return std::abs(static_cast<double>(has_[i]) -
                    alpha() * static_cast<double>(max_[i]));
}

double
Ledger::globalError() const
{
    double sum = 0.0;
    const double a = alpha();
    const std::size_t n = has_.size();
    for (std::size_t i = 0; i < n; ++i) {
        sum += std::abs(static_cast<double>(has_[i]) -
                        a * static_cast<double>(max_[i]));
    }
    return sum / static_cast<double>(n);
}

double
Ledger::maxError() const
{
    double worst = 0.0;
    const double a = alpha();
    const std::size_t n = has_.size();
    for (std::size_t i = 0; i < n; ++i) {
        worst = std::max(worst,
                         std::abs(static_cast<double>(has_[i]) -
                                  a * static_cast<double>(max_[i])));
    }
    return worst;
}

void
Ledger::clear()
{
    std::fill(has_.begin(), has_.end(), 0);
    std::fill(max_.begin(), max_.end(), 0);
    totalHas_ = 0;
    totalMax_ = 0;
    transfers_ = 0;
    coinsMoved_ = 0;
}

} // namespace blitz::coin
