/**
 * @file
 * Per-tile coin state and the SoC-wide ledger.
 *
 * A coin is the paper's unit of power budget (Section III-A): each tile
 * holds `has` coins and advertises a target `max` proportional to the
 * power it wants at full speed. The ledger owns the authoritative coin
 * state for the behavioral engine and maintains the running totals and
 * the global error incrementally, so convergence can be tested after
 * every exchange at O(1) cost.
 *
 * Coins are signed: the hardware extends the 6-bit coin counter with a
 * sign bit because in-flight exchanges can transiently drive a count
 * negative (Section IV-A). Steady-state counts are always non-negative,
 * which the tests assert.
 */

#ifndef BLITZ_COIN_LEDGER_HPP
#define BLITZ_COIN_LEDGER_HPP

#include <cstdint>
#include <vector>

#include "sim/logging.hpp"

namespace blitz::coin {

/** Coin quantities; signed for transient underflow. */
using Coins = std::int64_t;

/** One tile's coin state. */
struct TileCoins
{
    Coins has = 0; ///< coins currently held
    Coins max = 0; ///< target/maximum coins (0 while inactive)
};

/**
 * Coin ledger for N tiles with incremental error tracking.
 *
 * The paper's metrics (Section III-E):
 *   alpha = sum(has) / sum(max)             global convergence ratio
 *   E_i   = |has_i - alpha * max_i|          per-tile error
 *   Err   = (1/N) sum E_i                    global (mean) error
 */
class Ledger
{
  public:
    /** Create a ledger of @p n tiles, all zeroed. */
    explicit Ledger(std::size_t n);

    std::size_t size() const { return has_.size(); }

    Coins has(std::size_t i) const { return has_[i]; }
    Coins max(std::size_t i) const { return max_[i]; }

    /**
     * Both registers of one tile, as a value. The ledger stores its
     * columns struct-of-arrays (the behavioral engine's inner loop
     * reads long runs of one register at a time — alpha and error
     * sweeps touch has/max as whole columns), so there is no TileCoins
     * object to reference; the pair is assembled on the fly.
     */
    TileCoins
    tile(std::size_t i) const
    {
        return TileCoins{has_[i], max_[i]};
    }

    /**
     * Raw column views for vectorized consumers (error reductions,
     * census scans). Indexed by tile; never reallocated after
     * construction.
     */
    const Coins *hasData() const { return has_.data(); }
    const Coins *maxData() const { return max_.data(); }

    /** Sum of held coins — invariant across exchanges. */
    Coins totalHas() const { return totalHas_; }

    /** Sum of targets. */
    Coins totalMax() const { return totalMax_; }

    /**
     * Always-on exchange accounting: transfer() invocations and the
     * absolute coins they moved since construction (or clear()). The
     * metrics plane samples these through gauges; keeping them here
     * means every engine that moves coins is covered for free.
     */
    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t coinsMoved() const { return coinsMoved_; }

    /** Set a tile's target (activity start/end). */
    void setMax(std::size_t i, Coins max);

    /** Set a tile's holdings (initialization only). */
    void setHas(std::size_t i, Coins has);

    /**
     * Move coins between tiles; the only mutation exchanges may use,
     * so conservation is structural.
     * @param from source tile.
     * @param to destination tile.
     * @param amount coins to move (may be negative, reversing roles).
     */
    void transfer(std::size_t from, std::size_t to, Coins amount);

    /** Global convergence ratio alpha; 0 when no tile is active. */
    double alpha() const;

    /** Per-tile error E_i against the current alpha. */
    double tileError(std::size_t i) const;

    /** Global mean error Err. */
    double globalError() const;

    /** Largest per-tile error (the Fig. 7 metric). */
    double maxError() const;

    /** True when the global error is below @p threshold. */
    bool
    converged(double threshold) const
    {
        return globalError() < threshold;
    }

    /** Reset all tiles to zero. */
    void clear();

  private:
    /// Struct-of-arrays tile state: one contiguous column per register.
    std::vector<Coins> has_;
    std::vector<Coins> max_;
    Coins totalHas_ = 0;
    Coins totalMax_ = 0;
    std::uint64_t transfers_ = 0;
    std::uint64_t coinsMoved_ = 0;
};

} // namespace blitz::coin

#endif // BLITZ_COIN_LEDGER_HPP
