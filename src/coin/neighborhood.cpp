#include "neighborhood.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace blitz::coin {

namespace {

/**
 * First managed tile reached from @p start walking direction @p d on
 * the wrapped grid; nullopt when the orbit contains no managed tile.
 */
std::optional<noc::NodeId>
walk(const noc::Topology &topo, const std::vector<bool> &managed,
     noc::NodeId start, noc::Dir d)
{
    // Walks wrap regardless of the topology's own flag: the logical
    // neighborhood always uses the Fig. 5 wrap-around definition.
    noc::Topology wrapped(topo.width(), topo.height(), true);
    noc::NodeId at = start;
    const std::size_t limit = std::max(topo.width(), topo.height());
    for (std::size_t step = 0; step < limit; ++step) {
        auto next = wrapped.neighbor(at, d);
        BLITZ_ASSERT(next.has_value(), "wrapped walk left the grid");
        at = *next;
        if (at == start)
            return std::nullopt; // completed the orbit
        if (managed[at])
            return at;
    }
    return std::nullopt;
}

} // namespace

std::vector<Neighborhood>
managedNeighborhoods(const noc::Topology &topo,
                     const std::vector<bool> &managed)
{
    BLITZ_ASSERT(managed.size() == topo.size(),
                 "managed flag list size mismatch");
    std::vector<noc::NodeId> members;
    for (noc::NodeId i = 0; i < topo.size(); ++i) {
        if (managed[i])
            members.push_back(i);
    }

    std::vector<Neighborhood> out(topo.size());
    if (members.size() < 2)
        return out;

    noc::Topology wrapped(topo.width(), topo.height(), true);
    for (noc::NodeId self : members) {
        Neighborhood &nb = out[self];
        for (noc::Dir d : noc::allDirs) {
            auto n = walk(topo, managed, self, d);
            if (n && *n != self &&
                std::find(nb.neighbors.begin(), nb.neighbors.end(),
                          *n) == nb.neighbors.end()) {
                nb.neighbors.push_back(*n);
            }
        }
        if (nb.neighbors.empty()) {
            // Degenerate placement (no managed tile shares a row or
            // column): fall back to the nearest managed tiles.
            std::vector<noc::NodeId> others;
            for (noc::NodeId m : members) {
                if (m != self)
                    others.push_back(m);
            }
            std::sort(others.begin(), others.end(),
                      [&](noc::NodeId a, noc::NodeId b) {
                          int da = wrapped.distance(self, a);
                          int db = wrapped.distance(self, b);
                          if (da != db)
                              return da < db;
                          return a < b;
                      });
            for (std::size_t k = 0; k < others.size() && k < 4; ++k)
                nb.neighbors.push_back(others[k]);
        }
        for (noc::NodeId m : members) {
            if (m == self)
                continue;
            if (std::find(nb.neighbors.begin(), nb.neighbors.end(),
                          m) == nb.neighbors.end()) {
                nb.far.push_back(m);
            }
        }
    }
    return out;
}

} // namespace blitz::coin
