/**
 * @file
 * Logical neighborhoods over a managed subset of a physical mesh.
 *
 * When only some tiles run BlitzCoin (the PM cluster of the silicon
 * prototype, or an SoC whose CPU/MEM/IO tiles hold fixed coins), the
 * exchange mesh is *logical*: a managed tile's neighbor in a direction
 * is the first managed tile reached by walking the physical grid that
 * way (wrapping at the edges, Fig. 5). Packets still route through the
 * physical NoC — unmanaged tiles are simply passed through — so the
 * diffusion argument of Section III is preserved.
 */

#ifndef BLITZ_COIN_NEIGHBORHOOD_HPP
#define BLITZ_COIN_NEIGHBORHOOD_HPP

#include <vector>

#include "noc/topology.hpp"

namespace blitz::coin {

/**
 * Partner lists for one managed tile.
 */
struct Neighborhood
{
    /** Logical mesh neighbors (rotation partners). */
    std::vector<noc::NodeId> neighbors;
    /** Managed non-neighbors (random-pairing partners). */
    std::vector<noc::NodeId> far;
};

/**
 * Compute the logical neighborhood of every managed tile.
 *
 * @param topo the physical mesh.
 * @param managed per-node participation flags (size == topo.size()).
 * @return one Neighborhood per node; unmanaged nodes get empty lists.
 *
 * A directional walk that finds no managed tile contributes nothing;
 * if a tile ends up with no directional neighbors at all, its nearest
 * managed tiles (by wrapped Manhattan distance) are used instead, so
 * every managed tile in a >= 2-tile system has at least one partner.
 */
std::vector<Neighborhood>
managedNeighborhoods(const noc::Topology &topo,
                     const std::vector<bool> &managed);

} // namespace blitz::coin

#endif // BLITZ_COIN_NEIGHBORHOOD_HPP
