#include "pairing.hpp"

#include <algorithm>

namespace blitz::coin {

PartnerSelector::PartnerSelector(const noc::Topology &topo,
                                 noc::NodeId self,
                                 const PairingConfig &cfg, sim::Rng &rng)
    : cfg_(cfg), rng_(&rng), neighbors_(topo.neighbors(self))
{
    BLITZ_ASSERT(!neighbors_.empty(),
                 "tile ", self, " has no neighbors; mesh too small");
    BLITZ_ASSERT(cfg_.period >= 2 || !cfg_.randomPairing,
                 "random pairing period must be >= 2");

    if (cfg_.randomPairing) {
        for (noc::NodeId n = 0; n < topo.size(); ++n) {
            if (n == self)
                continue;
            if (std::find(neighbors_.begin(), neighbors_.end(), n) !=
                neighbors_.end()) {
                continue;
            }
            far_.push_back(n);
        }
        // Stagger per-tile walks so the whole mesh does not pair with
        // the same far region simultaneously; the hardware gets the
        // same effect from per-tile shift-register seeds.
        if (!far_.empty())
            farPos_ = rng.below(far_.size());
    }

    // Start the neighbor rotation at a per-tile offset as well.
    rotate_ = rng.below(neighbors_.size());
}

PartnerSelector::PartnerSelector(std::vector<noc::NodeId> neighbors,
                                 std::vector<noc::NodeId> far,
                                 const PairingConfig &cfg, sim::Rng &rng)
    : cfg_(cfg), rng_(&rng), neighbors_(std::move(neighbors)),
      far_(std::move(far))
{
    BLITZ_ASSERT(!neighbors_.empty(), "explicit neighbor list is empty");
    BLITZ_ASSERT(cfg_.period >= 2 || !cfg_.randomPairing,
                 "random pairing period must be >= 2");
    if (!cfg_.randomPairing)
        far_.clear();
    if (!far_.empty())
        farPos_ = rng.below(far_.size());
    rotate_ = rng.below(neighbors_.size());
}

noc::NodeId
PartnerSelector::nextFar()
{
    BLITZ_ASSERT(!far_.empty(), "no non-neighbors available");
    if (cfg_.mode == PairingMode::Uniform)
        return far_[rng_->below(far_.size())];
    noc::NodeId partner = far_[farPos_];
    farPos_ = (farPos_ + 1) % far_.size();
    return partner;
}

noc::NodeId
PartnerSelector::next(bool forceFar)
{
    ++exchangeCount_;
    if (!far_.empty() &&
        (forceFar || (cfg_.randomPairing &&
                      exchangeCount_ % cfg_.period == 0))) {
        lastWasRandom_ = true;
        return nextFar();
    }
    lastWasRandom_ = false;
    noc::NodeId partner = neighbors_[rotate_];
    rotate_ = (rotate_ + 1) % neighbors_.size();
    return partner;
}

} // namespace blitz::coin
