/**
 * @file
 * Partner selection: neighbor rotation and randomized pairing.
 *
 * A tile normally rotates round-robin through its mesh neighbors
 * (Algorithm 2). Every `period`-th exchange it instead pairs with a
 * *non*-neighbor (Section III-D optimization c), which is what rescues
 * the checkerboard deadlock of Fig. 5: a tile surrounded by inactive
 * tiles eventually talks past them. The hardware realizes the
 * non-neighbor sequence as a shift register that provably cycles through
 * every non-neighbor within a fixed time; the LFSR mode reproduces that
 * guarantee, while the Uniform mode draws partners from the seeded RNG.
 */

#ifndef BLITZ_COIN_PAIRING_HPP
#define BLITZ_COIN_PAIRING_HPP

#include <cstdint>
#include <vector>

#include "ledger.hpp"
#include "noc/topology.hpp"
#include "sim/rng.hpp"

namespace blitz::coin {

/** How the random-pairing partner is chosen. */
enum class PairingMode : std::uint8_t
{
    Lfsr,    ///< deterministic shift-register walk (hardware behaviour)
    Uniform, ///< uniform random non-neighbor (emulator behaviour)
};

/** Random-pairing policy parameters. */
struct PairingConfig
{
    bool randomPairing = true;
    /** Every Nth exchange is a random pairing; the paper uses 16. */
    unsigned period = 16;
    PairingMode mode = PairingMode::Lfsr;
};

/**
 * Local detector for the Fig. 5 isolation scenario.
 *
 * Every exchange reveals the partner's (has, max) registers, so a tile
 * can notice — entirely locally — that its whole neighborhood is idle
 * and nothing is moving: a streak of zero-coin exchanges with
 * max = 0 partners. An isolated tile must reach past its neighbors at
 * its base cadence, otherwise exponential back-off collapses the
 * effective random-pairing rate and a reallocation across an idle
 * region stalls for tens of microseconds. A zero-move exchange with an
 * *active* partner clears the streak: an active peer that agrees no
 * coins should move is evidence the distribution is fine.
 */
class IsolationDetector
{
  public:
    /** @param threshold streak length declaring isolation; the mesh
     *  degree (4) means one full idle rotation. */
    explicit IsolationDetector(unsigned threshold = 4)
        : threshold_(threshold)
    {}

    /** Record the outcome of one exchange. */
    void
    onExchange(bool movedCoins, Coins partnerMax)
    {
        if (movedCoins || partnerMax > 0) {
            streak_ = 0;
        } else {
            ++streak_;
        }
    }

    /** True after a full rotation of idle, coin-less exchanges. */
    bool isolated() const { return streak_ >= threshold_; }

    void reset() { streak_ = 0; }

  private:
    unsigned threshold_;
    unsigned streak_ = 0;
};

/**
 * Per-tile partner selector.
 *
 * next() yields the partner for the tile's next exchange: one of its
 * neighbors in rotation, or — on every period-th call when random
 * pairing is enabled — a non-neighbor from the configured sequence.
 */
class PartnerSelector
{
  public:
    /**
     * @param topo mesh shape (referenced; must outlive the selector).
     * @param self this tile's node id.
     * @param cfg pairing policy.
     * @param rng per-tile random stream (used in Uniform mode and to
     *        stagger the LFSR starting offset).
     */
    PartnerSelector(const noc::Topology &topo, noc::NodeId self,
                    const PairingConfig &cfg, sim::Rng &rng);

    /**
     * Construct from explicit partner lists — used when only a subset
     * of tiles participates in power management (Section IV-C: memory,
     * IO and CPU tiles hold fixed coins and never exchange).
     * @param neighbors rotation partners (the logical mesh neighbors).
     * @param far random-pairing partners (managed non-neighbors).
     */
    PartnerSelector(std::vector<noc::NodeId> neighbors,
                    std::vector<noc::NodeId> far,
                    const PairingConfig &cfg, sim::Rng &rng);

    /**
     * Partner for the next exchange.
     * @param forceFar pick a non-neighbor regardless of the period —
     *        used by the isolation detector (Section III-E: the
     *        shift register guarantees every non-neighbor is paired
     *        within fixed time; an isolated tile invokes it directly).
     */
    noc::NodeId next(bool forceFar = false);

    /** True when the previous next() was a random (far) pairing. */
    bool lastWasRandom() const { return lastWasRandom_; }

    /** Neighbor list used for rotation (N,S,E,W order, deduplicated). */
    const std::vector<noc::NodeId> &neighbors() const { return neighbors_; }

    /** Non-neighbor (random-pairing) candidate list. */
    const std::vector<noc::NodeId> &far() const { return far_; }

  private:
    noc::NodeId nextFar();

    PairingConfig cfg_;
    sim::Rng *rng_;
    std::vector<noc::NodeId> neighbors_;
    std::vector<noc::NodeId> far_; ///< all non-neighbors, fixed order
    std::size_t rotate_ = 0;
    std::size_t farPos_ = 0;
    unsigned exchangeCount_ = 0;
    bool lastWasRandom_ = false;
};

} // namespace blitz::coin

#endif // BLITZ_COIN_PAIRING_HPP
