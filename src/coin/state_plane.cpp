#include "state_plane.hpp"

namespace blitz::coin {

PlaneCensus
StatePlane::census() const
{
    PlaneCensus c;
    const std::size_t n = has_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const TilePhase p = phase_[i];
        if (p == TilePhase::Quarantined) {
            ++c.quarantined;
        } else if (p == TilePhase::Crashed) {
            ++c.crashed;
        } else {
            c.counted += has_[i];
        }
    }
    return c;
}

Coins
StatePlane::aliveCoins() const
{
    Coins total = 0;
    const std::size_t n = has_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (phase_[i] != TilePhase::Quarantined &&
            phase_[i] != TilePhase::Crashed)
            total += has_[i];
    }
    return total;
}

} // namespace blitz::coin
