/**
 * @file
 * Struct-of-arrays mirror of the hot per-tile state.
 *
 * Mega-mesh observers (the audit census, cluster-error probes, metrics
 * sampling) walk every tile's hot scalars — coin count, target,
 * lifecycle phase, refresh interval, frequency target — once per sweep.
 * With that state embedded in the per-tile objects, each read chases a
 * unit pointer into a ~500-byte object and drags a cache line of cold
 * protocol state (maps, logs, RNG) along with it; at 10^5..10^6 tiles
 * the sweeps become pure cache-miss loops. The plane keeps one densely
 * packed column per scalar, indexed by NodeId, so a census is a linear
 * scan of exactly the bytes it needs.
 *
 * The plane is a write-through MIRROR, never the authority: the owning
 * objects (BlitzCoinUnit, AcceleratorTile) push every change at the
 * point of mutation, and nothing in the protocol ever reads it back.
 * That makes attachment a pure observer — digests are bit-identical
 * with and without a plane — and keeps the single-writer-per-locus
 * discipline of sharded runs intact, since a tile only writes its own
 * row. The soa_plane_test property test holds the mirror to the
 * object state at audit cadence.
 */

#ifndef BLITZ_COIN_STATE_PLANE_HPP
#define BLITZ_COIN_STATE_PLANE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ledger.hpp"
#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace blitz::coin {

/**
 * Tile lifecycle phase, one byte per tile. Quarantine dominates crash
 * (it is sticky and fences the tile out of the economy either way);
 * the census treats both as outside the alive sum, mirroring
 * ClusterAudit's unit walk.
 */
enum class TilePhase : std::uint8_t
{
    Idle = 0,        ///< constructed / stopped, serving exchanges
    Running = 1,     ///< initiating exchanges
    Crashed = 2,     ///< registers lost, deaf until restart
    Quarantined = 3, ///< fenced by the integrity guardian (sticky)
};

/** One audit sweep's worth of plane reductions. */
struct PlaneCensus
{
    Coins counted = 0;           ///< coins across alive tiles
    std::size_t crashed = 0;     ///< tiles in TilePhase::Crashed
    std::size_t quarantined = 0; ///< tiles in TilePhase::Quarantined
};

/**
 * The SoA state plane: one contiguous column per hot scalar.
 *
 * Rows are NodeIds over the full mesh; tiles that never attach (an
 * unmanaged node, a CPU slot) keep the zero row, which is neutral in
 * every reduction. All writers go through the write*() calls so a
 * debug build can bounds-check every store.
 */
class StatePlane
{
  public:
    /** Create a plane of @p n tiles, all columns zeroed. */
    explicit StatePlane(std::size_t n)
        : has_(n, 0), max_(n, 0), freqMhz_(n, 0.0),
          backoff_(n, 0), phase_(n, TilePhase::Idle)
    {
        BLITZ_ASSERT(n > 0, "state plane needs at least one tile");
    }

    std::size_t size() const { return has_.size(); }

    Coins has(std::size_t i) const { return has_[check(i)]; }
    Coins max(std::size_t i) const { return max_[check(i)]; }
    double freqMhz(std::size_t i) const { return freqMhz_[check(i)]; }
    sim::Tick backoff(std::size_t i) const { return backoff_[check(i)]; }
    TilePhase phase(std::size_t i) const { return phase_[check(i)]; }

    /** Raw column views for vectorized consumers. */
    const Coins *hasData() const { return has_.data(); }
    const Coins *maxData() const { return max_.data(); }
    const double *freqData() const { return freqMhz_.data(); }
    const sim::Tick *backoffData() const { return backoff_.data(); }
    const TilePhase *phaseData() const { return phase_.data(); }

    void writeHas(std::size_t i, Coins v) { has_[check(i)] = v; }
    void writeMax(std::size_t i, Coins v) { max_[check(i)] = v; }
    void writeFreq(std::size_t i, double mhz) { freqMhz_[check(i)] = mhz; }
    void writeBackoff(std::size_t i, sim::Tick t) { backoff_[check(i)] = t; }
    void writePhase(std::size_t i, TilePhase p) { phase_[check(i)] = p; }

    /**
     * The audit census as a fused scan: sum of coins over alive tiles
     * plus the crashed/quarantined counts, touching only the coin and
     * phase columns. Matches ClusterAudit's unit walk exactly as long
     * as every tracked unit writes through (the property test's
     * claim); zero rows contribute nothing.
     */
    PlaneCensus census() const;

    /**
     * Sum of coins over alive tiles only — the clusterCoins gauge.
     */
    Coins aliveCoins() const;

  private:
    std::size_t
    check(std::size_t i) const
    {
        BLITZ_ASSERT(i < has_.size(), "plane row ", i, " out of range");
        return i;
    }

    std::vector<Coins> has_;
    std::vector<Coins> max_;
    std::vector<double> freqMhz_;
    std::vector<sim::Tick> backoff_;
    std::vector<TilePhase> phase_;
};

} // namespace blitz::coin

#endif // BLITZ_COIN_STATE_PLANE_HPP
