#include "byzantine.hpp"

#include <algorithm>

#include "record/recorder.hpp"
#include "sim/logging.hpp"
#include "trace/tracer.hpp"

namespace blitz::fault {

const char *
byzantineBehaviorName(ByzantineBehavior b)
{
    switch (b) {
    case ByzantineBehavior::Inflator:
        return "inflator";
    case ByzantineBehavior::ReplyForger:
        return "reply-forger";
    case ByzantineBehavior::Spammer:
        return "spammer";
    case ByzantineBehavior::StuckGreedy:
        return "stuck-greedy";
    case ByzantineBehavior::StaleReplayer:
        return "stale-replayer";
    }
    return "?";
}

/**
 * The per-tile compromise: the passive half of one spec. Installed as
 * the unit's AdversaryHook, so every method runs inside the unit's own
 * events (at its locus in sharded mode) — the counters are
 * single-writer and the lies are a pure function of protocol state,
 * never of RNG or wall ordering.
 */
struct ByzantinePlan::Agent final : blitzcoin::AdversaryHook
{
    Agent(ByzantinePlan &p, const ByzantineSpec &s)
        : plan(&p), spec(s)
    {
    }

    /** In the activation window? Before arm() the window is open iff
     *  it starts at 0 (unit tests drive hooks without a queue). */
    bool
    active() const
    {
        if (plan->eq_ == nullptr)
            return spec.from == 0;
        const sim::Tick now = plan->eq_->now();
        return now >= spec.from && now < spec.until;
    }

    void
    adviseStatus(coin::Coins &has, coin::Coins &max,
                 coin::Coins & /*cap*/) override
    {
        if (!active())
            return;
        switch (spec.behavior) {
        case ByzantineBehavior::Spammer:
        case ByzantineBehavior::StuckGreedy:
            // Fabricated desperation: no coins, huge target — every
            // partner the lie reaches rebalances coins this way.
            has = 0;
            max = spec.claimMax;
            ++stats.lyingStatuses;
            break;
        case ByzantineBehavior::Inflator:
        case ByzantineBehavior::ReplyForger:
        case ByzantineBehavior::StaleReplayer:
            break; // these lie elsewhere; the status stays honest
        }
    }

    void
    adviseServe(noc::NodeId initiator, std::uint64_t xid,
                coin::Coins honest, coin::Coins &applied,
                coin::Coins &reported) override
    {
        if (!active())
            return;
        switch (spec.behavior) {
        case ByzantineBehavior::ReplyForger:
            // Apply more than reported: the initiator balances its
            // half against -honest while this tile pockets a skim —
            // coins minted from nothing, split across the wire.
            applied = honest + spec.amount;
            stats.counterfeited += spec.amount;
            ++stats.forgedReplies;
            plan->record(*this, spec.amount,
                         static_cast<std::int64_t>(xid), "forge_reply");
            break;
        case ByzantineBehavior::StuckGreedy:
            if (honest < 0) {
                // The rebalance says pay out; keep the coins and tell
                // the initiator nothing moved. Conserving (no coins
                // created), but the hoard starves the neighborhood.
                applied = 0;
                reported = 0;
                ++stats.refusedPayouts;
                plan->record(*this, -honest,
                             static_cast<std::int64_t>(xid),
                             "refuse_payout");
            }
            break;
        case ByzantineBehavior::StaleReplayer:
            // Serve honestly, but remember the reply; the armed driver
            // resends it verbatim with the old stamp.
            capInitiator = initiator;
            capXid = xid;
            capReported = reported;
            haveCapture = true;
            break;
        case ByzantineBehavior::Inflator:
        case ByzantineBehavior::Spammer:
            break;
        }
    }

    sim::Tick
    adviseInterval(sim::Tick honest) override
    {
        if (!active() || spec.behavior != ByzantineBehavior::Spammer)
            return honest;
        // Ignore the backoff law entirely: a near-continuous request
        // stream. The 2/3/4 rotation is a fixed cycle, not RNG, so
        // the flood is bit-identical at any shard count.
        spamPhase = (spamPhase + 1) % 3;
        return static_cast<sim::Tick>(2 + spamPhase);
    }

    ByzantinePlan *plan;
    ByzantineSpec spec;
    blitzcoin::BlitzCoinUnit *unit = nullptr;
    /** Single-writer at this tile's locus. */
    ByzantineStats stats{};
    std::uint32_t spamPhase = 0;
    /** StaleReplayer capture of the last served reply. */
    noc::NodeId capInitiator = 0;
    std::uint64_t capXid = 0;
    coin::Coins capReported = 0;
    bool haveCapture = false;
};

ByzantinePlan::ByzantinePlan(ByzantineConfig cfg)
    : cfg_(std::move(cfg))
{
    for (const ByzantineSpec &s : cfg_.specs) {
        BLITZ_ASSERT(!compromised(s.node),
                     "one behavior per compromised node (node ",
                     s.node, " named twice)");
        agents_.push_back(std::make_unique<Agent>(*this, s));
    }
}

ByzantinePlan::~ByzantinePlan() = default;

bool
ByzantinePlan::compromised(noc::NodeId node) const
{
    return std::any_of(agents_.begin(), agents_.end(),
                       [node](const std::unique_ptr<Agent> &a) {
                           return a->spec.node == node;
                       });
}

void
ByzantinePlan::corrupt(blitzcoin::BlitzCoinUnit &unit)
{
    for (auto &a : agents_) {
        if (a->spec.node != unit.self())
            continue;
        BLITZ_ASSERT(a->unit == nullptr,
                     "unit ", unit.self(), " corrupted twice");
        a->unit = &unit;
        unit.setAdversary(a.get());
        return;
    }
}

void
ByzantinePlan::record(const Agent &a, std::int64_t amount,
                      std::int64_t extra, const char *what)
{
    const sim::Tick now = eq_ ? eq_->now() : 0;
    if (recorder_)
        recorder_->byzantine(
            now, static_cast<std::uint8_t>(a.spec.behavior),
            a.spec.node, amount, extra);
    if (tracer_)
        tracer_->instant("byzantine", what, a.spec.node, now);
}

void
ByzantinePlan::pulse(Agent &a)
{
    blitzcoin::BlitzCoinUnit *u = a.unit;
    if (u == nullptr || u->quarantined())
        return; // the guardian won; never reschedule
    const sim::Tick now = eq_->now();
    if (now >= a.spec.from && now < a.spec.until && !u->crashed()) {
        // A rogue tile writing its own coin CSR: counterfeit coins
        // appear with no provenance lineage and no counterparty.
        u->setHas(u->has() + a.spec.amount);
        a.stats.counterfeited += a.spec.amount;
        ++a.stats.pulses;
        record(a, a.spec.amount, u->has(), "counterfeit_pulse");
    }
    if (now + a.spec.period < a.spec.until) {
        eq_->scheduleAtNode(a.spec.node, now + a.spec.period,
                            [this, ap = &a] { pulse(*ap); });
    }
}

void
ByzantinePlan::replay(Agent &a)
{
    blitzcoin::BlitzCoinUnit *u = a.unit;
    if (u == nullptr || u->quarantined())
        return;
    const sim::Tick now = eq_->now();
    if (now >= a.spec.from && now < a.spec.until && !u->crashed() &&
        a.haveCapture) {
        // Resend the captured CoinUpdate verbatim: same initiator,
        // same stamp, same delta. The initiator's sequence tracking
        // must discard it — every acceptance would double-apply.
        noc::Packet p;
        p.src = a.spec.node;
        p.dst = a.capInitiator;
        p.plane = noc::Plane::Service;
        p.type = noc::MsgType::CoinUpdate;
        p.payload[0] = a.capReported;
        p.payload[1] = u->has();
        p.payload[2] = u->max();
        p.payload[3] = blitzcoin::wire::packTag(
            a.capXid, blitzcoin::wire::FlagOneWay);
        net_->send(p);
        ++a.stats.staleReplays;
        record(a, a.capReported,
               static_cast<std::int64_t>(a.capXid), "stale_replay");
    }
    if (now + a.spec.period < a.spec.until) {
        eq_->scheduleAtNode(a.spec.node, now + a.spec.period,
                            [this, ap = &a] { replay(*ap); });
    }
}

void
ByzantinePlan::arm(sim::EventQueue &eq, noc::Network &net)
{
    BLITZ_ASSERT(eq_ == nullptr, "ByzantinePlan armed twice");
    eq_ = &eq;
    net_ = &net;
    for (auto &a : agents_) {
        BLITZ_ASSERT(a->unit != nullptr,
                     "arm() before corrupt() of node ", a->spec.node);
        switch (a->spec.behavior) {
        case ByzantineBehavior::Inflator:
            eq.scheduleAtNode(a->spec.node,
                              a->spec.from + a->spec.period,
                              [this, ap = a.get()] { pulse(*ap); });
            break;
        case ByzantineBehavior::StaleReplayer:
            eq.scheduleAtNode(a->spec.node,
                              a->spec.from + a->spec.period,
                              [this, ap = a.get()] { replay(*ap); });
            break;
        case ByzantineBehavior::ReplyForger:
        case ByzantineBehavior::Spammer:
        case ByzantineBehavior::StuckGreedy:
            break; // passive: the hook alone carries the attack
        }
    }
}

ByzantineStats
ByzantinePlan::stats() const
{
    ByzantineStats out;
    for (const auto &a : agents_) {
        out.counterfeited += a->stats.counterfeited;
        out.pulses += a->stats.pulses;
        out.forgedReplies += a->stats.forgedReplies;
        out.refusedPayouts += a->stats.refusedPayouts;
        out.staleReplays += a->stats.staleReplays;
        out.lyingStatuses += a->stats.lyingStatuses;
    }
    return out;
}

} // namespace blitz::fault
