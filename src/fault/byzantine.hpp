/**
 * @file
 * Byzantine tile adversaries: deterministic, seeded compromise of
 * selected BlitzCoin units.
 *
 * FaultPlane models *benign* faults — lost, delayed, duplicated, or
 * corrupted packets that the exchange protocol is designed to absorb.
 * A ByzantinePlan models the adversarial complement: tiles that keep
 * speaking well-formed protocol but lie. A compromised tile can mint
 * counterfeit coins into its own counter, forge exchange replies so
 * it applies more than it reports, spam initiations while advertising
 * fake desperation, hoard by refusing every payout, or replay stale
 * CoinUpdate packets with old sequence stamps.
 *
 * The plan mirrors FaultPlane's scoping idiom: a ByzantineConfig is a
 * pure value (per-node behavior specs with activation windows), and a
 * (config, seed) pair fully determines the attack pattern. Passive
 * lies live in an AdversaryHook installed on the unit (consulted at
 * the three protocol seams; pure, no RNG); active behaviors (the
 * counterfeit pulse, the stale resend) are locus-pinned drivers on
 * the event queue, so sharded runs stay bit-identical at any shard
 * count. The guardian (blitzcoin/guardian.hpp) is the defense; the
 * plan stops a driver permanently once its tile is quarantined.
 */

#ifndef BLITZ_FAULT_BYZANTINE_HPP
#define BLITZ_FAULT_BYZANTINE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "blitzcoin/unit.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"

namespace blitz::trace {
class Tracer;
}

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::fault {

/** The lie a compromised tile tells. */
enum class ByzantineBehavior : std::uint8_t
{
    /** Periodically writes counterfeit coins into its own counter. */
    Inflator = 0,
    /** Serves exchanges applying more locally than it reports back. */
    ReplyForger = 1,
    /** Floods initiations while advertising fabricated desperation. */
    Spammer = 2,
    /** Claims need in every status, refuses every payout it is dealt. */
    StuckGreedy = 3,
    /** Captures a served reply and resends it with the old stamp. */
    StaleReplayer = 4,
};

/** Printable behavior name. */
const char *byzantineBehaviorName(ByzantineBehavior b);

/** One compromised tile. */
struct ByzantineSpec
{
    noc::NodeId node = 0;
    ByzantineBehavior behavior = ByzantineBehavior::Inflator;
    /** Activation window [from, until). */
    sim::Tick from = 0;
    sim::Tick until = sim::maxTick;
    /** Coins per counterfeit pulse / per forged reply skim. */
    coin::Coins amount = 4;
    /** Cadence of the Inflator pulse / StaleReplayer resend. */
    sim::Tick period = 512;
    /** Fabricated max target advertised by lying statuses. */
    coin::Coins claimMax = 63;
};

/** Full attack schedule. */
struct ByzantineConfig
{
    /** Reserved for stochastic behaviors; part of the scenario key. */
    std::uint64_t seed = 1;
    std::vector<ByzantineSpec> specs;
};

/** Attack counters, merged over all compromised tiles. */
struct ByzantineStats
{
    /** Coins created out of thin air (pulses + forged replies). */
    coin::Coins counterfeited = 0;
    /** Inflator pulses that landed. */
    std::uint64_t pulses = 0;
    /** Served exchanges whose reply was forged. */
    std::uint64_t forgedReplies = 0;
    /** Payouts a StuckGreedy tile refused to honor. */
    std::uint64_t refusedPayouts = 0;
    /** Stale CoinUpdate packets re-injected. */
    std::uint64_t staleReplays = 0;
    /** Outgoing statuses with fabricated registers. */
    std::uint64_t lyingStatuses = 0;
};

/**
 * Deterministic Byzantine compromise of a set of units.
 *
 * Usage: construct with a config, call corrupt() on every unit (only
 * those named in a spec are touched), then arm() once to schedule the
 * active drivers. The plan must outlive the units.
 */
class ByzantinePlan
{
  public:
    explicit ByzantinePlan(ByzantineConfig cfg);
    ~ByzantinePlan();

    ByzantinePlan(const ByzantinePlan &) = delete;
    ByzantinePlan &operator=(const ByzantinePlan &) = delete;

    const ByzantineConfig &config() const { return cfg_; }

    /** True when @p node is named by a spec. */
    bool compromised(noc::NodeId node) const;

    /**
     * Install the behavior hook on @p unit if a spec names it; no-op
     * otherwise. Call once per unit, before the simulation runs.
     */
    void corrupt(blitzcoin::BlitzCoinUnit &unit);

    /**
     * Schedule the active drivers (counterfeit pulses, stale resends)
     * at each compromised node's locus. Call once, before running; on
     * a sharded queue the drivers execute inside the owning shard, so
     * the attack pattern is bit-identical at any shard count. A driver
     * whose tile gets quarantined stops rescheduling permanently.
     */
    void arm(sim::EventQueue &eq, noc::Network &net);

    /**
     * Attack counters, summed over compromised tiles (each counter is
     * single-writer at its tile's locus; the sum is fold-order free).
     */
    ByzantineStats stats() const;

    /**
     * Attach the flight recorder (or detach with nullptr). Every
     * *action* — pulse, forged reply, refused payout, stale resend —
     * is journaled as a Byzantine record; per-packet lies (fabricated
     * statuses) only bump counters to keep the log bounded.
     */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

    /** Attach an event tracer (instants per action; nullptr detaches). */
    void setTrace(trace::Tracer *t) { tracer_ = t; }

  private:
    struct Agent;

    void pulse(Agent &a);
    void replay(Agent &a);
    void record(const Agent &a, std::int64_t amount, std::int64_t extra,
                const char *what);

    ByzantineConfig cfg_;
    std::vector<std::unique_ptr<Agent>> agents_;
    sim::EventQueue *eq_ = nullptr;
    noc::Network *net_ = nullptr;
    record::FlightRecorder *recorder_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace blitz::fault

#endif // BLITZ_FAULT_BYZANTINE_HPP
