#include "chaos.hpp"

#include <algorithm>
#include <cmath>

#include "coin/neighborhood.hpp"
#include "sim/logging.hpp"

namespace blitz::fault {

ChaosCluster::ChaosCluster(const ChaosConfig &cfg)
    : cfg_(cfg), eq_(cfg.arena), topo_(cfg.width, cfg.height, cfg.wrap),
      net_(eq_, topo_, 1, cfg.arena), plane_(cfg.fault), audit_(0),
      maxAtCrash_(topo_.size(), 0)
{
    plane_.attach(net_);
    std::vector<bool> managed(topo_.size(), true);
    auto hoods = coin::managedNeighborhoods(topo_, managed);
    for (noc::NodeId id = 0; id < topo_.size(); ++id) {
        units_.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq_, net_, id, cfg_.unit, hoods[id], cfg_.seedBase + id));
        net_.setHandler(id, [this, id](const noc::Packet &pkt) {
            units_[id]->handlePacket(pkt);
        });
        audit_.track(*units_.back());
    }
    plane_.onNodeDown = [this](noc::NodeId n) { onCrash(n); };
    plane_.onNodeUp = [this](noc::NodeId n) { onRestart(n); };
    // A freeze is a clock-gated stall: the unit keeps its registers but
    // stops initiating; the fault plane already blackholes its traffic.
    plane_.onNodeFrozen = [this](noc::NodeId n) { units_[n]->stop(); };
    plane_.onNodeThawed = [this](noc::NodeId n) { units_[n]->start(); };
    if (!cfg_.fault.outages.empty())
        plane_.armOutageSchedule(eq_);
    if (cfg_.auditPeriod > 0)
        scheduleAudit();
}

void
ChaosCluster::scheduleAudit()
{
    eq_.scheduleIn(cfg_.auditPeriod, [this] {
        audit_.reconcile();
        scheduleAudit();
    }, sim::Priority::Stats);
}

void
ChaosCluster::onCrash(noc::NodeId node)
{
    maxAtCrash_[node] = units_[node]->max();
    units_[node]->crash();
}

void
ChaosCluster::onRestart(noc::NodeId node)
{
    units_[node]->restart();
    if (cfg_.restoreMaxOnRestart && maxAtCrash_[node] > 0)
        units_[node]->setMax(maxAtCrash_[node]);
    units_[node]->start();
}

void
ChaosCluster::setHas(std::size_t i, coin::Coins has)
{
    units_[i]->setHas(has);
}

void
ChaosCluster::setMax(std::size_t i, coin::Coins max)
{
    units_[i]->setMax(max);
}

void
ChaosCluster::sealProvision()
{
    audit_.setExpected(totalCoins());
}

void
ChaosCluster::startAll()
{
    for (auto &u : units_)
        u->start();
}

coin::Coins
ChaosCluster::totalCoins() const
{
    coin::Coins sum = 0;
    for (const auto &u : units_) {
        if (!u->crashed())
            sum += u->has();
    }
    return sum;
}

double
ChaosCluster::clusterError() const
{
    coin::Coins th = 0, tm = 0;
    std::size_t alive = 0;
    for (const auto &u : units_) {
        if (u->crashed())
            continue;
        th += u->has();
        tm += u->max();
        ++alive;
    }
    if (tm == 0 || alive == 0)
        return 0.0;
    const double alpha =
        static_cast<double>(th) / static_cast<double>(tm);
    double sum = 0.0;
    for (const auto &u : units_) {
        if (u->crashed())
            continue;
        sum += std::abs(static_cast<double>(u->has()) -
                        alpha * static_cast<double>(u->max()));
    }
    return sum / static_cast<double>(alive);
}

std::optional<sim::Tick>
ChaosCluster::runUntilConverged(double tol, sim::Tick checkEvery,
                                sim::Tick deadline)
{
    BLITZ_ASSERT(checkEvery >= 1, "convergence check period is empty");
    while (eq_.now() < deadline) {
        eq_.runUntil(std::min(eq_.now() + checkEvery, deadline));
        if (clusterError() <= tol)
            return eq_.now();
    }
    return std::nullopt;
}

blitzcoin::AuditReport
ChaosCluster::quiesce(sim::Tick drainTicks)
{
    eq_.runUntil(eq_.now() + drainTicks);
    blitzcoin::AuditReport before = audit_.reconcile();
    // Conservation invariant: whatever the faults destroyed, one
    // watchdog sweep over a quiesced cluster restores the provisioned
    // total exactly.
    blitzcoin::AuditReport after = audit_.audit();
    BLITZ_ASSERT(after.gap == 0,
                 "audit failed to restore the provisioned coin total");
    return before;
}

} // namespace blitz::fault
