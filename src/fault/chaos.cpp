#include "chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "coin/neighborhood.hpp"
#include "record/provenance.hpp"
#include "record/recorder.hpp"
#include "sim/digest.hpp"
#include "sim/logging.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/prof.hpp"
#include "trace/tracer.hpp"

namespace blitz::fault {

ChaosCluster::ChaosCluster(const ChaosConfig &cfg)
    : cfg_(cfg), eq_(cfg.arena), topo_(cfg.width, cfg.height, cfg.wrap),
      net_(eq_, topo_, 1, cfg.arena), plane_(cfg.fault), audit_(0),
      maxAtCrash_(topo_.size(), 0)
{
    if (cfg_.shards >= 1) {
        // Bind the shard group before anything schedules: the anchor
        // must be empty, and the network/fault plane must flip to
        // their partition-independent state layouts before the first
        // packet.
        group_ = std::make_unique<sim::ShardGroup>(
            eq_, cfg_.shards,
            sim::columnBands(static_cast<std::uint32_t>(cfg.width),
                             static_cast<std::uint32_t>(cfg.height),
                             cfg_.shards));
        net_.enableSharding(*group_);
        plane_.enableKeyedStreams(cfg_.shards);
    }
    plane_.attach(net_);
    std::vector<bool> managed(topo_.size(), true);
    auto hoods = coin::managedNeighborhoods(topo_, managed);
    for (noc::NodeId id = 0; id < topo_.size(); ++id) {
        units_.push_back(std::make_unique<blitzcoin::BlitzCoinUnit>(
            eq_, net_, id, cfg_.unit, hoods[id], cfg_.seedBase + id));
        net_.setHandler(id, [this, id](const noc::Packet &pkt) {
            units_[id]->handlePacket(pkt);
        });
        audit_.track(*units_.back());
    }
    if (!cfg_.byzantine.specs.empty()) {
        byzantine_ = std::make_unique<ByzantinePlan>(cfg_.byzantine);
        for (auto &u : units_)
            byzantine_->corrupt(*u);
        byzantine_->arm(eq_, net_);
    }
    if (cfg_.guardianEnabled) {
        BLITZ_ASSERT(cfg_.auditPeriod > 0,
                     "guardian sweeps ride the audit cadence; set "
                     "auditPeriod > 0 when guardianEnabled");
        guardian_ = std::make_unique<blitzcoin::IntegrityGuardian>(
            cfg_.guardian);
        for (auto &u : units_)
            guardian_->track(*u);
        guardian_->setClock([this] { return eq_.now(); });
        audit_.setGuardian(guardian_.get());
    }
    plane_.onNodeDown = [this](noc::NodeId n) { onCrash(n); };
    plane_.onNodeUp = [this](noc::NodeId n) { onRestart(n); };
    // A freeze is a clock-gated stall: the unit keeps its registers but
    // stops initiating; the fault plane already blackholes its traffic.
    plane_.onNodeFrozen = [this](noc::NodeId n) { units_[n]->stop(); };
    plane_.onNodeThawed = [this](noc::NodeId n) { units_[n]->start(); };
    if (!cfg_.fault.outages.empty())
        plane_.armOutageSchedule(eq_);
    if (cfg_.auditPeriod > 0)
        scheduleAudit();
}

void
ChaosCluster::scheduleAudit()
{
    eq_.scheduleIn(cfg_.auditPeriod, [this] {
        // Guardian first: a quarantine decided this sweep must be
        // visible to the census on the same tick, so the fenced coins
        // drop out of the count and the same reconcile remints them.
        // Both run in the serial lane (exclusive context) in sharded
        // mode, so the cross-unit writes are race-free.
        if (guardian_)
            guardian_->sweep();
        audit_.reconcile();
        scheduleAudit();
    }, sim::Priority::Stats);
}

void
ChaosCluster::attachMetrics(trace::Registry *reg, sim::Tick interval)
{
    metrics_ = reg;
    sampleEvery_ = interval;
    if (!reg)
        return;
    BLITZ_ASSERT(interval >= 1, "metrics sample interval is empty");
    reg->sampled("coin.total", [this] {
        return static_cast<double>(totalCoins());
    });
    reg->sampled("coin.error", [this] { return clusterError(); });
    for (std::size_t i = 0; i < units_.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "coin.has.%zu", i);
        reg->sampled(name, [this, i] {
            const auto &u = *units_[i];
            return u.crashed() ? 0.0 : static_cast<double>(u.has());
        });
    }
    auto sumOf = [this, reg](const char *name, auto get) {
        reg->sampled(name, [this, get] {
            std::uint64_t s = 0;
            for (const auto &u : units_)
                s += get(*u);
            return static_cast<double>(s);
        });
    };
    sumOf("coin.exchanges_initiated", [](const auto &u) {
        return u.exchangesInitiated();
    });
    sumOf("coin.exchanges_moved", [](const auto &u) {
        return u.exchangesMoved();
    });
    sumOf("coin.exchanges_timed_out", [](const auto &u) {
        return u.exchangesTimedOut();
    });
    sumOf("coin.recoveries_sent", [](const auto &u) {
        return u.recoveriesSent();
    });
    sumOf("coin.updates_recovered", [](const auto &u) {
        return u.updatesRecovered();
    });
    sumOf("coin.duplicates_ignored", [](const auto &u) {
        return u.duplicatesIgnored();
    });
    sumOf("coin.corrupted_dropped", [](const auto &u) {
        return u.corruptedDropped();
    });
    sumOf("coin.exchanges_abandoned", [](const auto &u) {
        return u.exchangesAbandoned();
    });
    if (guardian_) {
        reg->sampled("guardian.detections", [this] {
            return static_cast<double>(guardian_->detections());
        });
        reg->sampled("guardian.warnings", [this] {
            return static_cast<double>(guardian_->warnings());
        });
        reg->sampled("guardian.throttles", [this] {
            return static_cast<double>(guardian_->throttles());
        });
        reg->sampled("guardian.quarantines", [this] {
            return static_cast<double>(guardian_->quarantines());
        });
    }
    if (byzantine_) {
        reg->sampled("byzantine.counterfeited", [this] {
            return static_cast<double>(byzantine_->stats().counterfeited);
        });
        reg->sampled("byzantine.stale_replays", [this] {
            return static_cast<double>(byzantine_->stats().staleReplays);
        });
    }
    reg->sampled("audit.gaps_closed", [this] {
        return static_cast<double>(audit_.gapsClosed());
    });
    reg->sampled("audit.minted", [this] {
        return static_cast<double>(audit_.coinsMinted());
    });
    reg->sampled("audit.burned", [this] {
        return static_cast<double>(audit_.coinsBurned());
    });
    reg->sampled("noc.packets_sent", [this] {
        return static_cast<double>(net_.packetsSent());
    });
    reg->sampled("noc.packets_delivered", [this] {
        return static_cast<double>(net_.packetsDelivered());
    });
    reg->sampled("noc.packets_dropped", [this] {
        return static_cast<double>(net_.packetsDropped());
    });
    reg->sampled("noc.total_hops", [this] {
        return static_cast<double>(net_.totalHops());
    });
    reg->sampled("fault.drops", [this] {
        return static_cast<double>(plane_.stats().drops);
    });
    reg->sampled("fault.delays", [this] {
        return static_cast<double>(plane_.stats().delays);
    });
    reg->sampled("fault.duplicates", [this] {
        return static_cast<double>(plane_.stats().duplicates);
    });
    reg->sampled("fault.corruptions", [this] {
        return static_cast<double>(plane_.stats().corruptions);
    });
    reg->sampled("fault.outage_drops", [this] {
        return static_cast<double>(plane_.stats().outageDrops);
    });
    reg->sampled("fault.partition_drops", [this] {
        return static_cast<double>(plane_.stats().partitionDrops);
    });
    reg->sampled("sim.events_scheduled", [this] {
        return static_cast<double>(eq_.totalScheduled());
    });
    reg->sampled("sim.events_executed", [this] {
        return static_cast<double>(eq_.totalExecuted());
    });
    scheduleSample();
}

void
ChaosCluster::scheduleSample()
{
    eq_.scheduleIn(sampleEvery_, [this] {
        metrics_->sample(eq_.now());
        scheduleSample();
    }, sim::Priority::Stats);
}

void
ChaosCluster::attachTrace(trace::Tracer *t)
{
    plane_.setTrace(t);
    for (auto &u : units_)
        u->setTrace(t);
    if (byzantine_)
        byzantine_->setTrace(t);
    if (guardian_)
        guardian_->setTrace(t);
}

void
ChaosCluster::attachRecorder(record::FlightRecorder *rec,
                             record::ProvenanceLedger *prov,
                             sim::Tick snapshotEvery)
{
    // The provenance ledger's lost-lineage FIFO is order-sensitive by
    // design; a mutex would hide the race without making the result
    // meaningful, so sharded runs must leave it detached.
    BLITZ_ASSERT(!group_ || !prov,
                 "provenance ledger is unsharded-only (order-"
                 "sensitive lineage state)");
    if (rec && group_)
        rec->setConcurrent(true);
    recorder_ = rec;
    prov_ = prov;
    net_.setRecorder(rec);
    plane_.setRecorder(rec);
    for (auto &u : units_)
        u->setRecorder(rec, prov);
    audit_.setRecorder(rec, prov);
    audit_.setClock([this] { return eq_.now(); });
    if (byzantine_)
        byzantine_->setRecorder(rec);
    if (guardian_)
        guardian_->setRecorder(rec, prov);
    if (prov_)
        prov_->reset(units_.size());
    snapshotEvery_ = snapshotEvery;
    if (recorder_ && snapshotEvery_ > 0) {
        BLITZ_ASSERT(snapshotEvery_ >= 1, "snapshot cadence is empty");
        scheduleSnapshot();
    }
}

void
ChaosCluster::scheduleSnapshot()
{
    eq_.scheduleIn(snapshotEvery_, [this] {
        const sim::Tick now = eq_.now();
        sim::Fnv1a digest;
        for (std::size_t i = 0; i < units_.size(); ++i) {
            const auto &u = *units_[i];
            const coin::Coins has = u.crashed() ? 0 : u.has();
            recorder_->snapshot(now, static_cast<std::int64_t>(i),
                                static_cast<std::int64_t>(has),
                                snapshotEpoch_);
            digest.i64(static_cast<std::int64_t>(has));
        }
        recorder_->snapshotMark(
            now, snapshotEpoch_,
            static_cast<std::int64_t>(units_.size()), digest.value());
        ++snapshotEpoch_;
        scheduleSnapshot();
    }, sim::Priority::Stats);
}

void
ChaosCluster::onCrash(noc::NodeId node)
{
    maxAtCrash_[node] = units_[node]->max();
    units_[node]->crash();
}

void
ChaosCluster::onRestart(noc::NodeId node)
{
    units_[node]->restart();
    if (cfg_.restoreMaxOnRestart && maxAtCrash_[node] > 0)
        units_[node]->setMax(maxAtCrash_[node]);
    units_[node]->start();
}

void
ChaosCluster::setHas(std::size_t i, coin::Coins has)
{
    // Provisioning is legitimate: teach the guardian's shadow books
    // about the delta or it would read as counterfeit.
    if (guardian_)
        guardian_->noteGrant(static_cast<noc::NodeId>(i),
                             has - units_[i]->has());
    units_[i]->setHas(has);
    // Provisioning is a mint: journal it so a replayed log opens with
    // the same coin population (attachRecorder comes before seeding).
    if (has > 0 && (recorder_ || prov_)) {
        const sim::Tick now = eq_.now();
        std::uint64_t lineage = record::ProvenanceLedger::kNoLineage;
        if (prov_)
            lineage = prov_->mint(static_cast<std::uint32_t>(i), has,
                                  now);
        if (recorder_)
            recorder_->mint(now, static_cast<std::int64_t>(i), has,
                            static_cast<std::int64_t>(lineage),
                            static_cast<std::int64_t>(lineage));
    }
}

void
ChaosCluster::setMax(std::size_t i, coin::Coins max)
{
    // setMax on a running unit fires an immediate exchange timer;
    // scope it to the unit's locus like startAll().
    sim::LocusScope scope(eq_, static_cast<noc::NodeId>(i));
    units_[i]->setMax(max);
}

void
ChaosCluster::sealProvision()
{
    audit_.setExpected(totalCoins());
}

void
ChaosCluster::startAll()
{
    // LocusScope pins each unit's initial timer to its own node's
    // ordering locus (and shard leaf), so the schedule is a pure
    // function of the node — identical for every shard count — and a
    // no-op in legacy mode.
    for (noc::NodeId id = 0; id < units_.size(); ++id) {
        sim::LocusScope scope(eq_, id);
        units_[id]->start();
    }
}

coin::Coins
ChaosCluster::totalCoins() const
{
    coin::Coins sum = 0;
    for (const auto &u : units_) {
        if (!u->crashed() && !u->quarantined())
            sum += u->has();
    }
    return sum;
}

double
ChaosCluster::clusterError() const
{
    coin::Coins th = 0, tm = 0;
    std::size_t alive = 0;
    for (const auto &u : units_) {
        if (u->crashed() || u->quarantined())
            continue;
        th += u->has();
        tm += u->max();
        ++alive;
    }
    if (tm == 0 || alive == 0)
        return 0.0;
    const double alpha =
        static_cast<double>(th) / static_cast<double>(tm);
    double sum = 0.0;
    for (const auto &u : units_) {
        if (u->crashed() || u->quarantined())
            continue;
        sum += std::abs(static_cast<double>(u->has()) -
                        alpha * static_cast<double>(u->max()));
    }
    return sum / static_cast<double>(alive);
}

std::optional<sim::Tick>
ChaosCluster::runUntilConverged(double tol, sim::Tick checkEvery,
                                sim::Tick deadline)
{
    BLITZ_ASSERT(checkEvery >= 1, "convergence check period is empty");
    while (eq_.now() < deadline) {
        eq_.runUntil(std::min(eq_.now() + checkEvery, deadline));
        if (clusterError() <= tol)
            return eq_.now();
    }
    return std::nullopt;
}

void
ChaosCluster::fillHealth(trace::HealthReport &report) const
{
    // Everything here is deterministic in (config, seed): outcome
    // counters, not timings. blitz-top diff treats any drift in these
    // keys as a finding.
    const blitzcoin::AuditReport snap = audit_.audit();
    report.bumpDet("coin.total", static_cast<double>(snap.counted));
    report.bumpDet("coin.expected",
                   static_cast<double>(snap.expected));
    report.bumpDet("coin.gap", static_cast<double>(snap.gap));
    report.bumpDet("audit.gaps_closed",
                   static_cast<double>(audit_.gapsClosed()));
    report.bumpDet("audit.minted",
                   static_cast<double>(audit_.coinsMinted()));
    report.bumpDet("audit.burned",
                   static_cast<double>(audit_.coinsBurned()));

    std::uint64_t initiated = 0;
    std::uint64_t moved = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t shunned = 0;
    std::uint64_t throttledDrops = 0;
    std::uint64_t crashed = 0;
    std::uint64_t quarantined = 0;
    for (const auto &u : units_) {
        initiated += u->exchangesInitiated();
        moved += u->exchangesMoved();
        timedOut += u->exchangesTimedOut();
        recoveries += u->recoveriesSent();
        shunned += u->shunnedDrops();
        throttledDrops += u->throttledDrops();
        crashed += u->crashed() ? 1 : 0;
        quarantined += u->quarantined() ? 1 : 0;
    }
    report.bumpDet("units", static_cast<double>(units_.size()));
    report.bumpDet("units.crashed", static_cast<double>(crashed));
    report.bumpDet("units.quarantined",
                   static_cast<double>(quarantined));
    report.bumpDet("exchanges.initiated",
                   static_cast<double>(initiated));
    report.bumpDet("exchanges.moved", static_cast<double>(moved));
    report.bumpDet("exchanges.timed_out",
                   static_cast<double>(timedOut));
    report.bumpDet("exchanges.recoveries",
                   static_cast<double>(recoveries));
    report.bumpDet("exchanges.shunned_drops",
                   static_cast<double>(shunned));
    report.bumpDet("exchanges.throttled_drops",
                   static_cast<double>(throttledDrops));

    if (guardian_) {
        report.bumpDet("guardian.sweeps",
                       static_cast<double>(guardian_->sweepsRun()));
        report.bumpDet("guardian.detections",
                       static_cast<double>(guardian_->detections()));
        report.bumpDet("guardian.warnings",
                       static_cast<double>(guardian_->warnings()));
        report.bumpDet("guardian.throttles",
                       static_cast<double>(guardian_->throttles()));
        report.bumpDet("guardian.quarantines",
                       static_cast<double>(guardian_->quarantines()));
    }

    const FaultStats fs = plane_.stats();
    report.bumpDet("fault.drops", static_cast<double>(fs.drops));
    report.bumpDet("fault.delays", static_cast<double>(fs.delays));
    report.bumpDet("fault.duplicates",
                   static_cast<double>(fs.duplicates));
    report.bumpDet("fault.corruptions",
                   static_cast<double>(fs.corruptions));
    report.bumpDet("fault.outage_drops",
                   static_cast<double>(fs.outageDrops));
    report.bumpDet("fault.partition_drops",
                   static_cast<double>(fs.partitionDrops));

    report.bumpDet("noc.sent", static_cast<double>(net_.packetsSent()));
    report.bumpDet("noc.delivered",
                   static_cast<double>(net_.packetsDelivered()));
    report.bumpDet("noc.dropped",
                   static_cast<double>(net_.packetsDropped()));
    report.bumpDet("noc.hops", static_cast<double>(net_.totalHops()));

    trace::fillQueueHealth(report, eq_);
    if (group_) {
        report.bumpDet("shard.count",
                       static_cast<double>(group_->shards()));
        report.bumpDet("shard.epochs",
                       static_cast<double>(group_->epochs()));
        report.bumpDet("shard.cross_events",
                       static_cast<double>(group_->crossEvents()));
    }
    if (cfg_.arena)
        trace::fillArenaHealth(report, *cfg_.arena);
}

blitzcoin::AuditReport
ChaosCluster::quiesce(sim::Tick drainTicks)
{
    eq_.runUntil(eq_.now() + drainTicks);
    blitzcoin::AuditReport before = audit_.reconcile();
    // Conservation invariant: whatever the faults destroyed, one
    // watchdog sweep over a quiesced cluster restores the provisioned
    // total exactly.
    blitzcoin::AuditReport after = audit_.audit();
    BLITZ_ASSERT(after.gap == 0,
                 "audit failed to restore the provisioned coin total");
    return before;
}

} // namespace blitz::fault
