/**
 * @file
 * ChaosCluster: a fault-injected BlitzCoin mesh in a box.
 *
 * The harness the chaos bench and the fault/recovery tests share: a
 * w x h mesh where every tile runs a BlitzCoinUnit, a FaultPlane wired
 * into the NoC, crash/freeze windows wired into the units, and a
 * ClusterAudit watchdog tracking the provisioned coin total. Tests get
 * a one-line lossy cluster; the bench gets convergence and conservation
 * metrics that are deterministic in (config, seed).
 */

#ifndef BLITZ_FAULT_CHAOS_HPP
#define BLITZ_FAULT_CHAOS_HPP

#include <memory>
#include <optional>
#include <vector>

#include "blitzcoin/audit.hpp"
#include "blitzcoin/guardian.hpp"
#include "blitzcoin/unit.hpp"
#include "byzantine.hpp"
#include "fault_plane.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"

namespace blitz::trace {
class HealthReport;
class Registry;
class Tracer;
}

namespace blitz::record {
class FlightRecorder;
class ProvenanceLedger;
}

namespace blitz::fault {

/** ChaosCluster construction parameters. */
struct ChaosConfig
{
    int width = 4;
    int height = 4;
    bool wrap = false;
    blitzcoin::UnitConfig unit{};
    FaultConfig fault{};
    /** Per-tile unit seeds are seedBase + node id. */
    std::uint64_t seedBase = 1000;
    /**
     * When a crash window ends, re-program the tile's pre-crash max
     * target and restart it (the workload resumes); coins come back
     * through the audit watchdog. Disable to leave restarted tiles
     * idle until the harness programs them.
     */
    bool restoreMaxOnRestart = true;
    /**
     * Period of the background audit/remint watchdog sweep; 0 leaves
     * the audit manual (reconcile()/quiesce() only). A periodic sweep
     * can momentarily mis-read in-flight exchanges as a gap — the next
     * sweep corrects it — so it is meant for runs with crash windows,
     * where waiting for quiesce would leave the pool depleted.
     */
    sim::Tick auditPeriod = 0;
    /**
     * Byzantine compromise schedule; empty specs leave every tile
     * honest (no plan is constructed, golden pins untouched).
     */
    ByzantineConfig byzantine{};
    /**
     * Arm the integrity guardian: shadow accounting over every tile
     * with the warn/throttle/quarantine ladder, swept on the audit
     * cadence (auditPeriod must be > 0). Off by default.
     */
    bool guardianEnabled = false;
    blitzcoin::GuardianConfig guardian{};
    /**
     * Backing store for the event slab and NoC packet pool; nullptr
     * heap-allocates. Sweep trials pass &sim::threadArena() so
     * replications on the same worker reuse the same chunks — the
     * cluster must then be destroyed before the arena resets (i.e.
     * live entirely inside one replication).
     */
    sim::Arena *arena = nullptr;
    /**
     * BSP shard count. 0 (the default) keeps the legacy single-queue
     * kernel — existing golden pins are untouched. >= 1 runs the
     * cluster on a sim::ShardGroup with that many parallel column
     * bands (clamped to the mesh width) plus the serial observer
     * lane; 1 is the bit-identity baseline the 2- and 4-shard runs
     * are pinned against. Pass sim::defaultShards() to honor the
     * BLITZ_SHARDS environment knob.
     */
    std::uint32_t shards = 0;
};

/**
 * A fault-injected all-tiles BlitzCoin cluster.
 *
 * Lifecycle: construct, seed coins/targets with setHas()/setMax(),
 * sealProvision(), startAll(), then drive eq() (or use
 * runUntilConverged()). Crash and freeze windows from the fault
 * schedule are applied to the units automatically. reconcile() runs
 * the audit watchdog; quiesce() drains, reconciles, and asserts the
 * seeded total is exactly restored.
 */
class ChaosCluster
{
  public:
    explicit ChaosCluster(const ChaosConfig &cfg);

    sim::EventQueue &eq() { return eq_; }
    const noc::Topology &topology() const { return topo_; }
    noc::Network &net() { return net_; }
    FaultPlane &plane() { return plane_; }
    /** The BSP shard group, or nullptr in legacy mode. */
    sim::ShardGroup *shardGroup() { return group_.get(); }
    blitzcoin::ClusterAudit &audit() { return audit_; }
    /** The attack plan, or nullptr when every tile is honest. */
    ByzantinePlan *byzantinePlan() { return byzantine_.get(); }
    /** The integrity guardian, or nullptr when disabled. */
    blitzcoin::IntegrityGuardian *guardian() { return guardian_.get(); }
    std::size_t size() const { return units_.size(); }
    blitzcoin::BlitzCoinUnit &unit(std::size_t i) { return *units_[i]; }
    const blitzcoin::BlitzCoinUnit &
    unit(std::size_t i) const
    {
        return *units_[i];
    }

    void setHas(std::size_t i, coin::Coins has);
    void setMax(std::size_t i, coin::Coins max);

    /**
     * Record the current cluster total as the provisioned amount the
     * audit watchdog defends. Call once, after seeding coins.
     */
    void sealProvision();

    void startAll();

    /** Coins held across alive (non-crashed) units. */
    coin::Coins totalCoins() const;

    /** Mean |has - alpha*max| over alive units (0 if cluster idle). */
    double clusterError() const;

    /**
     * Advance until clusterError() <= @p tol (checked every
     * @p checkEvery ticks) or @p deadline passes. Returns the tick at
     * which convergence was observed, or nullopt on deadline.
     */
    std::optional<sim::Tick> runUntilConverged(double tol,
                                               sim::Tick checkEvery,
                                               sim::Tick deadline);

    /**
     * Register the cluster's observables on @p reg (cluster coin
     * total, cluster error, per-unit balances, summed exchange
     * counters, audit/NoC/fault-plane/event-kernel counters) and
     * schedule a self-repeating Priority::Stats sampler every
     * @p interval ticks. Call once, before running; pass nullptr to
     * leave the cluster unobserved (the default — no sampler events
     * are scheduled, so golden digests are untouched).
     */
    void attachMetrics(trace::Registry *reg, sim::Tick interval);

    /**
     * Wire an event tracer into the fault plane and every unit (spans
     * for exchanges, instants for injections/crash/recovery). Nullptr
     * detaches.
     */
    void attachTrace(trace::Tracer *t);

    /**
     * Wire the flight recorder (and optionally the provenance ledger)
     * into every layer: NoC deliveries, fault-plane decisions, unit
     * exchange milestones, crash/restart transitions, and audit
     * remints/burns all journal into @p rec. Call *before* seeding
     * coins so the provisioning mints are on the log too — replay
     * depends on the log opening with the full provisioned state.
     *
     * @p snapshotEvery > 0 additionally schedules a self-repeating
     * Priority::Stats sweep that journals every tile's balance plus a
     * digest-carrying epoch mark — the bisector's binary-search keys.
     * Like attachMetrics, the recorder is passive: golden digests are
     * bit-identical with and without it (locked by tests).
     */
    void attachRecorder(record::FlightRecorder *rec,
                        record::ProvenanceLedger *prov = nullptr,
                        sim::Tick snapshotEvery = 0);

    /**
     * Sum the cluster's deterministic outcome counters into
     * @p report's deterministic section: coin conservation (total vs
     * expected), audit remints/burns, per-ladder guardian counts,
     * fault-plane and NoC totals, unit exchange/recovery sums,
     * crashed/quarantined populations, and the event-kernel and shard
     * gauges. bump/max-folds, so one report can aggregate many trials.
     */
    void fillHealth(trace::HealthReport &report) const;

    /** One audit watchdog sweep (mint/burn any gap). */
    blitzcoin::AuditReport reconcile() { return audit_.reconcile(); }

    /**
     * Drain in-flight traffic for @p drainTicks, run the audit
     * watchdog, and assert the conservation invariant: after the
     * sweep, the alive units hold exactly the provisioned total.
     * Returns the pre-sweep report (its gap is what the watchdog had
     * to close).
     */
    blitzcoin::AuditReport quiesce(sim::Tick drainTicks = 4096);

  private:
    void onCrash(noc::NodeId node);
    void onRestart(noc::NodeId node);
    void scheduleAudit();
    void scheduleSample();
    void scheduleSnapshot();

    ChaosConfig cfg_;
    sim::EventQueue eq_;
    noc::Topology topo_;
    noc::Network net_;
    FaultPlane plane_;
    std::vector<std::unique_ptr<blitzcoin::BlitzCoinUnit>> units_;
    blitzcoin::ClusterAudit audit_;
    std::unique_ptr<ByzantinePlan> byzantine_;
    std::unique_ptr<blitzcoin::IntegrityGuardian> guardian_;
    /** Max target at crash time, restored on restart. */
    std::vector<coin::Coins> maxAtCrash_;
    trace::Registry *metrics_ = nullptr;
    sim::Tick sampleEvery_ = 0;
    record::FlightRecorder *recorder_ = nullptr;
    record::ProvenanceLedger *prov_ = nullptr;
    sim::Tick snapshotEvery_ = 0;
    std::int64_t snapshotEpoch_ = 0;
    /**
     * Declared last on purpose: the group must unbind the anchor and
     * join its workers before any component it routes events for is
     * destroyed.
     */
    std::unique_ptr<sim::ShardGroup> group_;
};

} // namespace blitz::fault

#endif // BLITZ_FAULT_CHAOS_HPP
