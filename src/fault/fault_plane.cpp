#include "fault_plane.hpp"

#include <algorithm>

#include "record/recorder.hpp"
#include "trace/tracer.hpp"

namespace blitz::fault {

FaultPlane::FaultPlane(FaultConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    for (const auto &o : cfg_.outages)
        BLITZ_ASSERT(o.from <= o.until, "outage window ends before it starts");
    for (const auto &p : cfg_.partitions)
        BLITZ_ASSERT(p.from <= p.until,
                     "partition window ends before it starts");
    auto checkRates = [](const FaultRates &r) {
        BLITZ_ASSERT(r.drop >= 0.0 && r.drop <= 1.0 &&
                     r.delay >= 0.0 && r.delay <= 1.0 &&
                     r.duplicate >= 0.0 && r.duplicate <= 1.0 &&
                     r.corrupt >= 0.0 && r.corrupt <= 1.0,
                     "fault rates must be probabilities");
        BLITZ_ASSERT(r.delayMin >= 1 && r.delayMax >= r.delayMin,
                     "fault delay range is empty");
    };
    checkRates(cfg_.base);
    for (const auto &[plane, r] : cfg_.planes)
        checkRates(r);
    for (const auto &[node, r] : cfg_.nodes)
        checkRates(r);
    for (const auto &[msg, r] : cfg_.messages)
        checkRates(r);
    for (const auto &[link, r] : cfg_.links)
        checkRates(r);
}

FaultStats
FaultPlane::stats() const
{
    FaultStats total = stats_;
    for (const FaultStats &s : shardStats_) {
        total.drops += s.drops;
        total.delays += s.delays;
        total.duplicates += s.duplicates;
        total.corruptions += s.corruptions;
        total.outageDrops += s.outageDrops;
        total.partitionDrops += s.partitionDrops;
    }
    return total;
}

void
FaultPlane::enableKeyedStreams(std::uint32_t shards)
{
    BLITZ_ASSERT(!keyed_, "keyed streams already enabled");
    keyed_ = true;
    shardStats_.assign(shards + 1, FaultStats{});
}

FaultStats &
FaultPlane::statsSlot()
{
    if (!keyed_)
        return stats_;
    const sim::ShardContext *c = sim::tlsShardContext();
    return shardStats_[c ? c->shard : shardStats_.size() - 1];
}

void
FaultPlane::setTrace(trace::Tracer *t)
{
    tracer_ = t;
    if (!tracer_)
        return;
    // The schedule is static configuration: emit the windows as spans
    // up front so the timeline shows them even if the run ends early.
    for (const auto &o : cfg_.outages) {
        tracer_->complete(
            "fault", o.freeze ? "freeze_window" : "crash_window",
            o.node, o.from,
            o.until == sim::maxTick ? o.from : o.until);
    }
    for (const auto &p : cfg_.partitions) {
        tracer_->complete(
            "fault", "partition_window", 0, p.from, p.until,
            {{"links", static_cast<std::int64_t>(p.links.size())}});
    }
}

bool
FaultPlane::nodeDown(noc::NodeId node, sim::Tick now) const
{
    for (const auto &o : cfg_.outages) {
        if (o.node == node && now >= o.from && now < o.until)
            return true;
    }
    return false;
}

void
FaultPlane::armOutageSchedule(sim::EventQueue &eq)
{
    for (const auto &o : cfg_.outages) {
        auto down = o.freeze ? &onNodeFrozen : &onNodeDown;
        auto up = o.freeze ? &onNodeThawed : &onNodeUp;
        // At the affected node's locus: in sharded mode the crash /
        // restart callbacks mutate that tile's unit state, which its
        // owning shard must do. Identical to plain scheduling when
        // the queue is unsharded.
        eq.scheduleAtNode(o.node, o.from, [this, node = o.node, down] {
            if (*down)
                (*down)(node);
        });
        if (o.until < sim::maxTick) {
            eq.scheduleAtNode(o.node, o.until,
                              [this, node = o.node, up] {
                                  if (*up)
                                      (*up)(node);
                              });
        }
    }
}

bool
FaultPlane::coinMessage(const noc::Packet &pkt) const
{
    switch (pkt.type) {
      case noc::MsgType::CoinStatus:
      case noc::MsgType::CoinUpdate:
      case noc::MsgType::CoinRequest:
      case noc::MsgType::CoinRecover:
        return true;
      default:
        return false;
    }
}

bool
FaultPlane::linkCut(noc::NodeId a, noc::NodeId b, sim::Tick now) const
{
    for (const auto &p : cfg_.partitions) {
        if (now < p.from || now >= p.until)
            continue;
        for (const auto &[x, y] : p.links) {
            if ((x == a && y == b) || (x == b && y == a))
                return true;
        }
    }
    return false;
}

const FaultRates &
FaultPlane::ratesFor(const noc::Packet &pkt, noc::NodeId from,
                     noc::NodeId to) const
{
    if (auto it = cfg_.links.find({from, to}); it != cfg_.links.end())
        return it->second;
    if (auto it = cfg_.nodes.find(pkt.src); it != cfg_.nodes.end())
        return it->second;
    if (auto it = cfg_.nodes.find(pkt.dst); it != cfg_.nodes.end())
        return it->second;
    if (auto it = cfg_.messages.find(static_cast<int>(pkt.type));
        it != cfg_.messages.end())
        return it->second;
    if (auto it = cfg_.planes.find(static_cast<int>(pkt.plane));
        it != cfg_.planes.end())
        return it->second;
    return cfg_.base;
}

noc::FaultDecision
FaultPlane::applyRates(noc::Packet &pkt, const FaultRates &r,
                       bool deliveryStage, sim::Tick now,
                       noc::NodeId siteFrom, noc::NodeId siteTo)
{
    noc::FaultDecision fd;
    if (r.quiet() || (cfg_.coinTrafficOnly && !coinMessage(pkt)))
        return fd;
    // Keyed mode: a fresh stateless stream per (packet, site, stage)
    // decision. The sequential stream would make verdict N depend on
    // the N-1 draws before it — an ordering no parallel partition can
    // reproduce. XY routing crosses each (from, to) link at most
    // once, so the key is unique per decision.
    sim::Rng keyedRng(0);
    sim::Rng *rng = &rng_;
    if (keyed_) {
        std::uint64_t k = sim::hashCombine(cfg_.seed, pkt.seq);
        k = sim::hashCombine(
            k, (static_cast<std::uint64_t>(siteFrom) << 32) | siteTo);
        k = sim::hashCombine(k, deliveryStage ? 1 : 2);
        keyedRng.reseed(k);
        rng = &keyedRng;
    }
    FaultStats &st = statsSlot();
    if (r.drop > 0.0 && rng->chance(r.drop)) {
        ++st.drops;
        fd.drop = true;
        if (tracer_)
            tracer_->instant("fault", "inject_drop", pkt.dst, now,
                             {{"src",
                               static_cast<std::int64_t>(pkt.src)}});
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDrop,
                             record::kSiteInject,
                             static_cast<int>(pkt.type), pkt.src,
                             pkt.dst, static_cast<std::int64_t>(pkt.seq));
        return fd;
    }
    if (r.delay > 0.0 && rng->chance(r.delay)) {
        ++st.delays;
        fd.delay = rng->range(static_cast<std::int64_t>(r.delayMin),
                              static_cast<std::int64_t>(r.delayMax));
        if (tracer_)
            tracer_->instant(
                "fault", "inject_delay", pkt.dst, now,
                {{"ticks", static_cast<std::int64_t>(fd.delay)}});
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDelay,
                             record::kSiteInject,
                             static_cast<int>(pkt.type), pkt.src,
                             pkt.dst, static_cast<std::int64_t>(pkt.seq),
                             static_cast<std::int64_t>(fd.delay));
    }
    // Duplication is a delivery-stage artifact (endpoint retransmit);
    // duplicating mid-route would multiply copies at every hop.
    if (deliveryStage && r.duplicate > 0.0 &&
        rng->chance(r.duplicate)) {
        ++st.duplicates;
        fd.duplicate = true;
        if (tracer_)
            tracer_->instant("fault", "inject_duplicate", pkt.dst, now);
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDuplicate,
                             record::kSiteInject,
                             static_cast<int>(pkt.type), pkt.src,
                             pkt.dst, static_cast<std::int64_t>(pkt.seq));
    }
    if (r.corrupt > 0.0 && rng->chance(r.corrupt)) {
        ++st.corruptions;
        const auto word = static_cast<std::size_t>(rng->below(4));
        const auto bit = static_cast<int>(rng->below(63));
        pkt.payload[word] ^= std::int64_t{1} << bit;
        pkt.corrupted = true; // the link CRC catches the damage
        if (tracer_)
            tracer_->instant("fault", "inject_corrupt", pkt.dst, now);
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultCorrupt,
                             record::kSiteInject,
                             static_cast<int>(pkt.type), pkt.src,
                             pkt.dst, static_cast<std::int64_t>(pkt.seq),
                             static_cast<std::int64_t>(
                                 word * 64 + static_cast<std::size_t>(bit)));
    }
    return fd;
}

noc::FaultDecision
FaultPlane::onLink(noc::Packet &pkt, noc::NodeId from, noc::NodeId to,
                   sim::Tick now)
{
    if (nodeDown(pkt.src, now) || nodeDown(pkt.dst, now)) {
        ++statsSlot().outageDrops;
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDrop,
                             record::kSiteOutage,
                             static_cast<int>(pkt.type), pkt.src,
                             pkt.dst, static_cast<std::int64_t>(pkt.seq));
        return {.drop = true};
    }
    if (linkCut(from, to, now)) {
        ++statsSlot().partitionDrops;
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDrop,
                             record::kSitePartition,
                             static_cast<int>(pkt.type), from, to,
                             static_cast<std::int64_t>(pkt.seq));
        return {.drop = true};
    }
    if (cfg_.endpointOnly)
        return {};
    return applyRates(pkt, ratesFor(pkt, from, to), false, now, from,
                      to);
}

bool
FaultPlane::inert(const noc::Packet &pkt, sim::Tick from,
                  sim::Tick until) const
{
    // Any outage or partition window overlapping the span could drop
    // the packet (and bump a counter) at some hop — step those hops.
    for (const auto &o : cfg_.outages) {
        if (o.from <= until && o.until > from)
            return false;
    }
    for (const auto &p : cfg_.partitions) {
        if (p.from <= until && p.until > from)
            return false;
    }
    // Rate-based faults: applyRates returns without touching the RNG
    // or the statistics when the matched rates are all zero (or the
    // packet is exempt), so eliding the consultation is exact.
    if (cfg_.endpointOnly)
        return true;
    if (cfg_.coinTrafficOnly && !coinMessage(pkt))
        return true;
    if (!cfg_.links.empty())
        return false; // per-link rates vary along the route
    // With no per-link scope the matched rates are route-independent.
    return ratesFor(pkt, pkt.src, pkt.src).quiet();
}

noc::FaultDecision
FaultPlane::onDeliver(noc::Packet &pkt, noc::NodeId at, sim::Tick now)
{
    if (nodeDown(pkt.src, now) || nodeDown(at, now)) {
        ++statsSlot().outageDrops;
        if (recorder_)
            recorder_->fault(now, record::RecordKind::FaultDrop,
                             record::kSiteOutage,
                             static_cast<int>(pkt.type), pkt.src, at,
                             static_cast<std::int64_t>(pkt.seq));
        return {.drop = true};
    }
    return applyRates(pkt, ratesFor(pkt, at, at), true, now, at, at);
}

PartitionWindow
columnPartition(const noc::Topology &topo, int cutX, sim::Tick from,
                sim::Tick until)
{
    BLITZ_ASSERT(cutX >= 0 && cutX + 1 < topo.width(),
                 "column cut outside the mesh");
    PartitionWindow p;
    p.from = from;
    p.until = until;
    for (int y = 0; y < topo.height(); ++y) {
        noc::NodeId a = topo.idOf({cutX, y});
        noc::NodeId b = topo.idOf({cutX + 1, y});
        p.links.emplace_back(a, b);
    }
    return p;
}

} // namespace blitz::fault
