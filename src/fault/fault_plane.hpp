/**
 * @file
 * Deterministic fault-injection plane for the NoC and the BlitzCoin
 * units.
 *
 * The paper argues the protocol survives lost packets and transiently
 * negative counters (Section IV-A); this subsystem makes that claim
 * testable as infrastructure rather than ad-hoc test scaffolding. A
 * FaultPlane is configured with drop/delay/duplication/corruption
 * rates (globally, per plane, per node, or per link), tile
 * crash/freeze/restart windows, and timed mesh partitions, then
 * attached to a noc::Network. Every verdict draws from a seeded RNG
 * owned by the plane, and the event kernel is single threaded, so a
 * (seed, config) pair fully determines the fault pattern — chaos runs
 * are replayable and bit-identical across sweep thread counts.
 */

#ifndef BLITZ_FAULT_FAULT_PLANE_HPP
#define BLITZ_FAULT_FAULT_PLANE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "noc/fault_hook.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace blitz::trace {
class Tracer;
}

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::fault {

/** Fault rates applied at one scope (global, plane, node, or link). */
struct FaultRates
{
    /** Probability a packet is discarded at a stage. */
    double drop = 0.0;
    /** Probability a packet is held back at a stage. */
    double delay = 0.0;
    /** Uniform delay bounds (ticks) when a delay fires. */
    sim::Tick delayMin = 1;
    sim::Tick delayMax = 64;
    /** Probability a delivery is duplicated (retransmission artifact). */
    double duplicate = 0.0;
    /** Probability a payload word is damaged (sets Packet::corrupted). */
    double corrupt = 0.0;

    bool
    quiet() const
    {
        return drop <= 0.0 && delay <= 0.0 && duplicate <= 0.0 &&
               corrupt <= 0.0;
    }
};

/**
 * A tile outage. While [from, until) is in force every packet to or
 * from the node is discarded. `freeze` keeps the tile's architectural
 * state (a clock-gated stall); a non-freeze window is a crash — the
 * harness is told through onNodeDown/onNodeUp so it can destroy and
 * later restore the tile's unit state (coins on a crashed tile are
 * lost and must be reminted by the audit watchdog).
 */
struct OutageWindow
{
    noc::NodeId node = 0;
    sim::Tick from = 0;
    sim::Tick until = 0; ///< exclusive; sim::maxTick = never recovers
    bool freeze = false;
};

/** A timed cut of specific mesh links (both directions). */
struct PartitionWindow
{
    sim::Tick from = 0;
    sim::Tick until = 0; ///< exclusive
    /** Unordered (a, b) adjacent pairs whose link is severed. */
    std::vector<std::pair<noc::NodeId, noc::NodeId>> links;
};

/** Full fault-plane schedule and rates. */
struct FaultConfig
{
    std::uint64_t seed = 1;
    /** Baseline rates for every packet at every stage. */
    FaultRates base{};
    /** Per-NoC-plane override (most specific scope wins). */
    std::map<int, FaultRates> planes;
    /** Per-node override, matched on a packet's src or dst. */
    std::map<noc::NodeId, FaultRates> nodes;
    /**
     * Per-message-type override (noc::MsgType cast to int) — e.g. drop
     * only CoinStatus to exercise one arm of the exchange protocol.
     */
    std::map<int, FaultRates> messages;
    /** Per-link override, matched on the (from, to) hop, directional. */
    std::map<std::pair<noc::NodeId, noc::NodeId>, FaultRates> links;
    // Precedence, most specific first: links, nodes, messages, planes,
    // base.
    /**
     * Restrict rate-based faults to the coin protocol messages
     * (CoinStatus/CoinUpdate/CoinRequest/CoinRecover). Outages and
     * partitions always apply to all traffic.
     */
    bool coinTrafficOnly = false;
    /**
     * Apply rate-based faults only at the delivery (ejection) stage —
     * a per-packet loss model at the tile boundary — instead of at
     * every link crossing, where the end-to-end rate compounds with
     * hop count. Outages and partitions are unaffected.
     */
    bool endpointOnly = false;
    std::vector<OutageWindow> outages;
    std::vector<PartitionWindow> partitions;
};

/** Injection counters, by mechanism. */
struct FaultStats
{
    std::uint64_t drops = 0;        ///< rate-based discards
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t outageDrops = 0;    ///< discards at down nodes
    std::uint64_t partitionDrops = 0; ///< discards on severed links
};

/**
 * Concrete noc::FaultHook driven by a FaultConfig.
 *
 * Attach with noc::Network::setFaultHook(&plane). If outage windows
 * are configured, also call armOutageSchedule(eq) so the plane fires
 * the onNodeDown/onNodeUp callbacks at the window edges; packet
 * filtering at down nodes works from the schedule alone and needs no
 * event queue.
 */
class FaultPlane : public noc::FaultHook
{
  public:
    explicit FaultPlane(FaultConfig cfg);

    const FaultConfig &config() const { return cfg_; }

    /**
     * Injection counters. With keyed streams enabled the per-shard
     * slots are merged on read (sum of integers — fold-order free),
     * so the totals are identical for every shard count.
     */
    FaultStats stats() const;

    /**
     * Switch from the single sequential RNG stream to stateless keyed
     * streams for sharded runs: every rate decision draws from a
     * fresh generator seeded by hash(config seed, packet seq, site,
     * stage) — a pure function of *what* is being decided, so the
     * verdict cannot depend on how many draws other shards made
     * first. Injection counters move to per-shard slots (indices
     * 0..shards, last = serial lane). Call once, before any traffic,
     * on a plane attached to a sharded network.
     */
    void enableKeyedStreams(std::uint32_t shards);

    /** Attach to a network (convenience for setFaultHook). */
    void
    attach(noc::Network &net)
    {
        net.setFaultHook(this);
    }

    /** True when @p node is inside an outage window at @p now. */
    bool nodeDown(noc::NodeId node, sim::Tick now) const;

    /**
     * Attach an event tracer (or detach with nullptr). Scheduled
     * outage and partition windows are emitted immediately as complete
     * spans (they are known up front); rate-based injections emit one
     * instant each as they fire. Null by default — the disabled path
     * adds one branch per *injected* fault, never per packet.
     */
    void setTrace(trace::Tracer *t);

    /**
     * Attach the flight recorder (or detach with nullptr). Every fault
     * *decision* — rate-based drop/delay/duplicate/corrupt, outage
     * discard, partition discard — is journaled with the packet's
     * endpoints, sequence number, and the site it fired at. The
     * network records deliveries; the plane records why a packet did
     * not arrive, so a replay diff can separate "the fault pattern
     * changed" from "the protocol reacted differently".
     */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

    /**
     * Schedule the outage transitions on @p eq, invoking onNodeDown /
     * onNodeUp (when set) at each non-freeze window edge so the
     * harness can crash and restart the affected unit. Freeze windows
     * fire onNodeFrozen/onNodeThawed instead. Call once, before
     * running.
     */
    void armOutageSchedule(sim::EventQueue &eq);

    std::function<void(noc::NodeId)> onNodeDown;
    std::function<void(noc::NodeId)> onNodeUp;
    std::function<void(noc::NodeId)> onNodeFrozen;
    std::function<void(noc::NodeId)> onNodeThawed;

    // noc::FaultHook
    noc::FaultDecision onLink(noc::Packet &pkt, noc::NodeId from,
                              noc::NodeId to, sim::Tick now) override;
    noc::FaultDecision onDeliver(noc::Packet &pkt, noc::NodeId at,
                                 sim::Tick now) override;
    bool inert(const noc::Packet &pkt, sim::Tick from,
               sim::Tick until) const override;

  private:
    /** Most specific rates for a packet at a stage. */
    const FaultRates &ratesFor(const noc::Packet &pkt, noc::NodeId from,
                               noc::NodeId to) const;

    /**
     * Rate-based faults shared by both stages. @p siteFrom/@p siteTo
     * identify the decision site — they key the stateless stream when
     * keyed mode is on and are ignored otherwise.
     */
    noc::FaultDecision applyRates(noc::Packet &pkt, const FaultRates &r,
                                  bool deliveryStage, sim::Tick now,
                                  noc::NodeId siteFrom,
                                  noc::NodeId siteTo);

    /** The executing shard's counter slot (stats_ when unkeyed). */
    FaultStats &statsSlot();

    bool coinMessage(const noc::Packet &pkt) const;
    bool linkCut(noc::NodeId a, noc::NodeId b, sim::Tick now) const;

    FaultConfig cfg_;
    sim::Rng rng_;
    FaultStats stats_;
    bool keyed_ = false;
    /** Per-shard counters (keyed mode); last slot = serial lane. */
    std::vector<FaultStats> shardStats_;
    trace::Tracer *tracer_ = nullptr;
    record::FlightRecorder *recorder_ = nullptr;
};

/**
 * Build a partition window cutting every mesh link between column
 * @p cutX and column cutX + 1 — with XY routing this splits the mesh
 * into two halves that cannot reach each other for the duration.
 */
PartitionWindow columnPartition(const noc::Topology &topo, int cutX,
                                sim::Tick from, sim::Tick until);

} // namespace blitz::fault

#endif // BLITZ_FAULT_FAULT_PLANE_HPP
