/**
 * @file
 * Fault-injection interception points of the NoC.
 *
 * The network consults an optional FaultHook at two stages of a
 * packet's life: once per router-to-router link traversal and once at
 * the ejection port. The hook decides whether the packet is dropped,
 * delayed, duplicated, or corrupted at that stage; the network applies
 * the verdict mechanically. Keeping the decision logic behind this
 * interface lets the concrete fault model (src/fault/) stay out of the
 * noc layer while every consumer of Network — benches, tests, the full
 * SoC — gets fault injection through configuration instead of by
 * wrapping delivery handlers.
 */

#ifndef BLITZ_NOC_FAULT_HOOK_HPP
#define BLITZ_NOC_FAULT_HOOK_HPP

#include "packet.hpp"
#include "sim/types.hpp"

namespace blitz::noc {

/** Verdict for one packet at one interception stage. */
struct FaultDecision
{
    /** Discard the packet at this stage (it consumed the link slot). */
    bool drop = false;
    /** Extra ticks added to this stage's traversal. */
    sim::Tick delay = 0;
    /** Deliver/forward the packet twice (retransmission artifact). */
    bool duplicate = false;
};

/**
 * Fault-injection callback interface (implemented by fault::FaultPlane).
 *
 * Both hooks may mutate the packet to model payload corruption; a
 * corrupting hook must also set Packet::corrupted so endpoints can
 * model link-level CRC detection.
 */
class FaultHook
{
  public:
    virtual ~FaultHook() = default;

    /** Consulted once per link traversal @p from -> @p to. */
    virtual FaultDecision onLink(Packet &pkt, NodeId from, NodeId to,
                                 sim::Tick now) = 0;

    /** Consulted once at the ejection port of @p at. */
    virtual FaultDecision onDeliver(Packet &pkt, NodeId at,
                                    sim::Tick now) = 0;

    /**
     * True when every onLink consultation for @p pkt in the tick
     * window [@p from, @p until] is guaranteed to be a no-op: default
     * decision, no packet mutation, no observable side effect
     * (statistics, RNG draws). The network uses this to flatten
     * multi-hop traversal — skipping the per-hop consultations is only
     * legal when they provably would not have done anything. Delivery
     * (onDeliver) is always consulted regardless. The default
     * conservatively declines.
     */
    virtual bool
    inert(const Packet &pkt, sim::Tick from, sim::Tick until) const
    {
        (void)pkt;
        (void)from;
        (void)until;
        return false;
    }
};

} // namespace blitz::noc

#endif // BLITZ_NOC_FAULT_HOOK_HPP
