#include "network.hpp"

#include <utility>

namespace blitz::noc {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::CoinStatus:  return "CoinStatus";
      case MsgType::CoinUpdate:  return "CoinUpdate";
      case MsgType::CoinRequest: return "CoinRequest";
      case MsgType::RegRead:     return "RegRead";
      case MsgType::RegReadResp: return "RegReadResp";
      case MsgType::RegWrite:    return "RegWrite";
      case MsgType::Interrupt:   return "Interrupt";
      case MsgType::Generic:     return "Generic";
      case MsgType::CoinRecover: return "CoinRecover";
    }
    return "?";
}

Network::Network(sim::EventQueue &eq, Topology topo, sim::Tick hopLatency)
    : eq_(eq), topo_(std::move(topo)), hopLatency_(hopLatency),
      handlers_(topo_.size()),
      linkFree_(topo_.size() * 4 * numPlanes, 0),
      ejectFree_(topo_.size() * numPlanes, 0)
{
    BLITZ_ASSERT(hopLatency_ >= 1, "hop latency must be at least 1 cycle");
}

void
Network::setHandler(NodeId node, Handler handler)
{
    BLITZ_ASSERT(node < handlers_.size(), "handler node out of range");
    handlers_[node] = std::move(handler);
}

std::size_t
Network::linkIndex(NodeId node, Dir d, Plane p) const
{
    return (static_cast<std::size_t>(node) * 4 +
            static_cast<std::size_t>(d)) * numPlanes +
           static_cast<std::size_t>(p);
}

std::size_t
Network::ejectIndex(NodeId node, Plane p) const
{
    return static_cast<std::size_t>(node) * numPlanes +
           static_cast<std::size_t>(p);
}

std::uint64_t
Network::send(Packet pkt)
{
    BLITZ_ASSERT(pkt.src < topo_.size() && pkt.dst < topo_.size(),
                 "packet endpoints out of range");
    pkt.seq = nextSeq_++;
    pkt.injectTick = eq_.now();
    ++packetsSent_;
    hop(pkt, pkt.src);
    return pkt.seq;
}

void
Network::scheduleDelivery(const Packet &pkt, NodeId at,
                          sim::Tick extraDelay)
{
    // Ejection port: serializes deliveries into the endpoint.
    auto &free = ejectFree_[ejectIndex(at, pkt.plane)];
    sim::Tick depart = std::max(eq_.now() + extraDelay, free);
    free = depart + hopLatency_;
    eq_.schedule(depart + hopLatency_, [this, pkt, at] {
        ++packetsDelivered_;
        latency_.add(static_cast<double>(eq_.now() - pkt.injectTick));
        // Copy before invoking: a handler replacing itself (or being
        // replaced reentrantly) must not destroy the executing closure.
        Handler h = handlers_[at];
        if (h)
            h(pkt);
    }, sim::Priority::NocTransfer);
}

void
Network::hop(Packet pkt, NodeId at)
{
    const sim::Tick now = eq_.now();

    if (at == pkt.dst) {
        FaultDecision fd;
        if (fault_)
            fd = fault_->onDeliver(pkt, at, now);
        if (fd.drop) {
            ++packetsDropped_;
            return;
        }
        scheduleDelivery(pkt, at, fd.delay);
        if (fd.duplicate)
            scheduleDelivery(pkt, at, fd.delay);
        return;
    }

    Dir d = topo_.nextHopDir(at, pkt.dst);
    NodeId next = topo_.nextHop(at, pkt.dst);
    FaultDecision fd;
    if (fault_)
        fd = fault_->onLink(pkt, at, next, now);
    auto &free = linkFree_[linkIndex(at, d, pkt.plane)];
    sim::Tick depart = std::max(now, free);
    free = depart + hopLatency_;
    ++totalHops_;
    if (fd.drop) {
        // The flit crossed the link (the slot is consumed) but never
        // arrives at the next router.
        ++packetsDropped_;
        return;
    }
    const int copies = fd.duplicate ? 2 : 1;
    for (int k = 0; k < copies; ++k) {
        eq_.schedule(depart + hopLatency_ + fd.delay, [this, pkt, next] {
            hop(pkt, next);
        }, sim::Priority::NocTransfer);
    }
}

void
Network::resetStats()
{
    packetsSent_ = 0;
    packetsDelivered_ = 0;
    packetsDropped_ = 0;
    totalHops_ = 0;
    latency_ = sim::Summary{};
}

} // namespace blitz::noc
