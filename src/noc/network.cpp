#include "network.hpp"

#include <utility>

#include "record/recorder.hpp"
#include "sim/shard.hpp"
#include "trace/noc_trace.hpp"

namespace blitz::noc {

namespace {
constexpr std::size_t kPoolBlockEvents = 64;
} // namespace

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::CoinStatus:  return "CoinStatus";
      case MsgType::CoinUpdate:  return "CoinUpdate";
      case MsgType::CoinRequest: return "CoinRequest";
      case MsgType::RegRead:     return "RegRead";
      case MsgType::RegReadResp: return "RegReadResp";
      case MsgType::RegWrite:    return "RegWrite";
      case MsgType::Interrupt:   return "Interrupt";
      case MsgType::Generic:     return "Generic";
      case MsgType::CoinRecover: return "CoinRecover";
    }
    return "?";
}

Network::Network(sim::EventQueue &eq, Topology topo, sim::Tick hopLatency,
                 sim::Arena *arena)
    : eq_(eq), topo_(std::move(topo)), hopLatency_(hopLatency),
      handlers_(topo_.size()),
      linkFree_(topo_.size() * 4 * numPlanes, 0),
      ejectFree_(topo_.size() * numPlanes, 0), arena_(arena),
      blocks_(1)
{
    BLITZ_ASSERT(hopLatency_ >= 1, "hop latency must be at least 1 cycle");
    blocks_[0].arena = arena_;
}

Network::~Network()
{
    for (Block &b : blocks_)
        for (PacketEvent *block : b.poolBlocks)
            ::operator delete(block);
}

void
Network::enableSharding(sim::ShardGroup &group)
{
    BLITZ_ASSERT(!sharded_, "network already sharded");
    BLITZ_ASSERT(!trace_, "NocTrace cannot observe a sharded network");
    BLITZ_ASSERT(packetsSent() == 0,
                 "enableSharding() must precede all traffic");
    sharded_ = true;
    group_ = &group;
    // One state block per shard plus the serial lane; pools draw from
    // the group's per-shard arenas so parallel-phase growth is
    // thread-private by construction.
    blocks_.assign(group.shards() + 1, Block{});
    for (std::uint32_t s = 0; s <= group.shards(); ++s)
        blocks_[s].arena = &group.shardArena(s);
    srcSeq_.assign(topo_.size(), 0);
}

Network::Block &
Network::curBlock()
{
    if (!sharded_)
        return blocks_[0];
    const sim::ShardContext *c = sim::tlsShardContext();
    return blocks_[c ? c->shard : group_->shards()];
}

void
Network::setHandler(NodeId node, Handler handler)
{
    BLITZ_ASSERT(node < handlers_.size(), "handler node out of range");
    auto fresh = std::make_shared<const Handler>(std::move(handler));
    Block &blk = curBlock();
    if (blk.deliveryDepth > 0 && handlers_[node])
        blk.retired.push_back(std::move(handlers_[node]));
    handlers_[node] = std::move(fresh);
}

std::size_t
Network::linkIndex(NodeId node, Dir d, Plane p) const
{
    return (static_cast<std::size_t>(node) * 4 +
            static_cast<std::size_t>(d)) * numPlanes +
           static_cast<std::size_t>(p);
}

std::size_t
Network::ejectIndex(NodeId node, Plane p) const
{
    return static_cast<std::size_t>(node) * numPlanes +
           static_cast<std::size_t>(p);
}

Network::PacketEvent *
Network::acquireEvent(const Packet &pkt, NodeId at, Block &blk)
{
    if (!blk.freeEvents) {
        // Grow the pool by a block; nodes are recycled forever after.
        sim::Arena *a = blk.arena;
        auto *block = static_cast<PacketEvent *>(
            a ? a->allocate(kPoolBlockEvents * sizeof(PacketEvent),
                            alignof(PacketEvent))
              : ::operator new(kPoolBlockEvents *
                               sizeof(PacketEvent)));
        const std::uint64_t epoch = a ? a->epoch() : 0;
        for (std::size_t i = 0; i < kPoolBlockEvents; ++i) {
            PacketEvent *pe =
                ::new (static_cast<void *>(block + i)) PacketEvent;
            pe->homeArena = a;
            pe->poolEpoch = epoch;
            pe->nextFree = blk.freeEvents;
            blk.freeEvents = pe;
        }
        if (!a)
            blk.poolBlocks.push_back(block);
    }
    PacketEvent *pe = blk.freeEvents;
    blk.freeEvents = pe->nextFree;
    pe->pkt = pkt;
    pe->at = at;
    return pe;
}

void
Network::releaseEvent(PacketEvent *pe, Block &blk)
{
    // Use-after-reset tripwire: an arena-backed node must never be
    // recycled after its home arena has been reset out from under it
    // (e.g. a pooled event crossing a sweep-replication boundary).
    BLITZ_ASSERT(!pe->homeArena ||
                     pe->homeArena->epoch() == pe->poolEpoch,
                 "packet event outlived its arena (use-after-reset)");
    pe->nextFree = blk.freeEvents;
    blk.freeEvents = pe;
}

std::uint64_t
Network::send(Packet pkt)
{
    BLITZ_ASSERT(pkt.src < topo_.size() && pkt.dst < topo_.size(),
                 "packet endpoints out of range");
    if (sharded_) {
        // Per-source numbering: a pure function of the sending node,
        // so sequence numbers cannot depend on the shard layout. The
        // node-owned counter also keeps the write thread-private —
        // enforced by the locus check below.
        const sim::ShardContext *c = sim::tlsShardContext();
        BLITZ_ASSERT(!c || c->serial ||
                         group_->shardOf(pkt.src) == c->shard,
                     "send() from a shard that does not own the "
                     "source node");
        pkt.seq = (static_cast<std::uint64_t>(pkt.src) + 1) << 40 |
                  ++srcSeq_[pkt.src];
    } else {
        pkt.seq = nextSeq_++;
    }
    pkt.injectTick = eq_.now();
    Block &blk = curBlock();
    ++blk.sent;
    hopNode(acquireEvent(pkt, pkt.src, blk));
    return pkt.seq;
}

void
Network::scheduleDelivery(const Packet &pkt, NodeId at,
                          sim::Tick extraDelay, Block &blk)
{
    // Ejection port: serializes deliveries into the endpoint.
    auto &free = ejectFree_[ejectIndex(at, pkt.plane)];
    sim::Tick depart = std::max(eq_.now() + extraDelay, free);
    free = depart + hopLatency_;
    // Always executes at `at`, so this stays in the current shard.
    eq_.scheduleAtNode(at, depart + hopLatency_,
                       Deliver{this, acquireEvent(pkt, at, blk)},
                       sim::Priority::NocTransfer);
}

void
Network::finishDelivery(PacketEvent *pe)
{
    Block &blk = curBlock();
    ++blk.delivered;
    const sim::Tick lat = eq_.now() - pe->pkt.injectTick;
    ++blk.latCount;
    blk.latSum += lat;
    blk.latMax = std::max(blk.latMax, lat);
    if (!sharded_)
        latency_.add(static_cast<double>(lat));
    if (trace_)
        trace_->onDeliver(pe->at, static_cast<int>(pe->pkt.type),
                          pe->pkt.injectTick, eq_.now());
    if (recorder_)
        recorder_->nocDeliver(eq_.now(), pe->at,
                              static_cast<int>(pe->pkt.plane),
                              static_cast<int>(pe->pkt.type),
                              pe->pkt.seq, pe->pkt.injectTick);
    // Pin the handler installed *now* by raw pointer: the delivery
    // depth keeps setHandler() from destroying it reentrantly (the
    // old handler parks in this block's graveyard until the depth
    // returns to zero), so no shared_ptr copy — and no pair of atomic
    // refcount ops — is paid per packet.
    const Handler *h = handlers_[pe->at].get();
    const Packet pkt = pe->pkt;
    releaseEvent(pe, blk);
    if (h && *h) {
        ++blk.deliveryDepth;
        (*h)(pkt);
        if (--blk.deliveryDepth == 0 && !blk.retired.empty())
            blk.retired.clear();
    }
}

void
Network::deliverCopies(const Packet &pkt, NodeId at,
                       const FaultDecision &fd, Block &blk)
{
    // A duplicated delivery is the original plus one copy, each
    // serialized through the ejection port in schedule order.
    const int copies = fd.duplicate ? 2 : 1;
    for (int k = 0; k < copies; ++k)
        scheduleDelivery(pkt, at, fd.delay, blk);
}

bool
Network::tryFlatten(PacketEvent *pe, sim::Tick now, Block &blk)
{
    const Packet &pkt = pe->pkt;
    if (topo_.distance(pe->at, pkt.dst) != 1)
        return false;
    if (fault_ && !fault_->inert(pkt, now, now + hopLatency_))
        return false;
    // Identical to the exact step below minus the (inert) hook call:
    // same link reservation, same single event at the same call site,
    // so the insertion sequence — and every same-tick tie — matches
    // per-hop stepping bit for bit.
    const Dir d = topo_.nextHopDir(pe->at, pkt.dst);
    const std::size_t link = linkIndex(pe->at, d, pkt.plane);
    auto &free = linkFree_[link];
    sim::Tick depart = std::max(now, free);
    free = depart + hopLatency_;
    ++blk.hops;
    if (trace_)
        trace_->onHop(link, depart);
    pe->at = pkt.dst;
    eq_.scheduleAtNode(pkt.dst, depart + hopLatency_, Step{this, pe},
                       sim::Priority::NocTransfer);
    return true;
}

void
Network::hopNode(PacketEvent *pe)
{
    const sim::Tick now = eq_.now();
    Packet &pkt = pe->pkt;
    const NodeId at = pe->at;
    Block &blk = curBlock();

    if (at == pkt.dst) {
        FaultDecision fd;
        if (fault_)
            fd = fault_->onDeliver(pkt, at, now);
        if (fd.drop) {
            ++blk.dropped;
            if (trace_)
                trace_->onDrop(at, static_cast<int>(pkt.type), now);
        } else {
            deliverCopies(pkt, at, fd, blk);
        }
        releaseEvent(pe, blk);
        return;
    }

    if (tryFlatten(pe, now, blk))
        return;

    // Exact per-hop step: consult the fault hook, reserve the link,
    // and re-arm this node at the next router.
    Dir d = topo_.nextHopDir(at, pkt.dst);
    NodeId next = topo_.nextHop(at, pkt.dst);
    FaultDecision fd;
    if (fault_)
        fd = fault_->onLink(pkt, at, next, now);
    const std::size_t link = linkIndex(at, d, pkt.plane);
    auto &free = linkFree_[link];
    sim::Tick depart = std::max(now, free);
    free = depart + hopLatency_;
    ++blk.hops;
    if (trace_)
        trace_->onHop(link, depart);
    if (fd.drop) {
        // The flit crossed the link (the slot is consumed) but never
        // arrives at the next router.
        ++blk.dropped;
        if (trace_)
            trace_->onDrop(at, static_cast<int>(pkt.type), now);
        releaseEvent(pe, blk);
        return;
    }
    pe->at = next;
    eq_.scheduleAtNode(next, depart + hopLatency_ + fd.delay,
                       Step{this, pe}, sim::Priority::NocTransfer);
    if (fd.duplicate) {
        // Mid-route duplication (not produced by the delivery-stage
        // fault model, but honored for hook generality): forward an
        // independent copy behind the original.
        eq_.scheduleAtNode(next, depart + hopLatency_ + fd.delay,
                           Step{this, acquireEvent(pkt, next, blk)},
                           sim::Priority::NocTransfer);
    }
}

void
Network::resetStats()
{
    for (Block &b : blocks_) {
        b.sent = 0;
        b.delivered = 0;
        b.dropped = 0;
        b.hops = 0;
        b.latCount = 0;
        b.latSum = 0;
        b.latMax = 0;
    }
    latency_ = sim::Summary{};
}

} // namespace blitz::noc
