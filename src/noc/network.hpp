/**
 * @file
 * Cycle-level packet-switched mesh network.
 *
 * The model operates at packet granularity with per-link, per-plane
 * serialization: each router output link forwards at most one packet per
 * cycle on each plane (the fabricated SoC guarantees one-cycle-per-hop
 * throughput at a fixed NoC voltage/frequency, Section IV-C). Packets
 * follow dimension-ordered XY routing, so delivery is deadlock-free and
 * per-flow ordering is preserved.
 */

#ifndef BLITZ_NOC_NETWORK_HPP
#define BLITZ_NOC_NETWORK_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "fault_hook.hpp"
#include "packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "topology.hpp"

namespace blitz::noc {

/**
 * Event-driven NoC connecting one endpoint per mesh node.
 *
 * Endpoints register a delivery handler; Network::send injects a packet
 * at the current tick and the handler fires when the last hop (plus the
 * ejection cycle) completes.
 */
class Network
{
  public:
    using Handler = std::function<void(const Packet &)>;

    /**
     * @param eq event queue driving the simulation.
     * @param topo mesh shape (copied).
     * @param hopLatency cycles per router traversal; 1 matches the SoC.
     */
    Network(sim::EventQueue &eq, Topology topo, sim::Tick hopLatency = 1);

    const Topology &topology() const { return topo_; }

    /**
     * Install the delivery callback for a node (replaces any previous).
     * Deliveries always route through the handler installed at delivery
     * time — packets already in flight land in the new handler, and a
     * handler may safely replace itself from inside its own invocation.
     */
    void setHandler(NodeId node, Handler handler);

    /**
     * Install (or clear, with nullptr) the fault-injection hook.
     * The hook is consulted on every link traversal and every ejection;
     * it must outlive the network or be cleared first.
     */
    void setFaultHook(FaultHook *hook) { fault_ = hook; }

    /**
     * Inject a packet at the current tick.
     * src/dst/plane/type/payload must be filled in by the caller;
     * seq and injectTick are assigned here.
     * @return the assigned sequence number.
     */
    std::uint64_t send(Packet pkt);

    /** Total packets injected. */
    std::uint64_t packetsSent() const { return packetsSent_; }

    /** Total packets delivered to handlers. */
    std::uint64_t packetsDelivered() const { return packetsDelivered_; }

    /** Packets discarded by the fault hook (link + ejection stages). */
    std::uint64_t packetsDropped() const { return packetsDropped_; }

    /** Total router-to-router hops traversed. */
    std::uint64_t totalHops() const { return totalHops_; }

    /** End-to-end latency distribution (ticks). */
    const sim::Summary &latency() const { return latency_; }

    /** Reset traffic counters (topology and handlers stay). */
    void resetStats();

  private:
    /** Index of the (node, dir, plane) output-link reservation slot. */
    std::size_t linkIndex(NodeId node, Dir d, Plane p) const;

    /** Local ejection-port reservation slot for (node, plane). */
    std::size_t ejectIndex(NodeId node, Plane p) const;

    /** Move a packet one hop; schedules the next hop or delivery. */
    void hop(Packet pkt, NodeId at);

    /** Reserve the ejection port and schedule one handler invocation. */
    void scheduleDelivery(const Packet &pkt, NodeId at, sim::Tick extraDelay);

    sim::EventQueue &eq_;
    Topology topo_;
    sim::Tick hopLatency_;
    std::vector<Handler> handlers_;
    FaultHook *fault_ = nullptr;
    /** Earliest tick each output link is free, per (node, dir, plane). */
    std::vector<sim::Tick> linkFree_;
    /** Earliest tick each ejection port is free, per (node, plane). */
    std::vector<sim::Tick> ejectFree_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t packetsSent_ = 0;
    std::uint64_t packetsDelivered_ = 0;
    std::uint64_t packetsDropped_ = 0;
    std::uint64_t totalHops_ = 0;
    sim::Summary latency_;
};

} // namespace blitz::noc

#endif // BLITZ_NOC_NETWORK_HPP
