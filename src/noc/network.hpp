/**
 * @file
 * Cycle-level packet-switched mesh network.
 *
 * The model operates at packet granularity with per-link, per-plane
 * serialization: each router output link forwards at most one packet per
 * cycle on each plane (the fabricated SoC guarantees one-cycle-per-hop
 * throughput at a fixed NoC voltage/frequency, Section IV-C). Packets
 * follow dimension-ordered XY routing, so delivery is deadlock-free and
 * per-flow ordering is preserved.
 *
 * Steady-state fast path (see DESIGN.md "Scheduler internals"): when
 * the remaining route has no active fault hook and every link is free
 * at its crossing tick, the traversal is flattened into a single
 * dst-arrival event instead of one event per hop; a packet rides one
 * pooled PacketEvent node for its whole flight, so the fault-free path
 * performs zero heap allocations per packet once the pool has warmed
 * up. The moment a fault plane, partition window, or busy link is in
 * play the network falls back to exact per-hop stepping.
 */

#ifndef BLITZ_NOC_NETWORK_HPP
#define BLITZ_NOC_NETWORK_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault_hook.hpp"
#include "packet.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "topology.hpp"

namespace blitz::sim {
class ShardGroup;
}

namespace blitz::trace {
class NocTrace;
}

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::noc {

/**
 * Event-driven NoC connecting one endpoint per mesh node.
 *
 * Endpoints register a delivery handler; Network::send injects a packet
 * at the current tick and the handler fires when the last hop (plus the
 * ejection cycle) completes.
 */
class Network
{
  public:
    using Handler = std::function<void(const Packet &)>;

    /**
     * @param eq event queue driving the simulation.
     * @param topo mesh shape (copied).
     * @param hopLatency cycles per router traversal; 1 matches the SoC.
     * @param arena backing store for the packet-event pool; nullptr
     *        (the default) heap-allocates. Pass a sweep worker's arena
     *        to recycle the pool across replications — the network
     *        must then be destroyed before the arena resets.
     */
    Network(sim::EventQueue &eq, Topology topo, sim::Tick hopLatency = 1,
            sim::Arena *arena = nullptr);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;
    ~Network();

    const Topology &topology() const { return topo_; }

    /**
     * Install the delivery callback for a node (replaces any previous).
     * Deliveries always route through the handler installed at delivery
     * time — packets already in flight land in the new handler, and a
     * handler may safely replace itself from inside its own invocation.
     */
    void setHandler(NodeId node, Handler handler);

    /**
     * Install (or clear, with nullptr) the fault-injection hook.
     * The hook is consulted on every link traversal and every ejection;
     * it must outlive the network or be cleared first.
     */
    void setFaultHook(FaultHook *hook) { fault_ = hook; }

    /**
     * Install (or clear, with nullptr) the observability probe. Null
     * by default; the disabled path costs one branch per hook site,
     * the same fast-path shape as a cleared fault hook. The probe is
     * passive — it never schedules events or consults RNG — so
     * attaching it leaves packet timing and ordering untouched.
     */
    void
    setTrace(trace::NocTrace *probe)
    {
        BLITZ_ASSERT(!sharded_ || !probe,
                     "NocTrace cannot observe a sharded network (its "
                     "delivery summary is cross-shard shared state)");
        trace_ = probe;
    }

    /**
     * Install (or clear, with nullptr) the flight recorder. When set,
     * every endpoint delivery is journaled (dst, plane, type, seq,
     * inject tick). Passive like the trace probe: one branch per
     * delivery when detached, never on the per-hop path.
     */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

    /** Number of (node, dir, plane) link slots, for probe sizing. */
    std::size_t
    linkCount() const
    {
        return linkFree_.size();
    }

    /**
     * Switch the network to sharded operation on @p group (which must
     * be bound to the same event queue): per-shard packet pools drawn
     * from the group's shard arenas, per-shard traffic counters, and
     * per-source packet sequence numbers — the state layout that lets
     * parallel supersteps run without a single shared mutable word on
     * the packet path. Call once, before any traffic, with no trace
     * probe attached (the probe's delivery summary is inherently
     * cross-shard). Sequence numbers switch from one global counter
     * to (src + 1) << 40 | per-src counter, which is a pure function
     * of the sending node — partition-independent by construction.
     */
    void enableSharding(sim::ShardGroup &group);

    /**
     * Inject a packet at the current tick.
     * src/dst/plane/type/payload must be filled in by the caller;
     * seq and injectTick are assigned here.
     * @return the assigned sequence number.
     */
    std::uint64_t send(Packet pkt);

    /** Total packets injected. */
    std::uint64_t
    packetsSent() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.sent;
        return n;
    }

    /** Total packets delivered to handlers. */
    std::uint64_t
    packetsDelivered() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.delivered;
        return n;
    }

    /** Packets discarded by the fault hook (link + ejection stages). */
    std::uint64_t
    packetsDropped() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.dropped;
        return n;
    }

    /** Total router-to-router hops traversed. */
    std::uint64_t
    totalHops() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.hops;
        return n;
    }

    /**
     * End-to-end latency distribution (ticks). Unsharded only — the
     * Welford accumulator's result depends on fold order, which a
     * partition must not leak into. Sharded code reads the exact
     * integer getters below instead.
     */
    const sim::Summary &
    latency() const
    {
        BLITZ_ASSERT(!sharded_,
                     "latency() summary is unsharded-only; use "
                     "latencyCount/MeanTicks/MaxTicks");
        return latency_;
    }

    /**
     * Exact latency aggregates that work in both modes: integer
     * count/sum/max fold identically no matter how deliveries are
     * split across shards, so these are what sharded golden digests
     * pin.
     */
    std::uint64_t
    latencyCount() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.latCount;
        return n;
    }
    std::uint64_t
    latencySumTicks() const
    {
        std::uint64_t n = 0;
        for (const Block &b : blocks_)
            n += b.latSum;
        return n;
    }
    double
    latencyMeanTicks() const
    {
        const std::uint64_t n = latencyCount();
        return n ? static_cast<double>(latencySumTicks()) /
                       static_cast<double>(n)
                 : 0.0;
    }
    sim::Tick
    latencyMaxTicks() const
    {
        sim::Tick m = 0;
        for (const Block &b : blocks_)
            m = std::max(m, b.latMax);
        return m;
    }

    /** Reset traffic counters (topology and handlers stay). */
    void resetStats();

  private:
    /**
     * Pooled in-flight packet state. One node carries a packet from
     * injection to delivery (or drop) — per-hop events reschedule the
     * same node instead of copying the packet into a fresh closure.
     * When arena-backed, the node remembers its home arena and that
     * arena's reset epoch: a node recycled after its arena reset is a
     * use-after-reset, and the release-side assert turns that silent
     * corruption into an immediate failure. In sharded mode nodes
     * migrate freely between shard blocks (a boundary-crossing packet
     * is released by the shard it lands in — every handoff crosses an
     * epoch barrier, so the memory is never touched concurrently).
     */
    struct PacketEvent
    {
        Packet pkt;
        NodeId at;
        PacketEvent *nextFree;
        sim::Arena *homeArena;
        std::uint64_t poolEpoch;
    };

    /**
     * Per-shard mutable network state (index shards() = the serial
     * lane; legacy mode uses a single block). Everything a packet
     * touches in flight that is not owned by a specific node lives
     * here, so concurrent supersteps never share a counter or a free
     * list.
     */
    struct Block
    {
        PacketEvent *freeEvents = nullptr;
        sim::Arena *arena = nullptr;
        /** Heap-owned pool blocks (empty when arena-backed). */
        std::vector<PacketEvent *> poolBlocks;
        std::uint64_t sent = 0;
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t hops = 0;
        std::uint64_t latCount = 0;
        std::uint64_t latSum = 0;
        sim::Tick latMax = 0;
        /**
         * Deliveries currently executing on this block's thread. While
         * nonzero, a handler replaced by setHandler() parks in
         * `retired` instead of being destroyed, so the raw pointer the
         * in-flight delivery is invoking through stays valid without a
         * per-delivery shared_ptr copy (two atomic refcount ops per
         * packet on the old pin-by-copy path).
         */
        std::uint32_t deliveryDepth = 0;
        std::vector<std::shared_ptr<const Handler>> retired;
    };

    /** Event callback: advance a pooled packet at its current router. */
    struct Step
    {
        Network *net;
        PacketEvent *pe;
        void operator()() const { net->hopNode(pe); }
    };

    /** Event callback: finish a delivery at the ejection port. */
    struct Deliver
    {
        Network *net;
        PacketEvent *pe;
        void operator()() const { net->finishDelivery(pe); }
    };

    /** Index of the (node, dir, plane) output-link reservation slot. */
    std::size_t linkIndex(NodeId node, Dir d, Plane p) const;

    /** Local ejection-port reservation slot for (node, plane). */
    std::size_t ejectIndex(NodeId node, Plane p) const;

    /**
     * The executing shard's state block (blocks_[0] unsharded).
     * Sharded resolution reads the thread's shard context, so hot
     * paths resolve the block once and pass it down rather than
     * re-deriving it at every pool or counter touch.
     */
    Block &curBlock();

    PacketEvent *acquireEvent(const Packet &pkt, NodeId at, Block &blk);
    void releaseEvent(PacketEvent *pe, Block &blk);

    /** Advance a packet at its current router (arrival or injection). */
    void hopNode(PacketEvent *pe);

    /**
     * Fast path for the final hop: when the fault hook is provably
     * inert for the crossing window, skip its consultation and
     * schedule the arrival directly. Restricted to distance == 1 —
     * the one event scheduled is the same event, at the same call
     * site, as exact stepping, so its sequence number (and therefore
     * every same-tick tie) is untouched. Eliding *intermediate* hop
     * events of longer routes is not order-preserving: it shifts the
     * global insertion sequence, which flips same-(tick, priority)
     * ties between unrelated packets' arrivals (verified against the
     * golden traces — see DESIGN.md). Returns false (leaving no
     * trace) when the route is longer or the hook may act; the caller
     * then steps one hop the exact way.
     */
    bool tryFlatten(PacketEvent *pe, sim::Tick now, Block &blk);

    /** Apply a delivery verdict: schedule 1 + duplicate copies. */
    void deliverCopies(const Packet &pkt, NodeId at,
                       const FaultDecision &fd, Block &blk);

    /** Reserve the ejection port and schedule one handler invocation. */
    void scheduleDelivery(const Packet &pkt, NodeId at,
                          sim::Tick extraDelay, Block &blk);

    void finishDelivery(PacketEvent *pe);

    sim::EventQueue &eq_;
    Topology topo_;
    sim::Tick hopLatency_;
    /**
     * Shared-ptr'd so reentrant replacement stays safe without
     * copying the std::function: a delivery invokes through the raw
     * pointer, and setHandler() during a delivery parks the old
     * handler in the executing block's graveyard (cleared when the
     * delivery depth returns to zero) instead of destroying it.
     */
    std::vector<std::shared_ptr<const Handler>> handlers_;
    FaultHook *fault_ = nullptr;
    trace::NocTrace *trace_ = nullptr;
    record::FlightRecorder *recorder_ = nullptr;
    /**
     * Earliest tick each output link is free, per (node, dir, plane).
     * Shared across shards but node-owned: an element is only ever
     * written by the shard executing at its node, so parallel phases
     * touch disjoint entries.
     */
    std::vector<sim::Tick> linkFree_;
    /** Earliest tick each ejection port is free, per (node, plane). */
    std::vector<sim::Tick> ejectFree_;
    sim::Arena *arena_;
    /** Per-shard state; exactly one block while unsharded. */
    std::vector<Block> blocks_;
    bool sharded_ = false;
    sim::ShardGroup *group_ = nullptr;
    /** Per-source sequence counters (sharded mode; node-owned). */
    std::vector<std::uint64_t> srcSeq_;
    std::uint64_t nextSeq_ = 1; ///< global sequence (unsharded mode)
    sim::Summary latency_;      ///< unsharded-only distribution
};

} // namespace blitz::noc

#endif // BLITZ_NOC_NETWORK_HPP
