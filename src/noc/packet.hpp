/**
 * @file
 * NoC packet definition.
 *
 * The ESP NoC the paper integrates with carries six planes; coin-exchange
 * traffic shares plane 5 with memory-mapped-register and interrupt
 * messages (Section IV-B), which is why the model keeps per-plane link
 * serialization: coin packets can be delayed behind register traffic,
 * producing the transient negative-coin artifacts the paper describes.
 */

#ifndef BLITZ_NOC_PACKET_HPP
#define BLITZ_NOC_PACKET_HPP

#include <array>
#include <cstdint>

#include "sim/types.hpp"
#include "topology.hpp"

namespace blitz::noc {

/** NoC planes mirroring the ESP integration (Section IV-B). */
enum class Plane : std::uint8_t
{
    Coherence0 = 0,
    Coherence1 = 1,
    Coherence2 = 2,
    Dma0 = 3,
    Dma1 = 4,
    /** Memory-mapped registers, interrupts, and coin exchange. */
    Service = 5,
};

inline constexpr int numPlanes = 6;

/**
 * Message kinds carried on the service plane.
 *
 * The first three implement the 1-way coin protocol; CoinRequest exists
 * only for the 4-way variant. RegRead/RegWrite model the centralized
 * controllers' polling traffic and generic CSR accesses.
 */
enum class MsgType : std::uint8_t
{
    CoinStatus = 0,   ///< initiator advertises (has, max) to a partner
    CoinUpdate = 1,   ///< partner returns the signed coin delta
    CoinRequest = 2,  ///< 4-way: center asks a neighbor for status
    RegRead = 3,      ///< centralized controller polls a tile CSR
    RegReadResp = 4,  ///< CSR read response
    RegWrite = 5,     ///< centralized controller sets a tile V/F state
    Interrupt = 6,    ///< activity-change notification to a controller
    Generic = 7,      ///< background traffic for contention experiments
    CoinRecover = 8,  ///< initiator asks for a lost CoinUpdate's outcome
};

/** Printable message-type name. */
const char *msgTypeName(MsgType t);

/** One NoC packet; payload words are message-type specific. */
struct Packet
{
    NodeId src = 0;
    NodeId dst = 0;
    Plane plane = Plane::Service;
    MsgType type = MsgType::Generic;
    /** Up to four 64-bit payload words (coins, CSR values...). */
    std::array<std::int64_t, 4> payload{};
    /** Tick at which the packet entered the network. */
    sim::Tick injectTick = 0;
    /** Monotonic per-network sequence number, set on send. */
    std::uint64_t seq = 0;
    /**
     * Set by a fault hook that mutated the payload, modeling the
     * link-level CRC flagging the flit as damaged. Endpoints drop
     * corrupted packets at the demux (detected corruption behaves as a
     * loss and rides the same recovery path).
     */
    bool corrupted = false;
};

} // namespace blitz::noc

#endif // BLITZ_NOC_PACKET_HPP
