#include "topology.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace blitz::noc {

const char *
dirName(Dir d)
{
    switch (d) {
      case Dir::North: return "N";
      case Dir::South: return "S";
      case Dir::East:  return "E";
      case Dir::West:  return "W";
    }
    return "?";
}

Topology::Topology(int width, int height, bool wrap)
    : width_(width), height_(height), wrap_(wrap)
{
    if (width < 1 || height < 1)
        sim::fatal("topology dimensions must be positive, got ",
                   width, "x", height);
}

Coord
Topology::coordOf(NodeId id) const
{
    BLITZ_ASSERT(id < size(), "node id ", id, " out of range");
    return Coord{static_cast<int>(id) % width_,
                 static_cast<int>(id) / width_};
}

NodeId
Topology::idOf(Coord c) const
{
    BLITZ_ASSERT(contains(c), "coordinate (", c.x, ",", c.y,
                 ") out of range");
    return static_cast<NodeId>(c.y * width_ + c.x);
}

std::optional<NodeId>
Topology::neighbor(NodeId id, Dir d) const
{
    Coord c = coordOf(id);
    switch (d) {
      case Dir::North: c.y -= 1; break;
      case Dir::South: c.y += 1; break;
      case Dir::East:  c.x += 1; break;
      case Dir::West:  c.x -= 1; break;
    }
    if (!contains(c)) {
        if (!wrap_)
            return std::nullopt;
        c.x = (c.x + width_) % width_;
        c.y = (c.y + height_) % height_;
    }
    return idOf(c);
}

std::vector<NodeId>
Topology::neighbors(NodeId id) const
{
    std::vector<NodeId> out;
    out.reserve(4);
    for (Dir d : allDirs) {
        auto n = neighbor(id, d);
        // Skip self-links (1-wide wrapped dimensions) and duplicates
        // (2-wide wrapped dimensions reach the same node both ways).
        if (n && *n != id &&
            std::find(out.begin(), out.end(), *n) == out.end()) {
            out.push_back(*n);
        }
    }
    return out;
}

int
Topology::axisDelta(int from, int to, int span) const
{
    // Signed steps along one axis; in wrap mode pick the shorter way
    // around the ring (ties resolve to the positive direction).
    int delta = to - from;
    if (!wrap_)
        return delta;
    int wrapped = delta > 0 ? delta - span : delta + span;
    return std::abs(wrapped) < std::abs(delta) ? wrapped : delta;
}

int
Topology::distance(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    return std::abs(axisDelta(ca.x, cb.x, width_)) +
           std::abs(axisDelta(ca.y, cb.y, height_));
}

Dir
Topology::nextHopDir(NodeId from, NodeId to) const
{
    BLITZ_ASSERT(from != to, "routing a packet to itself");
    Coord cf = coordOf(from);
    Coord ct = coordOf(to);
    int dx = axisDelta(cf.x, ct.x, width_);
    if (dx != 0)
        return dx > 0 ? Dir::East : Dir::West;
    int dy = axisDelta(cf.y, ct.y, height_);
    BLITZ_ASSERT(dy != 0, "zero route delta for distinct nodes");
    return dy > 0 ? Dir::South : Dir::North;
}

NodeId
Topology::nextHop(NodeId from, NodeId to) const
{
    auto n = neighbor(from, nextHopDir(from, to));
    BLITZ_ASSERT(n.has_value(), "XY routing walked off the mesh edge");
    return *n;
}

std::string
Topology::describe() const
{
    std::ostringstream os;
    os << width_ << "x" << height_ << (wrap_ ? " torus" : " mesh");
    return os.str();
}

} // namespace blitz::noc
