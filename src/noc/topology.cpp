#include "topology.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/types.hpp"

namespace blitz::noc {

const char *
dirName(Dir d)
{
    switch (d) {
      case Dir::North: return "N";
      case Dir::South: return "S";
      case Dir::East:  return "E";
      case Dir::West:  return "W";
    }
    return "?";
}

Topology::Topology(int width, int height, bool wrap)
    : width_(width), height_(height), wrap_(wrap),
      rowMagic_((std::uint64_t{1} << kRowShift) /
                    static_cast<std::uint64_t>(width < 1 ? 1 : width) +
                1)
{
    if (width < 1 || height < 1)
        sim::fatal("topology dimensions must be positive, got ",
                   width, "x", height);
    // Index-width contract: node ids must fit the sharded event
    // kernel's 20-bit locus key field (see sim::kMaxMeshNodes).
    if (size() > sim::kMaxMeshNodes)
        sim::fatal("mesh ", width, "x", height, " exceeds the ",
                   sim::kMaxMeshNodes,
                   "-node ceiling of the sharded ordering key");
    // The round-up reciprocal is provably exact for this shift once
    // id * width fits well under 2^kRowShift, but the routing layer
    // leans on it for every hop, so verify the full id range outright
    // — one multiply per node, a few ms even at a 1000x1000 mesh.
    for (NodeId id = 0; id < size(); ++id) {
        const auto y =
            static_cast<std::uint64_t>((id * rowMagic_) >> kRowShift);
        if (y != id / static_cast<std::uint64_t>(width_))
            sim::fatal("row reciprocal inexact at id ", id, " for ",
                       width, "x", height);
    }
}

std::vector<NodeId>
Topology::neighbors(NodeId id) const
{
    std::vector<NodeId> out;
    out.reserve(4);
    for (Dir d : allDirs) {
        auto n = neighbor(id, d);
        // Skip self-links (1-wide wrapped dimensions) and duplicates
        // (2-wide wrapped dimensions reach the same node both ways).
        if (n && *n != id &&
            std::find(out.begin(), out.end(), *n) == out.end()) {
            out.push_back(*n);
        }
    }
    return out;
}

std::string
Topology::describe() const
{
    std::ostringstream os;
    os << width_ << "x" << height_ << (wrap_ ? " torus" : " mesh");
    return os.str();
}

} // namespace blitz::noc
