/**
 * @file
 * 2D-mesh / torus topology arithmetic.
 *
 * BlitzCoin targets 2D-mesh NoCs (Section IV of the paper); the optional
 * wrap-around mode implements the paper's Fig. 5 optimization where edge
 * and corner tiles reach across to the opposite edge so every tile sees
 * exactly four neighbors.
 */

#ifndef BLITZ_NOC_TOPOLOGY_HPP
#define BLITZ_NOC_TOPOLOGY_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "sim/logging.hpp"

namespace blitz::noc {

/** Flat tile/node index, row-major from the north-west corner. */
using NodeId = std::uint32_t;

/** Cardinal direction of a mesh link. */
enum class Dir : std::uint8_t { North = 0, South = 1, East = 2, West = 3 };

/** All four directions, for iteration. */
inline constexpr std::array<Dir, 4> allDirs = {
    Dir::North, Dir::South, Dir::East, Dir::West};

/** Printable direction name. */
const char *dirName(Dir d);

/** Grid coordinate; x grows east, y grows south. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &) const = default;
};

/**
 * Rectangular mesh with optional torus wrap-around.
 *
 * All coordinate/index mapping, neighbor resolution, distance metrics,
 * and dimension-ordered (XY) routing live here; both the behavioral coin
 * engine and the routed network share this one definition so they can
 * never disagree about who neighbors whom.
 */
class Topology
{
  public:
    /**
     * @param width tiles per row. @pre >= 1.
     * @param height tiles per column. @pre >= 1.
     * @param wrap enable torus wrap-around links.
     */
    Topology(int width, int height, bool wrap = false);

    /** Square mesh convenience constructor (d x d). */
    static Topology
    square(int d, bool wrap = false)
    {
        return Topology(d, d, wrap);
    }

    int width() const { return width_; }
    int height() const { return height_; }
    bool wrap() const { return wrap_; }
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(width_) *
               static_cast<std::size_t>(height_);
    }

    /**
     * Coordinate of a node id. @pre id < size(). Division-free: the
     * row comes from a multiply-shift by a reciprocal precomputed at
     * construction (and verified exact over the whole id range
     * there), because this sits under every routing decision and a
     * hardware divide per hop dominated the per-event profile.
     */
    Coord
    coordOf(NodeId id) const
    {
        BLITZ_ASSERT(id < size(), "node id ", id, " out of range");
        const int y = static_cast<int>((id * rowMagic_) >> kRowShift);
        return Coord{static_cast<int>(id) - y * width_, y};
    }

    /** Node id of a coordinate. @pre in bounds. */
    NodeId
    idOf(Coord c) const
    {
        BLITZ_ASSERT(contains(c), "coordinate (", c.x, ",", c.y,
                     ") out of range");
        return static_cast<NodeId>(c.y * width_ + c.x);
    }

    /** True when the coordinate lies inside the grid. */
    bool
    contains(Coord c) const
    {
        return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
    }

    /**
     * Neighbor in a direction; std::nullopt when the edge is not wrapped.
     * In wrap mode every node has a neighbor in every direction (which,
     * on a 1-wide dimension, may be the node itself).
     */
    std::optional<NodeId>
    neighbor(NodeId id, Dir d) const
    {
        Coord c = coordOf(id);
        switch (d) {
          case Dir::North: c.y -= 1; break;
          case Dir::South: c.y += 1; break;
          case Dir::East:  c.x += 1; break;
          case Dir::West:  c.x -= 1; break;
        }
        if (!contains(c)) {
            if (!wrap_)
                return std::nullopt;
            c.x = (c.x + width_) % width_;
            c.y = (c.y + height_) % height_;
        }
        return idOf(c);
    }

    /** All distinct neighbors of a node, in N,S,E,W order. */
    std::vector<NodeId> neighbors(NodeId id) const;

    /** Manhattan hop distance honoring wrap-around when enabled. */
    int
    distance(NodeId a, NodeId b) const
    {
        Coord ca = coordOf(a);
        Coord cb = coordOf(b);
        return std::abs(axisDelta(ca.x, cb.x, width_)) +
               std::abs(axisDelta(ca.y, cb.y, height_));
    }

    /**
     * Next hop direction under dimension-ordered (X-then-Y) routing.
     * @pre from != to. Chooses the shorter way around in wrap mode.
     */
    Dir
    nextHopDir(NodeId from, NodeId to) const
    {
        BLITZ_ASSERT(from != to, "routing a packet to itself");
        Coord cf = coordOf(from);
        Coord ct = coordOf(to);
        int dx = axisDelta(cf.x, ct.x, width_);
        if (dx != 0)
            return dx > 0 ? Dir::East : Dir::West;
        int dy = axisDelta(cf.y, ct.y, height_);
        BLITZ_ASSERT(dy != 0, "zero route delta for distinct nodes");
        return dy > 0 ? Dir::South : Dir::North;
    }

    /** Next hop node id. @pre from != to. */
    NodeId
    nextHop(NodeId from, NodeId to) const
    {
        auto n = neighbor(from, nextHopDir(from, to));
        BLITZ_ASSERT(n.has_value(),
                     "XY routing walked off the mesh edge");
        return *n;
    }

    /** "3x3 mesh" / "20x20 torus" description for reports. */
    std::string describe() const;

  private:
    /** floor(id / width) as a multiply-shift; exact (see ctor). */
    static constexpr unsigned kRowShift = 47;

    int
    axisDelta(int from, int to, int span) const
    {
        // Signed steps along one axis; in wrap mode pick the shorter
        // way around the ring (ties resolve positive).
        int delta = to - from;
        if (!wrap_)
            return delta;
        int wrapped = delta > 0 ? delta - span : delta + span;
        return std::abs(wrapped) < std::abs(delta) ? wrapped : delta;
    }

    int width_;
    int height_;
    bool wrap_;
    std::uint64_t rowMagic_;
};

} // namespace blitz::noc

#endif // BLITZ_NOC_TOPOLOGY_HPP
