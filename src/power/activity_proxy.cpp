#include "activity_proxy.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace blitz::power {

std::array<double, 3>
ActivityCounters::rates() const
{
    if (cycles == 0)
        return {0.0, 0.0, 0.0};
    const double c = static_cast<double>(cycles);
    return {static_cast<double>(instructions) / c,
            static_cast<double>(memAccesses) / c,
            static_cast<double>(fpOps) / c};
}

PowerProxy::PowerProxy(const Weights &weights, double nomFreqMhz,
                       double nomVoltage)
    : weights_(weights), nomFreqMhz_(nomFreqMhz),
      nomVoltage_(nomVoltage)
{
    if (nomFreqMhz_ <= 0.0 || nomVoltage_ <= 0.0)
        sim::fatal("power proxy needs a positive nominal point");
}

double
PowerProxy::estimateMw(const ActivityCounters &counters, double freqMhz,
                       double voltage) const
{
    const auto r = counters.rates();
    const double vr = voltage / nomVoltage_;
    const double fr = freqMhz / nomFreqMhz_;
    const double dynamic = weights_.base + weights_.ipc * r[0] +
                           weights_.mem * r[1] + weights_.fp * r[2];
    return weights_.leakPerVolt * voltage + vr * vr * fr * dynamic;
}

namespace {

/**
 * Solve the symmetric positive-definite normal equations A x = b by
 * Gaussian elimination with partial pivoting (5x5; no dependency on a
 * linear-algebra library for one tiny solve).
 */
std::array<double, 5>
solve5(std::array<std::array<double, 5>, 5> a, std::array<double, 5> b)
{
    constexpr int n = 5;
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        for (int row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        }
        if (std::abs(a[pivot][col]) < 1e-12) {
            sim::fatal("power-proxy calibration is singular; the "
                       "samples do not span the model (vary activity "
                       "and DVFS points)");
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (int row = col + 1; row < n; ++row) {
            double f = a[row][col] / a[col][col];
            for (int k = col; k < n; ++k)
                a[row][k] -= f * a[col][k];
            b[row] -= f * b[col];
        }
    }
    std::array<double, 5> x{};
    for (int row = n - 1; row >= 0; --row) {
        double sum = b[row];
        for (int k = row + 1; k < n; ++k)
            sum -= a[row][k] * x[k];
        x[row] = sum / a[row][row];
    }
    return x;
}

} // namespace

PowerProxy
PowerProxy::calibrate(const std::vector<ProxySample> &samples,
                      double nomFreqMhz, double nomVoltage)
{
    if (samples.size() < 5)
        sim::fatal("power-proxy calibration needs at least 5 samples");

    // Regressors: [V, s, s*IPC, s*MEM, s*FP] with s = (V/Vn)^2 (F/Fn).
    std::array<std::array<double, 5>, 5> ata{};
    std::array<double, 5> atb{};
    for (const ProxySample &s : samples) {
        if (s.counters.cycles == 0)
            sim::fatal("calibration sample with zero cycles");
        const auto r = s.counters.rates();
        const double vr = s.voltage / nomVoltage;
        const double fr = s.freqMhz / nomFreqMhz;
        const double scale = vr * vr * fr;
        const std::array<double, 5> row{s.voltage, scale,
                                        scale * r[0], scale * r[1],
                                        scale * r[2]};
        for (int i = 0; i < 5; ++i) {
            for (int j = 0; j < 5; ++j)
                ata[i][j] += row[i] * row[j];
            atb[i] += row[i] * s.measuredMw;
        }
    }
    auto x = solve5(ata, atb);
    Weights w;
    w.leakPerVolt = x[0];
    w.base = x[1];
    w.ipc = x[2];
    w.mem = x[3];
    w.fp = x[4];
    return PowerProxy(w, nomFreqMhz, nomVoltage);
}

double
PowerProxy::meanAbsErrorMw(const std::vector<ProxySample> &samples) const
{
    BLITZ_ASSERT(!samples.empty(), "no samples to evaluate");
    double sum = 0.0;
    for (const ProxySample &s : samples) {
        sum += std::abs(estimateMw(s.counters, s.freqMhz, s.voltage) -
                        s.measuredMw);
    }
    return sum / static_cast<double>(samples.size());
}

} // namespace blitz::power
