/**
 * @file
 * Activity-counter power proxy — the Section IV-C extension path.
 *
 * The paper excludes CPU tiles from BlitzCoin because their
 * power-to-frequency LUT would need dynamic adjustment for the wide
 * workload variation CPUs see, citing the activity-counter power
 * proxies of Floyd et al. [18] and Huang et al. [75] as the known
 * solution. This module implements that solution so the repo can
 * demonstrate the extension: a linear per-counter-rate power model
 * scaled by the V^2*f dynamic-power factor, with least-squares
 * calibration from (counters, measured power) samples — exactly the
 * offline fit a firmware team would run on a characterization rig.
 */

#ifndef BLITZ_POWER_ACTIVITY_PROXY_HPP
#define BLITZ_POWER_ACTIVITY_PROXY_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace blitz::power {

/** Event counts accumulated over one sampling epoch. */
struct ActivityCounters
{
    std::uint64_t cycles = 0;       ///< clock cycles in the epoch
    std::uint64_t instructions = 0; ///< committed instructions
    std::uint64_t memAccesses = 0;  ///< cache/memory operations
    std::uint64_t fpOps = 0;        ///< floating-point operations

    /** Per-cycle rates (IPC, memory intensity, FP intensity). */
    std::array<double, 3> rates() const;
};

/** One calibration observation. */
struct ProxySample
{
    ActivityCounters counters;
    double freqMhz = 0.0;
    double voltage = 0.0;
    double measuredMw = 0.0;
};

/**
 * Linear activity-rate power model:
 *
 *   P = leakage(V) + (V/Vnom)^2 * (F/Fnom) *
 *       (base + w_ipc*IPC + w_mem*MEM + w_fp*FP)
 *
 * The bracketed term is the effective switched capacitance in mW at
 * the nominal operating point; the prefactor moves it across DVFS
 * states, which is what lets one calibration serve every (V, F).
 */
class PowerProxy
{
  public:
    /** Model coefficients (mW at the nominal point). */
    struct Weights
    {
        double leakPerVolt = 0.0; ///< leakage slope (mW per volt)
        double base = 0.0;        ///< clock-tree / idle switching
        double ipc = 0.0;         ///< per unit IPC
        double mem = 0.0;         ///< per unit memory intensity
        double fp = 0.0;          ///< per unit FP intensity
    };

    /**
     * @param weights calibrated coefficients.
     * @param nomFreqMhz nominal frequency of the calibration point.
     * @param nomVoltage nominal voltage of the calibration point.
     */
    PowerProxy(const Weights &weights, double nomFreqMhz,
               double nomVoltage);

    /** Estimate power for an epoch (mW). */
    double estimateMw(const ActivityCounters &counters, double freqMhz,
                      double voltage) const;

    const Weights &weights() const { return weights_; }

    /**
     * Least-squares calibration: fits the five coefficients from
     * observations spanning different activities and DVFS points.
     * @pre at least 5 samples with non-zero cycles.
     */
    static PowerProxy calibrate(const std::vector<ProxySample> &samples,
                                double nomFreqMhz, double nomVoltage);

    /**
     * Mean absolute estimation error over a sample set (mW) — the
     * accuracy metric the proxy literature reports.
     */
    double meanAbsErrorMw(const std::vector<ProxySample> &samples) const;

  private:
    Weights weights_;
    double nomFreqMhz_;
    double nomVoltage_;
};

} // namespace blitz::power

#endif // BLITZ_POWER_ACTIVITY_PROXY_HPP
