#include "ldo.hpp"

#include <algorithm>
#include <cmath>

namespace blitz::power {

Ldo::Ldo(const LdoConfig &cfg)
    : cfg_(cfg), codes_(1 << cfg.codeBits), voltage_(cfg.vMin)
{
    if (cfg_.vMax <= cfg_.vMin)
        sim::fatal("LDO voltage range is empty");
    if (cfg_.codeBits < 1 || cfg_.codeBits > 16)
        sim::fatal("LDO code width out of range: ", cfg_.codeBits);
    if (cfg_.slewVPerUs <= 0.0)
        sim::fatal("LDO slew rate must be positive");
}

void
Ldo::setCode(int code)
{
    code_ = std::clamp(code, 0, codes_ - 1);
}

double
Ldo::voltageForCode(int code) const
{
    code = std::clamp(code, 0, codes_ - 1);
    return cfg_.vMin + (cfg_.vMax - cfg_.vMin) *
           static_cast<double>(code) / static_cast<double>(codes_ - 1);
}

int
Ldo::codeForVoltage(double v) const
{
    if (v <= cfg_.vMin)
        return 0;
    if (v >= cfg_.vMax)
        return codes_ - 1;
    double t = (v - cfg_.vMin) / (cfg_.vMax - cfg_.vMin);
    // Round up so the selected code never under-delivers voltage.
    return static_cast<int>(
        std::ceil(t * static_cast<double>(codes_ - 1)));
}

void
Ldo::step(double dtNs)
{
    const double target = voltageForCode(code_);
    const double max_move = cfg_.slewVPerUs * dtNs * 1e-3;
    const double delta = target - voltage_;
    if (std::abs(delta) <= max_move) {
        voltage_ = target;
    } else {
        voltage_ += delta > 0 ? max_move : -max_move;
    }
}

} // namespace blitz::power
