/**
 * @file
 * Digital low-drop-out regulator model.
 *
 * The paper's per-tile regulator is a fully-synthesizable LDO stepping
 * the tile supply between V_min and V_in - dropout under a digital code
 * (Section IV-A). The model captures the two properties the system
 * depends on: a quantized code-to-voltage transfer function and a finite
 * slew rate, so downstream logic sees voltage (and therefore frequency)
 * transitions rather than instantaneous jumps — the behaviour measured
 * in Fig. 19 (bottom right).
 */

#ifndef BLITZ_POWER_LDO_HPP
#define BLITZ_POWER_LDO_HPP

#include <cstdint>

#include "sim/logging.hpp"

namespace blitz::power {

/** Configuration of one LDO instance. */
struct LdoConfig
{
    double vMin = 0.45;        ///< output at code 0 (V)
    double vMax = 1.0;         ///< output at full code (V)
    int codeBits = 7;          ///< code width; 7 bits = 128 settings
    double slewVPerUs = 20.0;  ///< output slew rate (V/us)
};

/**
 * LDO with quantized target voltage and slew-limited output.
 *
 * The instance is advanced explicitly by step(dtNs); the UVFR control
 * loop owns the cadence.
 */
class Ldo
{
  public:
    explicit Ldo(const LdoConfig &cfg = LdoConfig{});

    /** Number of distinct codes. */
    int codes() const { return codes_; }

    /** Current control code. */
    int code() const { return code_; }

    /** Set the control code (clamped to the valid range). */
    void setCode(int code);

    /** Target voltage implied by a code (V). */
    double voltageForCode(int code) const;

    /** Code whose target voltage is closest to (and >=) a voltage. */
    int codeForVoltage(double v) const;

    /** Present (slew-limited) output voltage (V). */
    double voltage() const { return voltage_; }

    /** Force the output voltage (initialization / test hooks). */
    void
    forceVoltage(double v)
    {
        voltage_ = v;
    }

    /** Advance the analog output by dtNs nanoseconds. */
    void step(double dtNs);

  private:
    LdoConfig cfg_;
    int codes_;
    int code_ = 0;
    double voltage_;
};

} // namespace blitz::power

#endif // BLITZ_POWER_LDO_HPP
