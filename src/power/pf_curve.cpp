#include "pf_curve.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace blitz::power {

PfCurve::PfCurve(std::string name, std::vector<OpPoint> points,
                 double idleFraction)
    : name_(std::move(name)), points_(std::move(points))
{
    if (points_.empty())
        sim::fatal("PfCurve '", name_, "' has no operating points");
    std::sort(points_.begin(), points_.end(),
              [](const OpPoint &a, const OpPoint &b) {
                  return a.freqMhz < b.freqMhz;
              });
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].freqMhz <= points_[i - 1].freqMhz ||
            points_[i].powerMw <= points_[i - 1].powerMw ||
            points_[i].voltage < points_[i - 1].voltage) {
            sim::fatal("PfCurve '", name_,
                       "' operating points are not monotone");
        }
    }
    if (idleFraction <= 0.0 || idleFraction > 1.0)
        sim::fatal("PfCurve '", name_, "' idle fraction out of (0, 1]");
    pIdle_ = points_.front().powerMw * idleFraction;
}

double
PfCurve::powerAt(double freqMhz) const
{
    BLITZ_ASSERT(freqMhz >= 0.0 && freqMhz <= fMax() + 1e-9,
                 "frequency ", freqMhz, " MHz outside curve '", name_, "'");
    const OpPoint &lo = points_.front();
    if (freqMhz <= lo.freqMhz) {
        // Frequency scaling at minimum voltage: power falls linearly
        // from P(Fmin) to the idle floor as the clock slows to zero.
        double frac = freqMhz / lo.freqMhz;
        return pIdle_ + (lo.powerMw - pIdle_) * frac;
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const OpPoint &a = points_[i - 1];
        const OpPoint &b = points_[i];
        if (freqMhz <= b.freqMhz) {
            double t = (freqMhz - a.freqMhz) / (b.freqMhz - a.freqMhz);
            return a.powerMw + t * (b.powerMw - a.powerMw);
        }
    }
    return points_.back().powerMw;
}

double
PfCurve::freqForPower(double budgetMw) const
{
    if (budgetMw <= pIdle_)
        return 0.0;
    const OpPoint &lo = points_.front();
    if (budgetMw <= lo.powerMw) {
        return lo.freqMhz * (budgetMw - pIdle_) / (lo.powerMw - pIdle_);
    }
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const OpPoint &a = points_[i - 1];
        const OpPoint &b = points_[i];
        if (budgetMw <= b.powerMw) {
            double t = (budgetMw - a.powerMw) / (b.powerMw - a.powerMw);
            return a.freqMhz + t * (b.freqMhz - a.freqMhz);
        }
    }
    return fMax();
}

double
PfCurve::voltageFor(double freqMhz) const
{
    const OpPoint &lo = points_.front();
    if (freqMhz <= lo.freqMhz)
        return lo.voltage;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const OpPoint &a = points_[i - 1];
        const OpPoint &b = points_[i];
        if (freqMhz <= b.freqMhz) {
            double t = (freqMhz - a.freqMhz) / (b.freqMhz - a.freqMhz);
            return a.voltage + t * (b.voltage - a.voltage);
        }
    }
    return points_.back().voltage;
}

namespace catalog {
namespace {

/**
 * Build a curve from the analytic model described in the header:
 * F(V) linear above the threshold voltage, P = dynamic + leakage with
 * an 85/15 split at the peak point.
 */
PfCurve
makeCurve(const std::string &name, double v_min, double v_max,
          double f_max_mhz, double p_max_mw, int n_points = 6)
{
    constexpr double v_t = 0.30; // critical-path threshold voltage
    const double p_dyn_max = 0.85 * p_max_mw;
    const double p_leak_max = 0.15 * p_max_mw;

    std::vector<OpPoint> pts;
    pts.reserve(static_cast<std::size_t>(n_points));
    for (int i = 0; i < n_points; ++i) {
        double v = v_min + (v_max - v_min) * i /
                   static_cast<double>(n_points - 1);
        double f = f_max_mhz * (v - v_t) / (v_max - v_t);
        double p = p_dyn_max * (v / v_max) * (v / v_max) * (f / f_max_mhz) +
                   p_leak_max * (v / v_max);
        pts.push_back(OpPoint{v, f, p});
    }
    return PfCurve(name, std::move(pts));
}

} // namespace

// 3x3 autonomous-vehicle SoC tiles (ASIC-measured in the paper).
// Peak powers sum to 3*55 + 2*27.5 + 180 = 400 mW across the SoC.
const PfCurve &
fft()
{
    static const PfCurve curve = makeCurve("FFT", 0.5, 1.0, 800.0, 55.0);
    return curve;
}

const PfCurve &
viterbi()
{
    static const PfCurve curve =
        makeCurve("Viterbi", 0.5, 1.0, 800.0, 27.5);
    return curve;
}

const PfCurve &
nvdla()
{
    static const PfCurve curve =
        makeCurve("NVDLA", 0.6, 1.0, 900.0, 180.0);
    return curve;
}

// 4x4 computer-vision SoC tiles (Cadence Joules in the paper).
// Peak powers sum to 4*140 + 5*115 + 4*55 = 1355 mW across the SoC.
const PfCurve &
gemm()
{
    static const PfCurve curve =
        makeCurve("GEMM", 0.6, 0.9, 1000.0, 140.0);
    return curve;
}

const PfCurve &
conv2d()
{
    static const PfCurve curve =
        makeCurve("Conv2D", 0.6, 0.9, 1000.0, 115.0);
    return curve;
}

const PfCurve &
vision()
{
    static const PfCurve curve =
        makeCurve("Vision", 0.6, 0.9, 850.0, 55.0);
    return curve;
}

const PfCurve &
byName(const std::string &name)
{
    for (const PfCurve *c : all()) {
        if (c->name() == name)
            return *c;
    }
    sim::fatal("unknown accelerator '", name, "'");
}

std::vector<const PfCurve *>
all()
{
    return {&fft(), &viterbi(), &nvdla(), &gemm(), &conv2d(), &vision()};
}

} // namespace catalog

} // namespace blitz::power
