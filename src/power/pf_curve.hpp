/**
 * @file
 * Accelerator power/frequency characterization curves.
 *
 * The paper's Fig. 13 characterizes six accelerators: FFT, Viterbi and
 * NVDLA from 12 nm ASIC measurements (0.5-1.0 V / 0.6-1.0 V) and GEMM,
 * Conv2D and Vision from Cadence Joules post-synthesis power analysis
 * (0.6-0.9 V). We cannot rerun those flows, so the catalog transcribes
 * curves with the same voltage ranges and with peak powers calibrated so
 * that the SoC-level budget fractions of Section VI hold exactly: the
 * 3x3 SoC's accelerators sum to 400 mW at Fmax (so the paper's 120 mW /
 * 60 mW budgets are the 30% / 15% operating points) and the 4x4 SoC's to
 * ~1355 mW (450 mW / 900 mW are the 33% / 66% points).
 *
 * Curve model: the tile voltage V maps to frequency through the
 * critical-path-replica relation F(V) = Fmax (V - Vt) / (Vmax - Vt) and
 * to power through P = Pdyn V^2 F + Pleak(V), sampled at a handful of
 * (V, F, P) points exactly like the measured curves, with monotone
 * linear interpolation between points. At the minimum voltage, frequency
 * can be reduced further (the triangle-marker extension of the NVDLA
 * curve), which yields the paper's 7.5x idle power reduction.
 */

#ifndef BLITZ_POWER_PF_CURVE_HPP
#define BLITZ_POWER_PF_CURVE_HPP

#include <string>
#include <vector>

namespace blitz::power {

/** One characterized DVFS operating point. */
struct OpPoint
{
    double voltage; ///< supply voltage (V)
    double freqMhz; ///< maximum clock frequency at this voltage (MHz)
    double powerMw; ///< power running flat out at (V, F) (mW)
};

/**
 * Monotone power/frequency curve for one accelerator type.
 *
 * Frequencies below the lowest characterized point are reached by
 * frequency scaling at minimum voltage (linear dynamic power, fixed
 * leakage), exactly like the NVDLA curve extension in Fig. 13.
 */
class PfCurve
{
  public:
    /**
     * @param name accelerator name for reports.
     * @param points characterized operating points, any order;
     *        must be strictly monotone in both F and P after sorting.
     * @param idleFraction idle power as a fraction of P(Fmin);
     *        the paper measures a 7.5x reduction, i.e. 1/7.5.
     */
    PfCurve(std::string name, std::vector<OpPoint> points,
            double idleFraction = 1.0 / 7.5);

    const std::string &name() const { return name_; }

    /** Highest supported frequency (MHz). */
    double fMax() const { return points_.back().freqMhz; }

    /** Lowest characterized frequency (MHz). */
    double fMinCharacterized() const { return points_.front().freqMhz; }

    /** Power at the highest operating point (mW). */
    double pMax() const { return points_.back().powerMw; }

    /** Power at the lowest characterized operating point (mW). */
    double pMin() const { return points_.front().powerMw; }

    /** Idle power with the clock crawling at minimum voltage (mW). */
    double pIdle() const { return pIdle_; }

    /**
     * Active power at a given frequency (mW).
     * Interpolates between characterized points; below fMinCharacterized
     * scales dynamic power linearly with frequency down to idle.
     * @pre 0 <= freqMhz <= fMax().
     */
    double powerAt(double freqMhz) const;

    /**
     * Highest frequency whose power fits in the budget (MHz).
     * Returns 0 when the budget does not even cover idle operation.
     */
    double freqForPower(double budgetMw) const;

    /** Supply voltage needed to sustain a frequency (V). */
    double voltageFor(double freqMhz) const;

    /** Characterized points, ascending. */
    const std::vector<OpPoint> &points() const { return points_; }

  private:
    std::string name_;
    std::vector<OpPoint> points_;
    double pIdle_;
};

/**
 * Catalog of the six accelerators evaluated in the paper.
 * Returned references have static storage duration.
 */
namespace catalog {

const PfCurve &fft();     ///< depth-estimation FFT (3x3 SoC)
const PfCurve &viterbi(); ///< V2V Viterbi decoder (3x3 SoC)
const PfCurve &nvdla();   ///< NVIDIA Deep Learning Accelerator (3x3 SoC)
const PfCurve &gemm();    ///< dense matrix multiply (4x4 SoC)
const PfCurve &conv2d();  ///< 2D convolution (4x4 SoC)
const PfCurve &vision();  ///< noise filter / hist-eq / DWT engine (4x4)

/** Look an accelerator up by name; fatal() on unknown names. */
const PfCurve &byName(const std::string &name);

/** All catalog entries, for sweeps. */
std::vector<const PfCurve *> all();

} // namespace catalog

} // namespace blitz::power

#endif // BLITZ_POWER_PF_CURVE_HPP
