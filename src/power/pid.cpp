#include "pid.hpp"

#include <algorithm>

namespace blitz::power {

Pid::Pid(const PidConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.outMax <= cfg_.outMin)
        sim::fatal("PID output range is empty");
}

double
Pid::step(double error)
{
    const double proposed_integral = integral_ + error;
    double derivative = hasLast_ ? error - lastError_ : 0.0;
    lastError_ = error;
    hasLast_ = true;

    double out = cfg_.kp * error + cfg_.ki * proposed_integral +
                 cfg_.kd * derivative;
    if (out > cfg_.outMax) {
        out = cfg_.outMax;
        // Anti-windup: only absorb the integral step when it drives the
        // output further into saturation.
        if (error < 0.0)
            integral_ = proposed_integral;
    } else if (out < cfg_.outMin) {
        out = cfg_.outMin;
        if (error > 0.0)
            integral_ = proposed_integral;
    } else {
        integral_ = proposed_integral;
    }
    return out;
}

void
Pid::reset()
{
    integral_ = 0.0;
    lastError_ = 0.0;
    hasLast_ = false;
}

void
Pid::prime(double output)
{
    reset();
    if (cfg_.ki != 0.0)
        integral_ = output / cfg_.ki;
}

} // namespace blitz::power
