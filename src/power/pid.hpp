/**
 * @file
 * Discrete PID controller.
 *
 * Used by the LDO controller to drive the TDC frequency reading toward
 * the coin-derived target code (Section IV-A step 4). Kept generic so
 * tests can characterize it in isolation.
 */

#ifndef BLITZ_POWER_PID_HPP
#define BLITZ_POWER_PID_HPP

#include "sim/logging.hpp"

namespace blitz::power {

/** PID gains and output limits. */
struct PidConfig
{
    // Defaults tuned for the UVFR plant: the loop is nearly static
    // (the LDO slews a full code step well inside one control period)
    // with a TDC-code-per-LDO-code gain g ~ 0.40-0.47 across the
    // catalog tiles and one period of delay. The error recursion
    // e[n+1] = (1 - g(kp+ki)) e[n] + g kp e[n-1] then has its largest
    // root at ~0.72 for these gains — settling in ~10 control periods
    // (~100 ns, matching the silicon regulator of Fig. 19) without
    // the quantization limit cycles a hotter proportional term causes.
    double kp = 0.4;
    double ki = 0.8;
    double kd = 0.0;
    double outMin = 0.0;
    double outMax = 127.0;
};

/**
 * Textbook discrete PID with clamped output and integral anti-windup.
 */
class Pid
{
  public:
    explicit Pid(const PidConfig &cfg = PidConfig{});

    /**
     * One controller update.
     * @param error setpoint minus measurement.
     * @return clamped control output.
     */
    double step(double error);

    /** Reset the accumulated state (integral and last error). */
    void reset();

    /** Pre-load the output so control starts from a known point. */
    void prime(double output);

  private:
    PidConfig cfg_;
    double integral_ = 0.0;
    double lastError_ = 0.0;
    bool hasLast_ = false;
};

} // namespace blitz::power

#endif // BLITZ_POWER_PID_HPP
