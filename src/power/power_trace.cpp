#include "power_trace.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "sim/logging.hpp"

namespace blitz::power {

PowerTrace::PowerTrace(std::size_t tiles, double budgetMw)
    : tiles_(tiles), budgetMw_(budgetMw)
{
    if (budgetMw_ <= 0.0)
        sim::fatal("power budget must be positive");
}

void
PowerTrace::record(sim::Tick tick, std::vector<double> tileMw)
{
    BLITZ_ASSERT(tileMw.size() == tiles_, "sample has ", tileMw.size(),
                 " tiles, trace expects ", tiles_);
    double total = std::accumulate(tileMw.begin(), tileMw.end(), 0.0);
    samples_.push_back(PowerSample{tick, std::move(tileMw), total});
}

double
PowerTrace::averageTotalMw() const
{
    if (samples_.size() < 2) {
        return samples_.empty() ? 0.0 : samples_.front().totalMw;
    }
    // Trapezoid-free left-Riemann integral: each sample's power holds
    // until the next sample, matching how the trace is produced.
    double weighted = 0.0;
    sim::Tick span = samples_.back().tick - samples_.front().tick;
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
        auto dt = static_cast<double>(samples_[i + 1].tick -
                                      samples_[i].tick);
        weighted += samples_[i].totalMw * dt;
    }
    return weighted / static_cast<double>(span);
}

double
PowerTrace::peakTotalMw() const
{
    double peak = 0.0;
    for (const auto &s : samples_)
        peak = std::max(peak, s.totalMw);
    return peak;
}

double
PowerTrace::energyNj() const
{
    if (samples_.size() < 2)
        return 0.0;
    double nj = 0.0;
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
        double dt_ns = sim::ticksToNs(samples_[i + 1].tick -
                                      samples_[i].tick);
        // mW * ns = picojoules; convert to nanojoules.
        nj += samples_[i].totalMw * dt_ns * 1e-3;
    }
    return nj;
}

double
PowerTrace::capViolationFraction(double toleranceFrac) const
{
    if (samples_.empty())
        return 0.0;
    const double limit = budgetMw_ * (1.0 + toleranceFrac);
    std::size_t violations = 0;
    for (const auto &s : samples_) {
        if (s.totalMw > limit)
            ++violations;
    }
    return static_cast<double>(violations) /
           static_cast<double>(samples_.size());
}

std::string
PowerTrace::toCsv(const std::vector<std::string> &tileNames) const
{
    BLITZ_ASSERT(tileNames.size() == tiles_,
                 "tile name count mismatches trace width");
    std::ostringstream os;
    os << "tick,us";
    for (const auto &n : tileNames)
        os << ',' << n;
    os << ",total\n";
    for (const auto &s : samples_) {
        os << s.tick << ',' << sim::ticksToUs(s.tick);
        for (double p : s.tileMw)
            os << ',' << p;
        os << ',' << s.totalMw << '\n';
    }
    return os.str();
}

} // namespace blitz::power
