/**
 * @file
 * Sampled per-tile power trace.
 *
 * Mirrors the paper's evaluation flow: at the end of an RTL simulation
 * the authors extract each tile's instantaneous frequency and
 * reconstruct its power from the Fig. 13 curves. Here the SoC model
 * samples the reconstructed power directly at a fixed cadence and the
 * trace answers the questions the figures ask: was the cap respected,
 * what was the budget utilization, what did the transition look like.
 */

#ifndef BLITZ_POWER_POWER_TRACE_HPP
#define BLITZ_POWER_POWER_TRACE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace blitz::power {

/** One sample row: time plus per-tile power. */
struct PowerSample
{
    sim::Tick tick = 0;
    std::vector<double> tileMw;
    double totalMw = 0.0;
};

/** Accumulates samples and computes trace-level metrics. */
class PowerTrace
{
  public:
    /**
     * @param tiles number of per-tile columns.
     * @param budgetMw SoC power budget for utilization/cap checks.
     */
    PowerTrace(std::size_t tiles, double budgetMw);

    /** Append one sample. @pre tileMw.size() == tiles. */
    void record(sim::Tick tick, std::vector<double> tileMw);

    std::size_t sampleCount() const { return samples_.size(); }
    const std::vector<PowerSample> &samples() const { return samples_; }
    double budgetMw() const { return budgetMw_; }

    /** Time-weighted average total power (mW). */
    double averageTotalMw() const;

    /** Peak total power over the trace (mW). */
    double peakTotalMw() const;

    /** P_avg / P_budget, the paper's utilization metric (Fig. 19). */
    double
    budgetUtilization() const
    {
        return averageTotalMw() / budgetMw_;
    }

    /** Total energy over the trace (nanojoules). */
    double energyNj() const;

    /**
     * Fraction of samples where total power exceeded the budget by more
     * than @p toleranceFrac (transient coin motion briefly overshoots).
     */
    double capViolationFraction(double toleranceFrac = 0.02) const;

    /** Dump as CSV: tick,us,tile0..tileN,total. */
    std::string toCsv(const std::vector<std::string> &tileNames) const;

  private:
    std::size_t tiles_;
    double budgetMw_;
    std::vector<PowerSample> samples_;
};

} // namespace blitz::power

#endif // BLITZ_POWER_POWER_TRACE_HPP
