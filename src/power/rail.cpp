#include "rail.hpp"

#include "sim/logging.hpp"

namespace blitz::power {

RailSet::RailSet(std::size_t tiles) : railOfTile_(tiles, -1) {}

std::size_t
RailSet::addRail(const RailConfig &cfg)
{
    BLITZ_ASSERT(cfg.vNominal > 0.0, "rail needs a positive voltage");
    BLITZ_ASSERT(cfg.limitMa > 0.0, "rail needs a positive limit");
    BLITZ_ASSERT(cfg.releaseFraction > 0.0 && cfg.releaseFraction <= 1.0,
                 "release fraction outside (0, 1]");
    Rail r;
    r.cfg = cfg;
    rails_.push_back(r);
    return rails_.size() - 1;
}

void
RailSet::assignTile(std::size_t rail, std::size_t tile)
{
    BLITZ_ASSERT(rail < rails_.size(), "rail ", rail, " out of range");
    BLITZ_ASSERT(tile < railOfTile_.size(), "tile ", tile,
                 " out of range");
    BLITZ_ASSERT(railOfTile_[tile] < 0, "tile ", tile,
                 " already feeds from rail ", railOfTile_[tile]);
    railOfTile_[tile] = static_cast<std::int32_t>(rail);
}

void
RailSet::update(const double *powerMw)
{
    for (Rail &r : rails_) {
        r.currentMa = 0.0;
        r.edge = RailEdge::None;
    }
    const std::size_t n = railOfTile_.size();
    for (std::size_t t = 0; t < n; ++t) {
        const std::int32_t r = railOfTile_[t];
        if (r < 0)
            continue;
        // P (mW) / V (V) = I (mA).
        rails_[static_cast<std::size_t>(r)].currentMa +=
            powerMw[t] / rails_[static_cast<std::size_t>(r)].cfg.vNominal;
    }
    for (Rail &r : rails_) {
        if (r.currentMa > r.peakMa)
            r.peakMa = r.currentMa;
        if (!r.over && r.currentMa >= r.cfg.limitMa) {
            r.over = true;
            r.edge = RailEdge::Engaged;
            ++r.engages;
        } else if (r.over &&
                   r.currentMa <= r.cfg.releaseFraction * r.cfg.limitMa) {
            r.over = false;
            r.edge = RailEdge::Released;
        }
    }
    ++updates_;
}

double
RailSet::maxLoadFraction() const
{
    double m = 0.0;
    for (const Rail &r : rails_) {
        const double f = r.currentMa / r.cfg.limitMa;
        if (f > m)
            m = f;
    }
    return m;
}

} // namespace blitz::power
