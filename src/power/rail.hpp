/**
 * @file
 * Shared voltage-regulator rails with per-rail current limits.
 *
 * The per-tile UVFR (uvfr.hpp) models the *point-of-load* regulator;
 * this file models the stage above it: a board/package rail that
 * feeds a configurable group of tiles and can only source so much
 * current. Rail current is reconstructed from the member tiles'
 * instantaneous power at the rail's nominal voltage
 * (I_mA = sum P_mW / V_nominal), the same telemetry shipping
 * accelerator firmware derives its regulator limits from.
 *
 * Each rail latches an overcurrent state with hysteresis: it engages
 * when the reconstructed current reaches the limit and releases only
 * once the load falls to releaseFraction of the limit. The latch is
 * the limit *source*; converting it into per-tile frequency caps is
 * the throttler arbiter's job (src/soc/throttler.*).
 *
 * Determinism contract: update() is pure double arithmetic over fixed
 * iteration order — no RNG, no clock, no allocation (storage is sized
 * during setup; asserted by tests/alloc_count_test.cpp).
 */

#ifndef BLITZ_POWER_RAIL_HPP
#define BLITZ_POWER_RAIL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blitz::power {

/** One shared rail's electrical parameters. */
struct RailConfig
{
    /** Nominal rail voltage (V) used to reconstruct current. */
    double vNominal = 0.85;
    /** Overcurrent latch threshold (mA). */
    double limitMa = 1e12;
    /** Hysteresis: release once current <= releaseFraction * limit. */
    double releaseFraction = 0.9;
};

/** What the latest update() did to one rail's overcurrent latch. */
enum class RailEdge : std::uint8_t
{
    None = 0,     ///< latch unchanged
    Engaged = 1,  ///< current reached the limit this update
    Released = 2, ///< current fell under the hysteresis band
};

/**
 * A set of shared rails over a fixed tile population.
 *
 * Setup phase: addRail() then assignTile(); a tile feeds from at most
 * one rail (unassigned tiles draw from an unmodeled source). Run
 * phase: the owner calls update() with the per-tile power vector each
 * sampling interval; the set reconstructs rail currents and advances
 * the overcurrent latches.
 */
class RailSet
{
  public:
    explicit RailSet(std::size_t tiles);

    /** Declare a rail; returns its index. Setup phase only. */
    std::size_t addRail(const RailConfig &cfg);

    /** Put @p tile on rail @p rail. Setup phase only. */
    void assignTile(std::size_t rail, std::size_t tile);

    std::size_t size() const { return rails_.size(); }
    std::size_t tiles() const { return railOfTile_.size(); }

    /** Rail feeding @p tile, or -1 when unassigned. */
    std::int32_t railOfTile(std::size_t tile) const
    {
        return railOfTile_[tile];
    }

    /**
     * Reconstruct every rail's current from @p powerMw (per-tile
     * instantaneous power, indexed like the tiles) and advance the
     * overcurrent latches. Allocation-free.
     */
    void update(const double *powerMw);

    const RailConfig &config(std::size_t rail) const
    {
        return rails_[rail].cfg;
    }

    /** Reconstructed current at the latest update (mA). */
    double currentMa(std::size_t rail) const
    {
        return rails_[rail].currentMa;
    }

    /** Load as a fraction of the limit at the latest update. */
    double loadFraction(std::size_t rail) const
    {
        return rails_[rail].currentMa / rails_[rail].cfg.limitMa;
    }

    /** Hottest rail's load fraction (0 when the set is empty). */
    double maxLoadFraction() const;

    /** Overcurrent latch state. */
    bool overCurrent(std::size_t rail) const
    {
        return rails_[rail].over;
    }

    /** What the latest update() did to the latch. */
    RailEdge edge(std::size_t rail) const { return rails_[rail].edge; }

    /** Peak reconstructed current over the rail's lifetime (mA). */
    double peakMa(std::size_t rail) const { return rails_[rail].peakMa; }

    /** Engage transitions over the rail's lifetime. */
    std::uint64_t engageCount(std::size_t rail) const
    {
        return rails_[rail].engages;
    }

    /** update() calls so far. */
    std::uint64_t updates() const { return updates_; }

  private:
    struct Rail
    {
        RailConfig cfg;
        double currentMa = 0.0;
        double peakMa = 0.0;
        bool over = false;
        RailEdge edge = RailEdge::None;
        std::uint64_t engages = 0;
    };

    std::vector<Rail> rails_;
    std::vector<std::int32_t> railOfTile_; ///< -1 = unassigned
    std::uint64_t updates_ = 0;
};

} // namespace blitz::power

#endif // BLITZ_POWER_RAIL_HPP
