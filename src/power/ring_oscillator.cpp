#include "ring_oscillator.hpp"

#include <algorithm>

namespace blitz::power {

RingOscillator::RingOscillator(const RingOscillatorConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.vNominal <= cfg_.vThreshold)
        sim::fatal("ring oscillator nominal voltage must exceed Vt");
    if (cfg_.fMaxMhz <= 0.0 || cfg_.processFactor <= 0.0)
        sim::fatal("ring oscillator frequency parameters must be positive");
}

double
RingOscillator::freqAt(double voltage) const
{
    if (voltage <= cfg_.vThreshold)
        return 0.0;
    // Alpha-power-law delay model linearized around the operating range:
    // the critical-path replica frequency grows linearly in (V - Vt).
    double f = fMaxMhz() * (voltage - cfg_.vThreshold) /
               (cfg_.vNominal - cfg_.vThreshold);
    return std::max(f, 0.0);
}

double
RingOscillator::voltageFor(double freqMhz) const
{
    if (freqMhz <= 0.0)
        return cfg_.vThreshold;
    return cfg_.vThreshold + (freqMhz / fMaxMhz()) *
           (cfg_.vNominal - cfg_.vThreshold);
}

} // namespace blitz::power
