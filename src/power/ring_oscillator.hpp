/**
 * @file
 * Free-running ring-oscillator clock source (critical-path replica).
 *
 * Each BlitzCoin tile derives its clock from a local ring oscillator
 * supplied by the tile voltage and tuned as a Critical Path Replica:
 * for any supply V it oscillates close to the tile's maximum safe
 * frequency at V (Section IV-A). Because the oscillator slows down with
 * the supply, voltage droops automatically stretch the clock — the UVFR
 * property that removes the need for transient-IR guardbands.
 */

#ifndef BLITZ_POWER_RING_OSCILLATOR_HPP
#define BLITZ_POWER_RING_OSCILLATOR_HPP

#include "sim/logging.hpp"

namespace blitz::power {

/** Configuration of one ring oscillator. */
struct RingOscillatorConfig
{
    double fMaxMhz = 800.0; ///< frequency at the nominal voltage (MHz)
    double vNominal = 1.0;  ///< voltage producing fMaxMhz (V)
    double vThreshold = 0.30; ///< voltage at which oscillation stops (V)
    /**
     * Multiplicative process-variation factor; silicon replicas differ
     * slightly tile-to-tile, which the TDC feedback loop absorbs.
     */
    double processFactor = 1.0;
};

/** Voltage-to-frequency transfer of the tile clock source. */
class RingOscillator
{
  public:
    explicit RingOscillator(
        const RingOscillatorConfig &cfg = RingOscillatorConfig{});

    /** Oscillation frequency at a supply voltage (MHz); 0 below Vt. */
    double freqAt(double voltage) const;

    /** Voltage required to oscillate at a frequency (V). */
    double voltageFor(double freqMhz) const;

    double fMaxMhz() const { return cfg_.fMaxMhz * cfg_.processFactor; }

  private:
    RingOscillatorConfig cfg_;
};

} // namespace blitz::power

#endif // BLITZ_POWER_RING_OSCILLATOR_HPP
