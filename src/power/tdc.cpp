#include "tdc.hpp"

#include <cmath>

namespace blitz::power {

Tdc::Tdc(int windowCycles, double nocFreqMhz)
    : window_(windowCycles), nocFreqMhz_(nocFreqMhz)
{
    if (window_ <= 0)
        sim::fatal("TDC window must be positive");
    if (nocFreqMhz_ <= 0.0)
        sim::fatal("TDC reference frequency must be positive");
}

int
Tdc::measure(double tileFreqMhz) const
{
    BLITZ_ASSERT(tileFreqMhz >= 0.0, "negative frequency");
    // Number of full tile-clock edges inside the window.
    return static_cast<int>(
        std::floor(tileFreqMhz / nocFreqMhz_ * window_));
}

int
Tdc::codeFor(double targetFreqMhz) const
{
    // Round to nearest so target and measurement agree at steady state.
    return static_cast<int>(
        std::llround(targetFreqMhz / nocFreqMhz_ * window_));
}

double
Tdc::freqOf(int code) const
{
    return static_cast<double>(code) * resolutionMhz();
}

} // namespace blitz::power
