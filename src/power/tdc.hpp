/**
 * @file
 * Counter-based time-to-digital converter.
 *
 * The UVFR feedback comparator is deliberately simple: count rising
 * edges of the tile's ring-oscillator clock over a fixed window of NoC
 * cycles (Section IV-A). The code is therefore a quantized frequency
 * reading in units of F_noc / window, and the same conversion maps a
 * target frequency to a target code.
 */

#ifndef BLITZ_POWER_TDC_HPP
#define BLITZ_POWER_TDC_HPP

#include <cstdint>

#include "sim/logging.hpp"
#include "sim/types.hpp"

namespace blitz::power {

/** Counter-based frequency-to-code converter. */
class Tdc
{
  public:
    /**
     * @param windowCycles measurement window in NoC cycles. @pre > 0.
     * @param nocFreqMhz reference clock frequency (MHz).
     */
    explicit Tdc(int windowCycles = 64, double nocFreqMhz = 800.0);

    int windowCycles() const { return window_; }

    /** Digital code produced when measuring a tile clock (edges). */
    int measure(double tileFreqMhz) const;

    /** Code corresponding to a target frequency (same quantization). */
    int codeFor(double targetFreqMhz) const;

    /** Center frequency represented by a code (MHz). */
    double freqOf(int code) const;

    /** Frequency quantum of one code step (MHz). */
    double resolutionMhz() const { return nocFreqMhz_ / window_; }

  private:
    int window_;
    double nocFreqMhz_;
};

} // namespace blitz::power

#endif // BLITZ_POWER_TDC_HPP
