#include "thermal.hpp"

#include "sim/logging.hpp"

namespace blitz::power {

ThermalModel::ThermalModel(std::size_t tiles, const ThermalConfig &cfg)
    : cfg_(cfg), params_(tiles, cfg.node), temp_(tiles, cfg.initialC),
      ddt_(tiles, 0.0)
{
}

void
ThermalModel::setParams(std::size_t tile, const ThermalNodeParams &p)
{
    BLITZ_ASSERT(tile < params_.size(), "thermal tile ", tile,
                 " out of range");
    BLITZ_ASSERT(p.rCPerW > 0.0 && p.cJPerC > 0.0,
                 "thermal RC parameters must be positive");
    params_[tile] = p;
}

void
ThermalModel::addCoupling(std::size_t a, std::size_t b, double gWPerC)
{
    BLITZ_ASSERT(a < temp_.size() && b < temp_.size() && a != b,
                 "thermal coupling endpoints out of range");
    BLITZ_ASSERT(gWPerC >= 0.0, "negative thermal conductance");
    if (gWPerC == 0.0)
        return;
    couplings_.push_back({static_cast<std::uint32_t>(a),
                          static_cast<std::uint32_t>(b), gWPerC});
}

void
ThermalModel::step(double dtNs, const double *powerMw)
{
    const double dtS = dtNs * 1e-9;
    const std::size_t n = temp_.size();
    // Self-heating and junction-to-ambient decay.
    for (std::size_t i = 0; i < n; ++i) {
        const ThermalNodeParams &p = params_[i];
        const double watts = powerMw[i] * 1e-3;
        ddt_[i] = (watts + (cfg_.ambientC - temp_[i]) / p.rCPerW) /
                  p.cJPerC;
    }
    // Lateral spreading: conductance * delta-T, hot to cold.
    for (const Coupling &c : couplings_) {
        const double flowW = c.gWPerC * (temp_[c.a] - temp_[c.b]);
        ddt_[c.a] -= flowW / params_[c.a].cJPerC;
        ddt_[c.b] += flowW / params_[c.b].cJPerC;
    }
    for (std::size_t i = 0; i < n; ++i)
        temp_[i] += ddt_[i] * dtS;
    ++steps_;
}

double
ThermalModel::maxC() const
{
    double m = cfg_.ambientC;
    for (double t : temp_)
        m = t > m ? t : m;
    return m;
}

double
ThermalModel::meanC() const
{
    if (temp_.empty())
        return cfg_.ambientC;
    double sum = 0.0;
    for (double t : temp_)
        sum += t;
    return sum / static_cast<double>(temp_.size());
}

void
ThermalModel::reset()
{
    reset(cfg_.initialC);
}

void
ThermalModel::reset(double tC)
{
    for (double &t : temp_)
        t = tC;
}

} // namespace blitz::power
