/**
 * @file
 * Per-tile RC thermal model.
 *
 * Each tile's junction temperature follows the first-order lumped RC
 * network real accelerator firmware assumes when it converts a diode
 * reading into a throttle decision: a thermal resistance R (°C/W) from
 * junction to ambient and a heat capacity C (J/°C), driven by the
 * tile's instantaneous power. Adjacent tiles may additionally be
 * joined by a lateral conductance (W/°C), modeling heat spreading
 * through the shared substrate.
 *
 * The governing equation per tile i is
 *
 *   dT_i/dt = (P_i + (T_amb - T_i)/R_i) / C_i
 *             + sum_j g_ij (T_j - T_i) / C_i
 *
 * integrated with explicit Euler at the caller's cadence (the SoC
 * power-sampler cadence, 0.5 us by default — four orders of magnitude
 * below the millisecond thermal time constants, so the discretization
 * error is far inside the 2% band the differential test asserts; see
 * tests/thermal_analytic_test.cpp vs the closed-form step response
 * T(t) = T_amb + P R (1 - e^(-t/RC))).
 *
 * Determinism contract: step() is pure double arithmetic over a fixed
 * iteration order, touches no RNG and no clock, and allocates nothing
 * — the instance is safe to drive from the BSP serial lane and keeps
 * golden digests bit-identical at every shard count.
 */

#ifndef BLITZ_POWER_THERMAL_HPP
#define BLITZ_POWER_THERMAL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blitz::power {

/** RC parameters of one tile's junction-to-ambient path. */
struct ThermalNodeParams
{
    /** Junction-to-ambient thermal resistance (°C/W). */
    double rCPerW = 300.0;
    /** Lumped heat capacity (J/°C); tau = R*C = 1.5 ms at defaults. */
    double cJPerC = 5e-6;
};

/** Model-wide parameters. */
struct ThermalConfig
{
    /** Ambient (heatsink/board) temperature (°C). */
    double ambientC = 45.0;
    /** Initial junction temperature of every tile (°C). */
    double initialC = 45.0;
    /** Default per-tile RC path; setParams overrides per tile. */
    ThermalNodeParams node{};
};

/**
 * Lumped RC thermal network over a fixed tile population.
 *
 * The instance is passive: the owner calls step() with the elapsed
 * interval and the per-tile power vector. All storage is sized at
 * construction/setup time; step() is allocation-free (asserted by
 * tests/alloc_count_test.cpp).
 */
class ThermalModel
{
  public:
    ThermalModel(std::size_t tiles, const ThermalConfig &cfg = {});

    std::size_t size() const { return temp_.size(); }

    const ThermalConfig &config() const { return cfg_; }

    /** Override one tile's RC path (call during setup). */
    void setParams(std::size_t tile, const ThermalNodeParams &p);

    /**
     * Join two tiles with a lateral conductance @p gWPerC (W/°C).
     * Symmetric: heat flows from the hotter to the cooler tile.
     * Call during setup only — step() iterates the coupling list.
     */
    void addCoupling(std::size_t a, std::size_t b, double gWPerC);

    /**
     * Advance every junction by @p dtNs nanoseconds under the
     * per-tile power draw @p powerMw (indexed like the tiles; entries
     * for unpopulated slots may be 0). Explicit Euler; stable while
     * dt is well below the smallest tau, which the SoC cadence is by
     * construction.
     */
    void step(double dtNs, const double *powerMw);

    /** Present junction temperature (°C). */
    double temperatureC(std::size_t tile) const { return temp_[tile]; }

    /** Hottest junction (°C); ambient when the model is empty. */
    double maxC() const;

    /** Mean junction temperature (°C); ambient when empty. */
    double meanC() const;

    /** Reset every junction to @p tC (defaults to the initial temp). */
    void reset();
    void reset(double tC);

    /** Number of step() calls so far. */
    std::uint64_t steps() const { return steps_; }

  private:
    struct Coupling
    {
        std::uint32_t a;
        std::uint32_t b;
        double gWPerC;
    };

    ThermalConfig cfg_;
    std::vector<ThermalNodeParams> params_;
    std::vector<double> temp_; ///< junction temperature (°C)
    std::vector<double> ddt_;  ///< scratch: dT/dt (°C/s)
    std::vector<Coupling> couplings_;
    std::uint64_t steps_ = 0;
};

} // namespace blitz::power

#endif // BLITZ_POWER_THERMAL_HPP
