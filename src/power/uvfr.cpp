#include "uvfr.hpp"

#include <cmath>

namespace blitz::power {

Uvfr::Uvfr(const UvfrConfig &cfg)
    : cfg_(cfg), ldo_(cfg.ldo), ro_(cfg.ro),
      tdc_(cfg.tdcWindow, cfg.nocFreqMhz), pid_(cfg.pid)
{
    if (cfg_.controlPeriod == 0)
        sim::fatal("UVFR control period must be positive");
}

void
Uvfr::setTargetMhz(double freqMhz)
{
    BLITZ_ASSERT(freqMhz >= 0.0, "negative frequency target");
    int code = tdc_.codeFor(freqMhz);
    if (code == targetCode_)
        return;
    targetCode_ = code;
    // Bumpless transfer: start the PID from the code that would hold the
    // *current* voltage, so control picks up from where the plant is.
    pid_.prime(ldo_.code());
}

void
Uvfr::step()
{
    const double dt_ns = static_cast<double>(cfg_.controlPeriod) *
                         sim::nsPerTick;
    // (1) the analog output slews toward the code set last iteration,
    ldo_.step(dt_ns);
    // (2) the TDC digitizes the replica-oscillator frequency (the
    //     undivided clock: the loop controls the supply, the divider
    //     only gates what leaves the tile),
    lastTdcCode_ = tdc_.measure(oscFreqMhz());
    // (3) the PID turns the code error into a new LDO setting.
    double out = pid_.step(static_cast<double>(targetCode_ -
                                               lastTdcCode_));
    ldo_.setCode(static_cast<int>(std::lround(out)));
}

void
Uvfr::injectDroopV(double deltaV)
{
    BLITZ_ASSERT(deltaV >= 0.0, "droop magnitude cannot be negative");
    ldo_.forceVoltage(std::max(ldo_.voltage() - deltaV, 0.0));
}

bool
Uvfr::settled() const
{
    if (std::abs(lastTdcCode_ - targetCode_) <= 1)
        return true;
    // Saturation: a target below the minimum-voltage frequency (the
    // divider supplies it) or above the oscillator ceiling is as
    // settled as the supply can make it.
    if (ldo_.code() == 0 && lastTdcCode_ > targetCode_)
        return true;
    if (ldo_.code() == ldo_.codes() - 1 && lastTdcCode_ < targetCode_)
        return true;
    return false;
}

} // namespace blitz::power
