/**
 * @file
 * Unified Voltage and Frequency Regulator.
 *
 * The UVFR closes one loop instead of the conventional two (Fig. 9):
 * the controller receives a *frequency* target, compares it against the
 * TDC reading of the tile's ring-oscillator clock, and adjusts the LDO
 * code with a PID law. The supply voltage is therefore always the
 * minimum that sustains the requested frequency — no IR-drop guardbands
 * — and the clock inherently tracks droops because the oscillator is a
 * critical-path replica.
 */

#ifndef BLITZ_POWER_UVFR_HPP
#define BLITZ_POWER_UVFR_HPP

#include <algorithm>

#include "ldo.hpp"
#include "pid.hpp"
#include "ring_oscillator.hpp"
#include "sim/types.hpp"
#include "tdc.hpp"

namespace blitz::power {

/** Full per-tile regulator configuration. */
struct UvfrConfig
{
    LdoConfig ldo{};
    RingOscillatorConfig ro{};
    int tdcWindow = 64;
    double nocFreqMhz = 800.0;
    PidConfig pid{};
    /** Control-loop period in NoC cycles. */
    sim::Tick controlPeriod = 8;
};

/**
 * One tile's unified V/F regulator.
 *
 * The instance is passive: the owning tile calls step() once per
 * control period (controlPeriod() NoC cycles). This keeps the component
 * unit-testable without an event queue.
 */
class Uvfr
{
  public:
    explicit Uvfr(const UvfrConfig &cfg = UvfrConfig{});

    /** Set the frequency target (MHz); quantized to TDC resolution. */
    void setTargetMhz(double freqMhz);

    /** Requested target frequency (MHz, post-quantization). */
    double targetMhz() const { return tdc_.freqOf(targetCode_); }

    /** One control-loop iteration (advance LDO, measure, correct). */
    void step();

    /**
     * Present tile clock frequency (MHz).
     *
     * The delivered clock is the replica-oscillator output, optionally
     * divided down to the target: below the LDO's minimum-voltage
     * frequency the supply cannot drop further, so the clock divider
     * provides the paper's "frequency can be further reduced at
     * minimum voltage" idle mode (Section V-A, Fig. 13 extension).
     */
    double
    freqMhz() const
    {
        return std::min(ro_.freqAt(ldo_.voltage()), targetMhz());
    }

    /** Undivided replica-oscillator frequency (MHz). */
    double oscFreqMhz() const { return ro_.freqAt(ldo_.voltage()); }

    /** Present tile supply voltage (V). */
    double voltage() const { return ldo_.voltage(); }

    /** Present LDO code. */
    int ldoCode() const { return ldo_.code(); }

    /** Latest TDC reading. */
    int tdcCode() const { return lastTdcCode_; }

    /** True once the TDC reading matches the target within one LSB. */
    bool settled() const;

    /**
     * Inject a supply droop of @p deltaV volts (PDN transient, e.g. a
     * neighboring tile's load step on the shared input rail). The
     * replica oscillator slows immediately — the clock stretches with
     * the supply, which is the UVFR property that removes transient
     * IR-drop guardbands (Section IV-A, refs [58]-[60]) — and the
     * control loop then restores the operating point.
     */
    void injectDroopV(double deltaV);

    /**
     * Frequency a conventional fixed-clock design would keep running
     * at during a droop (its PLL does not track the supply): the
     * target frequency, regardless of the present voltage. When this
     * exceeds the replica frequency, a guardband-less fixed-clock
     * tile would be violating timing.
     */
    double
    fixedClockMhz() const
    {
        return targetMhz();
    }

    sim::Tick controlPeriod() const { return cfg_.controlPeriod; }

    const Tdc &tdc() const { return tdc_; }

  private:
    UvfrConfig cfg_;
    Ldo ldo_;
    RingOscillator ro_;
    Tdc tdc_;
    Pid pid_;
    int targetCode_ = 0;
    int lastTdcCode_ = 0;
};

} // namespace blitz::power

#endif // BLITZ_POWER_UVFR_HPP
