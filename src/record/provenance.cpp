#include "provenance.hpp"

#include <cstdio>

namespace blitz::record {

void
ProvenanceLedger::reset(std::size_t tiles)
{
    fifo_.assign(tiles, {});
    held_.assign(tiles, 0);
    lost_.clear();
    history_.clear();
    lostOutstanding_ = 0;
    unsourced_ = 0;
}

void
ProvenanceLedger::hop(std::uint64_t lineage, ProvenanceHop h)
{
    if (lineage < history_.size())
        history_[lineage].push_back(h);
}

std::uint64_t
ProvenanceLedger::mint(std::uint32_t tile, std::int64_t amount,
                       sim::Tick tick)
{
    if (amount <= 0 || tile >= fifo_.size())
        return kNoLineage;
    const std::uint64_t lineage = history_.size();
    history_.emplace_back();
    fifo_[tile].push_back({lineage, amount});
    held_[tile] += amount;
    hop(lineage, {ProvenanceHop::Kind::Mint, tick, tile, tile, amount,
                  0});
    return lineage;
}

void
ProvenanceLedger::transfer(std::uint32_t from, std::uint32_t to,
                           std::int64_t amount, std::uint64_t xid,
                           sim::Tick tick)
{
    if (amount == 0 || from >= fifo_.size() || to >= fifo_.size())
        return;
    if (amount < 0) {
        // Negative delta: the coins flow the other way.
        transfer(to, from, -amount, xid, tick);
        return;
    }
    std::int64_t remaining = amount;
    auto &src = fifo_[from];
    auto &dst = fifo_[to];
    while (remaining > 0 && !src.empty()) {
        Slice &s = src.front();
        const std::int64_t take =
            s.amount <= remaining ? s.amount : remaining;
        hop(s.lineage, {ProvenanceHop::Kind::Transfer, tick, from, to,
                        take, xid});
        dst.push_back({s.lineage, take});
        s.amount -= take;
        remaining -= take;
        if (s.amount == 0)
            src.pop_front();
    }
    if (remaining > 0) {
        // Source underflow: the simulation moved coins the ledger
        // never saw minted. Book them as an untracked lineage so the
        // totals still reconcile, and count the mis-wiring.
        unsourced_ += remaining;
        const std::uint64_t lineage = history_.size();
        history_.emplace_back();
        dst.push_back({lineage, remaining});
        hop(lineage, {ProvenanceHop::Kind::Transfer, tick, from, to,
                      remaining, xid});
    }
    held_[from] -= amount;
    held_[to] += amount;
}

void
ProvenanceLedger::crash(std::uint32_t tile, sim::Tick tick)
{
    if (tile >= fifo_.size())
        return;
    auto &q = fifo_[tile];
    while (!q.empty()) {
        Slice s = q.front();
        q.pop_front();
        hop(s.lineage, {ProvenanceHop::Kind::Crash, tick, tile, tile,
                        s.amount, 0});
        lost_.push_back({s.lineage, s.amount});
        lostOutstanding_ += s.amount;
        held_[tile] -= s.amount;
    }
}

void
ProvenanceLedger::burn(std::uint32_t tile, std::int64_t amount,
                       sim::Tick tick)
{
    if (amount <= 0 || tile >= fifo_.size())
        return;
    std::int64_t remaining = amount;
    auto &q = fifo_[tile];
    while (remaining > 0 && !q.empty()) {
        Slice &s = q.front();
        const std::int64_t take =
            s.amount <= remaining ? s.amount : remaining;
        hop(s.lineage, {ProvenanceHop::Kind::Burn, tick, tile, tile,
                        take, 0});
        s.amount -= take;
        remaining -= take;
        if (s.amount == 0)
            q.pop_front();
    }
    unsourced_ += remaining;
    held_[tile] -= amount - remaining;
}

ProvenanceLedger::RemintRange
ProvenanceLedger::remint(std::uint32_t tile, std::int64_t amount,
                         sim::Tick tick)
{
    if (amount <= 0 || tile >= fifo_.size())
        return {kNoLineage, kNoLineage};
    std::uint64_t first = kNoLineage;
    std::uint64_t last = kNoLineage;
    std::int64_t remaining = amount;
    while (remaining > 0 && !lost_.empty()) {
        Lost &l = lost_.front();
        const std::int64_t take =
            l.amount <= remaining ? l.amount : remaining;
        hop(l.lineage, {ProvenanceHop::Kind::Remint, tick, tile, tile,
                        take, 0});
        fifo_[tile].push_back({l.lineage, take});
        if (first == kNoLineage)
            first = l.lineage;
        last = l.lineage;
        l.amount -= take;
        remaining -= take;
        lostOutstanding_ -= take;
        if (l.amount == 0)
            lost_.pop_front();
    }
    if (remaining > 0) {
        const std::uint64_t fresh = mint(tile, remaining, tick);
        held_[tile] -= remaining; // mint() booked it; rebook below
        if (first == kNoLineage)
            first = fresh;
        last = fresh;
    }
    held_[tile] += amount;
    return {first, last};
}

std::int64_t
ProvenanceLedger::held(std::uint32_t tile) const
{
    return tile < held_.size() ? held_[tile] : 0;
}

const std::vector<ProvenanceHop> &
ProvenanceLedger::history(std::uint64_t lineage) const
{
    static const std::vector<ProvenanceHop> empty;
    return lineage < history_.size() ? history_[lineage] : empty;
}

std::vector<std::uint64_t>
ProvenanceLedger::lostLineages() const
{
    std::vector<std::uint64_t> out;
    out.reserve(lost_.size());
    for (const Lost &l : lost_)
        out.push_back(l.lineage);
    return out;
}

std::string
ProvenanceLedger::describeLineage(std::uint64_t lineage) const
{
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof buf, "lineage %llu:",
                  static_cast<unsigned long long>(lineage));
    out += buf;
    for (const ProvenanceHop &h : history(lineage)) {
        switch (h.kind) {
        case ProvenanceHop::Kind::Mint:
            std::snprintf(buf, sizeof buf,
                          " minted %lld on tile %u @%llu",
                          static_cast<long long>(h.amount), h.from,
                          static_cast<unsigned long long>(h.tick));
            break;
        case ProvenanceHop::Kind::Transfer:
            std::snprintf(buf, sizeof buf,
                          " -> %lld moved %u->%u @%llu (xid %llu)",
                          static_cast<long long>(h.amount), h.from,
                          h.to,
                          static_cast<unsigned long long>(h.tick),
                          static_cast<unsigned long long>(h.xid));
            break;
        case ProvenanceHop::Kind::Crash:
            std::snprintf(
                buf, sizeof buf,
                " -> %lld destroyed in crash of tile %u @%llu",
                static_cast<long long>(h.amount), h.from,
                static_cast<unsigned long long>(h.tick));
            break;
        case ProvenanceHop::Kind::Burn:
            std::snprintf(buf, sizeof buf,
                          " -> %lld burned on tile %u @%llu (audit)",
                          static_cast<long long>(h.amount), h.from,
                          static_cast<unsigned long long>(h.tick));
            break;
        case ProvenanceHop::Kind::Remint:
            std::snprintf(buf, sizeof buf,
                          " -> %lld reminted on tile %u @%llu (audit)",
                          static_cast<long long>(h.amount), h.from,
                          static_cast<unsigned long long>(h.tick));
            break;
        }
        out += buf;
    }
    return out;
}

std::string
ProvenanceLedger::gapReport() const
{
    std::string out;
    char buf[96];
    for (const Lost &l : lost_) {
        std::snprintf(buf, sizeof buf, "%lld coins outstanding, ",
                      static_cast<long long>(l.amount));
        out += buf;
        out += describeLineage(l.lineage);
        out += '\n';
    }
    return out;
}

} // namespace blitz::record
