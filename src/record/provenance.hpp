/**
 * @file
 * Per-coin provenance: lineage IDs stamped at mint and threaded
 * through transfers, crashes, and audit remints.
 *
 * ClusterAudit's census can tell *that* coins vanished; it cannot say
 * *which* coins or *how*. The ledger closes that gap: every mint
 * creates a lineage (an ID covering the minted amount), transfers
 * move lineage slices FIFO between per-tile queues, a crash moves the
 * victim's slices to a lost list, and an audit remint consumes lost
 * lineages oldest-first — so a conservation violation can be reported
 * as a causal chain ("lineage 3, 12 coins, minted on tile 0 @0,
 * moved 0→1 @812 (xid 27), destroyed in crash of 1 @3000") instead
 * of a bare count.
 *
 * The ledger is an observer: it never touches simulation RNG or
 * state, so attaching it leaves trial outcomes bit-identical. Its
 * per-tile balances track the *settled* coin positions (a transfer is
 * booked once, when the partner applies the delta), so after quiesce
 * they equal the units' holdings exactly.
 */

#ifndef BLITZ_RECORD_PROVENANCE_HPP
#define BLITZ_RECORD_PROVENANCE_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace blitz::record {

/** One step in a lineage's life. */
struct ProvenanceHop
{
    enum class Kind : std::uint8_t
    {
        Mint,
        Transfer,
        Crash,
        Burn,
        Remint,
    };

    Kind kind;
    sim::Tick tick;
    std::uint32_t from; ///< tile (Mint/Burn/Crash/Remint: the tile)
    std::uint32_t to;   ///< Transfer only
    std::int64_t amount;
    std::uint64_t xid; ///< Transfer only; 0 elsewhere
};

class ProvenanceLedger
{
  public:
    explicit ProvenanceLedger(std::size_t tiles = 0) { reset(tiles); }

    void reset(std::size_t tiles);

    std::size_t tiles() const { return held_.size(); }

    /** Create @p amount coins on @p tile as one new lineage.
     *  @return the lineage id (kNoLineage when amount <= 0). */
    std::uint64_t mint(std::uint32_t tile, std::int64_t amount,
                       sim::Tick tick);

    /** Move @p amount coins FIFO from @p from to @p to. */
    void transfer(std::uint32_t from, std::uint32_t to,
                  std::int64_t amount, std::uint64_t xid,
                  sim::Tick tick);

    /** Destroy @p tile's holdings (power loss); slices become lost. */
    void crash(std::uint32_t tile, sim::Tick tick);

    /** Destroy @p amount coins FIFO from @p tile (audit correction). */
    void burn(std::uint32_t tile, std::int64_t amount, sim::Tick tick);

    /** Lineage span one remint touched (both kNoLineage if none). */
    struct RemintRange
    {
        std::uint64_t first;
        std::uint64_t last;
    };

    /**
     * Audit watchdog re-creating @p amount coins on @p tile. Consumes
     * lost lineages oldest-first (marking them reminted); any excess
     * becomes a fresh lineage.
     * @return the first and last lineage ids touched — the audit's
     * remint log line carries the full span so a quarantine or crash
     * reclamation is replay-auditable via blitz-replay.
     */
    RemintRange remint(std::uint32_t tile, std::int64_t amount,
                       sim::Tick tick);

    /** Settled coins the ledger books on @p tile. */
    std::int64_t held(std::uint32_t tile) const;

    /** Coins destroyed by crashes and not yet reminted. */
    std::int64_t lostOutstanding() const { return lostOutstanding_; }

    /** Transfers booked against tiles with no tracked coins —
     *  non-zero means a hook site is mis-wired. */
    std::int64_t unsourced() const { return unsourced_; }

    std::uint64_t lineageCount() const { return history_.size(); }

    static constexpr std::uint64_t kNoLineage = ~std::uint64_t{0};

    /** Full hop history of @p lineage (empty for unknown ids). */
    const std::vector<ProvenanceHop> &
    history(std::uint64_t lineage) const;

    /** Lost-but-not-reminted lineage ids, oldest first. */
    std::vector<std::uint64_t> lostLineages() const;

    /** Human-readable causal chain of one lineage. */
    std::string describeLineage(std::uint64_t lineage) const;

    /**
     * Causal chains behind every outstanding lost coin — what
     * ClusterAudit reports when the census finds a gap. Empty string
     * when nothing is outstanding.
     */
    std::string gapReport() const;

  private:
    struct Slice
    {
        std::uint64_t lineage;
        std::int64_t amount;
    };

    struct Lost
    {
        std::uint64_t lineage;
        std::int64_t amount;
    };

    void hop(std::uint64_t lineage, ProvenanceHop h);

    std::vector<std::deque<Slice>> fifo_; ///< per-tile, oldest front
    std::vector<std::int64_t> held_;
    std::deque<Lost> lost_; ///< oldest front
    std::vector<std::vector<ProvenanceHop>> history_; ///< by lineage
    std::int64_t lostOutstanding_ = 0;
    std::int64_t unsourced_ = 0;
};

} // namespace blitz::record

#endif // BLITZ_RECORD_PROVENANCE_HPP
