#include "recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace blitz::record {

const char *
recordKindName(RecordKind k)
{
    switch (k) {
    case RecordKind::Mint:
        return "mint";
    case RecordKind::Transfer:
        return "transfer";
    case RecordKind::Burn:
        return "burn";
    case RecordKind::Remint:
        return "remint";
    case RecordKind::Exchange:
        return "exchange";
    case RecordKind::NocDeliver:
        return "noc-deliver";
    case RecordKind::FaultDrop:
        return "fault-drop";
    case RecordKind::FaultDelay:
        return "fault-delay";
    case RecordKind::FaultDuplicate:
        return "fault-duplicate";
    case RecordKind::FaultCorrupt:
        return "fault-corrupt";
    case RecordKind::Crash:
        return "crash";
    case RecordKind::Restart:
        return "restart";
    case RecordKind::PmActuation:
        return "pm-actuation";
    case RecordKind::Snapshot:
        return "snapshot";
    case RecordKind::SnapshotMark:
        return "snapshot-mark";
    case RecordKind::Byzantine:
        return "byzantine";
    case RecordKind::Guardian:
        return "guardian";
    case RecordKind::Throttle:
        return "throttle";
    }
    return "?";
}

FlightRecorder::FlightRecorder(Config cfg)
    : cfg_(cfg), writeCursor_(cfg.chunkRecords)
{
    if (cfg_.chunkRecords == 0)
        cfg_.chunkRecords = 1;
}

void
FlightRecorder::advanceChunk()
{
    if (cfg_.maxChunks > 0 && chunks_.size() == cfg_.maxChunks) {
        // Ring path: recycle the oldest chunk in place. A rotate of
        // maxChunks pointers, no allocation — the steady state the
        // alloc-count test pins.
        std::rotate(chunks_.begin(), chunks_.begin() + 1,
                    chunks_.end());
        dropped_ += cfg_.chunkRecords;
    } else {
        chunks_.emplace_back(new Record[cfg_.chunkRecords]);
    }
    writeChunk_ = chunks_.size() - 1;
    writeCursor_ = 0;
}

void
FlightRecorder::checkLockstep(const Record &r)
{
    if (diverged_)
        return;
    const std::uint64_t idx = appended_ - 1;
    if (idx >= ref_->baseIndex() + ref_->size()) {
        diverged_ = true;
        divergedAt_ = idx;
        return;
    }
    const Record &want =
        ref_->at(static_cast<std::size_t>(idx - ref_->baseIndex()));
    if (r != want) {
        diverged_ = true;
        divergedAt_ = idx;
    }
}

void
FlightRecorder::absorb(const FlightRecorder &o, std::uint32_t lane)
{
    const std::uint32_t keep = lane_;
    lane_ = lane;
    for (std::size_t i = 0; i < o.size(); ++i)
        append(o.at(i));
    lane_ = keep;
}

void
FlightRecorder::clear()
{
    chunks_.clear();
    writeChunk_ = 0;
    writeCursor_ = cfg_.chunkRecords;
    appended_ = 0;
    dropped_ = 0;
    ref_ = nullptr;
    diverged_ = false;
    divergedAt_ = 0;
}

std::uint64_t
FlightRecorder::digest() const
{
    sim::Fnv1a d;
    for (std::size_t i = 0; i < size(); ++i) {
        const Record &r = at(i);
        d.u64(r.tick)
            .u64((static_cast<std::uint64_t>(r.lane) << 32) |
                 (static_cast<std::uint64_t>(r.kind) << 24) |
                 (static_cast<std::uint64_t>(r.flag) << 16) | r.aux)
            .i64(r.p0)
            .i64(r.p1)
            .i64(r.p2)
            .i64(r.p3);
    }
    return d.value();
}

namespace {
constexpr char kMagic[4] = {'B', 'L', 'Z', 'R'};
constexpr std::uint32_t kVersion = 1;
} // namespace

bool
FlightRecorder::writeFile(const std::string &path,
                          const LogHeader &header) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    bool ok = std::fwrite(kMagic, 1, 4, f) == 4 &&
              std::fwrite(&kVersion, sizeof kVersion, 1, f) == 1 &&
              std::fwrite(header.data(), sizeof(std::uint64_t),
                          header.size(), f) == header.size();
    const std::uint64_t count = size();
    ok = ok && std::fwrite(&count, sizeof count, 1, f) == 1;
    for (std::size_t i = 0; ok && i < size(); ++i) {
        const Record &r = at(i);
        ok = std::fwrite(&r, sizeof r, 1, f) == 1;
    }
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

bool
FlightRecorder::readFile(const std::string &path, FlightRecorder &out,
                         LogHeader *header)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char magic[4];
    std::uint32_t version = 0;
    LogHeader hdr{};
    std::uint64_t count = 0;
    bool ok = std::fread(magic, 1, 4, f) == 4 &&
              std::memcmp(magic, kMagic, 4) == 0 &&
              std::fread(&version, sizeof version, 1, f) == 1 &&
              version == kVersion &&
              std::fread(hdr.data(), sizeof(std::uint64_t), hdr.size(),
                         f) == hdr.size() &&
              std::fread(&count, sizeof count, 1, f) == 1;
    if (ok) {
        out.clear();
        out.cfg_.maxChunks = 0; // loaded logs are never rings
        for (std::uint64_t i = 0; ok && i < count; ++i) {
            Record r;
            ok = std::fread(&r, sizeof r, 1, f) == 1;
            if (ok) {
                // Preserve the recorded lane rather than restamping.
                if (out.writeCursor_ == out.cfg_.chunkRecords)
                    out.advanceChunk();
                out.chunks_[out.writeChunk_][out.writeCursor_++] = r;
                ++out.appended_;
            }
        }
    }
    std::fclose(f);
    if (ok && header != nullptr)
        *header = hdr;
    return ok;
}

} // namespace blitz::record
