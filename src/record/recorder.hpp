/**
 * @file
 * Compact binary flight recorder.
 *
 * A FlightRecorder journals Record entries into fixed-size chunks.
 * Two growth modes:
 *
 *  * **Unbounded** (maxChunks = 0): chunks accumulate for the life of
 *    the recording — the mode replay logs are captured in.
 *  * **Ring** (maxChunks > 0): once the budget is reached the oldest
 *    chunk is recycled in place, so steady-state appends perform zero
 *    allocations (enforced by tests/alloc_count_test.cpp). This is
 *    the always-on black-box mode: bounded memory, last-N-events
 *    retained, nothing on the hot path but a store and a bump.
 *
 * Sweep integration mirrors trace::Tracer: each replication records
 * into its own recorder (a *lane*), and the driver absorbs lanes in
 * replication order — the merged stream is bit-identical for any
 * thread count. absorb() restamps Record::lane so a merged log keeps
 * per-replication attribution.
 *
 * The on-disk format is little-endian and versioned:
 *   magic "BLZR" | u32 version | u64 header[16] | u64 count | records
 * The 16 header words belong to the caller (the replay engine packs
 * its scenario there so a log is self-describing).
 */

#ifndef BLITZ_RECORD_RECORDER_HPP
#define BLITZ_RECORD_RECORDER_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "records.hpp"
#include "sim/digest.hpp"
#include "sim/types.hpp"

namespace blitz::record {

/** Caller-owned log header (scenario parameters, run metadata). */
using LogHeader = std::array<std::uint64_t, 16>;

/** FlightRecorder growth parameters. */
struct RecorderConfig
{
    /** Records per chunk. */
    std::uint32_t chunkRecords = 4096;
    /** Chunk budget; 0 = unbounded, >0 = ring (zero-alloc). */
    std::uint32_t maxChunks = 0;
};

class FlightRecorder
{
  public:
    using Config = RecorderConfig;

    explicit FlightRecorder(Config cfg = {});

    FlightRecorder(FlightRecorder &&) = default;
    FlightRecorder &operator=(FlightRecorder &&) = default;

    /** Append one record; `lane` is stamped from setLane(). */
    void
    append(Record r)
    {
        if (mu_) {
            std::lock_guard<std::mutex> lock(*mu_);
            appendLocked(r);
            return;
        }
        appendLocked(r);
    }

    /**
     * Arm (or disarm) concurrent-append mode: append() takes a mutex,
     * so hook sites running in parallel shard phases (sim/shard.hpp)
     * may journal into one recorder without racing the chunks. Within
     * one tick the interleaving across shards is arbitrary — record
     * *counts* stay deterministic, record *order* does not — so
     * sharded golden digests pin counts, never the stream digest, and
     * lockstep replay (order-sensitive by design) stays unsharded.
     * Off by default: the single-threaded path costs one null check.
     */
    void
    setConcurrent(bool on)
    {
        if (on && !mu_)
            mu_ = std::make_unique<std::mutex>();
        else if (!on)
            mu_.reset();
    }

    bool concurrent() const { return mu_ != nullptr; }

    // ---- convenience emitters (plain integers; see records.hpp) ----

    void
    mint(sim::Tick t, std::int64_t tile, std::int64_t amount,
         std::int64_t firstLineage, std::int64_t lastLineage,
         bool remintFlag = false)
    {
        Record r;
        r.tick = t;
        r.kind = remintFlag ? RecordKind::Remint : RecordKind::Mint;
        r.p0 = tile;
        r.p1 = amount;
        r.p2 = firstLineage;
        r.p3 = lastLineage;
        append(r);
    }

    void
    transfer(sim::Tick t, std::int64_t from, std::int64_t to,
             std::int64_t amount, std::int64_t xid)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Transfer;
        r.p0 = from;
        r.p1 = to;
        r.p2 = amount;
        r.p3 = xid;
        append(r);
    }

    void
    burn(sim::Tick t, std::int64_t tile, std::int64_t amount)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Burn;
        r.p0 = tile;
        r.p1 = amount;
        append(r);
    }

    void
    exchange(sim::Tick t, std::uint8_t outcome, std::int64_t initiator,
             std::int64_t partner, std::int64_t xid, std::int64_t delta)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Exchange;
        r.flag = outcome;
        r.p0 = initiator;
        r.p1 = partner;
        r.p2 = xid;
        r.p3 = delta;
        append(r);
    }

    void
    nocDeliver(sim::Tick t, std::int64_t dst, int plane, int msgType,
               std::int64_t seq, std::int64_t injectTick)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::NocDeliver;
        r.p0 = dst;
        r.p1 = (static_cast<std::int64_t>(plane) << 8) | msgType;
        r.p2 = seq;
        r.p3 = injectTick;
        append(r);
    }

    void
    fault(sim::Tick t, RecordKind kind, std::uint8_t site, int msgType,
          std::int64_t src, std::int64_t dst, std::int64_t seq,
          std::int64_t extra = 0)
    {
        Record r;
        r.tick = t;
        r.kind = kind;
        r.flag = site;
        r.aux = static_cast<std::uint16_t>(msgType);
        r.p0 = src;
        r.p1 = dst;
        r.p2 = seq;
        r.p3 = extra;
        append(r);
    }

    void
    crash(sim::Tick t, std::int64_t tile, std::int64_t coinsLost)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Crash;
        r.p0 = tile;
        r.p1 = coinsLost;
        append(r);
    }

    void
    restart(sim::Tick t, std::int64_t tile, std::int64_t coinsRestored)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Restart;
        r.p0 = tile;
        r.p1 = coinsRestored;
        append(r);
    }

    void
    pmActuation(sim::Tick t, std::int64_t tile, double freqMhz)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::PmActuation;
        r.p0 = tile;
        r.p1 = static_cast<std::int64_t>(freqMhz * 1000.0 + 0.5);
        append(r);
    }

    void
    snapshot(sim::Tick t, std::int64_t tile, std::int64_t has,
             std::int64_t epoch)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Snapshot;
        r.p0 = tile;
        r.p1 = has;
        r.p2 = epoch;
        append(r);
    }

    void
    snapshotMark(sim::Tick t, std::int64_t epoch, std::int64_t tiles,
                 std::uint64_t stateDigest)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::SnapshotMark;
        r.p0 = epoch;
        r.p1 = tiles;
        r.p3 = static_cast<std::int64_t>(stateDigest);
        append(r);
    }

    void
    byzantine(sim::Tick t, std::uint8_t behavior, std::int64_t node,
              std::int64_t amount, std::int64_t extra = 0)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Byzantine;
        r.flag = behavior;
        r.p0 = node;
        r.p1 = amount;
        r.p2 = extra;
        append(r);
    }

    void
    guardian(sim::Tick t, std::uint8_t event, std::int64_t tile,
             std::int64_t strikes, std::int64_t mask,
             std::int64_t evidence)
    {
        Record r;
        r.tick = t;
        r.kind = RecordKind::Guardian;
        r.flag = event;
        r.p0 = tile;
        r.p1 = strikes;
        r.p2 = mask;
        r.p3 = evidence;
        append(r);
    }

    void
    throttle(sim::Tick t, std::uint8_t event, std::uint8_t source,
             std::int64_t tile, double capMhz, double effectiveCapMhz,
             std::int64_t mask)
    {
        // Infinite caps (released / uncapped) journal as 0 milli-MHz.
        const auto milli = [](double f) {
            return f == std::numeric_limits<double>::infinity()
                       ? std::int64_t{0}
                       : static_cast<std::int64_t>(f * 1000.0 + 0.5);
        };
        Record r;
        r.tick = t;
        r.kind = RecordKind::Throttle;
        r.flag = event;
        r.aux = source;
        r.p0 = tile;
        r.p1 = milli(capMhz);
        r.p2 = milli(effectiveCapMhz);
        r.p3 = mask;
        append(r);
    }

    // ---- introspection ----

    /** Records currently retained (ring mode may have dropped some). */
    std::size_t
    size() const
    {
        return chunks_.empty()
                   ? 0
                   : (chunks_.size() - 1) * cfg_.chunkRecords +
                         writeCursor_;
    }

    /** Records appended over the recorder's lifetime. */
    std::uint64_t totalAppended() const { return appended_; }

    /** Records the ring recycled away (0 in unbounded mode). */
    std::uint64_t droppedOldest() const { return dropped_; }

    /** Global index of the oldest retained record. */
    std::uint64_t baseIndex() const { return dropped_; }

    /** Retained record @p i (0 = oldest retained). */
    const Record &
    at(std::size_t i) const
    {
        return chunks_[i / cfg_.chunkRecords][i % cfg_.chunkRecords];
    }

    /** Mutable access for test/tool tampering — not a hot path. */
    Record &
    mutableAt(std::size_t i)
    {
        return chunks_[i / cfg_.chunkRecords][i % cfg_.chunkRecords];
    }

    const Config &config() const { return cfg_; }

    /** Lane stamped on subsequently appended records. */
    void setLane(std::uint32_t lane) { lane_ = lane; }
    std::uint32_t lane() const { return lane_; }

    /**
     * Append @p o's retained records restamped with @p lane. Called in
     * replication order by sweep drivers, this reproduces one global
     * stream bit-identically at any thread count.
     */
    void absorb(const FlightRecorder &o, std::uint32_t lane);

    void clear();

    /** Order-sensitive FNV-1a over the retained stream. */
    std::uint64_t digest() const;

    // ---- lockstep replay checking ----

    /**
     * Arm lockstep mode: every subsequent append is compared against
     * @p ref's record at the same global index. The first mismatch
     * latches diverged()/divergedAt() and further checking stops.
     * @p ref must outlive this recorder or a disarm() call.
     */
    void
    beginLockstep(const FlightRecorder *ref)
    {
        ref_ = ref;
        diverged_ = false;
        divergedAt_ = 0;
    }

    void disarm() { ref_ = nullptr; }

    bool diverged() const { return diverged_; }

    /** Global index of the first mismatching record. */
    std::uint64_t divergedAt() const { return divergedAt_; }

    // ---- file I/O ----

    /** Write the retained stream; returns false on I/O failure. */
    bool writeFile(const std::string &path,
                   const LogHeader &header = {}) const;

    /**
     * Load a log written by writeFile() into @p out (replacing its
     * contents; out becomes unbounded). Returns false on missing
     * file, bad magic, or version mismatch.
     */
    static bool readFile(const std::string &path, FlightRecorder &out,
                         LogHeader *header = nullptr);

  private:
    void
    appendLocked(Record r)
    {
        r.lane = lane_;
        if (writeCursor_ == cfg_.chunkRecords)
            advanceChunk();
        chunks_[writeChunk_][writeCursor_++] = r;
        ++appended_;
        if (ref_ != nullptr)
            checkLockstep(r);
    }

    void advanceChunk();
    void checkLockstep(const Record &r);

    using Chunk = std::unique_ptr<Record[]>;

    Config cfg_;
    std::vector<Chunk> chunks_;
    std::size_t writeChunk_ = 0;   ///< always chunks_.size() - 1
    std::uint32_t writeCursor_;    ///< == chunkRecords when empty
    std::uint32_t lane_ = 0;
    std::uint64_t appended_ = 0;
    std::uint64_t dropped_ = 0;

    const FlightRecorder *ref_ = nullptr;
    bool diverged_ = false;
    std::uint64_t divergedAt_ = 0;
    /** Present only in concurrent mode (unique_ptr keeps moves). */
    std::unique_ptr<std::mutex> mu_;
};

} // namespace blitz::record

#endif // BLITZ_RECORD_RECORDER_HPP
