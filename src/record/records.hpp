/**
 * @file
 * Flight-recorder record types.
 *
 * Every observable state transition the simulator considers
 * semantically meaningful — a coin exchange resolving, a NoC packet
 * reaching its endpoint, the fault plane destroying or mutating a
 * flit, a power-management actuation — is journaled as one fixed-size
 * POD record. Records are plain integers on purpose: blitz_record
 * sits directly above blitz_sim in the link order, so every layer
 * (noc, coin, blitzcoin, fault, soc) can emit records without
 * creating a dependency cycle, mirroring the NocTrace rule.
 *
 * The layout is padding-free and trivially copyable, so a record
 * stream can be memcmp-compared, FNV-digested, and written to disk
 * verbatim — the properties the replay engine's lockstep check and
 * the divergence bisector rely on.
 */

#ifndef BLITZ_RECORD_RECORDS_HPP
#define BLITZ_RECORD_RECORDS_HPP

#include <cstdint>
#include <type_traits>

#include "sim/types.hpp"

namespace blitz::record {

/** What a record describes. Values are part of the on-disk format. */
enum class RecordKind : std::uint8_t
{
    /** Coins created from nothing (provisioning, restart restore). */
    Mint = 0,
    /** Coins moved between two tiles by a resolved exchange. */
    Transfer = 1,
    /** Coins destroyed (audit negative correction). */
    Burn = 2,
    /** Audit watchdog re-created coins lost to a crash. */
    Remint = 3,
    /** A coin exchange resolved at the initiator. */
    Exchange = 4,
    /** A NoC packet reached its endpoint demux. */
    NocDeliver = 5,
    /** Fault plane destroyed a packet. */
    FaultDrop = 6,
    /** Fault plane delayed a packet. */
    FaultDelay = 7,
    /** Fault plane duplicated a packet. */
    FaultDuplicate = 8,
    /** Fault plane flipped payload bits in a packet. */
    FaultCorrupt = 9,
    /** A tile lost power; its coins are destroyed. */
    Crash = 10,
    /** A crashed tile came back. */
    Restart = 11,
    /** PM layer actuated a tile's frequency target. */
    PmActuation = 12,
    /** Per-tile holdings at a snapshot epoch boundary. */
    Snapshot = 13,
    /** Epoch marker closing a snapshot: carries the state digest. */
    SnapshotMark = 14,
    /** Byzantine plan action (counterfeit pulse, stale replay...). */
    Byzantine = 15,
    /** Integrity guardian detection or escalation decision. */
    Guardian = 16,
    /** Physics-plane throttle decision (thermal/rail/board TDP). */
    Throttle = 17,
};

const char *recordKindName(RecordKind k);

/** Exchange outcome codes carried in Record::flag. */
enum : std::uint8_t
{
    kOutcomeServed = 0,    ///< partner applied the delta
    kOutcomeOk = 1,        ///< initiator saw the reply in time
    kOutcomeRecovered = 2, ///< delta replayed via CoinRecover
    kOutcomeUnknown = 3,   ///< partner lost its log; delta untraceable
    kOutcomeTimeout = 4,   ///< reply missed the window; probing started
    kOutcomeAbandoned = 5, ///< recovery gave up; left to the audit
};

/** Fault-decision site codes carried in Record::flag. */
enum : std::uint8_t
{
    kSiteInject = 0,    ///< rate-driven injection (FaultRates)
    kSiteOutage = 1,    ///< node down / frozen window
    kSitePartition = 2, ///< severed mesh link
};

/** Throttle event codes carried in Record::flag. */
enum : std::uint8_t
{
    kThrottleEngage = 0,  ///< a limit source asserted a cap
    kThrottleRelease = 1, ///< a limit source cleared its cap
};

/**
 * One journaled state transition. 48 bytes, no padding: the first
 * 16 bytes are the (tick, lane, kind) envelope, the remaining 32 the
 * kind-specific payload. Field conventions per kind:
 *
 *   Mint/Remint    p0=tile p1=amount p2=first lineage p3=last lineage
 *   Transfer       p0=from p1=to p2=amount p3=xid
 *   Burn           p0=tile p1=amount
 *   Exchange       p0=initiator p1=partner p2=xid p3=delta
 *                  flag=outcome code
 *   NocDeliver     p0=dst p1=(plane<<8)|msgType p2=seq p3=injectTick
 *   Fault*         p0=src p1=dst p2=seq p3=extra (delay ticks /
 *                  corrupted word) flag=site code aux=msgType
 *   Crash/Restart  p0=tile p1=coins lost/restored
 *   PmActuation    p0=tile p1=freq target in milli-MHz
 *   Snapshot       p0=tile p1=has p2=epoch
 *   SnapshotMark   p0=epoch p1=tiles p3=state digest
 *   Byzantine      p0=node p1=amount p2=extra flag=behavior code
 *   Guardian       p0=tile p1=strikes p2=detector mask p3=evidence
 *                  flag=event (0 detect, 1 warn, 2 throttle,
 *                  3 quarantine)
 *   Throttle       p0=tile p1=source cap milli-MHz (0 on release)
 *                  p2=effective cap milli-MHz (0 = uncapped)
 *                  p3=active source mask flag=event (0 engage,
 *                  1 release) aux=source (0 thermal, 1 rail,
 *                  2 board TDP)
 */
struct Record
{
    sim::Tick tick = 0;
    std::uint32_t lane = 0; ///< sweep replication lane
    RecordKind kind = RecordKind::Mint;
    std::uint8_t flag = 0;
    std::uint16_t aux = 0;
    std::int64_t p0 = 0;
    std::int64_t p1 = 0;
    std::int64_t p2 = 0;
    std::int64_t p3 = 0;
};

static_assert(sizeof(Record) == 48, "record layout is part of the "
                                    "on-disk format");
static_assert(std::is_trivially_copyable_v<Record>,
              "records are written to disk verbatim");

inline bool
operator==(const Record &a, const Record &b)
{
    return a.tick == b.tick && a.lane == b.lane && a.kind == b.kind &&
           a.flag == b.flag && a.aux == b.aux && a.p0 == b.p0 &&
           a.p1 == b.p1 && a.p2 == b.p2 && a.p3 == b.p3;
}

inline bool
operator!=(const Record &a, const Record &b)
{
    return !(a == b);
}

} // namespace blitz::record

#endif // BLITZ_RECORD_RECORDS_HPP
