#include "replay.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fault/chaos.hpp"
#include "fault/fault_plane.hpp"
#include "noc/topology.hpp"
#include "sim/arena.hpp"
#include "sim/digest.hpp"

namespace blitz::record {

namespace {

/** Tick at which every timed fault window has cleared. */
constexpr sim::Tick faultQuietTick = 12'000;
constexpr double convergedTol = 2.5;
constexpr sim::Tick convergedCheckEvery = 64;
constexpr sim::Tick quiesceDrain = 65'536;

std::uint64_t
packDouble(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
}

double
unpackDouble(std::uint64_t u)
{
    double v = 0.0;
    std::memcpy(&v, &u, sizeof v);
    return v;
}

/** Fold one record into a digest exactly as FlightRecorder::digest. */
void
foldRecord(sim::Fnv1a &d, const Record &r)
{
    d.u64(r.tick);
    d.u64((static_cast<std::uint64_t>(r.lane) << 32) |
          (static_cast<std::uint64_t>(r.kind) << 24) |
          (static_cast<std::uint64_t>(r.flag) << 16) | r.aux);
    d.i64(r.p0);
    d.i64(r.p1);
    d.i64(r.p2);
    d.i64(r.p3);
}

/** Tiles a record touches, for causal-context filtering. */
void
recordTiles(const Record &r, std::int64_t out[2])
{
    out[0] = -1;
    out[1] = -1;
    switch (r.kind) {
      case RecordKind::Mint:
      case RecordKind::Remint:
      case RecordKind::Burn:
      case RecordKind::Crash:
      case RecordKind::Restart:
      case RecordKind::PmActuation:
      case RecordKind::Snapshot:
        out[0] = r.p0;
        break;
      case RecordKind::Transfer:
      case RecordKind::Exchange:
      case RecordKind::FaultDrop:
      case RecordKind::FaultDelay:
      case RecordKind::FaultDuplicate:
      case RecordKind::FaultCorrupt:
        out[0] = r.p0;
        out[1] = r.p1;
        break;
      case RecordKind::NocDeliver:
      case RecordKind::Byzantine:
      case RecordKind::Guardian:
      case RecordKind::Throttle:
        out[0] = r.p0;
        break;
      case RecordKind::SnapshotMark:
        break;
    }
}

bool
touchesAny(const Record &r, const std::int64_t tiles[4])
{
    std::int64_t own[2];
    recordTiles(r, own);
    for (int i = 0; i < 2; ++i) {
        if (own[i] < 0)
            continue;
        for (int j = 0; j < 4; ++j) {
            if (tiles[j] >= 0 && own[i] == tiles[j])
                return true;
        }
    }
    return false;
}

void
appendLine(std::string &s, const char *prefix, const Record &r,
           std::uint64_t index)
{
    s += prefix;
    s += describeRecord(r, index);
    s += '\n';
}

} // namespace

LogHeader
ReplayScenario::pack() const
{
    LogHeader h{};
    h[0] = d;
    h[1] = packDouble(drop);
    h[2] = packDouble(duplicate);
    h[3] = packDouble(corrupt);
    h[4] = (crash ? 1u : 0u) | (partition ? 2u : 0u);
    h[5] = seed;
    h[6] = trials;
    h[7] = deadline;
    h[8] = snapshotEvery;
    return h;
}

ReplayScenario
ReplayScenario::unpack(const LogHeader &h)
{
    ReplayScenario sc;
    sc.d = static_cast<std::uint32_t>(h[0]);
    sc.drop = unpackDouble(h[1]);
    sc.duplicate = unpackDouble(h[2]);
    sc.corrupt = unpackDouble(h[3]);
    sc.crash = (h[4] & 1u) != 0;
    sc.partition = (h[4] & 2u) != 0;
    sc.seed = h[5];
    sc.trials = static_cast<std::uint32_t>(h[6]);
    sc.deadline = h[7];
    sc.snapshotEvery = h[8];
    return sc;
}

std::string
ReplayScenario::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%ux%u mesh, drop=%.3f dup=%.3f corrupt=%.3f%s%s, "
                  "seed=%llu, %u trial(s), deadline=%llu, "
                  "snapshot every %llu",
                  d, d, drop, duplicate, corrupt,
                  crash ? ", crash windows" : "",
                  partition ? ", column partition" : "",
                  static_cast<unsigned long long>(seed), trials,
                  static_cast<unsigned long long>(deadline),
                  static_cast<unsigned long long>(snapshotEvery));
    return buf;
}

void
recordTrial(const ReplayScenario &sc, std::uint64_t seed,
            FlightRecorder &rec, ProvenanceLedger *prov,
            std::string *gapReport)
{
    fault::ChaosConfig cc;
    cc.width = static_cast<int>(sc.d);
    cc.height = static_cast<int>(sc.d);
    cc.arena = &sim::threadArena();
    cc.seedBase = seed;
    cc.fault.seed = seed;
    cc.fault.coinTrafficOnly = true;
    cc.fault.base.drop = sc.drop;
    cc.fault.base.duplicate = sc.duplicate;
    cc.fault.base.corrupt = sc.corrupt;
    const auto n = static_cast<std::size_t>(sc.d) * sc.d;
    if (sc.crash) {
        // Same schedule as the chaos bench: two tiles power-fail and
        // come back; their coins are destroyed and reminted.
        cc.fault.outages.push_back({static_cast<noc::NodeId>(n / 2),
                                    3'000, faultQuietTick, false});
        cc.fault.outages.push_back(
            {static_cast<noc::NodeId>(1), 5'000, faultQuietTick, false});
        cc.auditPeriod = 4'096;
    }
    if (sc.partition) {
        noc::Topology topo(static_cast<int>(sc.d),
                           static_cast<int>(sc.d), false);
        cc.fault.partitions.push_back(fault::columnPartition(
            topo, static_cast<int>(sc.d) / 2 - 1, 2'000,
            faultQuietTick));
        cc.auditPeriod = 4'096;
    }

    fault::ChaosCluster cluster(cc);
    // Before provisioning, so the log opens with the mints.
    cluster.attachRecorder(&rec, prov, sc.snapshotEvery);

    // Heterogeneous demand, pool parked on the first quarter — the
    // bench_chaos trial shape (long-range transport required).
    static constexpr coin::Coins levels[4] = {16, 32, 8, 63};
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const coin::Coins m = levels[i % 4];
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        cluster.setHas(i, share);
    }
    cluster.sealProvision();
    cluster.startAll();

    const sim::Tick quiet =
        (sc.crash || sc.partition) ? faultQuietTick : 0;
    if (quiet > 0)
        cluster.eq().runUntil(quiet);
    cluster.runUntilConverged(convergedTol, convergedCheckEvery,
                              sc.deadline);
    // The causal chains behind whatever the faults destroyed, captured
    // before quiesce's sweep remints the lost lineages.
    if (gapReport)
        *gapReport = cluster.audit().describeGap();
    cluster.quiesce(quiesceDrain);
}

FlightRecorder
recordScenario(const ReplayScenario &sc, const sweep::SweepOptions &opts)
{
    return sweep::runSweepAbsorb<FlightRecorder>(
        sc.trials, sc.seed,
        [&sc](std::size_t, std::uint64_t seed) {
            FlightRecorder lane;
            recordTrial(sc, seed, lane);
            return lane;
        },
        opts);
}

ReplayResult
replayVerify(const FlightRecorder &ref, const ReplayScenario &sc,
             const sweep::SweepOptions &opts)
{
    auto lanes = sweep::runSweep(
        static_cast<std::size_t>(sc.trials), sc.seed,
        [&sc](std::size_t, std::uint64_t seed) {
            FlightRecorder lane;
            recordTrial(sc, seed, lane);
            return lane;
        },
        opts);

    FlightRecorder master;
    master.beginLockstep(&ref);
    for (std::size_t i = 0; i < lanes.size(); ++i)
        master.absorb(lanes[i], static_cast<std::uint32_t>(i));
    master.disarm();

    ReplayResult out;
    out.recordsChecked = master.totalAppended();
    if (master.diverged()) {
        out.match = false;
        out.divergedAt = master.divergedAt();
    } else if (master.totalAppended() != ref.totalAppended()) {
        // Fewer records than the log: divergence at the first missing
        // index (extra records are caught by the lockstep check).
        out.match = false;
        out.divergedAt =
            std::min(master.totalAppended(), ref.totalAppended());
    } else {
        out.match = true;
    }
    return out;
}

DiffResult
diffRecordings(const FlightRecorder &a, const FlightRecorder &b)
{
    DiffResult out;
    out.sizeA = a.size();
    out.sizeB = b.size();
    const std::size_t common =
        static_cast<std::size_t>(std::min(out.sizeA, out.sizeB));
    for (std::size_t i = 0; i < common; ++i) {
        if (a.at(i) != b.at(i)) {
            out.firstDiff = i;
            return out;
        }
    }
    if (out.sizeA != out.sizeB) {
        out.firstDiff = common;
        return out;
    }
    out.identical = true;
    return out;
}

BisectResult
bisectRecordings(const FlightRecorder &a, const FlightRecorder &b,
                 std::size_t contextRecords)
{
    BisectResult out;

    // Epoch boundaries: the record index just past each SnapshotMark,
    // with cumulative stream digests at each boundary. One O(n) pass
    // per recording buys O(log epochs) bisection probes.
    auto boundaries = [](const FlightRecorder &r) {
        std::vector<std::uint64_t> idx;
        std::vector<std::uint64_t> cum;
        sim::Fnv1a d;
        idx.push_back(0);
        cum.push_back(d.value());
        for (std::size_t i = 0; i < r.size(); ++i) {
            foldRecord(d, r.at(i));
            if (r.at(i).kind == RecordKind::SnapshotMark) {
                idx.push_back(i + 1);
                cum.push_back(d.value());
            }
        }
        idx.push_back(r.size());
        cum.push_back(d.value());
        return std::pair{std::move(idx), std::move(cum)};
    };
    auto [idxA, cumA] = boundaries(a);
    auto [idxB, cumB] = boundaries(b);

    // Binary search the first boundary whose cumulative digest (or
    // position) disagrees — past the true divergence every cumulative
    // digest differs, so the predicate is monotone.
    const std::size_t m = std::min(idxA.size(), idxB.size());
    std::size_t lo = 0, hi = m; // hi = first divergent boundary, m = none
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        ++out.epochsCompared;
        if (idxA[mid] != idxB[mid] || cumA[mid] != cumB[mid])
            hi = mid;
        else
            lo = mid + 1;
    }

    // Records before the last agreeing boundary are identical; scan
    // only the divergent window.
    const std::size_t begin =
        hi == 0 ? 0 : static_cast<std::size_t>(idxA[hi - 1]);
    out.windowBegin = begin;
    out.windowEnd = std::max(a.size(), b.size());
    if (hi < m)
        out.windowEnd = std::max(idxA[hi], idxB[hi]);

    const std::size_t common = std::min(a.size(), b.size());
    std::size_t firstDiff = common;
    bool found = false;
    for (std::size_t i = begin; i < common; ++i) {
        if (a.at(i) != b.at(i)) {
            firstDiff = i;
            found = true;
            break;
        }
    }
    if (!found && a.size() == b.size()) {
        out.diverged = false;
        return out;
    }
    out.diverged = true;
    out.firstDiff = firstDiff;

    // Causal context: the divergent pair plus the preceding records
    // that touched the same tiles.
    std::string &ctx = out.context;
    std::int64_t tiles[4] = {-1, -1, -1, -1};
    if (firstDiff < a.size())
        recordTiles(a.at(firstDiff), tiles);
    if (firstDiff < b.size())
        recordTiles(b.at(firstDiff), tiles + 2);

    std::vector<std::uint64_t> related;
    for (std::size_t i = firstDiff; i-- > 0 && related.size() < contextRecords;) {
        if (touchesAny(a.at(i), tiles))
            related.push_back(i);
    }
    for (auto it = related.rbegin(); it != related.rend(); ++it)
        appendLine(ctx, "  ... ", a.at(static_cast<std::size_t>(*it)),
                   *it);
    if (firstDiff < a.size())
        appendLine(ctx, "  A:  ", a.at(firstDiff), firstDiff);
    else
        ctx += "  A:  <end of recording>\n";
    if (firstDiff < b.size())
        appendLine(ctx, "  B:  ", b.at(firstDiff), firstDiff);
    else
        ctx += "  B:  <end of recording>\n";
    return out;
}

std::string
describeRecord(const Record &r, std::uint64_t index)
{
    char buf[256];
    const char *kind = recordKindName(r.kind);
    int len = std::snprintf(
        buf, sizeof buf, "#%llu @%llu lane %u %-13s",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(r.tick), r.lane, kind);
    if (len < 0)
        return {};
    auto rest = [&](const char *fmt, auto... args) {
        std::snprintf(buf + len,
                      sizeof buf - static_cast<std::size_t>(len), fmt,
                      args...);
    };
    switch (r.kind) {
      case RecordKind::Mint:
      case RecordKind::Remint:
        rest(" tile %lld amount %lld lineage %lld..%lld",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::Transfer:
        rest(" %lld -> %lld amount %lld xid %lld",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::Burn:
        rest(" tile %lld amount %lld", static_cast<long long>(r.p0),
             static_cast<long long>(r.p1));
        break;
      case RecordKind::Exchange:
        rest(" outcome %u %lld<->%lld xid %lld delta %lld",
             static_cast<unsigned>(r.flag),
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::NocDeliver:
        rest(" dst %lld plane %lld type %lld seq %lld inject @%lld",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1 >> 8),
             static_cast<long long>(r.p1 & 0xff),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::FaultDrop:
      case RecordKind::FaultDelay:
      case RecordKind::FaultDuplicate:
      case RecordKind::FaultCorrupt:
        rest(" site %u type %u %lld -> %lld seq %lld extra %lld",
             static_cast<unsigned>(r.flag),
             static_cast<unsigned>(r.aux),
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::Crash:
        rest(" tile %lld coins lost %lld",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1));
        break;
      case RecordKind::Restart:
        rest(" tile %lld", static_cast<long long>(r.p0));
        break;
      case RecordKind::PmActuation:
        rest(" tile %lld freq %.3f MHz", static_cast<long long>(r.p0),
             static_cast<double>(r.p1) / 1000.0);
        break;
      case RecordKind::Snapshot:
        rest(" tile %lld has %lld epoch %lld",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2));
        break;
      case RecordKind::SnapshotMark:
        rest(" epoch %lld tiles %lld digest %016llx",
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<unsigned long long>(r.p3));
        break;
      case RecordKind::Byzantine:
        rest(" behavior %u node %lld amount %lld extra %lld",
             static_cast<unsigned>(r.flag),
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2));
        break;
      case RecordKind::Guardian:
        rest(" event %u tile %lld strikes %lld mask %lld "
             "evidence %lld",
             static_cast<unsigned>(r.flag),
             static_cast<long long>(r.p0),
             static_cast<long long>(r.p1),
             static_cast<long long>(r.p2),
             static_cast<long long>(r.p3));
        break;
      case RecordKind::Throttle:
        rest(" event %u source %u tile %lld cap %.3f MHz "
             "effective %.3f MHz mask %lld",
             static_cast<unsigned>(r.flag),
             static_cast<unsigned>(r.aux),
             static_cast<long long>(r.p0),
             static_cast<double>(r.p1) / 1000.0,
             static_cast<double>(r.p2) / 1000.0,
             static_cast<long long>(r.p3));
        break;
    }
    return buf;
}

bool
tamperRecord(FlightRecorder &rec, std::uint64_t index)
{
    if (index >= rec.size())
        return false;
    // Flip the low payload bit — a single-event corruption for the
    // bisector to find.
    rec.mutableAt(static_cast<std::size_t>(index)).p1 ^= 1;
    return true;
}

} // namespace blitz::record
