/**
 * @file
 * Replay engine: re-execute a recorded chaos replication from its log
 * and prove lockstep equivalence; diff two recordings and bisect to
 * the first divergent event.
 *
 * A flight-recorder log is self-describing: the 16-word file header
 * packs the ReplayScenario that produced it (mesh size, fault rates,
 * crash/partition windows, seed, trial count, snapshot cadence), so
 * `replayVerify` can rebuild the exact ChaosCluster sweep, re-run it
 * with a lockstep-armed recorder, and fail at the first event whose
 * envelope or payload differs from the log — not merely at the end.
 *
 * Bisection uses the SnapshotMark records the recorder emits on a
 * tick cadence: each mark closes an epoch and carries an FNV digest
 * of all tile holdings at that tick. Two recordings are first
 * bisected over the epoch digests (O(log epochs) comparisons) to the
 * first divergent window, then scanned record-by-record inside it;
 * the report attaches the causal context — the divergent pair plus
 * the preceding records touching the same tiles.
 *
 * This target (blitz_replay_engine) links the fault layer; the
 * recorder core (blitz_record) stays dependent on blitz_sim alone.
 */

#ifndef BLITZ_RECORD_REPLAY_HPP
#define BLITZ_RECORD_REPLAY_HPP

#include <cstdint>
#include <string>

#include "provenance.hpp"
#include "recorder.hpp"
#include "sim/types.hpp"
#include "sweep/sweep.hpp"

namespace blitz::record {

/**
 * The parameter tuple that fully determines a recorded chaos
 * replication sweep (the bench_chaos trial shape). Packs losslessly
 * into the log header, so a recording can be replayed with nothing
 * but the file.
 */
struct ReplayScenario
{
    std::uint32_t d = 4;        ///< mesh is d x d
    double drop = 0.0;          ///< coin-traffic drop rate
    double duplicate = 0.0;
    double corrupt = 0.0;
    bool crash = false;         ///< two timed tile outages
    bool partition = false;     ///< timed column partition
    std::uint64_t seed = 1;     ///< sweep root seed
    std::uint32_t trials = 1;   ///< replications (lanes) in the log
    sim::Tick deadline = 400'000;
    sim::Tick snapshotEvery = 2'048; ///< 0 disables snapshot epochs

    LogHeader pack() const;
    static ReplayScenario unpack(const LogHeader &h);

    std::string describe() const;
};

/**
 * Run one replication of @p sc seeded with @p seed, journaling into
 * @p rec (lane already set by the caller). When @p prov is non-null
 * the provenance ledger tracks lineages and @p gapReport (if
 * non-null) receives the audit's causal-chain report for any
 * conservation gap the run produced.
 */
void recordTrial(const ReplayScenario &sc, std::uint64_t seed,
                 FlightRecorder &rec, ProvenanceLedger *prov = nullptr,
                 std::string *gapReport = nullptr);

/**
 * Record the whole sweep (sc.trials replications on the sweep
 * harness, lanes merged in replication order — bit-identical for any
 * opts.threads).
 */
FlightRecorder recordScenario(const ReplayScenario &sc,
                              const sweep::SweepOptions &opts = {});

/** Outcome of a lockstep replay. */
struct ReplayResult
{
    bool match = false;
    std::uint64_t divergedAt = 0; ///< first divergent global index
    std::uint64_t recordsChecked = 0;
};

/**
 * Re-execute @p sc and check every emitted record against @p ref in
 * lockstep. A fresh run emitting more records than the log also
 * counts as divergence (at the first extra index).
 */
ReplayResult replayVerify(const FlightRecorder &ref,
                          const ReplayScenario &sc,
                          const sweep::SweepOptions &opts = {});

/** First divergence between two recordings. */
struct DiffResult
{
    bool identical = false;
    std::uint64_t firstDiff = 0; ///< valid when !identical
    std::uint64_t sizeA = 0;
    std::uint64_t sizeB = 0;
};

DiffResult diffRecordings(const FlightRecorder &a,
                          const FlightRecorder &b);

/** Bisection outcome with causal context. */
struct BisectResult
{
    bool diverged = false;
    std::uint64_t firstDiff = 0;
    /** Record index range of the divergent snapshot window. */
    std::uint64_t windowBegin = 0;
    std::uint64_t windowEnd = 0;
    std::uint64_t epochsCompared = 0; ///< digest probes the bisection used
    std::string context; ///< human-readable causal report
};

/**
 * Locate the first divergent event between @p a and @p b: binary
 * search over snapshot-epoch digests, then a record-level scan of the
 * divergent window. The context report quotes both records and the
 * preceding events that touched the same tiles.
 */
BisectResult bisectRecordings(const FlightRecorder &a,
                              const FlightRecorder &b,
                              std::size_t contextRecords = 8);

/** One-line human rendering of a record. */
std::string describeRecord(const Record &r, std::uint64_t index);

/** Flip a payload bit of record @p index (fabricate corruption). */
bool tamperRecord(FlightRecorder &rec, std::uint64_t index);

} // namespace blitz::record

#endif // BLITZ_RECORD_REPLAY_HPP
