#include "arena.hpp"

#include <algorithm>

namespace blitz::sim {

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    for (;;) {
        if (cur_ < chunks_.size()) {
            Chunk &c = chunks_[cur_];
            const std::size_t aligned = (off_ + align - 1) & ~(align - 1);
            if (aligned + bytes <= c.size) {
                off_ = aligned + bytes;
                used_ += bytes;
                if (used_ > usedHighWater_)
                    usedHighWater_ = used_;
                return c.mem.get() + aligned;
            }
            // Chunk exhausted (or too small for this request): move on.
            ++cur_;
            off_ = 0;
            continue;
        }
        // Geometric growth: each new chunk is at least as large as
        // everything reserved so far, so total capacity doubles per
        // growth. The slack this leaves is the steady-state allocation
        // guarantee — pool high-water marks (NoC in-flight packets,
        // event-slab nodes) creep slightly past their warmup peaks,
        // and the doubling absorbs that creep without a new chunk.
        const std::size_t size =
            std::max({chunkBytes_, bytes + align, reserved_});
        chunks_.push_back({std::make_unique<std::byte[]>(size), size});
        reserved_ += size;
    }
}

void
Arena::reserve(std::size_t bytes)
{
    if (reserved_ >= bytes)
        return;
    const std::size_t size = bytes - reserved_;
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    reserved_ += size;
}

Arena &
threadArena()
{
    thread_local Arena arena;
    return arena;
}

} // namespace blitz::sim
