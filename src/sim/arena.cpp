#include "arena.hpp"

#include <algorithm>

namespace blitz::sim {

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    for (;;) {
        if (cur_ < chunks_.size()) {
            Chunk &c = chunks_[cur_];
            const std::size_t aligned = (off_ + align - 1) & ~(align - 1);
            if (aligned + bytes <= c.size) {
                off_ = aligned + bytes;
                return c.mem.get() + aligned;
            }
            // Chunk exhausted (or too small for this request): move on.
            ++cur_;
            off_ = 0;
            continue;
        }
        const std::size_t size = std::max(chunkBytes_, bytes + align);
        chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    }
}

std::size_t
Arena::bytesReserved() const
{
    std::size_t total = 0;
    for (const Chunk &c : chunks_)
        total += c.size;
    return total;
}

Arena &
threadArena()
{
    thread_local Arena arena;
    return arena;
}

} // namespace blitz::sim
