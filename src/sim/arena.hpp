/**
 * @file
 * Chunked bump allocator backing the event kernel's slabs.
 *
 * Sweep replications churn through millions of short-lived event and
 * packet nodes; an arena turns that churn into pointer bumps inside
 * recycled chunks. reset() retires every allocation at once but keeps
 * the chunks, so the next replication on the same worker thread runs
 * allocation-free from the start. The sweep harness resets the
 * per-thread arena between replications (see sweep::runSweep).
 *
 * Allocations are never individually freed, so the arena only suits
 * objects whose lifetime matches a replication (event-slab chunks,
 * packet pools) — owners must not hand arena memory to anything that
 * outlives the trial.
 */

#ifndef BLITZ_SIM_ARENA_HPP
#define BLITZ_SIM_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace blitz::sim {

/** Bump allocator over a list of recycled chunks. Not thread-safe. */
class Arena
{
  public:
    /** @param chunkBytes granularity of the backing chunks. */
    explicit Arena(std::size_t chunkBytes = 64 * 1024)
        : chunkBytes_(chunkBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes with @p align alignment. Never returns
     * nullptr; oversized requests get a dedicated chunk.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Typed convenience: uninitialized storage for @p n objects. */
    template <typename T>
    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Retire every allocation but keep the chunks for reuse. All
     * pointers handed out so far become invalid.
     */
    void
    reset()
    {
        cur_ = 0;
        off_ = 0;
        used_ = 0;
        ++epoch_;
    }

    /**
     * Reset generation — bumped every reset(). Owners of arena-backed
     * pools stamp the epoch at allocation time and assert it unchanged
     * on later use, turning silent use-after-reset corruption into an
     * immediate failure (see EventQueue::addChunk, noc pool release).
     */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Pre-size the arena to at least @p bytes of backing capacity in
     * one allocation. Mega-mesh runs call this up front (sized from
     * the topology) so slabs and pools never grow mid-simulation.
     */
    void reserve(std::size_t bytes);

    /** Total bytes of backing chunks held (capacity, not usage). */
    std::size_t
    bytesReserved() const
    {
        return reserved_;
    }

    /** Payload bytes served since the last reset(). */
    std::size_t bytesUsed() const { return used_; }

    /**
     * Largest bytesUsed() any epoch reached — the arena-pressure gauge
     * the introspection plane reports. Survives reset() on purpose:
     * sweep replications reset between trials, and the interesting
     * number is the worst trial. Deterministic (a pure function of the
     * allocation sequence, alignment padding excluded).
     */
    std::size_t bytesHighWater() const { return usedHighWater_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> mem;
        std::size_t size;
    };

    std::vector<Chunk> chunks_;
    std::size_t chunkBytes_;
    std::size_t cur_ = 0;      ///< index of the chunk being bumped
    std::size_t off_ = 0;      ///< bump offset within chunks_[cur_]
    std::size_t reserved_ = 0; ///< sum of chunk sizes
    std::size_t used_ = 0;     ///< payload bytes served this epoch
    std::size_t usedHighWater_ = 0; ///< max used_ across epochs
    std::uint64_t epoch_ = 0;
};

/**
 * The calling thread's arena. Sweep workers draw their replication's
 * event slab and packet pool from here; the harness resets it between
 * replications. Long-lived simulations on the main thread should keep
 * the default heap-backed slabs instead (a reset would pull the rug).
 */
Arena &threadArena();

} // namespace blitz::sim

#endif // BLITZ_SIM_ARENA_HPP
