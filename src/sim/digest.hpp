/**
 * @file
 * FNV-1a streaming digest.
 *
 * The repo's determinism contract ("a (seed, config) pair fully
 * determines a run") is enforced by comparing cheap order-sensitive
 * digests of simulation state across thread counts, kernel versions,
 * and record/replay round trips. This helper is that digest: FNV-1a
 * over explicitly-fed words, so two streams match iff the same values
 * arrived in the same order. Golden pins in tests/golden_trace_test.cpp
 * and the flight recorder's log digests both build on it.
 */

#ifndef BLITZ_SIM_DIGEST_HPP
#define BLITZ_SIM_DIGEST_HPP

#include <cstdint>
#include <cstring>

namespace blitz::sim {

/** Order-sensitive FNV-1a accumulator over 64-bit words. */
class Fnv1a
{
  public:
    Fnv1a &
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ull;
        }
        return *this;
    }

    Fnv1a &
    i64(std::int64_t v)
    {
        return u64(static_cast<std::uint64_t>(v));
    }

    /** Digest a double by bit pattern (exact, not by value). */
    Fnv1a &
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        return u64(bits);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace blitz::sim

#endif // BLITZ_SIM_DIGEST_HPP
