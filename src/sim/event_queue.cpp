#include "event_queue.hpp"

#include <algorithm>

namespace blitz::sim {

bool
EventQueue::isCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end())
        return false;
    // Each cancellation token is consumed exactly once.
    cancelled_.erase(it);
    return true;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        --pending_;
        if (isCancelled(e.id))
            continue;
        BLITZ_ASSERT(e.when >= now_, "event queue went backwards");
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().when <= limit) {
        if (runOne())
            ++executed;
    }
    // Advance time to the limit when asked to run to a horizon so that
    // repeated runUntil() calls observe monotonically increasing now().
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return executed;
}

} // namespace blitz::sim
