#include "event_queue.hpp"

namespace blitz::sim {

bool
EventQueue::runOne(Tick limit)
{
    while (!queue_.empty()) {
        if (cancelled_.erase(queue_.top().id) > 0) {
            // Tombstoned entry: drop it without executing or advancing
            // time, then look at the next candidate.
            live_.erase(queue_.top().id);
            queue_.pop();
            --pending_;
            continue;
        }
        if (queue_.top().when > limit)
            return false;
        Entry e = queue_.top();
        queue_.pop();
        --pending_;
        live_.erase(e.id);
        BLITZ_ASSERT(e.when >= now_, "event queue went backwards");
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    // runOne(limit) re-inspects the queue top after every pop, so a
    // cancelled front event can never unlock execution of a later
    // event beyond the horizon, and the count reflects exactly the
    // callbacks that ran.
    std::uint64_t executed = 0;
    while (runOne(limit))
        ++executed;
    // Advance time to the limit when asked to run to a horizon so that
    // repeated runUntil() calls observe monotonically increasing now().
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return executed;
}

} // namespace blitz::sim
