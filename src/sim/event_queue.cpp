#include "event_queue.hpp"

#include <cstring>

namespace blitz::sim {

EventQueue::~EventQueue()
{
    // Destroy surviving callbacks (scheduled or tombstoned); the slab
    // itself is either heap chunks we own or arena memory we don't.
    for (std::uint32_t slot = 0; slot < slotCount_; ++slot)
        destroyCallback(*node(slot));
    if (!arena_) {
        for (Node *chunk : chunks_)
            ::operator delete(chunk, std::align_val_t{alignof(Node)});
        for (void *block : entryBlocks_)
            ::operator delete(block);
    }
}

void
EventQueue::addChunk()
{
    if (arena_) {
        // Use-after-reset tripwire: arena-backed slab chunks become
        // dangling the moment the arena resets, so growing the slab
        // after a reset means the queue outlived its backing store.
        if (chunks_.empty() && entryChunksAllocated_ == 0)
            arenaEpoch_ = arena_->epoch();
        else
            BLITZ_ASSERT(arena_->epoch() == arenaEpoch_,
                         "event slab grown after its arena was reset");
    }
    void *mem =
        arena_ ? arena_->allocate(kChunkNodes * sizeof(Node),
                                  alignof(Node))
               : ::operator new(kChunkNodes * sizeof(Node),
                                std::align_val_t{alignof(Node)});
    Node *nodes = static_cast<Node *>(mem);
    const std::uint32_t base = slotCount_;
    for (std::uint32_t i = 0; i < kChunkNodes; ++i) {
        Node &n = *::new (static_cast<void *>(nodes + i)) Node;
        n.gen = 1;
        n.state = kFree;
        n.destroy = nullptr;
        n.nextFree =
            i + 1 < kChunkNodes ? base + i + 1 : freeHead_;
    }
    chunks_.push_back(nodes);
    slotCount_ += kChunkNodes;
    freeHead_ = base;
}

void
EventQueue::addEntryChunks()
{
    if (arena_) {
        if (chunks_.empty() && entryChunksAllocated_ == 0)
            arenaEpoch_ = arena_->epoch();
        else
            BLITZ_ASSERT(arena_->epoch() == arenaEpoch_,
                         "bucket pool grown after its arena was reset");
    }
    // Double the pool each growth: chunk demand tracks the number of
    // simultaneously occupied buckets, whose peak has high variance
    // around its mean — geometric growth absorbs post-warmup creep the
    // same way the old heap array's capacity doubling did.
    const std::uint32_t n =
        std::max(kEntryChunkBlock, entryChunksAllocated_);
    void *mem = arena_ ? arena_->allocate(n * sizeof(EntryChunk),
                                          alignof(EntryChunk))
                       : ::operator new(n * sizeof(EntryChunk));
    auto *block = static_cast<EntryChunk *>(mem);
    for (std::uint32_t i = 0; i < n; ++i) {
        block[i].next = freeChunks_;
        freeChunks_ = &block[i];
    }
    entryChunksAllocated_ += n;
    if (!arena_)
        entryBlocks_.push_back(mem);
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeHead_ == kNoSlot)
        addChunk();
    const std::uint32_t slot = freeHead_;
    freeHead_ = node(slot)->nextFree;
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Node &n = *node(slot);
    destroyCallback(n);
    ++n.gen; // invalidate any handle still pointing here
    n.state = kFree;
    n.nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::heapPush(HeapEntry e)
{
    // Hole-based sift-up into the far-heap: the new entry is held in a
    // register and parents slide down until its position is found (one
    // store per level instead of a three-store swap).
    std::size_t i = far_.size();
    far_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!entryBefore(e, far_[parent]))
            break;
        far_[i] = far_[parent];
        i = parent;
    }
    far_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = far_.size();
    const HeapEntry e = far_[i];
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (entryBefore(far_[c], far_[best]))
                best = c;
        }
        if (!entryBefore(far_[best], e))
            break;
        far_[i] = far_[best];
        i = best;
    }
    far_[i] = e;
}

void
EventQueue::heapPopFront()
{
    far_.front() = far_.back();
    far_.pop_back();
    if (!far_.empty())
        siftDown(0);
}

Tick
EventQueue::wheelNext(std::uint32_t &idxOut) const
{
    if (!occSummary_)
        return maxTick;
    // Rotated two-level bitmap scan starting at now_'s bucket: every
    // occupied bucket holds one tick in [now_, now_ + kWheelTicks), so
    // ring order from the cursor is tick order.
    const std::uint32_t start =
        static_cast<std::uint32_t>(now_) & (kWheelTicks - 1);
    const std::uint32_t w0 = start >> 6;
    const std::uint32_t b0 = start & 63;
    std::uint32_t idx;
    if (const std::uint64_t head = occWords_[w0] & (~std::uint64_t{0}
                                                    << b0)) {
        idx = (w0 << 6) +
              static_cast<std::uint32_t>(std::countr_zero(head));
    } else {
        const std::uint64_t hiMask =
            w0 + 1 >= kWheelWords ? 0
                                  : ~std::uint64_t{0} << (w0 + 1);
        const std::uint64_t hi = occSummary_ & hiMask;
        const std::uint64_t lo =
            occSummary_ & ((std::uint64_t{1} << w0) - 1);
        if (const std::uint64_t pick = hi ? hi : lo) {
            const auto w = static_cast<std::uint32_t>(
                std::countr_zero(pick));
            idx = (w << 6) + static_cast<std::uint32_t>(
                                 std::countr_zero(occWords_[w]));
        } else {
            const std::uint64_t tail =
                occWords_[w0] & ((std::uint64_t{1} << b0) - 1);
            if (!tail)
                return maxTick;
            idx = (w0 << 6) + static_cast<std::uint32_t>(
                                  std::countr_zero(tail));
        }
    }
    idxOut = idx;
    return now_ + ((idx - start) & (kWheelTicks - 1));
}

Tick
EventQueue::nextTick() const
{
    Tick t = batchIdx_ < batch_.size() ? batchTick_ : maxTick;
    std::uint32_t idx = 0;
    const Tick w = wheelNext(idx);
    if (w < t)
        t = w;
    if (!far_.empty() && far_.front().when < t)
        t = far_.front().when;
    return t;
}

bool
EventQueue::refillBatch(Tick limit)
{
    batch_.clear();
    batchIdx_ = 0;
    for (;;) {
        // Slide far events that now fall inside the window into their
        // buckets (their keys keep them in exact order at drain time).
        while (!far_.empty() && far_.front().when - now_ < kWheelTicks) {
            const HeapEntry e = far_.front();
            heapPopFront();
            wheelAppend(e);
        }
        std::uint32_t idx = 0;
        const Tick t = wheelNext(idx);
        if (t != maxTick) {
            Bucket &b = wheel_[idx];
            // Gather the chunk chain into the shared batch buffer —
            // one queue-global capacity high-water mark, like the old
            // heap array, so a burst tick reuses capacity every other
            // tick already paid for — and recycle the chunks. Grow
            // geometrically: insert() into a cleared vector resizes to
            // the exact requirement, which would turn every new
            // per-tick burst record into a realloc.
            if (b.count > batch_.capacity())
                batch_.reserve(std::max(batch_.capacity() * 2,
                                        std::size_t{b.count}));
            // Keep the merge scratch in lockstep with batch_ capacity
            // so a drain that needs sorting never allocates. Sorting
            // is rare on (prio, seq) keys — only a cross-priority
            // append breaks run order — so sizing the scratch lazily
            // inside the sort would push its first allocation past
            // any warmup into the audited steady state.
            if (mergeCap_ < batch_.capacity()) {
                mergeCap_ = batch_.capacity();
                mergeBuf_ = std::make_unique<HeapEntry[]>(mergeCap_);
            }
            for (EntryChunk *c = b.head; c;) {
                const std::uint32_t n =
                    c == b.tail ? b.tailCount : kEntriesPerChunk;
                batch_.insert(batch_.end(), c->e, c->e + n);
                EntryChunk *nx = c->next;
                putChunk(c);
                c = nx;
            }
            const bool wasSorted = b.sorted;
            b.head = b.tail = nullptr;
            b.tailCount = 0;
            b.count = 0;
            b.sorted = true;
            wheelClear(idx);
            if (!wasSorted)
                sortBatchByOrd();
            // Purge leading tombstones without advancing time — the
            // exact discard the old heap performed at pop, so a
            // cancelled front never unlocks events beyond the horizon.
            std::size_t k = 0;
            while (k < batch_.size() &&
                   node(batch_[k].slot)->state == kCancelled) {
                --entryCount_;
                --pending_;
                --cancelledTokens_;
                releaseSlot(batch_[k].slot);
                ++k;
            }
            if (k == batch_.size()) {
                batch_.clear();
                continue;
            }
            if (t > limit) {
                // Probed a tick past the horizon: re-file the
                // survivors (already in ord order, so the bucket stays
                // sorted) and stop without advancing time.
                for (std::size_t i = k; i < batch_.size(); ++i)
                    wheelAppend(batch_[i]);
                batch_.clear();
                return false;
            }
            BLITZ_ASSERT(t >= now_, "event queue went backwards");
            now_ = t;
            batchTick_ = t;
            batchIdx_ = k;
            // Introspection high-water marks, maintained here (once
            // per drained tick) instead of on the schedule path so the
            // hot enqueue stays untouched. entryCount_ still includes
            // this whole batch at this point.
            if (entryCount_ > depthHighWater_)
                depthHighWater_ = entryCount_;
            if (batch_.size() - k > batchHighWater_)
                batchHighWater_ = batch_.size() - k;
            return true;
        }
        if (far_.empty())
            return false;
        const HeapEntry top = far_.front();
        Node *n = node(top.slot);
        if (n->state == kCancelled) {
            heapPopFront();
            --entryCount_;
            --pending_;
            --cancelledTokens_;
            releaseSlot(top.slot);
            continue;
        }
        if (top.when > limit)
            return false;
        // The whole window is empty and the far front is live and
        // within the horizon: jump the window to it; the next
        // iteration migrates and drains it.
        now_ = top.when;
    }
}

void
EventQueue::mergeRuns(const HeapEntry *a, const HeapEntry *aEnd,
                      const HeapEntry *b, const HeapEntry *bEnd,
                      HeapEntry *out)
{
    while (a != aEnd && b != bEnd) {
        const bool takeA = a->ord <= b->ord;
        const HeapEntry *s = takeA ? a : b;
        *out++ = *s;
        a += takeA;
        b += 1 - static_cast<int>(takeA);
    }
    out = std::copy(a, aEnd, out);
    std::copy(b, bEnd, out);
}

void
EventQueue::sortBatchByOrd()
{
    const std::size_t n = batch_.size();
    // Detect the ascending runs the appends formed. One linear scan
    // over contiguous memory — trivial next to the merging it saves.
    runBounds_.clear();
    runBounds_.push_back(0);
    for (std::size_t i = 1; i < n; ++i)
        if (batch_[i].ord < batch_[i - 1].ord)
            runBounds_.push_back(static_cast<std::uint32_t>(i));
    runBounds_.push_back(static_cast<std::uint32_t>(n));
    if (mergeCap_ < n) {
        mergeCap_ = std::max(mergeCap_ * 2, n);
        mergeBuf_ = std::make_unique<HeapEntry[]>(mergeCap_);
    }
    // Bottom-up passes: merge adjacent run pairs, ping-ponging between
    // batch_ and the scratch buffer, halving the run count each pass.
    // The pair merges within one pass are independent, so they overlap
    // in the pipeline — a one-pass k-way tournament tree was measured
    // slower here because its per-entry replay is one serial chain of
    // dependent loads.
    HeapEntry *src = batch_.data();
    HeapEntry *dst = mergeBuf_.get();
    while (runBounds_.size() > 2) {
        std::size_t w = 0;
        std::size_t r = 0;
        for (; r + 2 < runBounds_.size(); r += 2) {
            mergeRuns(src + runBounds_[r], src + runBounds_[r + 1],
                      src + runBounds_[r + 1], src + runBounds_[r + 2],
                      dst + runBounds_[r]);
            runBounds_[w++] = runBounds_[r];
        }
        if (r + 2 == runBounds_.size()) {
            // Odd run out: carry it into this pass's buffer unmerged.
            std::memcpy(dst + runBounds_[r], src + runBounds_[r],
                        (runBounds_[r + 1] - runBounds_[r]) *
                            sizeof(HeapEntry));
            runBounds_[w++] = runBounds_[r];
        }
        runBounds_[w++] = static_cast<std::uint32_t>(n);
        runBounds_.resize(w);
        std::swap(src, dst);
    }
    if (src != batch_.data())
        std::memcpy(batch_.data(), src, n * sizeof(HeapEntry));
}

bool
EventQueue::runOne(Tick limit)
{
    BLITZ_ASSERT(!bind_.group,
                 "runOne() is not supported on a sharded anchor — "
                 "use runUntil()");
    for (;;) {
        while (batchIdx_ < batch_.size()) {
            if (batchTick_ > limit)
                return false;
            const HeapEntry e = batch_[batchIdx_++];
            Node *n = node(e.slot);
            --entryCount_;
            --pending_;
            if (n->state == kCancelled) {
                --cancelledTokens_;
                releaseSlot(e.slot);
                continue;
            }
            // Executing state makes a self-cancel during the callback
            // a no-op (the node is no longer Scheduled), matching the
            // pre-slab kernel which dropped the live token before
            // running.
            n->state = kExecuting;
            struct SlotGuard
            {
                EventQueue *eq;
                std::uint32_t slot;
                ~SlotGuard() { eq->releaseSlot(slot); }
            } guard{this, e.slot};
            ++executedTotal_;
            if (ctx_)
                ctx_->locus = n->locus;
            n->invoke(n->buf);
            return true;
        }
        if (!refillBatch(limit))
            return false;
    }
}

void
EventQueue::scheduleRaw(Tick when, std::uint64_t ord,
                        std::uint32_t locus, void (*invoke)(void *),
                        const void *payload, std::size_t bytes)
{
    BLITZ_ASSERT(when >= now_, "scheduling event in the past (", when,
                 " < ", now_, ")");
    BLITZ_ASSERT(bytes <= kInlineCallback,
                 "raw event payload exceeds the inline buffer");
    const std::uint32_t slot = acquireSlot();
    Node &n = *node(slot);
    n.state = kScheduled;
    n.locus = locus;
    n.invoke = invoke;
    n.destroy = nullptr; // mailbox payloads are trivially copyable
    std::memcpy(n.buf, payload, bytes);
    enqueue({when, ord, slot});
    ++pending_;
    ++scheduledTotal_;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    // A sharded anchor holds no events itself: delegate to the group's
    // bulk-synchronous superstep loop, then mirror the leaves' clock.
    if (bind_.group) {
        const std::uint64_t executed = bind_.runUntil(bind_.group,
                                                      limit);
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            if (bind_.leaves[s]->now_ > now_)
                now_ = bind_.leaves[s]->now_;
        return executed;
    }
    // Drain whole tick batches in a tight loop; refillBatch() purges
    // tombstones and enforces the horizon, so a cancelled front event
    // can never unlock execution of a later event beyond the limit,
    // and the count reflects exactly the callbacks that ran.
    std::uint64_t executed = 0;
    for (;;) {
        while (batchIdx_ < batch_.size()) {
            if (batchTick_ > limit)
                goto done;
            const HeapEntry e = batch_[batchIdx_++];
            Node *n = node(e.slot);
            --entryCount_;
            --pending_;
            if (n->state == kCancelled) {
                --cancelledTokens_;
                releaseSlot(e.slot);
                continue;
            }
            n->state = kExecuting;
            struct SlotGuard
            {
                EventQueue *eq;
                std::uint32_t slot;
                ~SlotGuard() { eq->releaseSlot(slot); }
            } guard{this, e.slot};
            ++executedTotal_;
            ++executed;
            if (ctx_)
                ctx_->locus = n->locus;
            n->invoke(n->buf);
        }
        if (!refillBatch(limit))
            break;
    }
done:
    // Advance time to the limit when asked to run to a horizon so that
    // repeated runUntil() calls observe monotonically increasing now().
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return executed;
}

} // namespace blitz::sim
