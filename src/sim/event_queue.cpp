#include "event_queue.hpp"

#include <cstring>

namespace blitz::sim {

ShardContext *&
tlsShardContext()
{
    thread_local ShardContext *ctx = nullptr;
    return ctx;
}

EventQueue::~EventQueue()
{
    // Destroy surviving callbacks (scheduled or tombstoned); the slab
    // itself is either heap chunks we own or arena memory we don't.
    for (std::uint32_t slot = 0; slot < slotCount_; ++slot)
        destroyCallback(*node(slot));
    if (!arena_) {
        for (Node *chunk : chunks_)
            ::operator delete(chunk, std::align_val_t{alignof(Node)});
    }
}

void
EventQueue::addChunk()
{
    if (arena_) {
        // Use-after-reset tripwire: arena-backed slab chunks become
        // dangling the moment the arena resets, so growing the slab
        // after a reset means the queue outlived its backing store.
        if (chunks_.empty())
            arenaEpoch_ = arena_->epoch();
        else
            BLITZ_ASSERT(arena_->epoch() == arenaEpoch_,
                         "event slab grown after its arena was reset");
    }
    void *mem =
        arena_ ? arena_->allocate(kChunkNodes * sizeof(Node),
                                  alignof(Node))
               : ::operator new(kChunkNodes * sizeof(Node),
                                std::align_val_t{alignof(Node)});
    Node *nodes = static_cast<Node *>(mem);
    const std::uint32_t base = slotCount_;
    for (std::uint32_t i = 0; i < kChunkNodes; ++i) {
        Node &n = *::new (static_cast<void *>(nodes + i)) Node;
        n.gen = 1;
        n.state = kFree;
        n.destroy = nullptr;
        n.nextFree =
            i + 1 < kChunkNodes ? base + i + 1 : freeHead_;
    }
    chunks_.push_back(nodes);
    slotCount_ += kChunkNodes;
    freeHead_ = base;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (freeHead_ == kNoSlot)
        addChunk();
    const std::uint32_t slot = freeHead_;
    freeHead_ = node(slot)->nextFree;
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Node &n = *node(slot);
    destroyCallback(n);
    ++n.gen; // invalidate any handle still pointing here
    n.state = kFree;
    n.nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::heapPush(HeapEntry e)
{
    // Hole-based sift-up: the new entry is held in a register and
    // parents slide down until its position is found (one store per
    // level instead of a three-store swap).
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!entryBefore(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[i];
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (entryBefore(heap_[c], heap_[best]))
                best = c;
        }
        if (!entryBefore(heap_[best], e))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = e;
}

void
EventQueue::heapPopFront()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
}

bool
EventQueue::runOne(Tick limit)
{
    BLITZ_ASSERT(!bind_.group,
                 "runOne() is not supported on a sharded anchor — "
                 "use runUntil()");
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        const std::uint32_t slot = top.slot;
        Node *n = node(slot);
        if (n->state == kCancelled) {
            // Tombstoned entry: drop it without executing or advancing
            // time, then look at the next candidate.
            heapPopFront();
            --pending_;
            --cancelledTokens_;
            releaseSlot(slot);
            continue;
        }
        if (top.when > limit)
            return false;
        BLITZ_ASSERT(top.when >= now_, "event queue went backwards");
        now_ = top.when;
        heapPopFront();
        --pending_;
        // Executing state makes a self-cancel during the callback a
        // no-op (the node is no longer Scheduled), matching the
        // pre-slab kernel which dropped the live token before running.
        n->state = kExecuting;
        struct SlotGuard
        {
            EventQueue *eq;
            std::uint32_t slot;
            ~SlotGuard() { eq->releaseSlot(slot); }
        } guard{this, slot};
        ++executedTotal_;
        if (ctx_)
            ctx_->locus = n->locus;
        n->invoke(n->buf);
        return true;
    }
    return false;
}

void
EventQueue::scheduleRaw(Tick when, std::uint64_t ord,
                        std::uint32_t locus, void (*invoke)(void *),
                        const void *payload, std::size_t bytes)
{
    BLITZ_ASSERT(when >= now_, "scheduling event in the past (", when,
                 " < ", now_, ")");
    BLITZ_ASSERT(bytes <= kInlineCallback,
                 "raw event payload exceeds the inline buffer");
    const std::uint32_t slot = acquireSlot();
    Node &n = *node(slot);
    n.state = kScheduled;
    n.locus = locus;
    n.invoke = invoke;
    n.destroy = nullptr; // mailbox payloads are trivially copyable
    std::memcpy(n.buf, payload, bytes);
    heapPush({when, ord, slot});
    ++pending_;
    ++scheduledTotal_;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    // A sharded anchor holds no events itself: delegate to the group's
    // bulk-synchronous superstep loop, then mirror the leaves' clock.
    if (bind_.group) {
        const std::uint64_t executed = bind_.runUntil(bind_.group,
                                                      limit);
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            if (bind_.leaves[s]->now_ > now_)
                now_ = bind_.leaves[s]->now_;
        return executed;
    }
    // runOne(limit) re-inspects the heap root after every pop, so a
    // cancelled front event can never unlock execution of a later
    // event beyond the horizon, and the count reflects exactly the
    // callbacks that ran.
    std::uint64_t executed = 0;
    while (runOne(limit))
        ++executed;
    // Advance time to the limit when asked to run to a horizon so that
    // repeated runUntil() calls observe monotonically increasing now().
    if (limit != maxTick && limit > now_)
        now_ = limit;
    return executed;
}

} // namespace blitz::sim
