/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The full-SoC model (NoC routers, BlitzCoin FSMs, accelerators, LDO
 * controllers) is event driven: components schedule callbacks at future
 * ticks and the queue executes them in (tick, priority, insertion-order)
 * order, so simulations are deterministic regardless of scheduling
 * pattern. The behavioral coin-exchange engine does not use this kernel;
 * it steps a global clock directly for Monte-Carlo speed.
 *
 * Internals (see DESIGN.md "Scheduler internals" and ch. 9 "Mega-mesh
 * hot path"): events live in slab-allocated, generation-counted nodes.
 * Ordering uses a calendar structure instead of a global heap: ticks
 * within a kWheelTicks window of now() hash into per-tick wheel
 * buckets (unsorted O(1) append), and a whole tick's bucket is drained
 * as one *batch*, sorted by the 64-bit ord key only when appends
 * arrived out of ord order (steady-state traffic appends in ascending
 * ord, so the common case never sorts). Events beyond the window park
 * in a small 4-ary far-heap and migrate into the wheel as time
 * advances. Because every entry carries the full (tick, priority,
 * insertion-seq) key and keys are unique, the drain order is exactly
 * the total order the old heap produced — batching is invisible to
 * the golden digests — but per-event cost no longer grows with the
 * pending-event population, which is what makes 100x100..1000x1000
 * meshes affordable. Callbacks are stored in a small inline buffer
 * inside the node (heap fallback only for oversized functors), so
 * scheduling an event performs zero allocations once the slab and the
 * first wheel revolution have warmed up. Cancellation is O(1): the
 * handle's generation is checked and the node tombstoned; drains
 * discard tombstones.
 *
 * Sharded mode (see DESIGN.md "BSP-sharded execution"): one queue can
 * act as the *anchor* of a sim::ShardGroup — existing call sites keep
 * scheduling through it, but events are routed to per-shard leaf
 * queues keyed by (tick, priority, origin locus, per-locus counter),
 * an ordering that is independent of how the mesh is partitioned. The
 * anchor itself then holds no events; runUntil() delegates to the
 * group's bulk-synchronous superstep loop.
 */

#ifndef BLITZ_SIM_EVENT_QUEUE_HPP
#define BLITZ_SIM_EVENT_QUEUE_HPP

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "arena.hpp"
#include "logging.hpp"
#include "types.hpp"

namespace blitz::sim {

/**
 * Relative ordering of events scheduled for the same tick.
 * Lower values run first.
 */
enum class Priority : int
{
    NocTransfer = 0,  ///< packet hops land before logic reacts to them
    Default = 10,
    Controller = 20,  ///< PM controllers act after state settles
    Stats = 30,       ///< sampling sees the post-update state
};

class EventQueue;
class ShardGroup;

/**
 * Thread-local execution context of a sharded run: which leaf queue
 * the current thread is driving, which shard it is, and the *locus* —
 * the mesh node in whose context the executing event runs. Events
 * scheduled while a context is active inherit its locus as the origin
 * component of their sort key, so per-locus insertion counters stay
 * owned by exactly one thread at a time.
 */
struct ShardContext
{
    EventQueue *queue = nullptr;
    std::uint32_t shard = 0;
    std::uint32_t locus = 0;
    /**
     * True when every shard is parked (setup code, the serial lane of
     * a superstep): scheduling may then insert directly into any leaf
     * instead of going through a mailbox.
     */
    bool serial = false;
};

/**
 * The calling thread's active shard context (null outside a phase).
 * Inline on purpose: the sharded hot path consults it several times
 * per event (scheduling, pool selection, now()), and an out-of-line
 * definition would turn each of those into a function call instead of
 * a single TLS-relative load. The pointee is trivially destructible,
 * so the thread_local needs no init guard.
 */
inline ShardContext *&
tlsShardContext()
{
    thread_local ShardContext *ctx = nullptr;
    return ctx;
}

/**
 * Everything an anchor queue needs to route scheduling calls into a
 * ShardGroup, expressed as plain pointers so the hot templates in this
 * header never need the group's definition (see sim/shard.hpp).
 */
struct ShardBinding
{
    ShardGroup *group = nullptr;
    /** shardCount leaf queues followed by the serial (global) lane. */
    EventQueue *const *leaves = nullptr;
    std::uint32_t shardCount = 0;
    /** Owning shard of each mesh node (size nodeCount). */
    const std::uint32_t *shardOfNode = nullptr;
    std::uint32_t nodeCount = 0;
    /** Per-locus insertion counters; index nodeCount = the serial lane. */
    std::uint64_t *locusCounters = nullptr;
    /** Park a cross-shard event in the (src, dst) mailbox. */
    void (*crossPush)(ShardGroup *, std::uint32_t srcShard,
                      std::uint32_t dstShard, Tick when,
                      std::uint64_t ord, std::uint32_t locus,
                      void (*invoke)(void *), const void *payload,
                      std::size_t bytes) = nullptr;
    /** The group's bulk-synchronous superstep loop. */
    std::uint64_t (*runUntil)(ShardGroup *, Tick limit) = nullptr;
};

/**
 * Time-ordered event queue.
 *
 * Events are arbitrary callables ordered by (tick, priority,
 * insertion order). Cancellation is supported through the handle
 * returned by schedule(); a cancelled event still occupies its queue
 * slot but is skipped when popped.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle used to cancel a scheduled event: the node's slot
     * index in the low 32 bits, its generation in the high 32. A slot
     * bumps its generation on every reuse, so a stale handle (already
     * executed or cancelled) simply fails the generation check.
     */
    using EventId = std::uint64_t;

    /**
     * @param arena backing store for the event slab; nullptr (the
     *        default) heap-allocates. Pass a sweep worker's arena to
     *        recycle slab chunks across replications — the queue must
     *        then be destroyed before the arena resets.
     */
    explicit EventQueue(Arena *arena = nullptr)
        : arena_(arena), wheel_(kWheelTicks)
    {
        // Floor for the drain buffer: small meshes peak at a few dozen
        // events per tick, and a warmup that tops out exactly at the
        // buffer's capacity would leave zero margin for steady-state
        // bursts one event larger. Growth past the floor doubles.
        batch_.reserve(2 * kEntriesPerChunk);
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Current simulated time. On a sharded anchor this is the driving
     * leaf's clock inside a phase and the group's high-water mark
     * between supersteps.
     */
    Tick
    now() const
    {
        if (bind_.group) {
            if (const ShardContext *c = tlsShardContext())
                return c->queue->now_;
        }
        return now_;
    }

    /**
     * Schedule a callable at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callable to execute; stored inline in the event node
     *        when it fits kInlineCallback bytes (heap otherwise).
     * @param prio same-tick ordering class.
     * @return handle usable with cancel() (0 in sharded mode:
     *         cross-thread cancellation is not supported).
     */
    template <typename Fn>
    EventId
    schedule(Tick when, Fn &&fn, Priority prio = Priority::Default)
    {
        if (bind_.group)
            return routeSchedule(when, std::forward<Fn>(fn), prio);
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        const std::uint32_t slot = acquireSlot();
        Node &n = *node(slot);
        n.state = kScheduled;
        emplaceCallback(n, std::forward<Fn>(fn));
        enqueue({when, packOrd(prio, nextSeq_++), slot});
        ++pending_;
        ++scheduledTotal_;
        return (static_cast<EventId>(n.gen) << 32) | slot;
    }

    /** Schedule a callable @p delta ticks from now. */
    template <typename Fn>
    EventId
    scheduleIn(Tick delta, Fn &&fn, Priority prio = Priority::Default)
    {
        return schedule(now() + delta, std::forward<Fn>(fn), prio);
    }

    /**
     * Schedule a callable that executes *in the context of* mesh node
     * @p node — identical to schedule() on a plain queue, but on a
     * sharded anchor the event is placed in the node's owning shard
     * (through the epoch mailbox when the target is another shard mid-
     * phase) and runs with its locus set to @p node. All NoC hop and
     * delivery events route through here; a cross-shard @p when must
     * respect the group's lookahead horizon (strictly after the
     * current epoch tick).
     */
    template <typename Fn>
    EventId
    scheduleAtNode(std::uint32_t node, Tick when, Fn &&fn,
                   Priority prio = Priority::Default)
    {
        if (!bind_.group)
            return schedule(when, std::forward<Fn>(fn), prio);
        ShardContext *c = tlsShardContext();
        BLITZ_ASSERT(node < bind_.nodeCount,
                     "scheduleAtNode target out of range");
        // Origin = the executing locus; setup-time calls charge the
        // target node's own counter (there is no executing event).
        const std::uint32_t origin = c ? c->locus : node;
        const std::uint64_t ord = packOrdSharded(
            prio, origin, bind_.locusCounters[origin]++);
        const std::uint32_t target = bind_.shardOfNode[node];
        if (!c || c->serial || target == c->shard)
            return bind_.leaves[target]->scheduleKeyed(
                when, ord, node, std::forward<Fn>(fn));
        using F = std::decay_t<Fn>;
        static_assert(std::is_trivially_copyable_v<F> &&
                          sizeof(F) <= kInlineCallback &&
                          alignof(F) <= alignof(std::max_align_t),
                      "cross-shard events must be small trivially "
                      "copyable callables");
        F f(std::forward<Fn>(fn));
        bind_.crossPush(
            bind_.group, c->shard, target, when, ord, node,
            [](void *p) {
                (*std::launder(reinterpret_cast<F *>(p)))();
            },
            &f, sizeof f);
        return 0;
    }

    /**
     * Leaf-queue insertion with a precomputed sharded sort key; used
     * by the anchor's routing and the group's mailbox drain. The
     * locus is stamped on the node so execution can restore it.
     */
    template <typename Fn>
    EventId
    scheduleKeyed(Tick when, std::uint64_t ord, std::uint32_t locus,
                  Fn &&fn)
    {
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        const std::uint32_t slot = acquireSlot();
        Node &n = *node(slot);
        n.state = kScheduled;
        n.locus = locus;
        emplaceCallback(n, std::forward<Fn>(fn));
        enqueue({when, ord, slot});
        ++pending_;
        ++scheduledTotal_;
        return (static_cast<EventId>(n.gen) << 32) | slot;
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1): the generation check rejects stale or unknown handles on
     * the spot, and a live node is tombstoned (callback destroyed
     * immediately, heap entry discarded when it surfaces). The token
     * count stays bounded by pending() across arbitrarily long runs.
     *
     * Unsupported on a sharded anchor (events live in leaf queues on
     * other threads); sharded schedule() returns 0 and cancel(0) is
     * always a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        BLITZ_ASSERT(!bind_.group || id == 0,
                     "cancel() is not supported in sharded mode");
        const auto slot = static_cast<std::uint32_t>(id);
        if (slot >= slotCount_)
            return;
        Node &n = *node(slot);
        if (n.gen != static_cast<std::uint32_t>(id >> 32) ||
            n.state != kScheduled)
            return;
        n.state = kCancelled;
        destroyCallback(n);
        ++cancelledTokens_;
    }

    /** Number of events still scheduled (including cancelled ones). */
    std::size_t
    pending() const
    {
        if (!bind_.group)
            return pending_;
        std::size_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->pending_;
        return total;
    }

    /**
     * Number of unconsumed cancellation tokens. Bounded by pending():
     * a token is dropped when its entry pops, and cancel() refuses
     * ids that are no longer scheduled.
     */
    std::size_t cancelledTokens() const { return cancelledTokens_; }

    /** True when no runnable events remain. */
    bool
    empty() const
    {
        if (!bind_.group)
            return entryCount_ == 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            if (bind_.leaves[s]->entryCount_ != 0)
                return false;
        return true;
    }

    /**
     * Cumulative events scheduled / executed since construction —
     * always-on observability counters (a plain increment on paths
     * that already write the slab, so they cost nothing measurable).
     * Summed over the leaves on a sharded anchor (read only between
     * phases or from the serial lane).
     */
    std::uint64_t
    totalScheduled() const
    {
        if (!bind_.group)
            return scheduledTotal_;
        std::uint64_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->scheduledTotal_;
        return total;
    }
    std::uint64_t
    totalExecuted() const
    {
        if (!bind_.group)
            return executedTotal_;
        std::uint64_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->executedTotal_;
        return total;
    }

    /**
     * Pending-entry high-water mark, sampled at batch refill (tick
     * granularity — a within-tick burst that drains before the next
     * refill is invisible, which is exactly the resolution the
     * introspection plane needs). Deterministic: a pure function of
     * the schedule, never of wall-clock. Max over leaves on a sharded
     * anchor.
     */
    std::size_t
    depthHighWater() const
    {
        if (!bind_.group)
            return depthHighWater_;
        std::size_t hw = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            hw = std::max(hw, bind_.leaves[s]->depthHighWater_);
        return hw;
    }

    /** Largest same-tick batch ever drained (max over leaves). */
    std::size_t
    batchHighWater() const
    {
        if (!bind_.group)
            return batchHighWater_;
        std::size_t hw = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            hw = std::max(hw, bind_.leaves[s]->batchHighWater_);
        return hw;
    }

    /**
     * Turn this queue into the anchor of a shard group (or detach it
     * again when @p b.group is null). The anchor must be empty: its
     * own heap never holds events while bound — every scheduling call
     * routes into the group's leaf queues.
     */
    void
    bindShardGroup(const ShardBinding &b)
    {
        BLITZ_ASSERT(entryCount_ == 0 && pending_ == 0,
                     "anchor queue must be empty when (un)binding");
        bind_ = b;
    }

    /** The active shard binding (group is null on a plain queue). */
    const ShardBinding &binding() const { return bind_; }

    /**
     * Run events until the queue drains or @p limit is passed.
     *
     * No event with when > limit ever executes — cancelled entries at
     * the front are discarded without unlocking later events beyond
     * the horizon.
     * @param limit stop before executing events scheduled after this tick.
     * @return number of events executed (cancelled entries don't count).
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Execute the next runnable event at or before @p limit.
     * Cancelled entries encountered on the way are discarded.
     * @return false if no runnable event exists within the horizon.
     */
    bool runOne(Tick limit = maxTick);

    /** Callback bytes stored inline in an event node. */
    static constexpr std::size_t kInlineCallback = 96;

  private:
    friend class ShardGroup; ///< drives the leaf queues directly
    friend class LocusScope; ///< installs setup-time shard contexts

    enum NodeState : std::uint8_t
    {
        kFree = 0,
        kScheduled,
        kCancelled,
        kExecuting,
    };

    /**
     * One slab slot. Trivial on purpose: the slab never runs
     * constructors or destructors wholesale — callback lifetime is
     * managed explicitly through invoke/destroy function pointers.
     * The sort key lives in the heap entry, not here, so the hot
     * sift loops never dereference the slab; with the 96-byte inline
     * callback buffer a node is exactly two cache lines (the locus
     * stamp rides in what used to be padding before the buffer).
     */
    struct Node
    {
        void (*invoke)(void *);
        void (*destroy)(void *); ///< null when nothing to destroy
        std::uint32_t gen;
        std::uint32_t nextFree;
        std::uint32_t locus; ///< execution locus (sharded mode only)
        NodeState state;
        alignas(std::max_align_t) unsigned char buf[kInlineCallback];
    };

    /**
     * Heap element: the complete (when, priority, insertion-seq) sort
     * key plus the owning slot. Priority and sequence pack into one
     * word — 16 bits of priority class over a 48-bit sequence counter
     * (2^48 events ≈ centuries of simulated work) — so ordering is
     * two integer compares over contiguous memory.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t ord;
        std::uint32_t slot;
    };

    static std::uint64_t
    packOrd(Priority prio, std::uint64_t seq)
    {
        const auto p = static_cast<std::int64_t>(prio);
        BLITZ_ASSERT(p >= 0 && p < 0x8000, "priority out of range");
        BLITZ_ASSERT(seq < (std::uint64_t{1} << 48),
                     "insertion sequence overflow");
        return (static_cast<std::uint64_t>(p) << 48) | seq;
    }

    /**
     * Sharded same-tick sort key: (priority, origin locus, per-locus
     * counter) packed into the same 64-bit ord word the legacy
     * (priority, seq) key uses — 8 bits of priority over a 20-bit
     * locus (1M mesh nodes + the serial lane) over a 36-bit counter.
     * The key is a pure function of *which mesh node scheduled the
     * event and how many events that node had scheduled before*, so
     * it is identical for every shard count — the property the golden
     * digests pin. Origin counters are only ever bumped by the thread
     * executing at that locus, so they need no synchronization.
     */
    /// Bits of the sharded ord key spent on the scheduling locus.
    static constexpr unsigned kLocusBits = 20;

    // The mesh-size contract: every mesh node plus the serial lane's
    // locus (nodeCount, one past the mesh) must fit the locus field.
    static_assert(kMaxMeshNodes + 1 <= (std::size_t{1} << kLocusBits),
                  "kMaxMeshNodes no longer fits the sharded ord key's "
                  "locus field");

    static std::uint64_t
    packOrdSharded(Priority prio, std::uint32_t locus,
                   std::uint64_t counter)
    {
        const auto p = static_cast<std::int64_t>(prio);
        BLITZ_ASSERT(p >= 0 && p < 0x100, "priority out of range");
        BLITZ_ASSERT(locus < (1u << kLocusBits), "locus out of range");
        BLITZ_ASSERT(counter < (std::uint64_t{1} << 36),
                     "per-locus counter overflow");
        return (static_cast<std::uint64_t>(p) << 56) |
               (static_cast<std::uint64_t>(locus) << 36) | counter;
    }

    /**
     * schedule() tail for a bound anchor: events from an executing
     * shard context stay in that context's leaf at its locus; events
     * from plain (setup / observer) code with no context go to the
     * serial lane, which runs between supersteps in deterministic
     * order — where periodic audits and stat samplers belong.
     */
    template <typename Fn>
    EventId
    routeSchedule(Tick when, Fn &&fn, Priority prio)
    {
        ShardContext *c = tlsShardContext();
        const std::uint32_t locus = c ? c->locus : bind_.nodeCount;
        EventQueue *leaf = c ? c->queue
                             : bind_.leaves[bind_.shardCount];
        return leaf->scheduleKeyed(
            when,
            packOrdSharded(prio, locus, bind_.locusCounters[locus]++),
            locus, std::forward<Fn>(fn));
    }

    /**
     * Type-erased variant of scheduleKeyed() for mailbox entries whose
     * payload was captured as raw (trivially copyable) bytes.
     */
    void scheduleRaw(Tick when, std::uint64_t ord, std::uint32_t locus,
                     void (*invoke)(void *), const void *payload,
                     std::size_t bytes);

    /** Earliest scheduled tick (maxTick when the leaf is empty). */
    Tick nextTick() const;

    /**
     * Move a drained leaf's clock to the end of a phase so relative
     * scheduling after the phase sees the same "time passed" semantics
     * runUntil() provides on a plain queue.
     */
    void
    advanceTo(Tick limit)
    {
        if (limit != maxTick && limit > now_)
            now_ = limit;
    }

    /** Install the context runOne() stamps the executing locus into. */
    void setContext(ShardContext *c) { ctx_ = c; }

    static bool
    entryBefore(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.ord < b.ord;
    }

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint32_t kChunkNodes = 256;

    /**
     * Calendar window in ticks (power of two). Ticks in
     * [now, now + kWheelTicks) map to wheel buckets; later events park
     * in the far-heap until the window slides over them. 4096 ticks is
     * 5.1 us of simulated time — NoC hops (+1 tick) and most protocol
     * timers land in the wheel; only long backoff/audit timers pay the
     * (small) far-heap log cost.
     */
    static constexpr std::uint32_t kWheelTicks = 4096;
    static constexpr std::uint32_t kWheelWords = kWheelTicks / 64;

    /**
     * Fixed-size slice of a bucket's entry list. Chunks come from a
     * queue-global free pool, so storage high-water marks are shared
     * across all buckets — a burst tick draws from the same pool every
     * other tick warmed, keeping steady state allocation-free the way
     * the old single heap array was (per-bucket vectors would ratchet
     * 4096 independent capacities and realloc on every new local
     * maximum).
     */
    struct EntryChunk
    {
        HeapEntry e[63];
        EntryChunk *next;
    };
    static constexpr std::uint32_t kEntriesPerChunk = 63;
    static constexpr std::uint32_t kEntryChunkBlock = 8;

    /**
     * One tick's pending events, appended in schedule order as a chunk
     * chain. `sorted` tracks whether appends arrived in ascending ord
     * — true for steady-state legacy-key traffic (ord grows with
     * insertion sequence), so the drain skips ordering work entirely.
     * Sharded (prio, locus, counter) keys instead arrive as a few
     * ascending *runs* (the locus component restarts once per
     * scheduling pass within a tick, and ejection-overflow buckets
     * collect one run per source tick); the drain handles those with
     * a natural merge over the detected runs, not a general sort.
     */
    struct Bucket
    {
        EntryChunk *head = nullptr;
        EntryChunk *tail = nullptr;
        std::uint64_t lastOrd = 0;
        std::uint32_t tailCount = 0;
        std::uint32_t count = 0; ///< total entries in the chain
        bool sorted = true;
    };

    Node *
    node(std::uint32_t slot)
    {
        return &chunks_[slot / kChunkNodes][slot % kChunkNodes];
    }

    template <typename Fn>
    static void
    emplaceCallback(Node &n, Fn &&fn)
    {
        using F = std::decay_t<Fn>;
        static_assert(std::is_invocable_v<F &>,
                      "event callback must be invocable with no args");
        if constexpr (sizeof(F) <= kInlineCallback &&
                      alignof(F) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(n.buf)) F(std::forward<Fn>(fn));
            n.invoke = [](void *p) {
                (*std::launder(reinterpret_cast<F *>(p)))();
            };
            if constexpr (std::is_trivially_destructible_v<F>) {
                n.destroy = nullptr;
            } else {
                n.destroy = [](void *p) {
                    std::launder(reinterpret_cast<F *>(p))->~F();
                };
            }
        } else {
            // Oversized functor: one heap allocation, pointer parked
            // in the inline buffer.
            F *f = new F(std::forward<Fn>(fn));
            std::memcpy(n.buf, &f, sizeof f);
            n.invoke = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                (*f)();
            };
            n.destroy = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                delete f;
            };
        }
    }

    static void
    destroyCallback(Node &n)
    {
        if (n.destroy) {
            n.destroy(n.buf);
            n.destroy = nullptr;
        }
    }

    /**
     * Route a fully keyed entry to its destination: the live batch
     * (same-tick scheduling during that tick's drain — spliced into
     * the un-executed tail by ord so ordering is preserved), a wheel
     * bucket (within the window), or the far-heap.
     */
    void
    enqueue(const HeapEntry &e)
    {
        ++entryCount_;
        if (e.when == now_ && batchIdx_ < batch_.size()) {
            const auto it = std::lower_bound(
                batch_.begin() +
                    static_cast<std::ptrdiff_t>(batchIdx_),
                batch_.end(), e,
                [](const HeapEntry &a, const HeapEntry &b) {
                    return a.ord < b.ord;
                });
            batch_.insert(it, e);
            return;
        }
        if (e.when - now_ < kWheelTicks)
            wheelAppend(e);
        else
            heapPush(e);
    }

    /** Append into the bucket of e.when (must be inside the window). */
    void
    wheelAppend(const HeapEntry &e)
    {
        const std::uint32_t idx =
            static_cast<std::uint32_t>(e.when) & (kWheelTicks - 1);
        Bucket &b = wheel_[idx];
        if (!b.head) {
            occWords_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            occSummary_ |= std::uint64_t{1} << (idx >> 6);
            b.head = b.tail = takeChunk();
            b.tailCount = 0;
            b.count = 0;
            b.sorted = true;
        } else {
            if (b.sorted && e.ord < b.lastOrd)
                b.sorted = false;
            if (b.tailCount == kEntriesPerChunk) {
                EntryChunk *c = takeChunk();
                b.tail->next = c;
                b.tail = c;
                b.tailCount = 0;
            }
        }
        b.lastOrd = e.ord;
        b.tail->e[b.tailCount++] = e;
        ++b.count;
    }

    /** Pop an entry chunk from the free pool, growing it if dry. */
    EntryChunk *
    takeChunk()
    {
        if (!freeChunks_)
            addEntryChunks();
        EntryChunk *c = freeChunks_;
        freeChunks_ = c->next;
        c->next = nullptr;
        return c;
    }

    void
    putChunk(EntryChunk *c)
    {
        c->next = freeChunks_;
        freeChunks_ = c;
    }

    /** Clear a drained bucket's occupancy bit. */
    void
    wheelClear(std::uint32_t idx)
    {
        occWords_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        if (!occWords_[idx >> 6])
            occSummary_ &= ~(std::uint64_t{1} << (idx >> 6));
    }

    /**
     * Earliest occupied wheel tick at or after now_ (maxTick when the
     * wheel is empty); @p idxOut receives its bucket index.
     */
    Tick wheelNext(std::uint32_t &idxOut) const;

    /**
     * Install the next drainable tick's events as the live batch:
     * migrates far events into the window, sorts the bucket if appends
     * arrived out of ord order, purges leading tombstones (exactly the
     * old heap's pop-side discard), and refuses ticks past @p limit.
     * Returns false when nothing runnable remains within the horizon.
     */
    bool refillBatch(Tick limit);

    /**
     * Merge two ascending-ord runs into @p out, branch-free in the
     * inner loop. The runs carry near-random ord interleavings
     * (opposite-direction hop packets), so a branchy merge mispredicts
     * about every other entry; selecting the source via arithmetic
     * keeps the pipeline full and lets independent run-pair merges
     * within one pass overlap.
     */
    static void mergeRuns(const HeapEntry *a, const HeapEntry *aEnd,
                          const HeapEntry *b, const HeapEntry *bEnd,
                          HeapEntry *out);

    /**
     * Restore ascending-ord order in batch_ by a natural bottom-up
     * merge over the ascending runs the appends formed. Sharded-key
     * buckets concatenate ~30 short runs in mesh steady state
     * (same-tick hops execute in origin-locus order but append keyed
     * by the next router, so opposite-direction packets interleave
     * descents); log2(runs) branch-free passes beat both std::sort and
     * a one-pass k-way tournament tree here, the latter because its
     * per-entry replay is a serial chain of dependent loads while the
     * pair merges within a pass pipeline independently.
     */
    void sortBatchByOrd();

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);
    void addChunk();
    void addEntryChunks();
    void heapPush(HeapEntry e);
    void heapPopFront();
    void siftDown(std::size_t i);

    Arena *arena_;
    std::vector<Node *> chunks_;
    std::vector<Bucket> wheel_; ///< kWheelTicks per-tick buckets
    std::array<std::uint64_t, kWheelWords> occWords_{};
    std::uint64_t occSummary_ = 0; ///< nonzero occWords_ bitmap
    std::vector<HeapEntry> far_;   ///< 4-ary min-heap beyond the window
    std::vector<HeapEntry> batch_; ///< the tick being drained, by ord
    /// Scratch for the drain-time k-way run merge. A raw buffer, not a
    /// vector: entries are written front to back and copied out, so
    /// value-initializing the tail on every growth would be pure waste.
    std::unique_ptr<HeapEntry[]> mergeBuf_;
    std::size_t mergeCap_ = 0;             ///< mergeBuf_ capacity
    std::vector<std::uint32_t> runBounds_; ///< run boundaries, reused
    std::size_t batchIdx_ = 0;     ///< next batch entry to execute
    Tick batchTick_ = 0;           ///< tick of the live batch
    std::size_t entryCount_ = 0;   ///< wheel + far + batch remainder
    EntryChunk *freeChunks_ = nullptr; ///< bucket-storage free pool
    std::vector<void *> entryBlocks_;  ///< heap-owned chunk blocks
    std::uint32_t entryChunksAllocated_ = 0;
    std::uint32_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t pending_ = 0;
    std::size_t cancelledTokens_ = 0;
    std::uint64_t scheduledTotal_ = 0;
    std::uint64_t executedTotal_ = 0;
    std::size_t depthHighWater_ = 0; ///< entryCount_ max, per refill
    std::size_t batchHighWater_ = 0; ///< largest same-tick batch
    std::uint64_t arenaEpoch_ = 0; ///< arena epoch at first chunk
    ShardBinding bind_{};          ///< anchor routing (group == null
                                   ///< on plain queues and leaves)
    ShardContext *ctx_ = nullptr;  ///< leaf-side execution context
};

/**
 * RAII shard context for setup-time code that schedules *on behalf of*
 * a specific mesh node while no event is executing (startAll, audit
 * repair actions): within the scope, scheduling through the anchor
 * lands in @p node's owning leaf with @p node as the origin locus, so
 * the resulting sort keys match what the node itself would have
 * produced. No-op when the queue is not a sharded anchor.
 */
class LocusScope
{
  public:
    LocusScope(EventQueue &anchor, std::uint32_t node)
        : saved_(tlsShardContext())
    {
        const ShardBinding &b = anchor.bind_;
        if (!b.group)
            return;
        BLITZ_ASSERT(!saved_ || saved_->serial,
                     "LocusScope inside a parallel phase");
        ctx_.queue = b.leaves[b.shardOfNode[node]];
        ctx_.shard = b.shardOfNode[node];
        ctx_.locus = node;
        ctx_.serial = true;
        // The borrowed leaf may have idled for many supersteps, so its
        // clock can lag the caller's present; lift it before lending
        // the context out, or relative scheduling (hop latencies, timer
        // periods) would be anchored at the leaf's last active tick and
        // land in other leaves' past. Safe: an idle leaf has no pending
        // event at or before the present — it would have run this
        // superstep otherwise.
        ctx_.queue->advanceTo(saved_ ? saved_->queue->now_
                                     : anchor.now_);
        tlsShardContext() = &ctx_;
    }
    ~LocusScope() { tlsShardContext() = saved_; }
    LocusScope(const LocusScope &) = delete;
    LocusScope &operator=(const LocusScope &) = delete;

  private:
    ShardContext *saved_;
    ShardContext ctx_{};
};

} // namespace blitz::sim

#endif // BLITZ_SIM_EVENT_QUEUE_HPP
