/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The full-SoC model (NoC routers, BlitzCoin FSMs, accelerators, LDO
 * controllers) is event driven: components schedule callbacks at future
 * ticks and the queue executes them in (tick, priority, insertion-order)
 * order, so simulations are deterministic regardless of scheduling
 * pattern. The behavioral coin-exchange engine does not use this kernel;
 * it steps a global clock directly for Monte-Carlo speed.
 *
 * Internals (see DESIGN.md "Scheduler internals"): events live in
 * slab-allocated, generation-counted nodes ordered by a 4-ary min-heap
 * whose entries carry the full (tick, priority, insertion-seq) sort
 * key — sifting compares contiguous heap entries and never touches
 * the slab. Callbacks are stored in a small inline buffer inside the
 * node (heap fallback only for oversized functors), so scheduling an
 * event performs zero allocations once the slab has warmed up.
 * Cancellation is O(1): the handle's generation is checked and the
 * node tombstoned; the heap discards tombstones at pop.
 *
 * Sharded mode (see DESIGN.md "BSP-sharded execution"): one queue can
 * act as the *anchor* of a sim::ShardGroup — existing call sites keep
 * scheduling through it, but events are routed to per-shard leaf
 * queues keyed by (tick, priority, origin locus, per-locus counter),
 * an ordering that is independent of how the mesh is partitioned. The
 * anchor itself then holds no events; runUntil() delegates to the
 * group's bulk-synchronous superstep loop.
 */

#ifndef BLITZ_SIM_EVENT_QUEUE_HPP
#define BLITZ_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "arena.hpp"
#include "logging.hpp"
#include "types.hpp"

namespace blitz::sim {

/**
 * Relative ordering of events scheduled for the same tick.
 * Lower values run first.
 */
enum class Priority : int
{
    NocTransfer = 0,  ///< packet hops land before logic reacts to them
    Default = 10,
    Controller = 20,  ///< PM controllers act after state settles
    Stats = 30,       ///< sampling sees the post-update state
};

class EventQueue;
class ShardGroup;

/**
 * Thread-local execution context of a sharded run: which leaf queue
 * the current thread is driving, which shard it is, and the *locus* —
 * the mesh node in whose context the executing event runs. Events
 * scheduled while a context is active inherit its locus as the origin
 * component of their sort key, so per-locus insertion counters stay
 * owned by exactly one thread at a time.
 */
struct ShardContext
{
    EventQueue *queue = nullptr;
    std::uint32_t shard = 0;
    std::uint32_t locus = 0;
    /**
     * True when every shard is parked (setup code, the serial lane of
     * a superstep): scheduling may then insert directly into any leaf
     * instead of going through a mailbox.
     */
    bool serial = false;
};

/** The calling thread's active shard context (null outside a phase). */
ShardContext *&tlsShardContext();

/**
 * Everything an anchor queue needs to route scheduling calls into a
 * ShardGroup, expressed as plain pointers so the hot templates in this
 * header never need the group's definition (see sim/shard.hpp).
 */
struct ShardBinding
{
    ShardGroup *group = nullptr;
    /** shardCount leaf queues followed by the serial (global) lane. */
    EventQueue *const *leaves = nullptr;
    std::uint32_t shardCount = 0;
    /** Owning shard of each mesh node (size nodeCount). */
    const std::uint32_t *shardOfNode = nullptr;
    std::uint32_t nodeCount = 0;
    /** Per-locus insertion counters; index nodeCount = the serial lane. */
    std::uint64_t *locusCounters = nullptr;
    /** Park a cross-shard event in the (src, dst) mailbox. */
    void (*crossPush)(ShardGroup *, std::uint32_t srcShard,
                      std::uint32_t dstShard, Tick when,
                      std::uint64_t ord, std::uint32_t locus,
                      void (*invoke)(void *), const void *payload,
                      std::size_t bytes) = nullptr;
    /** The group's bulk-synchronous superstep loop. */
    std::uint64_t (*runUntil)(ShardGroup *, Tick limit) = nullptr;
};

/**
 * Time-ordered event queue.
 *
 * Events are arbitrary callables ordered by (tick, priority,
 * insertion order). Cancellation is supported through the handle
 * returned by schedule(); a cancelled event still occupies its queue
 * slot but is skipped when popped.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle used to cancel a scheduled event: the node's slot
     * index in the low 32 bits, its generation in the high 32. A slot
     * bumps its generation on every reuse, so a stale handle (already
     * executed or cancelled) simply fails the generation check.
     */
    using EventId = std::uint64_t;

    /**
     * @param arena backing store for the event slab; nullptr (the
     *        default) heap-allocates. Pass a sweep worker's arena to
     *        recycle slab chunks across replications — the queue must
     *        then be destroyed before the arena resets.
     */
    explicit EventQueue(Arena *arena = nullptr) : arena_(arena) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Current simulated time. On a sharded anchor this is the driving
     * leaf's clock inside a phase and the group's high-water mark
     * between supersteps.
     */
    Tick
    now() const
    {
        if (bind_.group) {
            if (const ShardContext *c = tlsShardContext())
                return c->queue->now_;
        }
        return now_;
    }

    /**
     * Schedule a callable at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callable to execute; stored inline in the event node
     *        when it fits kInlineCallback bytes (heap otherwise).
     * @param prio same-tick ordering class.
     * @return handle usable with cancel() (0 in sharded mode:
     *         cross-thread cancellation is not supported).
     */
    template <typename Fn>
    EventId
    schedule(Tick when, Fn &&fn, Priority prio = Priority::Default)
    {
        if (bind_.group)
            return routeSchedule(when, std::forward<Fn>(fn), prio);
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        const std::uint32_t slot = acquireSlot();
        Node &n = *node(slot);
        n.state = kScheduled;
        emplaceCallback(n, std::forward<Fn>(fn));
        heapPush({when, packOrd(prio, nextSeq_++), slot});
        ++pending_;
        ++scheduledTotal_;
        return (static_cast<EventId>(n.gen) << 32) | slot;
    }

    /** Schedule a callable @p delta ticks from now. */
    template <typename Fn>
    EventId
    scheduleIn(Tick delta, Fn &&fn, Priority prio = Priority::Default)
    {
        return schedule(now() + delta, std::forward<Fn>(fn), prio);
    }

    /**
     * Schedule a callable that executes *in the context of* mesh node
     * @p node — identical to schedule() on a plain queue, but on a
     * sharded anchor the event is placed in the node's owning shard
     * (through the epoch mailbox when the target is another shard mid-
     * phase) and runs with its locus set to @p node. All NoC hop and
     * delivery events route through here; a cross-shard @p when must
     * respect the group's lookahead horizon (strictly after the
     * current epoch tick).
     */
    template <typename Fn>
    EventId
    scheduleAtNode(std::uint32_t node, Tick when, Fn &&fn,
                   Priority prio = Priority::Default)
    {
        if (!bind_.group)
            return schedule(when, std::forward<Fn>(fn), prio);
        ShardContext *c = tlsShardContext();
        BLITZ_ASSERT(node < bind_.nodeCount,
                     "scheduleAtNode target out of range");
        // Origin = the executing locus; setup-time calls charge the
        // target node's own counter (there is no executing event).
        const std::uint32_t origin = c ? c->locus : node;
        const std::uint64_t ord = packOrdSharded(
            prio, origin, bind_.locusCounters[origin]++);
        const std::uint32_t target = bind_.shardOfNode[node];
        if (!c || c->serial || target == c->shard)
            return bind_.leaves[target]->scheduleKeyed(
                when, ord, node, std::forward<Fn>(fn));
        using F = std::decay_t<Fn>;
        static_assert(std::is_trivially_copyable_v<F> &&
                          sizeof(F) <= kInlineCallback &&
                          alignof(F) <= alignof(std::max_align_t),
                      "cross-shard events must be small trivially "
                      "copyable callables");
        F f(std::forward<Fn>(fn));
        bind_.crossPush(
            bind_.group, c->shard, target, when, ord, node,
            [](void *p) {
                (*std::launder(reinterpret_cast<F *>(p)))();
            },
            &f, sizeof f);
        return 0;
    }

    /**
     * Leaf-queue insertion with a precomputed sharded sort key; used
     * by the anchor's routing and the group's mailbox drain. The
     * locus is stamped on the node so execution can restore it.
     */
    template <typename Fn>
    EventId
    scheduleKeyed(Tick when, std::uint64_t ord, std::uint32_t locus,
                  Fn &&fn)
    {
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        const std::uint32_t slot = acquireSlot();
        Node &n = *node(slot);
        n.state = kScheduled;
        n.locus = locus;
        emplaceCallback(n, std::forward<Fn>(fn));
        heapPush({when, ord, slot});
        ++pending_;
        ++scheduledTotal_;
        return (static_cast<EventId>(n.gen) << 32) | slot;
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1): the generation check rejects stale or unknown handles on
     * the spot, and a live node is tombstoned (callback destroyed
     * immediately, heap entry discarded when it surfaces). The token
     * count stays bounded by pending() across arbitrarily long runs.
     *
     * Unsupported on a sharded anchor (events live in leaf queues on
     * other threads); sharded schedule() returns 0 and cancel(0) is
     * always a harmless no-op.
     */
    void
    cancel(EventId id)
    {
        BLITZ_ASSERT(!bind_.group || id == 0,
                     "cancel() is not supported in sharded mode");
        const auto slot = static_cast<std::uint32_t>(id);
        if (slot >= slotCount_)
            return;
        Node &n = *node(slot);
        if (n.gen != static_cast<std::uint32_t>(id >> 32) ||
            n.state != kScheduled)
            return;
        n.state = kCancelled;
        destroyCallback(n);
        ++cancelledTokens_;
    }

    /** Number of events still scheduled (including cancelled ones). */
    std::size_t
    pending() const
    {
        if (!bind_.group)
            return pending_;
        std::size_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->pending_;
        return total;
    }

    /**
     * Number of unconsumed cancellation tokens. Bounded by pending():
     * a token is dropped when its entry pops, and cancel() refuses
     * ids that are no longer scheduled.
     */
    std::size_t cancelledTokens() const { return cancelledTokens_; }

    /** True when no runnable events remain. */
    bool
    empty() const
    {
        if (!bind_.group)
            return heap_.empty();
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            if (!bind_.leaves[s]->heap_.empty())
                return false;
        return true;
    }

    /**
     * Cumulative events scheduled / executed since construction —
     * always-on observability counters (a plain increment on paths
     * that already write the slab, so they cost nothing measurable).
     * Summed over the leaves on a sharded anchor (read only between
     * phases or from the serial lane).
     */
    std::uint64_t
    totalScheduled() const
    {
        if (!bind_.group)
            return scheduledTotal_;
        std::uint64_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->scheduledTotal_;
        return total;
    }
    std::uint64_t
    totalExecuted() const
    {
        if (!bind_.group)
            return executedTotal_;
        std::uint64_t total = 0;
        for (std::uint32_t s = 0; s <= bind_.shardCount; ++s)
            total += bind_.leaves[s]->executedTotal_;
        return total;
    }

    /**
     * Turn this queue into the anchor of a shard group (or detach it
     * again when @p b.group is null). The anchor must be empty: its
     * own heap never holds events while bound — every scheduling call
     * routes into the group's leaf queues.
     */
    void
    bindShardGroup(const ShardBinding &b)
    {
        BLITZ_ASSERT(heap_.empty() && pending_ == 0,
                     "anchor queue must be empty when (un)binding");
        bind_ = b;
    }

    /** The active shard binding (group is null on a plain queue). */
    const ShardBinding &binding() const { return bind_; }

    /**
     * Run events until the queue drains or @p limit is passed.
     *
     * No event with when > limit ever executes — cancelled entries at
     * the front are discarded without unlocking later events beyond
     * the horizon.
     * @param limit stop before executing events scheduled after this tick.
     * @return number of events executed (cancelled entries don't count).
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Execute the next runnable event at or before @p limit.
     * Cancelled entries encountered on the way are discarded.
     * @return false if no runnable event exists within the horizon.
     */
    bool runOne(Tick limit = maxTick);

    /** Callback bytes stored inline in an event node. */
    static constexpr std::size_t kInlineCallback = 96;

  private:
    friend class ShardGroup; ///< drives the leaf queues directly
    friend class LocusScope; ///< installs setup-time shard contexts

    enum NodeState : std::uint8_t
    {
        kFree = 0,
        kScheduled,
        kCancelled,
        kExecuting,
    };

    /**
     * One slab slot. Trivial on purpose: the slab never runs
     * constructors or destructors wholesale — callback lifetime is
     * managed explicitly through invoke/destroy function pointers.
     * The sort key lives in the heap entry, not here, so the hot
     * sift loops never dereference the slab; with the 96-byte inline
     * callback buffer a node is exactly two cache lines (the locus
     * stamp rides in what used to be padding before the buffer).
     */
    struct Node
    {
        void (*invoke)(void *);
        void (*destroy)(void *); ///< null when nothing to destroy
        std::uint32_t gen;
        std::uint32_t nextFree;
        std::uint32_t locus; ///< execution locus (sharded mode only)
        NodeState state;
        alignas(std::max_align_t) unsigned char buf[kInlineCallback];
    };

    /**
     * Heap element: the complete (when, priority, insertion-seq) sort
     * key plus the owning slot. Priority and sequence pack into one
     * word — 16 bits of priority class over a 48-bit sequence counter
     * (2^48 events ≈ centuries of simulated work) — so ordering is
     * two integer compares over contiguous memory.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t ord;
        std::uint32_t slot;
    };

    static std::uint64_t
    packOrd(Priority prio, std::uint64_t seq)
    {
        const auto p = static_cast<std::int64_t>(prio);
        BLITZ_ASSERT(p >= 0 && p < 0x8000, "priority out of range");
        BLITZ_ASSERT(seq < (std::uint64_t{1} << 48),
                     "insertion sequence overflow");
        return (static_cast<std::uint64_t>(p) << 48) | seq;
    }

    /**
     * Sharded same-tick sort key: (priority, origin locus, per-locus
     * counter) packed into the same 64-bit ord word the legacy
     * (priority, seq) key uses — 8 bits of priority over a 20-bit
     * locus (1M mesh nodes + the serial lane) over a 36-bit counter.
     * The key is a pure function of *which mesh node scheduled the
     * event and how many events that node had scheduled before*, so
     * it is identical for every shard count — the property the golden
     * digests pin. Origin counters are only ever bumped by the thread
     * executing at that locus, so they need no synchronization.
     */
    static std::uint64_t
    packOrdSharded(Priority prio, std::uint32_t locus,
                   std::uint64_t counter)
    {
        const auto p = static_cast<std::int64_t>(prio);
        BLITZ_ASSERT(p >= 0 && p < 0x100, "priority out of range");
        BLITZ_ASSERT(locus < (1u << 20), "locus out of range");
        BLITZ_ASSERT(counter < (std::uint64_t{1} << 36),
                     "per-locus counter overflow");
        return (static_cast<std::uint64_t>(p) << 56) |
               (static_cast<std::uint64_t>(locus) << 36) | counter;
    }

    /**
     * schedule() tail for a bound anchor: events from an executing
     * shard context stay in that context's leaf at its locus; events
     * from plain (setup / observer) code with no context go to the
     * serial lane, which runs between supersteps in deterministic
     * order — where periodic audits and stat samplers belong.
     */
    template <typename Fn>
    EventId
    routeSchedule(Tick when, Fn &&fn, Priority prio)
    {
        ShardContext *c = tlsShardContext();
        const std::uint32_t locus = c ? c->locus : bind_.nodeCount;
        EventQueue *leaf = c ? c->queue
                             : bind_.leaves[bind_.shardCount];
        return leaf->scheduleKeyed(
            when,
            packOrdSharded(prio, locus, bind_.locusCounters[locus]++),
            locus, std::forward<Fn>(fn));
    }

    /**
     * Type-erased variant of scheduleKeyed() for mailbox entries whose
     * payload was captured as raw (trivially copyable) bytes.
     */
    void scheduleRaw(Tick when, std::uint64_t ord, std::uint32_t locus,
                     void (*invoke)(void *), const void *payload,
                     std::size_t bytes);

    /** Earliest scheduled tick (maxTick when the leaf is empty). */
    Tick
    nextTick() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /**
     * Move a drained leaf's clock to the end of a phase so relative
     * scheduling after the phase sees the same "time passed" semantics
     * runUntil() provides on a plain queue.
     */
    void
    advanceTo(Tick limit)
    {
        if (limit != maxTick && limit > now_)
            now_ = limit;
    }

    /** Install the context runOne() stamps the executing locus into. */
    void setContext(ShardContext *c) { ctx_ = c; }

    static bool
    entryBefore(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.ord < b.ord;
    }

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint32_t kChunkNodes = 256;

    Node *
    node(std::uint32_t slot)
    {
        return &chunks_[slot / kChunkNodes][slot % kChunkNodes];
    }

    template <typename Fn>
    static void
    emplaceCallback(Node &n, Fn &&fn)
    {
        using F = std::decay_t<Fn>;
        static_assert(std::is_invocable_v<F &>,
                      "event callback must be invocable with no args");
        if constexpr (sizeof(F) <= kInlineCallback &&
                      alignof(F) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(n.buf)) F(std::forward<Fn>(fn));
            n.invoke = [](void *p) {
                (*std::launder(reinterpret_cast<F *>(p)))();
            };
            if constexpr (std::is_trivially_destructible_v<F>) {
                n.destroy = nullptr;
            } else {
                n.destroy = [](void *p) {
                    std::launder(reinterpret_cast<F *>(p))->~F();
                };
            }
        } else {
            // Oversized functor: one heap allocation, pointer parked
            // in the inline buffer.
            F *f = new F(std::forward<Fn>(fn));
            std::memcpy(n.buf, &f, sizeof f);
            n.invoke = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                (*f)();
            };
            n.destroy = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                delete f;
            };
        }
    }

    static void
    destroyCallback(Node &n)
    {
        if (n.destroy) {
            n.destroy(n.buf);
            n.destroy = nullptr;
        }
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);
    void addChunk();
    void heapPush(HeapEntry e);
    void heapPopFront();
    void siftDown(std::size_t i);

    Arena *arena_;
    std::vector<Node *> chunks_;
    std::vector<HeapEntry> heap_; ///< 4-ary min-heap, keys inline
    std::uint32_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t pending_ = 0;
    std::size_t cancelledTokens_ = 0;
    std::uint64_t scheduledTotal_ = 0;
    std::uint64_t executedTotal_ = 0;
    std::uint64_t arenaEpoch_ = 0; ///< arena epoch at first chunk
    ShardBinding bind_{};          ///< anchor routing (group == null
                                   ///< on plain queues and leaves)
    ShardContext *ctx_ = nullptr;  ///< leaf-side execution context
};

/**
 * RAII shard context for setup-time code that schedules *on behalf of*
 * a specific mesh node while no event is executing (startAll, audit
 * repair actions): within the scope, scheduling through the anchor
 * lands in @p node's owning leaf with @p node as the origin locus, so
 * the resulting sort keys match what the node itself would have
 * produced. No-op when the queue is not a sharded anchor.
 */
class LocusScope
{
  public:
    LocusScope(EventQueue &anchor, std::uint32_t node)
        : saved_(tlsShardContext())
    {
        const ShardBinding &b = anchor.bind_;
        if (!b.group)
            return;
        BLITZ_ASSERT(!saved_ || saved_->serial,
                     "LocusScope inside a parallel phase");
        ctx_.queue = b.leaves[b.shardOfNode[node]];
        ctx_.shard = b.shardOfNode[node];
        ctx_.locus = node;
        ctx_.serial = true;
        // The borrowed leaf may have idled for many supersteps, so its
        // clock can lag the caller's present; lift it before lending
        // the context out, or relative scheduling (hop latencies, timer
        // periods) would be anchored at the leaf's last active tick and
        // land in other leaves' past. Safe: an idle leaf has no pending
        // event at or before the present — it would have run this
        // superstep otherwise.
        ctx_.queue->advanceTo(saved_ ? saved_->queue->now_
                                     : anchor.now_);
        tlsShardContext() = &ctx_;
    }
    ~LocusScope() { tlsShardContext() = saved_; }
    LocusScope(const LocusScope &) = delete;
    LocusScope &operator=(const LocusScope &) = delete;

  private:
    ShardContext *saved_;
    ShardContext ctx_{};
};

} // namespace blitz::sim

#endif // BLITZ_SIM_EVENT_QUEUE_HPP
