/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The full-SoC model (NoC routers, BlitzCoin FSMs, accelerators, LDO
 * controllers) is event driven: components schedule callbacks at future
 * ticks and the queue executes them in (tick, priority, insertion-order)
 * order, so simulations are deterministic regardless of scheduling
 * pattern. The behavioral coin-exchange engine does not use this kernel;
 * it steps a global clock directly for Monte-Carlo speed.
 *
 * Internals (see DESIGN.md "Scheduler internals"): events live in
 * slab-allocated, generation-counted nodes ordered by a 4-ary min-heap
 * whose entries carry the full (tick, priority, insertion-seq) sort
 * key — sifting compares contiguous heap entries and never touches
 * the slab. Callbacks are stored in a small inline buffer inside the
 * node (heap fallback only for oversized functors), so scheduling an
 * event performs zero allocations once the slab has warmed up.
 * Cancellation is O(1): the handle's generation is checked and the
 * node tombstoned; the heap discards tombstones at pop.
 */

#ifndef BLITZ_SIM_EVENT_QUEUE_HPP
#define BLITZ_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "arena.hpp"
#include "logging.hpp"
#include "types.hpp"

namespace blitz::sim {

/**
 * Relative ordering of events scheduled for the same tick.
 * Lower values run first.
 */
enum class Priority : int
{
    NocTransfer = 0,  ///< packet hops land before logic reacts to them
    Default = 10,
    Controller = 20,  ///< PM controllers act after state settles
    Stats = 30,       ///< sampling sees the post-update state
};

/**
 * Time-ordered event queue.
 *
 * Events are arbitrary callables ordered by (tick, priority,
 * insertion order). Cancellation is supported through the handle
 * returned by schedule(); a cancelled event still occupies its queue
 * slot but is skipped when popped.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle used to cancel a scheduled event: the node's slot
     * index in the low 32 bits, its generation in the high 32. A slot
     * bumps its generation on every reuse, so a stale handle (already
     * executed or cancelled) simply fails the generation check.
     */
    using EventId = std::uint64_t;

    /**
     * @param arena backing store for the event slab; nullptr (the
     *        default) heap-allocates. Pass a sweep worker's arena to
     *        recycle slab chunks across replications — the queue must
     *        then be destroyed before the arena resets.
     */
    explicit EventQueue(Arena *arena = nullptr) : arena_(arena) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callable at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callable to execute; stored inline in the event node
     *        when it fits kInlineCallback bytes (heap otherwise).
     * @param prio same-tick ordering class.
     * @return handle usable with cancel().
     */
    template <typename Fn>
    EventId
    schedule(Tick when, Fn &&fn, Priority prio = Priority::Default)
    {
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        const std::uint32_t slot = acquireSlot();
        Node &n = *node(slot);
        n.state = kScheduled;
        emplaceCallback(n, std::forward<Fn>(fn));
        heapPush({when, packOrd(prio, nextSeq_++), slot});
        ++pending_;
        ++scheduledTotal_;
        return (static_cast<EventId>(n.gen) << 32) | slot;
    }

    /** Schedule a callable @p delta ticks from now. */
    template <typename Fn>
    EventId
    scheduleIn(Tick delta, Fn &&fn, Priority prio = Priority::Default)
    {
        return schedule(now_ + delta, std::forward<Fn>(fn), prio);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1): the generation check rejects stale or unknown handles on
     * the spot, and a live node is tombstoned (callback destroyed
     * immediately, heap entry discarded when it surfaces). The token
     * count stays bounded by pending() across arbitrarily long runs.
     */
    void
    cancel(EventId id)
    {
        const auto slot = static_cast<std::uint32_t>(id);
        if (slot >= slotCount_)
            return;
        Node &n = *node(slot);
        if (n.gen != static_cast<std::uint32_t>(id >> 32) ||
            n.state != kScheduled)
            return;
        n.state = kCancelled;
        destroyCallback(n);
        ++cancelledTokens_;
    }

    /** Number of events still scheduled (including cancelled ones). */
    std::size_t pending() const { return pending_; }

    /**
     * Number of unconsumed cancellation tokens. Bounded by pending():
     * a token is dropped when its entry pops, and cancel() refuses
     * ids that are no longer scheduled.
     */
    std::size_t cancelledTokens() const { return cancelledTokens_; }

    /** True when no runnable events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Cumulative events scheduled / executed since construction —
     * always-on observability counters (a plain increment on paths
     * that already write the slab, so they cost nothing measurable).
     */
    std::uint64_t totalScheduled() const { return scheduledTotal_; }
    std::uint64_t totalExecuted() const { return executedTotal_; }

    /**
     * Run events until the queue drains or @p limit is passed.
     *
     * No event with when > limit ever executes — cancelled entries at
     * the front are discarded without unlocking later events beyond
     * the horizon.
     * @param limit stop before executing events scheduled after this tick.
     * @return number of events executed (cancelled entries don't count).
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Execute the next runnable event at or before @p limit.
     * Cancelled entries encountered on the way are discarded.
     * @return false if no runnable event exists within the horizon.
     */
    bool runOne(Tick limit = maxTick);

    /** Callback bytes stored inline in an event node. */
    static constexpr std::size_t kInlineCallback = 96;

  private:
    enum NodeState : std::uint8_t
    {
        kFree = 0,
        kScheduled,
        kCancelled,
        kExecuting,
    };

    /**
     * One slab slot. Trivial on purpose: the slab never runs
     * constructors or destructors wholesale — callback lifetime is
     * managed explicitly through invoke/destroy function pointers.
     * The sort key lives in the heap entry, not here, so the hot
     * sift loops never dereference the slab; with the 96-byte inline
     * callback buffer a node is exactly two cache lines.
     */
    struct Node
    {
        void (*invoke)(void *);
        void (*destroy)(void *); ///< null when nothing to destroy
        std::uint32_t gen;
        std::uint32_t nextFree;
        NodeState state;
        alignas(std::max_align_t) unsigned char buf[kInlineCallback];
    };

    /**
     * Heap element: the complete (when, priority, insertion-seq) sort
     * key plus the owning slot. Priority and sequence pack into one
     * word — 16 bits of priority class over a 48-bit sequence counter
     * (2^48 events ≈ centuries of simulated work) — so ordering is
     * two integer compares over contiguous memory.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t ord;
        std::uint32_t slot;
    };

    static std::uint64_t
    packOrd(Priority prio, std::uint64_t seq)
    {
        const auto p = static_cast<std::int64_t>(prio);
        BLITZ_ASSERT(p >= 0 && p < 0x8000, "priority out of range");
        BLITZ_ASSERT(seq < (std::uint64_t{1} << 48),
                     "insertion sequence overflow");
        return (static_cast<std::uint64_t>(p) << 48) | seq;
    }

    static bool
    entryBefore(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when != b.when ? a.when < b.when : a.ord < b.ord;
    }

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint32_t kChunkNodes = 256;

    Node *
    node(std::uint32_t slot)
    {
        return &chunks_[slot / kChunkNodes][slot % kChunkNodes];
    }

    template <typename Fn>
    static void
    emplaceCallback(Node &n, Fn &&fn)
    {
        using F = std::decay_t<Fn>;
        static_assert(std::is_invocable_v<F &>,
                      "event callback must be invocable with no args");
        if constexpr (sizeof(F) <= kInlineCallback &&
                      alignof(F) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(n.buf)) F(std::forward<Fn>(fn));
            n.invoke = [](void *p) {
                (*std::launder(reinterpret_cast<F *>(p)))();
            };
            if constexpr (std::is_trivially_destructible_v<F>) {
                n.destroy = nullptr;
            } else {
                n.destroy = [](void *p) {
                    std::launder(reinterpret_cast<F *>(p))->~F();
                };
            }
        } else {
            // Oversized functor: one heap allocation, pointer parked
            // in the inline buffer.
            F *f = new F(std::forward<Fn>(fn));
            std::memcpy(n.buf, &f, sizeof f);
            n.invoke = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                (*f)();
            };
            n.destroy = [](void *p) {
                F *f;
                std::memcpy(&f, p, sizeof f);
                delete f;
            };
        }
    }

    static void
    destroyCallback(Node &n)
    {
        if (n.destroy) {
            n.destroy(n.buf);
            n.destroy = nullptr;
        }
    }

    std::uint32_t acquireSlot();
    void releaseSlot(std::uint32_t slot);
    void addChunk();
    void heapPush(HeapEntry e);
    void heapPopFront();
    void siftDown(std::size_t i);

    Arena *arena_;
    std::vector<Node *> chunks_;
    std::vector<HeapEntry> heap_; ///< 4-ary min-heap, keys inline
    std::uint32_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t pending_ = 0;
    std::size_t cancelledTokens_ = 0;
    std::uint64_t scheduledTotal_ = 0;
    std::uint64_t executedTotal_ = 0;
};

} // namespace blitz::sim

#endif // BLITZ_SIM_EVENT_QUEUE_HPP
