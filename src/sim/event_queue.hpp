/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The full-SoC model (NoC routers, BlitzCoin FSMs, accelerators, LDO
 * controllers) is event driven: components schedule callbacks at future
 * ticks and the queue executes them in (tick, priority, insertion-order)
 * order, so simulations are deterministic regardless of scheduling
 * pattern. The behavioral coin-exchange engine does not use this kernel;
 * it steps a global clock directly for Monte-Carlo speed.
 */

#ifndef BLITZ_SIM_EVENT_QUEUE_HPP
#define BLITZ_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "logging.hpp"
#include "types.hpp"

namespace blitz::sim {

/**
 * Relative ordering of events scheduled for the same tick.
 * Lower values run first.
 */
enum class Priority : int
{
    NocTransfer = 0,  ///< packet hops land before logic reacts to them
    Default = 10,
    Controller = 20,  ///< PM controllers act after state settles
    Stats = 30,       ///< sampling sees the post-update state
};

/**
 * Time-ordered event queue.
 *
 * Events are plain std::function callbacks. Cancellation is supported
 * through the handle returned by schedule(); a cancelled event still
 * occupies its queue slot but is skipped when popped.
 */
class EventQueue
{
  public:
    /** Opaque handle used to cancel a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * @param when absolute tick; must not be in the past.
     * @param fn callback to execute.
     * @param prio same-tick ordering class.
     * @return handle usable with cancel().
     */
    EventId
    schedule(Tick when, std::function<void()> fn,
             Priority prio = Priority::Default)
    {
        BLITZ_ASSERT(when >= now_, "scheduling event in the past (",
                     when, " < ", now_, ")");
        EventId id = nextId_++;
        queue_.push(Entry{when, static_cast<int>(prio), id,
                          std::move(fn)});
        live_.insert(id);
        ++pending_;
        return id;
    }

    /** Schedule a callback @p delta ticks from now. */
    EventId
    scheduleIn(Tick delta, std::function<void()> fn,
               Priority prio = Priority::Default)
    {
        return schedule(now_ + delta, std::move(fn), prio);
    }

    /**
     * Cancel a previously scheduled event.
     *
     * O(1): the event is tombstoned and skipped on pop. Cancelling an
     * already-executed or unknown id is a harmless no-op — such ids
     * are dropped on the spot, so the tombstone set only ever holds
     * tokens for events still in the queue and cannot grow without
     * bound across long runs.
     */
    void
    cancel(EventId id)
    {
        if (live_.count(id))
            cancelled_.insert(id);
    }

    /** Number of events still scheduled (including cancelled ones). */
    std::size_t pending() const { return pending_; }

    /**
     * Number of unconsumed cancellation tokens. Bounded by pending():
     * a token is dropped when its entry pops, and cancel() refuses
     * ids that are no longer scheduled.
     */
    std::size_t cancelledTokens() const { return cancelled_.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return queue_.empty(); }

    /**
     * Run events until the queue drains or @p limit is passed.
     *
     * No event with when > limit ever executes — cancelled entries at
     * the front are discarded without unlocking later events beyond
     * the horizon.
     * @param limit stop before executing events scheduled after this tick.
     * @return number of events executed (cancelled entries don't count).
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Execute the next runnable event at or before @p limit.
     * Cancelled entries encountered on the way are discarded.
     * @return false if no runnable event exists within the horizon.
     */
    bool runOne(Tick limit = maxTick);

  private:
    struct Entry
    {
        Tick when;
        int prio;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::unordered_set<EventId> live_;      ///< scheduled, not yet popped
    std::unordered_set<EventId> cancelled_; ///< subset of live_
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t pending_ = 0;
};

} // namespace blitz::sim

#endif // BLITZ_SIM_EVENT_QUEUE_HPP
