#include "logging.hpp"

#include <iostream>

namespace blitz::sim::detail {

void
emitWarning(const std::string &msg)
{
    std::cerr << "warn: " << msg << '\n';
}

void
emitInform(const std::string &msg)
{
    std::cerr << "info: " << msg << '\n';
}

} // namespace blitz::sim::detail
