/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a simulator bug.
 *            Aborts so a debugger or core dump catches it.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters). Exits cleanly.
 * warn()   — something looks suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef BLITZ_SIM_LOGGING_HPP
#define BLITZ_SIM_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace blitz::sim {

/** Thrown by fatal() so tests can observe user-level errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Thrown by panic() so tests can observe internal-invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

namespace detail {

void emitWarning(const std::string &msg);
void emitInform(const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation (a simulator bug) and throw.
 * @param args streamable message parts.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError("panic: " +
                     detail::format(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error (bad configuration) and throw.
 * @param args streamable message parts.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError("fatal: " +
                     detail::format(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarning(detail::format(std::forward<Args>(args)...));
}

/** Report normal operating status to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::format(std::forward<Args>(args)...));
}

/** panic() unless the condition holds. */
#define BLITZ_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::blitz::sim::panic("assertion '" #cond "' failed: ",          \
                                ##__VA_ARGS__);                             \
        }                                                                   \
    } while (0)

} // namespace blitz::sim

#endif // BLITZ_SIM_LOGGING_HPP
