#include "rng.hpp"

#include <cmath>

namespace blitz::sim {

double
Rng::exponential(double mean)
{
    BLITZ_ASSERT(mean > 0.0, "exponential mean must be positive");
    // 1 - uniform() is in (0, 1], keeping log() finite.
    return -mean * std::log(1.0 - uniform());
}

double
Rng::normal()
{
    // Box-Muller; draws two uniforms per variate for simplicity since the
    // simulator's normal draws are not on any hot path.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

} // namespace blitz::sim
