/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * Every stochastic component in the simulator draws from an Rng seeded
 * explicitly by the experiment harness, so a (seed, configuration) pair
 * fully determines a run. The generator is xoshiro256** with splitmix64
 * seeding — fast, high quality, and trivially portable, which matters
 * because the Monte-Carlo benches run hundreds of thousands of trials.
 */

#ifndef BLITZ_SIM_RNG_HPP
#define BLITZ_SIM_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "logging.hpp"

namespace blitz::sim {

/** splitmix64 finalizer: a fast, high-quality 64-bit mixing step. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Fold @p v into @p h. Chains of hashCombine build stateless per-site
 * seeds — e.g. hash(seed, packet-seq, node, stage) — so a random
 * decision depends only on *what* is being decided, never on how many
 * draws other threads or shards made before it. That order
 * independence is what lets the fault plane stay deterministic when
 * one simulation is sharded across threads.
 */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * distributions, though the built-in helpers below avoid the
 * implementation-defined behaviour of the standard distributions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x1234'5678'9abc'def0ull)
    {
        reseed(seed);
    }

    /** Re-seed the generator, restoring a deterministic stream. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion; guarantees a non-zero state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return ~std::uint64_t{0};
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        BLITZ_ASSERT(bound > 0, "Rng::below needs a positive bound");
        // Lemire's nearly-divisionless unbiased method.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (~bound + 1) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        BLITZ_ASSERT(lo <= hi, "Rng::range needs lo <= hi");
        const auto span =
            static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller). */
    double normal();

    /** Normal variate with mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child stream (for per-tile generators). */
    Rng
    fork()
    {
        return Rng((*this)());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace blitz::sim

#endif // BLITZ_SIM_RNG_HPP
