#include "shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "logging.hpp"

namespace blitz::sim {

namespace {

/** Monotonic wall-clock in ns — profiler accounting only. */
inline std::uint64_t
probeNow()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
ShardProbe::init(std::uint32_t shardCount, std::uint32_t sampleStride,
                 std::uint32_t maxSampleRows)
{
    shards.assign(shardCount, Shard{});
    drain = Phase{};
    serial = Phase{};
    mailbox.assign(static_cast<std::size_t>(shardCount) * shardCount,
                   0);
    supersteps = fastPath = barriers = 0;
    stride = sampleStride;
    sinceSample = 0;
    rows = 0;
    maxRows = stride ? std::max<std::uint32_t>(maxSampleRows, 2) : 0;
    sampleTick.assign(maxRows, 0);
    samples.assign(static_cast<std::size_t>(maxRows) * shardCount,
                   Sample{});
}

double
ShardProbe::imbalance() const
{
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (const Shard &s : shards) {
        lo = std::min(lo, s.execute.ns);
        hi = std::max(hi, s.execute.ns);
    }
    if (shards.empty() || hi == 0)
        return 1.0;
    // An idle shard would make the ratio infinite; clamp the floor to
    // one nanosecond so the number stays finite and screams anyway.
    return static_cast<double>(hi) /
           static_cast<double>(std::max<std::uint64_t>(lo, 1));
}

std::uint32_t
defaultShards()
{
    if (const char *env = std::getenv("BLITZ_SHARDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<std::uint32_t>(v);
    }
    return 1;
}

std::vector<std::uint32_t>
columnBands(std::uint32_t width, std::uint32_t height,
            std::uint32_t shards)
{
    BLITZ_ASSERT(width > 0 && height > 0 && shards > 0,
                 "columnBands needs a non-empty mesh and >= 1 shard");
    const std::uint32_t bands = std::min(shards, width);
    std::vector<std::uint32_t> map(static_cast<std::size_t>(width) *
                                   height);
    for (std::uint32_t y = 0; y < height; ++y)
        for (std::uint32_t x = 0; x < width; ++x)
            map[static_cast<std::size_t>(y) * width + x] =
                x * bands / width;
    return map;
}

ShardGroup::ShardGroup(EventQueue &anchor, std::uint32_t shards,
                       std::vector<std::uint32_t> shardOfNode)
    : anchor_(anchor), shards_(shards),
      nodeCount_(static_cast<std::uint32_t>(shardOfNode.size())),
      shardOfNode_(std::move(shardOfNode))
{
    BLITZ_ASSERT(shards_ >= 1, "a shard group needs >= 1 shard");
    BLITZ_ASSERT(nodeCount_ > 0, "a shard group needs a mesh");
    // Index-width contract: the serial lane's locus is nodeCount_, one
    // past the mesh, and both must fit the 20-bit ord key field.
    BLITZ_ASSERT(nodeCount_ <= kMaxMeshNodes,
                 "mesh exceeds the sharded ordering key's ",
                 kMaxMeshNodes, "-node ceiling");
    for (std::uint32_t s : shardOfNode_)
        BLITZ_ASSERT(s < shards_, "node mapped to nonexistent shard");

    locusCounters_.assign(nodeCount_ + 1, 0);
    arenas_.reserve(shards_ + 1);
    leaves_.reserve(shards_ + 1);
    leafPtrs_.reserve(shards_ + 1);
    // Up-front arena sizing (growth policy): each shard's slab, bucket
    // pool, and packet pool live in its arena, and their combined
    // high-water mark creeps slightly past any warmup's peak. A
    // per-node budget plus a generous floor keeps that whole footprint
    // inside the first chunk, so steady state never grows a chunk —
    // the allocation-free property the zero-alloc tests pin. Oversized
    // meshes fall back to the arena's geometric chunk growth.
    const std::size_t perShardReserve =
        256 * 1024 +
        2048 * (static_cast<std::size_t>(nodeCount_) / shards_ + 1);
    for (std::uint32_t s = 0; s <= shards_; ++s) {
        arenas_.push_back(std::make_unique<Arena>());
        arenas_.back()->reserve(perShardReserve);
        leaves_.push_back(
            std::make_unique<EventQueue>(arenas_.back().get()));
        leafPtrs_.push_back(leaves_.back().get());
        // Leaves inherit the anchor's clock so a group created
        // mid-simulation starts from the right "now".
        leaves_.back()->now_ = anchor_.now_;
    }
    mail_.resize(static_cast<std::size_t>(shards_) * shards_);
    shardActive_.assign(shards_, 0);
    workerSeq_.assign(shards_, 0);
    phaseExecuted_.assign(shards_, 0);
    phaseNs_.assign(shards_, 0);

    ShardBinding b;
    b.group = this;
    b.leaves = leafPtrs_.data();
    b.shardCount = shards_;
    b.shardOfNode = shardOfNode_.data();
    b.nodeCount = nodeCount_;
    b.locusCounters = locusCounters_.data();
    b.crossPush = &crossPushHook;
    b.runUntil = &runUntilHook;
    anchor_.bindShardGroup(b);

    // Shard 0's phase always runs on the calling thread, so only
    // shards 1..N-1 get workers (and a 1-shard group spawns none —
    // the whole superstep loop stays single-threaded).
    for (std::uint32_t s = 1; s < shards_; ++s)
        workers_.emplace_back([this, s] { workerMain(s); });
}

ShardGroup::~ShardGroup()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
    anchor_.bindShardGroup(ShardBinding{});
}

void
ShardGroup::crossPushHook(ShardGroup *g, std::uint32_t srcShard,
                          std::uint32_t dstShard, Tick when,
                          std::uint64_t ord, std::uint32_t locus,
                          void (*invoke)(void *), const void *payload,
                          std::size_t bytes)
{
    // The conservative-lookahead contract: nothing may cross a shard
    // boundary inside the current superstep's tick. The NoC's 1-tick
    // hop latency satisfies this by construction; anything else that
    // trips it is a determinism bug, not a tuning knob.
    BLITZ_ASSERT(when > g->epochTick_,
                 "cross-shard event inside the lookahead horizon (",
                 when, " <= ", g->epochTick_, ")");
    BLITZ_ASSERT(bytes <= EventQueue::kInlineCallback,
                 "cross-shard payload exceeds the inline buffer");
    auto &box = g->mail_[static_cast<std::size_t>(srcShard) *
                             g->shards_ +
                         dstShard]
                    .entries;
    box.emplace_back();
    CrossEvent &e = box.back();
    e.when = when;
    e.ord = ord;
    e.locus = locus;
    e.bytes = static_cast<std::uint32_t>(bytes);
    e.invoke = invoke;
    std::memcpy(e.buf, payload, bytes);
}

std::uint64_t
ShardGroup::runUntilHook(ShardGroup *g, Tick limit)
{
    return g->runUntilImpl(limit);
}

void
ShardGroup::attachProbe(ShardProbe *probe)
{
    if (probe && probe->shards.size() != shards_)
        probe->init(shards_, probe->stride,
                    probe->maxRows ? probe->maxRows : 1024);
    // Publish under the barrier mutex: workers only read probe_ after
    // an acquire of mu_ that the next phase hand-off forces, so no
    // worker can observe a torn or stale pointer mid-phase.
    std::lock_guard<std::mutex> lk(mu_);
    probe_ = probe;
    std::fill(phaseNs_.begin(), phaseNs_.end(), 0);
}

/** Fold one barrier superstep's per-shard timings into the probe. */
void
ShardGroup::probeBarrier(std::uint64_t spanNs)
{
    ShardProbe &p = *probe_;
    for (std::uint32_t s = 0; s < shards_; ++s) {
        if (!shardActive_[s] && phaseNs_[s] == 0)
            continue;
        const std::uint64_t exec = phaseNs_[s];
        ShardProbe::Shard &slot = p.shards[s];
        slot.execute.ns += exec;
        ++slot.execute.count;
        slot.barrier.ns += spanNs > exec ? spanNs - exec : 0;
        ++slot.barrier.count;
        slot.executed += phaseExecuted_[s];
        phaseNs_[s] = 0;
        phaseExecuted_[s] = 0;
    }
    ++p.barriers;
}

void
ShardGroup::probeSample(Tick t)
{
    ShardProbe &p = *probe_;
    p.sinceSample = 0;
    if (p.rows == p.maxRows) {
        // Buffer full: keep every other row (cumulative rows make the
        // thinning lossless for trends) and halve the cadence. All in
        // place — the steady loop never allocates.
        for (std::uint32_t r = 1; r * 2 < p.rows; ++r) {
            p.sampleTick[r] = p.sampleTick[r * 2];
            for (std::uint32_t s = 0; s < shards_; ++s)
                p.samples[static_cast<std::size_t>(r) * shards_ + s] =
                    p.samples[static_cast<std::size_t>(r) * 2 *
                                  shards_ +
                              s];
        }
        p.rows = (p.rows + 1) / 2;
        p.stride *= 2;
    }
    const std::uint32_t row = p.rows++;
    p.sampleTick[row] = t;
    for (std::uint32_t s = 0; s < shards_; ++s) {
        ShardProbe::Sample &smp =
            p.samples[static_cast<std::size_t>(row) * shards_ + s];
        const ShardProbe::Shard &slot = p.shards[s];
        smp.execNs = slot.execute.ns;
        smp.barrierNs = slot.barrier.ns;
        smp.executed = slot.executed;
        std::uint64_t inbox = 0;
        for (std::uint32_t src = 0; src < shards_; ++src)
            inbox += p.mailbox[static_cast<std::size_t>(src) * shards_ +
                               s];
        smp.inbox = inbox;
    }
}

std::uint64_t
ShardGroup::runShardPhase(std::uint32_t shard, Tick t)
{
    ShardContext ctx;
    ctx.queue = leafPtrs_[shard];
    ctx.shard = shard;
    ctx.locus = nodeCount_;
    ctx.serial = false;
    ShardContext *&tls = tlsShardContext();
    ShardContext *saved = tls;
    tls = &ctx;
    leafPtrs_[shard]->setContext(&ctx);
    const std::uint64_t n = leafPtrs_[shard]->runUntil(t);
    leafPtrs_[shard]->setContext(nullptr);
    tls = saved;
    return n;
}

void
ShardGroup::drainMail()
{
    const std::uint64_t t0 = probe_ ? probeNow() : 0;
    // Fixed (src, dst) drain order — though the order is cosmetic:
    // every entry carries its full partition-independent sort key, so
    // the leaf heap produces the same execution order no matter how
    // the mailboxes interleaved.
    for (std::uint32_t src = 0; src < shards_; ++src) {
        for (std::uint32_t dst = 0; dst < shards_; ++dst) {
            auto &box =
                mail_[static_cast<std::size_t>(src) * shards_ + dst]
                    .entries;
            for (const CrossEvent &e : box)
                leafPtrs_[dst]->scheduleRaw(e.when, e.ord, e.locus,
                                            e.invoke, e.buf, e.bytes);
            crossEvents_ += box.size();
            if (probe_)
                probe_->mailbox[static_cast<std::size_t>(src) *
                                    shards_ +
                                dst] += box.size();
            box.clear(); // keeps capacity: steady state allocates nothing
        }
    }
    if (probe_) {
        probe_->drain.ns += probeNow() - t0;
        ++probe_->drain.count;
    }
}

void
ShardGroup::workerMain(std::uint32_t shard)
{
    std::uint64_t seenSeq = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        // Wait on this worker's *own* assignment slot, not a shared
        // active[] array: a parked worker that is slow to wake must
        // not consult per-superstep state the main thread has already
        // moved past (the fast path rewrites it without the lock).
        // workerSeq_[shard] changes only under mu_, and only while
        // the barrier holds the main thread until this phase is done.
        workCv_.wait(lk, [&] {
            return shutdown_ || workerSeq_[shard] != seenSeq;
        });
        if (shutdown_)
            return;
        seenSeq = workerSeq_[shard];
        const Tick t = epochTick_;
        const ShardProbe *probe = probe_; // read under mu_
        lk.unlock();
        const std::uint64_t t0 = probe ? probeNow() : 0;
        const std::uint64_t n = runShardPhase(shard, t);
        // Clamp to >= 1 ns so probeBarrier can tell "ran and measured
        // zero" from "did not run" without another flag array.
        const std::uint64_t ns =
            probe ? std::max<std::uint64_t>(probeNow() - t0, 1) : 0;
        lk.lock();
        phaseExecuted_[shard] = n;
        phaseNs_[shard] = ns;
        if (--pendingWorkers_ == 0)
            doneCv_.notify_one();
    }
}

std::uint64_t
ShardGroup::runUntilImpl(Tick limit)
{
    std::uint64_t executed = 0;
    EventQueue *serial = leafPtrs_[shards_];
    if (shards_ == 1) {
        // Single-shard groups keep the sharded sort keys (so digests
        // stay bit-identical with s2/s4) but need none of the
        // superstep machinery: with one shard the target of every
        // scheduleAtNode equals the executing shard, so crossPush can
        // never fire and the mailboxes stay empty by construction.
        // The only ordering constraint left is that leaf events at
        // tick T run before serial-lane events at T, and no serial
        // event can be *created* while the leaf runs (every
        // in-context schedule targets the leaf). So run the leaf in
        // segments up to the next serial event instead of
        // tick-at-a-time: one context install per segment, no
        // active-shard scan, no barrier bookkeeping.
        EventQueue *leaf = leafPtrs_[0];
        ShardContext ctx;
        ctx.queue = leaf;
        ctx.shard = 0;
        ctx.locus = nodeCount_;
        ctx.serial = false;
        ShardContext *&tls = tlsShardContext();
        ShardContext *saved = tls;
        for (;;) {
            const Tick ts = serial->nextTick();
            const Tick t = std::min(ts, leaf->nextTick());
            if (t == maxTick || t > limit)
                break;
            ++epochs_;
            const Tick stop = std::min(ts, limit);
            epochTick_ = stop;
            std::uint64_t t0 = probe_ ? probeNow() : 0;
            tls = &ctx;
            leaf->setContext(&ctx);
            const std::uint64_t n = leaf->runUntil(stop);
            executed += n;
            leaf->setContext(nullptr);
            tls = saved;
            if (probe_) {
                ShardProbe::Shard &slot = probe_->shards[0];
                slot.execute.ns += probeNow() - t0;
                ++slot.execute.count;
                slot.executed += n;
                ++probe_->supersteps;
                ++probe_->fastPath;
                if (probe_->stride &&
                    ++probe_->sinceSample >= probe_->stride)
                    probeSample(stop);
            }
            if (ts > limit)
                break;
            // Serial events at ts may schedule leaf events back at
            // ts (audit repair via LocusScope); the outer loop then
            // runs the leaf again at the same tick, exactly like the
            // general superstep loop's same-tick repeat.
            ShardContext sctx;
            sctx.queue = serial;
            sctx.shard = shards_;
            sctx.locus = nodeCount_;
            sctx.serial = true;
            t0 = probe_ ? probeNow() : 0;
            tls = &sctx;
            serial->setContext(&sctx);
            executed += serial->runUntil(ts);
            serial->setContext(nullptr);
            tls = saved;
            if (probe_) {
                probe_->serial.ns += probeNow() - t0;
                ++probe_->serial.count;
            }
        }
        leaf->advanceTo(limit);
        serial->advanceTo(limit);
        return executed;
    }
    for (;;) {
        // Next superstep tick: the globally earliest pending event.
        // Mailboxes are empty here (drained before the previous
        // superstep ended), so the leaves see everything.
        Tick t = serial->nextTick();
        for (std::uint32_t s = 0; s < shards_; ++s)
            t = std::min(t, leafPtrs_[s]->nextTick());
        if (t == maxTick || t > limit)
            break;
        ++epochs_;
        epochTick_ = t;

        std::uint32_t active = 0;
        std::uint32_t first = shards_;
        for (std::uint32_t s = 0; s < shards_; ++s) {
            const bool a = leafPtrs_[s]->nextTick() <= t;
            shardActive_[s] = a ? 1 : 0;
            if (a) {
                ++active;
                if (first == shards_)
                    first = s;
            }
        }
        if (active == 1) {
            // Fast path: one shard has work at this tick — run it
            // inline, no barrier, no worker wakeups. Sparse-traffic
            // phases (most of a chaos run) live here.
            const std::uint64_t t0 = probe_ ? probeNow() : 0;
            const std::uint64_t n = runShardPhase(first, t);
            executed += n;
            if (probe_) {
                ShardProbe::Shard &slot = probe_->shards[first];
                slot.execute.ns += probeNow() - t0;
                ++slot.execute.count;
                slot.executed += n;
                ++probe_->fastPath;
            }
            drainMail();
        } else if (active > 1) {
            shardActive_[first] = 0; // driven inline below
            {
                std::lock_guard<std::mutex> lk(mu_);
                pendingWorkers_ = active - 1;
                ++phaseSeq_;
                for (std::uint32_t s = 1; s < shards_; ++s)
                    if (shardActive_[s])
                        workerSeq_[s] = phaseSeq_;
            }
            workCv_.notify_all();
            const std::uint64_t t0 = probe_ ? probeNow() : 0;
            const std::uint64_t firstN = runShardPhase(first, t);
            const std::uint64_t firstNs =
                probe_ ? std::max<std::uint64_t>(probeNow() - t0, 1)
                       : 0;
            executed += firstN;
            {
                std::unique_lock<std::mutex> lk(mu_);
                doneCv_.wait(lk,
                             [&] { return pendingWorkers_ == 0; });
                for (std::uint32_t s = 0; s < shards_; ++s)
                    if (shardActive_[s])
                        executed += phaseExecuted_[s];
                if (probe_) {
                    // The barrier span is dispatch-to-drain as the
                    // main thread saw it; per-shard barrier wait is
                    // span minus own execute time.
                    phaseNs_[first] = firstNs;
                    phaseExecuted_[first] = firstN;
                    probeBarrier(probeNow() - t0);
                }
            }
            drainMail();
        }

        // Serial lane: mesh-global observers (audits, samplers) run
        // between supersteps, after every shard has settled tick t.
        if (serial->nextTick() <= t) {
            ShardContext ctx;
            ctx.queue = serial;
            ctx.shard = shards_;
            ctx.locus = nodeCount_;
            ctx.serial = true;
            ShardContext *&tls = tlsShardContext();
            ShardContext *saved = tls;
            const std::uint64_t t0 = probe_ ? probeNow() : 0;
            tls = &ctx;
            serial->setContext(&ctx);
            executed += serial->runUntil(t);
            serial->setContext(nullptr);
            tls = saved;
            if (probe_) {
                probe_->serial.ns += probeNow() - t0;
                ++probe_->serial.count;
            }
        }
        if (probe_) {
            ++probe_->supersteps;
            if (probe_->stride &&
                ++probe_->sinceSample >= probe_->stride)
                probeSample(t);
        }
        // A serial event may have scheduled *at* tick t again (audit
        // repair via LocusScope): the loop re-derives t and repeats
        // the superstep at the same tick until it is truly drained.
    }
    for (std::uint32_t s = 0; s <= shards_; ++s)
        leafPtrs_[s]->advanceTo(limit);
    return executed;
}

} // namespace blitz::sim
