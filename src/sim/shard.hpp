/**
 * @file
 * BSP-sharded execution of one simulation across threads.
 *
 * A ShardGroup partitions a mesh into contiguous bands, gives each
 * band its own EventQueue leaf (plus a serial "global" lane for
 * mesh-wide observers: audits, samplers, snapshot sweeps), and runs
 * the whole ensemble bulk-synchronously: every superstep executes all
 * events of one distinct tick T in parallel across the shards, then
 * drains the per-shard-pair mailboxes at a barrier. The NoC's
 * 1-cycle-per-hop guarantee is the conservative lookahead horizon
 * that makes this safe — an event executing at tick T can influence
 * another shard no earlier than T+1, so inside a superstep the shards
 * touch disjoint state by construction (see DESIGN.md "BSP-sharded
 * execution").
 *
 * Determinism does not come from the barrier alone: same-tick events
 * are merged by the (tick, priority, origin locus, per-locus counter)
 * key EventQueue::packOrdSharded builds, which is a pure function of
 * the schedule-causing mesh node — never of the shard layout — so
 * shard counts 1, 2 and 4 produce bit-identical runs (pinned by the
 * golden digests).
 */

#ifndef BLITZ_SIM_SHARD_HPP
#define BLITZ_SIM_SHARD_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "arena.hpp"
#include "event_queue.hpp"
#include "types.hpp"

namespace blitz::sim {

/**
 * Shard count to use when a harness knob is 0: the BLITZ_SHARDS
 * environment variable if set and positive, else 1 (sharding stays
 * opt-in — the legacy single-queue path is the default).
 */
std::uint32_t defaultShards();

/**
 * Partition a width x height row-major mesh into @p shards contiguous
 * column bands (shard of node = band of its x coordinate). Column
 * bands keep every shard's boundary one hop wide under XY routing.
 * @return shard index per node id; @p shards is clamped to width.
 */
std::vector<std::uint32_t> columnBands(std::uint32_t width,
                                       std::uint32_t height,
                                       std::uint32_t shards);

/**
 * Raw accounting slots for the superstep profiler (the data half; the
 * exporter lives in trace/prof.hpp so sim keeps its no-upward-deps
 * layering). Attach to a ShardGroup *before* running; the group then
 * pays one pointer check per phase when detached and a handful of
 * steady-clock reads per superstep when attached — never an
 * allocation (everything here is sized by init()).
 *
 * Determinism contract: every wall-clock field (the Phase::ns slots)
 * is write-only from the simulator's point of view — nothing ever
 * reads it back into a scheduling decision — so an attached probe is
 * digest-identical to a detached run. The event/mailbox counters and
 * the sample *cadence* (counted in supersteps) are pure functions of
 * the schedule and therefore deterministic.
 */
struct ShardProbe
{
    /** One accumulated timing slot. */
    struct Phase
    {
        std::uint64_t ns = 0;    ///< wall-clock total (nondeterministic)
        std::uint64_t count = 0; ///< times the phase ran (deterministic)
    };

    /** Per-shard accumulators. */
    struct Shard
    {
        Phase execute; ///< parallel-phase event execution
        Phase barrier; ///< idle at the superstep barrier (span - exec)
        std::uint64_t executed = 0; ///< events run in parallel phases
    };

    /** One sampled row: cumulative per-shard counters at a tick. */
    struct Sample
    {
        std::uint64_t execNs = 0;
        std::uint64_t barrierNs = 0;
        std::uint64_t executed = 0;
        std::uint64_t inbox = 0; ///< cross events delivered to shard
    };

    std::vector<Shard> shards;
    Phase drain;  ///< mailbox drain (main thread, between phases)
    Phase serial; ///< serial observer lane
    /** Cross events by (src, dst): [src * shards + dst]. */
    std::vector<std::uint64_t> mailbox;
    std::uint64_t supersteps = 0;
    std::uint64_t fastPath = 0; ///< single-active-shard supersteps
    std::uint64_t barriers = 0; ///< multi-active (barrier) supersteps

    // Time-series sampling into preallocated rows. When the buffer
    // fills, every other row is dropped in place and the stride
    // doubles — cumulative rows make that lossless for trends, and
    // the steady loop stays allocation-free.
    std::uint32_t stride = 0;      ///< supersteps per sample; 0 = off
    std::uint32_t sinceSample = 0;
    std::uint32_t rows = 0;
    std::uint32_t maxRows = 0;
    std::vector<Tick> sampleTick;
    std::vector<Sample> samples; ///< maxRows x shards, row-major

    /**
     * Size every slot for @p shardCount shards and reset all counts.
     * @param sampleStride supersteps between sample rows (0 disables).
     * @param maxSampleRows sample-buffer capacity (rounded up to 2).
     */
    void init(std::uint32_t shardCount, std::uint32_t sampleStride = 0,
              std::uint32_t maxSampleRows = 1024);

    /** Largest / smallest per-shard execute time ratio (>= 1). */
    double imbalance() const;
};

/**
 * Owner of the sharded execution state: the leaf queues and their
 * arenas, the per-locus ordering counters, the mailboxes, and the
 * worker threads. Construction binds the anchor queue (which must be
 * empty); every existing schedule()/scheduleIn()/scheduleAtNode()
 * call site then routes through the group transparently, and the
 * anchor's runUntil() drives the superstep loop. Destruction unbinds
 * the anchor, so the group must outlive every scheduled event but die
 * before the anchor does (declare it after the queue, or last).
 */
class ShardGroup
{
  public:
    /**
     * @param anchor the queue all components schedule through; must
     *        be empty and stays empty while bound.
     * @param shards number of parallel leaves. @pre >= 1.
     * @param shardOfNode owning shard per mesh node id; values must
     *        be < shards (see columnBands()).
     */
    ShardGroup(EventQueue &anchor, std::uint32_t shards,
               std::vector<std::uint32_t> shardOfNode);
    ~ShardGroup();

    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    std::uint32_t shards() const { return shards_; }
    std::uint32_t
    shardOf(std::uint32_t node) const
    {
        return shardOfNode_[node];
    }

    /**
     * Arena owned by shard @p s (index shards() = the serial lane's).
     * Per-shard pools (the NoC's packet-event blocks) must draw from
     * their own shard's arena so parallel-phase growth never races.
     */
    Arena &
    shardArena(std::uint32_t s)
    {
        return *arenas_[s];
    }

    /** Supersteps executed so far (one per distinct event tick). */
    std::uint64_t epochs() const { return epochs_; }

    /** Events that crossed a shard boundary through a mailbox. */
    std::uint64_t crossEvents() const { return crossEvents_; }

    /**
     * Attach the superstep profiler's accounting slots (nullptr
     * detaches). Call between runs only — never from inside a
     * superstep. The probe is init()-ed for this group's shard count
     * if the caller has not done so already (preserving its sampling
     * knobs), and must outlive the attachment.
     */
    void attachProbe(ShardProbe *probe);

    /** The attached probe, or nullptr. */
    const ShardProbe *probe() const { return probe_; }

    /** Leaf queue of shard @p s (index shards() = the serial lane). */
    const EventQueue &
    leaf(std::uint32_t s) const
    {
        return *leafPtrs_[s];
    }

  private:
    /**
     * A boundary-crossing event parked until the next barrier: the
     * full sort key plus the callback captured as raw bytes (cross-
     * shard callbacks are statically required to be trivially
     * copyable and inline-sized).
     */
    struct CrossEvent
    {
        Tick when;
        std::uint64_t ord;
        std::uint32_t locus;
        std::uint32_t bytes;
        void (*invoke)(void *);
        alignas(std::max_align_t)
            unsigned char buf[EventQueue::kInlineCallback];
    };

    /** Single-writer (src shard), drained only at barriers. */
    struct Mailbox
    {
        std::vector<CrossEvent> entries;
    };

    static void crossPushHook(ShardGroup *g, std::uint32_t srcShard,
                              std::uint32_t dstShard, Tick when,
                              std::uint64_t ord, std::uint32_t locus,
                              void (*invoke)(void *),
                              const void *payload, std::size_t bytes);
    static std::uint64_t runUntilHook(ShardGroup *g, Tick limit);

    std::uint64_t runUntilImpl(Tick limit);
    std::uint64_t runShardPhase(std::uint32_t shard, Tick t);
    void drainMail();
    void workerMain(std::uint32_t shard);
    void probeBarrier(std::uint64_t spanNs);
    void probeSample(Tick t);

    EventQueue &anchor_;
    std::uint32_t shards_;
    std::uint32_t nodeCount_;
    std::vector<std::uint32_t> shardOfNode_;
    std::vector<std::uint64_t> locusCounters_; ///< nodeCount_ + 1
    std::vector<std::unique_ptr<Arena>> arenas_; ///< shards_ + 1
    std::vector<std::unique_ptr<EventQueue>> leaves_; ///< shards_ + 1
    std::vector<EventQueue *> leafPtrs_;
    std::vector<Mailbox> mail_; ///< shards_ x shards_, row = src

    // Superstep barrier. Condvar-based on purpose: worker threads
    // must *sleep* between phases — a spin barrier would starve the
    // very shards it waits for on machines with few cores.
    std::mutex mu_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    Tick epochTick_ = 0;
    std::uint64_t phaseSeq_ = 0;
    std::uint32_t pendingWorkers_ = 0;
    bool shutdown_ = false;
    std::vector<char> shardActive_; ///< main-thread bookkeeping only
    /// Per-worker phase assignment, written under mu_. Workers wait on
    /// *their own* slot changing — never on shardActive_, which the
    /// fast path rewrites without the lock and which a parked worker
    /// slow to wake could otherwise re-read a superstep late.
    std::vector<std::uint64_t> workerSeq_;
    std::vector<std::uint64_t> phaseExecuted_;
    /// Per-shard phase wall time (ns), written like phaseExecuted_:
    /// by the owning worker under mu_, read by the main thread after
    /// the barrier. Only maintained while a probe is attached.
    std::vector<std::uint64_t> phaseNs_;
    std::vector<std::thread> workers_; ///< shards_ - 1 (shard 0 is
                                       ///< driven by the caller)

    std::uint64_t epochs_ = 0;
    std::uint64_t crossEvents_ = 0;
    ShardProbe *probe_ = nullptr; ///< not owned; null = detached
};

} // namespace blitz::sim

#endif // BLITZ_SIM_SHARD_HPP
