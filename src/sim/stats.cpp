#include "stats.hpp"

#include <cmath>
#include <sstream>

namespace blitz::sim {

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    BLITZ_ASSERT(bins > 0, "histogram needs at least one bin");
    BLITZ_ASSERT(hi > lo, "histogram range is empty");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        // Guard against floating-point edge rounding at hi_.
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
    }
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

std::string
Histogram::format(std::size_t barWidth) const
{
    std::uint64_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);

    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) /
            static_cast<double>(peak) * static_cast<double>(barWidth));
        os << "[" << binLow(i) << ", " << binHigh(i) << "): "
           << counts_[i] << "  " << std::string(bar, '#') << '\n';
    }
    if (underflow_)
        os << "underflow: " << underflow_ << '\n';
    if (overflow_)
        os << "overflow: " << overflow_ << '\n';
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    BLITZ_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                     counts_.size() == other.counts_.size(),
                 "merging histograms with different binning");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

void
Percentiles::merge(const Percentiles &other)
{
    if (other.samples_.empty())
        return;
    const std::size_t mid = samples_.size();
    const bool bothSorted = sorted_ && other.sorted_;
    // Grow geometrically across a whole fold of merges: vector's own
    // insert only guarantees amortized growth per call, and a sweep
    // that folds R same-sized replications would otherwise reallocate
    // (and copy the accumulated prefix) on nearly every merge once the
    // accumulator dwarfs each increment. Mega-mesh sweeps fold millions
    // of samples, so doubling here matters.
    const std::size_t need = mid + other.samples_.size();
    if (samples_.capacity() < need)
        samples_.reserve(std::max(samples_.capacity() * 2, need));
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    if (bothSorted) {
        // Two sorted partitions combine in one linear pass; skip even
        // that when the concatenation is already globally ordered.
        if (mid > 0 && samples_[mid] < samples_[mid - 1])
            std::inplace_merge(samples_.begin(),
                               samples_.begin() +
                                   static_cast<std::ptrdiff_t>(mid),
                               samples_.end());
    } else {
        sorted_ = false;
    }
}

void
Percentiles::ensureSorted()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Percentiles::quantile(double q)
{
    BLITZ_ASSERT(!samples_.empty(), "quantile of empty sample set");
    BLITZ_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double
Percentiles::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

} // namespace blitz::sim
