/**
 * @file
 * Streaming statistics used throughout the benches and tests.
 *
 * Summary accumulates count/mean/variance/min/max with Welford's online
 * algorithm; Histogram bins samples for the residual-error distributions
 * of Fig. 7; Percentiles keeps raw samples when exact quantiles are
 * needed (the convergence-time spreads of Fig. 4).
 */

#ifndef BLITZ_SIM_STATS_HPP
#define BLITZ_SIM_STATS_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "logging.hpp"

namespace blitz::sim {

/** Online count / mean / variance / extrema accumulator. */
class Summary
{
  public:
    /** Fold one sample into the summary. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Merge another summary into this one (parallel Welford). */
    void merge(const Summary &other);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bin histogram over [lo, hi) with overflow bins. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin.
     * @param hi upper edge of the last bin.
     * @param bins number of equal-width bins. @pre bins > 0, hi > lo.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Insert a sample (out-of-range samples go to under/overflow). */
    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const { return binLow(i + 1); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Render as "low-high: count" lines, for the bench reports. */
    std::string format(std::size_t barWidth = 40) const;

    /**
     * Merge another histogram into this one.
     * @pre identical range and bin count.
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Exact-quantile accumulator; retains all samples. */
class Percentiles
{
  public:
    /**
     * Pre-size the sample buffer. Sweeps know their replication count
     * up front; reserving avoids regrowth in the fold loop.
     */
    void reserve(std::size_t n) { samples_.reserve(n); }

    void
    add(double x)
    {
        sorted_ = sorted_ && (samples_.empty() || samples_.back() <= x);
        samples_.push_back(x);
        sum_ += x;
    }

    std::size_t count() const { return samples_.size(); }

    /**
     * Quantile by linear interpolation between closest ranks.
     * @param q in [0, 1]. @pre at least one sample.
     */
    double quantile(double q);

    double median() { return quantile(0.5); }
    double p95() { return quantile(0.95); }
    double p99() { return quantile(0.99); }
    double minimum() { return quantile(0.0); }
    double maximum() { return quantile(1.0); }
    double mean() const;

    /**
     * Merge another accumulator's samples into this one (parallel
     * sweep fold). Appends in the other's insertion order; when both
     * sides are already sorted (e.g. partitions that were queried for
     * quantiles before merging) the result is combined with a single
     * inplace_merge pass instead of being re-sorted from scratch.
     * The running sum merges per partition, so folding replication
     * accumulators in index order yields the same mean at any thread
     * count.
     */
    void merge(const Percentiles &other);

  private:
    void ensureSorted();

    std::vector<double> samples_;
    double sum_ = 0.0;
    bool sorted_ = true;
};

} // namespace blitz::sim

#endif // BLITZ_SIM_STATS_HPP
