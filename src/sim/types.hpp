/**
 * @file
 * Fundamental simulation types and time conversions.
 *
 * The whole simulator is clocked in NoC cycles: the fabricated BlitzCoin
 * SoC runs its network-on-chip at 800 MHz, so one tick equals 1.25 ns.
 * All response times reported by the benchmarks convert ticks to
 * microseconds through these helpers so the numbers are directly
 * comparable with the paper's.
 */

#ifndef BLITZ_SIM_TYPES_HPP
#define BLITZ_SIM_TYPES_HPP

#include <cstdint>
#include <limits>

namespace blitz::sim {

/** Simulated time, measured in NoC clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "never" / "unscheduled". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/**
 * Ceiling on mesh nodes a single simulation may address: 2^20 - 1
 * (comfortably past a 1000x1000 mesh). This is an index-width
 * contract, not a tuning knob — the sharded event kernel packs the
 * scheduling locus into a 20-bit field of its 64-bit same-tick sort
 * key (see EventQueue::packOrdSharded) and spends one code point above
 * the mesh on the serial lane's locus, so a larger mesh would trip the
 * key-packing assert (or, without asserts, silently alias ordering
 * keys). Topology and ShardGroup check against it at construction;
 * event_queue.hpp static_asserts the key layout still covers it.
 */
inline constexpr std::size_t kMaxMeshNodes = (std::size_t{1} << 20) - 1;

/** NoC clock frequency of the reference SoC (Hz). */
inline constexpr double nocFrequencyHz = 800e6;

/** Duration of one NoC cycle in nanoseconds. */
inline constexpr double nsPerTick = 1e9 / nocFrequencyHz;

/** Convert a tick count to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) * nsPerTick;
}

/** Convert a tick count to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return ticksToNs(t) * 1e-3;
}

/** Convert a tick count to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return ticksToNs(t) * 1e-6;
}

/** Convert nanoseconds to the nearest tick count (rounds up). */
constexpr Tick
nsToTicks(double ns)
{
    double t = ns / nsPerTick;
    auto whole = static_cast<Tick>(t);
    return (static_cast<double>(whole) < t) ? whole + 1 : whole;
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return nsToTicks(us * 1e3);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return nsToTicks(ms * 1e6);
}

} // namespace blitz::sim

#endif // BLITZ_SIM_TYPES_HPP
