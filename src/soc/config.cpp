#include "config.hpp"

#include <cmath>

#include "sim/logging.hpp"

namespace blitz::soc {

const char *
tileTypeName(TileType t)
{
    switch (t) {
      case TileType::Empty:      return "Empty";
      case TileType::Cpu:        return "CPU";
      case TileType::Accel:      return "Accel";
      case TileType::Mem:        return "MEM";
      case TileType::Io:         return "IO";
      case TileType::Scratchpad: return "SPM";
    }
    return "?";
}

std::vector<noc::NodeId>
SocConfig::managedAccelerators() const
{
    std::vector<noc::NodeId> out;
    for (noc::NodeId i = 0; i < tiles.size(); ++i) {
        if (tiles[i].type == TileType::Accel && tiles[i].pmEnabled)
            out.push_back(i);
    }
    return out;
}

std::vector<noc::NodeId>
SocConfig::allAccelerators() const
{
    std::vector<noc::NodeId> out;
    for (noc::NodeId i = 0; i < tiles.size(); ++i) {
        if (tiles[i].type == TileType::Accel)
            out.push_back(i);
    }
    return out;
}

std::vector<double>
SocConfig::pMaxByNode() const
{
    std::vector<double> out(tiles.size(), 0.0);
    for (noc::NodeId i = 0; i < tiles.size(); ++i) {
        if (tiles[i].type == TileType::Accel)
            out[i] = tiles[i].curve->pMax();
    }
    return out;
}

double
SocConfig::totalManagedPMax() const
{
    double sum = 0.0;
    for (noc::NodeId id : managedAccelerators())
        sum += tiles[id].curve->pMax();
    return sum;
}

noc::NodeId
SocConfig::findTile(const std::string &tileName) const
{
    for (noc::NodeId i = 0; i < tiles.size(); ++i) {
        if (tiles[i].name == tileName)
            return i;
    }
    sim::fatal("SoC '", name, "' has no tile named '", tileName, "'");
}

void
SocConfig::validate() const
{
    if (width < 1 || height < 1)
        sim::fatal("SoC '", name, "' has empty dimensions");
    if (tiles.size() != static_cast<std::size_t>(width * height))
        sim::fatal("SoC '", name, "' tile list does not fill the grid");
    if (cpuTile >= tiles.size() ||
        tiles[cpuTile].type != TileType::Cpu) {
        sim::fatal("SoC '", name, "' controller tile is not a CPU");
    }
    for (noc::NodeId i = 0; i < tiles.size(); ++i) {
        const TileSpec &t = tiles[i];
        if (t.type == TileType::Accel && t.curve == nullptr)
            sim::fatal("accelerator tile ", i, " has no power curve");
        if (t.type != TileType::Accel && t.curve != nullptr)
            sim::fatal("non-accelerator tile ", i, " has a power curve");
    }
    if (managedAccelerators().empty())
        sim::fatal("SoC '", name, "' has no managed accelerators");
}

namespace {

TileSpec
accel(const power::PfCurve &curve, const std::string &name,
      bool pm = true)
{
    return TileSpec{TileType::Accel, name, &curve, pm};
}

TileSpec
plain(TileType type, const std::string &name)
{
    return TileSpec{type, name, nullptr, false};
}

} // namespace

SocConfig
make3x3AvSoc()
{
    using namespace power::catalog;
    SocConfig cfg;
    cfg.name = "soc3x3-av";
    cfg.width = 3;
    cfg.height = 3;
    cfg.cpuTile = 0;
    cfg.tiles = {
        plain(TileType::Cpu, "CPU"),
        accel(fft(), "FFT0"),
        accel(viterbi(), "VIT0"),
        accel(fft(), "FFT1"),
        accel(nvdla(), "NVDLA"),
        plain(TileType::Mem, "MEM"),
        accel(fft(), "FFT2"),
        accel(viterbi(), "VIT1"),
        plain(TileType::Io, "IO"),
    };
    cfg.validate();
    return cfg;
}

SocConfig
make4x4VisionSoc()
{
    using namespace power::catalog;
    SocConfig cfg;
    cfg.name = "soc4x4-vision";
    cfg.width = 4;
    cfg.height = 4;
    cfg.cpuTile = 0;
    cfg.tiles = {
        plain(TileType::Cpu, "CPU"),
        accel(gemm(), "GEMM0"),
        accel(conv2d(), "CONV0"),
        accel(vision(), "VIS0"),
        accel(gemm(), "GEMM1"),
        accel(conv2d(), "CONV1"),
        accel(vision(), "VIS1"),
        plain(TileType::Mem, "MEM"),
        accel(conv2d(), "CONV2"),
        accel(gemm(), "GEMM2"),
        accel(vision(), "VIS2"),
        accel(conv2d(), "CONV3"),
        accel(vision(), "VIS3"),
        accel(conv2d(), "CONV4"),
        accel(gemm(), "GEMM3"),
        plain(TileType::Io, "IO"),
    };
    cfg.validate();
    return cfg;
}

SocConfig
make6x6SiliconSoc()
{
    using namespace power::catalog;
    SocConfig cfg;
    cfg.name = "soc6x6-silicon";
    cfg.width = 6;
    cfg.height = 6;
    cfg.cpuTile = 0;
    cfg.tiles = {
        // row 0
        plain(TileType::Cpu, "CPU0"),
        accel(fft(), "FFT0"),
        accel(viterbi(), "VIT0"),
        accel(viterbi(), "VIT1"),
        plain(TileType::Cpu, "CPU1"),
        plain(TileType::Mem, "MEM0"),
        // row 1
        accel(fft(), "FFT1"),
        accel(nvdla(), "NVDLA0"),
        accel(viterbi(), "VIT2"),
        accel(viterbi(), "VIT3"),
        plain(TileType::Scratchpad, "SPM0"),
        plain(TileType::Mem, "MEM1"),
        // row 2
        accel(fft(), "FFT2"),
        accel(viterbi(), "VIT4"),
        accel(viterbi(), "VIT5"),
        accel(fft(), "FFT-NoPM", /*pm=*/false),
        plain(TileType::Scratchpad, "SPM1"),
        plain(TileType::Mem, "MEM2"),
        // row 3 (unmanaged accelerators outside the PM cluster)
        accel(gemm(), "ACC0", /*pm=*/false),
        accel(conv2d(), "ACC1", /*pm=*/false),
        accel(vision(), "ACC2", /*pm=*/false),
        accel(conv2d(), "ACC3", /*pm=*/false),
        plain(TileType::Scratchpad, "SPM2"),
        plain(TileType::Mem, "MEM3"),
        // row 4
        plain(TileType::Cpu, "CPU2"),
        accel(vision(), "ACC4", /*pm=*/false),
        accel(gemm(), "ACC5", /*pm=*/false),
        accel(conv2d(), "ACC6", /*pm=*/false),
        plain(TileType::Scratchpad, "SPM3"),
        plain(TileType::Io, "IO"),
        // row 5
        plain(TileType::Cpu, "CPU3"),
        accel(vision(), "ACC7", /*pm=*/false),
        plain(TileType::Empty, "E0"),
        plain(TileType::Empty, "E1"),
        plain(TileType::Empty, "E2"),
        plain(TileType::Empty, "E3"),
    };
    cfg.validate();
    BLITZ_ASSERT(cfg.managedAccelerators().size() == 10,
                 "silicon PM cluster must have 10 tiles");
    return cfg;
}

SocConfig
makeSyntheticSoc(int d, const power::PfCurve &curve)
{
    if (d < 2)
        sim::fatal("synthetic SoC dimension must be at least 2");
    SocConfig cfg;
    cfg.name = "soc-synthetic-" + std::to_string(d) + "x" +
               std::to_string(d);
    cfg.width = d;
    cfg.height = d;
    cfg.cpuTile = 0;
    cfg.tiles.reserve(static_cast<std::size_t>(d) * d);
    cfg.tiles.push_back(plain(TileType::Cpu, "CPU"));
    for (int i = 1; i < d * d; ++i)
        cfg.tiles.push_back(accel(curve, "ACC" + std::to_string(i)));
    cfg.validate();
    return cfg;
}

} // namespace blitz::soc
