/**
 * @file
 * SoC tile-grid configurations.
 *
 * Presets reproduce the three SoCs the paper evaluates (Fig. 12 and
 * Fig. 15): the 3x3 autonomous-vehicle SoC (3 FFT, 2 Viterbi, 1 NVDLA
 * plus CPU/MEM/IO — 6 managed accelerators), the 4x4 computer-vision
 * SoC (4 GEMM, 5 Conv2D, 4 Vision plus CPU/MEM/IO — 13 managed
 * accelerators), and the 6x6 silicon prototype whose 10-tile PM cluster
 * hosts BlitzCoin alongside unmanaged accelerators, CPUs, scratchpads
 * and memory tiles.
 */

#ifndef BLITZ_SOC_CONFIG_HPP
#define BLITZ_SOC_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hpp"
#include "power/pf_curve.hpp"

namespace blitz::soc {

/** Role of a tile in the grid. */
enum class TileType : std::uint8_t
{
    Empty,      ///< unused grid position
    Cpu,        ///< RISC-V CVA6 application core (runs the dispatcher)
    Accel,      ///< loosely-coupled accelerator
    Mem,        ///< LLC slice + DRAM channel
    Io,         ///< auxiliary tile (UART, Ethernet, boot ROM)
    Scratchpad, ///< on-chip SRAM tile
};

const char *tileTypeName(TileType t);

/** Static description of one tile. */
struct TileSpec
{
    TileType type = TileType::Empty;
    std::string name;
    /** Power curve; required iff type == Accel. */
    const power::PfCurve *curve = nullptr;
    /**
     * Whether the tile participates in power management. The silicon
     * prototype's "FFT No-PM" baseline tile sets this false.
     */
    bool pmEnabled = true;
};

/** Full SoC description. */
struct SocConfig
{
    std::string name;
    int width = 0;
    int height = 0;
    std::vector<TileSpec> tiles; ///< row-major, size width*height
    noc::NodeId cpuTile = 0;     ///< controller seat for central schemes
    /**
     * BSP shard count for the event kernel. 0 (the default) keeps the
     * legacy single-queue path; >= 1 partitions the mesh into that many
     * contiguous column bands run bulk-synchronously (1 is the
     * bit-identity baseline). Sharding requires the fully decentralized
     * BlitzCoin manager — the centralized schemes funnel every packet
     * through one controller object and cannot be partitioned. Pass
     * sim::defaultShards() to honor the BLITZ_SHARDS environment knob.
     */
    std::uint32_t shards = 0;

    std::size_t
    size() const
    {
        return tiles.size();
    }

    const TileSpec &
    tile(noc::NodeId id) const
    {
        return tiles.at(id);
    }

    /** Node ids of the power-managed accelerator tiles. */
    std::vector<noc::NodeId> managedAccelerators() const;

    /** Node ids of all accelerator tiles (managed or not). */
    std::vector<noc::NodeId> allAccelerators() const;

    /** Peak power per node id (0 for non-accelerator tiles), mW. */
    std::vector<double> pMaxByNode() const;

    /** Sum of peak powers over managed accelerators (mW). */
    double totalManagedPMax() const;

    /** Node id of the tile with the given name; fatal() if absent. */
    noc::NodeId findTile(const std::string &tileName) const;

    /** Consistency checks; fatal() on malformed configs. */
    void validate() const;
};

/** The 3x3 connected-autonomous-vehicle SoC (Fig. 12 left). */
SocConfig make3x3AvSoc();

/** The 4x4 computer-vision SoC (Fig. 12 right). */
SocConfig make4x4VisionSoc();

/**
 * The 6x6 silicon prototype (Fig. 15): a 10-tile PM cluster with
 * BlitzCoin (1 NVDLA, 3 FFT, 6 Viterbi — the 7-accelerator workload
 * uses a subset), an FFT tile without PM as the overhead baseline,
 * 4 CVA6 cores, 4 memory tiles, 4 scratchpads, IO, and other
 * unmanaged accelerators.
 */
SocConfig make6x6SiliconSoc();

/**
 * Synthetic d x d SoC of homogeneous managed accelerators, for
 * scalability sweeps beyond the paper's fabricated sizes.
 */
SocConfig makeSyntheticSoc(int d, const power::PfCurve &curve);

} // namespace blitz::soc

#endif // BLITZ_SOC_CONFIG_HPP
