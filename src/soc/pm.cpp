#include "pm.hpp"

#include "pm_impl.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace blitz::soc {

const char *
pmKindName(PmKind k)
{
    switch (k) {
      case PmKind::BlitzCoin:         return "BC";
      case PmKind::BlitzCoinCentral:  return "BC-C";
      case PmKind::CentralRoundRobin: return "C-RR";
      case PmKind::StaticAlloc:       return "Static";
    }
    return "?";
}

PowerManager::PowerManager(const PmContext &ctx, const PmConfig &cfg)
    : ctx_(ctx), cfg_(cfg), active_(ctx.soc.size(), false)
{
    if (cfg_.budgetMw <= 0.0)
        sim::fatal("power manager needs a positive budget");

    // The coin scale covers the managed accelerators: one coin is the
    // budget divided into units sized so the largest tile's Fmax maps
    // to full counter scale. Idle floors cannot be reallocated — every
    // tile pays its own even when fully drained — so only the budget
    // above the sum of floors is distributable as coins (the paper's
    // "fixed number of coins allocated to non-accelerator tiles and
    // the NoC" plays the same bookkeeping role, Section IV-C).
    std::vector<double> managed_pmax;
    double idle_floor = 0.0;
    for (noc::NodeId id : ctx_.soc.managedAccelerators()) {
        managed_pmax.push_back(ctx_.soc.tile(id).curve->pMax());
        idle_floor += ctx_.soc.tile(id).curve->pIdle();
    }
    const double distributable = cfg_.budgetMw - idle_floor;
    if (distributable <= 0.0) {
        sim::fatal("budget ", cfg_.budgetMw,
                   " mW does not even cover the ", idle_floor,
                   " mW of idle floors");
    }
    scale_ = coin::makeScale(distributable, managed_pmax, cfg_.coinBits);

    // Per-node targets: policy applied as if every managed tile were
    // active; activity gates the value 0 <-> max at runtime.
    std::vector<double> pmax_by_node = ctx_.soc.pMaxByNode();
    std::vector<bool> all_active(ctx_.soc.size(), false);
    for (noc::NodeId id : ctx_.soc.managedAccelerators())
        all_active[id] = true;
    // Unmanaged accelerators must not receive coin targets.
    for (noc::NodeId i = 0; i < ctx_.soc.size(); ++i) {
        if (!all_active[i])
            pmax_by_node[i] = 0.0;
    }
    maxCoins_ = coin::computeMaxCoins(cfg_.alloc, pmax_by_node,
                                      all_active, scale_, cfg_.coinBits);
}

void
PowerManager::noteActivityChange()
{
    // Overlapping changes measure from the most recent one, matching
    // how the paper isolates transitions (Fig. 20 captures a single
    // task-end event).
    pendingChange_ = ctx_.eq.now();
}

void
PowerManager::noteSettled()
{
    if (!pendingChange_)
        return;
    response_.add(static_cast<double>(ctx_.eq.now() - *pendingChange_));
    if (tracer_) {
        tracer_->complete(
            "pm", "settle", 0, *pendingChange_, ctx_.eq.now(),
            {{"response_ticks", static_cast<std::int64_t>(
                                    ctx_.eq.now() - *pendingChange_)}});
    }
    pendingChange_.reset();
}

void
PowerManager::registerMetrics(trace::Registry &reg)
{
    reg.sampled("pm.responses", [this] {
        return static_cast<double>(response_.count());
    });
    reg.sampled("pm.response_mean_ticks",
                [this] { return response_.mean(); });
    reg.sampled("pm.response_max_ticks",
                [this] { return response_.max(); });
}

bool
PowerManager::tilesSettled() const
{
    for (noc::NodeId id : ctx_.soc.managedAccelerators()) {
        const AcceleratorTile *tile = ctx_.tiles[id];
        if (tile && !tile->uvfr().settled())
            return false;
    }
    return true;
}

namespace {
constexpr sim::Tick kProbePeriod = 16;
} // namespace

void
PowerManager::probeTick()
{
    if (!awaitingSettle()) {
        probeArmed_ = false;
        return;
    }
    if (settleCondition() && tilesSettled()) {
        noteSettled();
        probeArmed_ = false;
        return;
    }
    ctx_.eq.scheduleIn(kProbePeriod, [this] { probeTick(); },
                       sim::Priority::Stats);
}

void
PowerManager::armSettleProbe()
{
    if (probeArmed_)
        return;
    probeArmed_ = true;
    ctx_.eq.scheduleIn(kProbePeriod, [this] { probeTick(); },
                       sim::Priority::Stats);
}

std::unique_ptr<PowerManager>
makePowerManager(const PmContext &ctx, const PmConfig &cfg)
{
    switch (cfg.kind) {
      case PmKind::BlitzCoin:
        return std::make_unique<BlitzCoinPm>(ctx, cfg);
      case PmKind::BlitzCoinCentral:
        return std::make_unique<CentralPm>(ctx, cfg, /*roundRobin=*/false);
      case PmKind::CentralRoundRobin:
        return std::make_unique<CentralPm>(ctx, cfg, /*roundRobin=*/true);
      case PmKind::StaticAlloc:
        return std::make_unique<StaticPm>(ctx, cfg);
    }
    sim::panic("unknown power-manager kind");
}

} // namespace blitz::soc
