/**
 * @file
 * Power-management strategies for the SoC model.
 *
 * Four managers implement the paper's evaluated schemes:
 *  - BlitzCoin (BC): fully decentralized; one BlitzCoinUnit per managed
 *    tile exchanging coins over the NoC (Section IV).
 *  - BlitzCoin-Centralized (BC-C): the same proportional allocation,
 *    but computed by a controller on the CPU tile that polls and
 *    updates tiles sequentially over the NoC (Section V-C).
 *  - Centralized Round-Robin (C-RR): greedy rotation of full-power
 *    grants under the cap, after Mantovani et al. [42] (Section V-C).
 *  - Static: a fixed proportional split applied once — the silicon
 *    experiment's comparison baseline (Section VI-C).
 *
 * All managers enforce the same budget and expose the same response
 * instrumentation so the benches can compare them directly.
 */

#ifndef BLITZ_SOC_PM_HPP
#define BLITZ_SOC_PM_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "blitzcoin/guardian.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/allocation.hpp"
#include "config.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "tile.hpp"

namespace blitz::trace {
class Registry;
class Tracer;
}

namespace blitz::fault {
class ByzantinePlan;
}

namespace blitz::soc {

/** Strategy selector. */
enum class PmKind : std::uint8_t
{
    BlitzCoin,         ///< BC: decentralized coin exchange
    BlitzCoinCentral,  ///< BC-C: same allocation, central controller
    CentralRoundRobin, ///< C-RR: greedy rotation baseline
    StaticAlloc,       ///< fixed split, no adaptation
};

const char *pmKindName(PmKind k);

/** Strategy parameters. */
struct PmConfig
{
    PmKind kind = PmKind::BlitzCoin;
    coin::AllocPolicy alloc = coin::AllocPolicy::RelativeProportional;
    /** SoC accelerator power budget (mW). */
    double budgetMw = 0.0;
    /** Coin counter precision (64 levels at 6 bits). */
    int coinBits = 6;
    /** BC: per-unit FSM parameters. */
    blitzcoin::UnitConfig unit{};
    /** Centralized: firmware cycles per tile poll/update step. */
    sim::Tick ctrlCyclesPerTile = 192;
    /** Centralized: fixed firmware overhead per reallocation round. */
    sim::Tick ctrlRoundOverhead = 256;
    /** C-RR: rotation period (ticks). */
    sim::Tick crrRotationPeriod = 20000;
    /** BC: mean coin error below which a change counts as settled. */
    double settleErr = 1.0;
    /**
     * BC: cadence of the audit/remint sweep armed after the first tile
     * restart (ticks). The periodic re-run self-corrects a sweep that
     * misread in-flight deltas as destroyed coins.
     */
    sim::Tick auditPeriod = 8192;
    /**
     * Static baseline: tiles sharing the fixed split. A real static
     * configuration is provisioned for the workload it will run, so
     * benches pass the DAG's tile set; empty means all managed tiles.
     */
    std::vector<noc::NodeId> staticParticipants;
    /**
     * BC: arm the runtime integrity guardian over the managed cluster
     * (shadow books + warn/throttle/quarantine ladder, swept on the
     * audit cadence). Ignored by the centralized schemes.
     */
    bool guardianEnabled = false;
    blitzcoin::GuardianConfig guardian{};
    /**
     * BC: fixed safe operating point a quarantined tile is parked at
     * (MHz) — graceful degradation: the tile keeps computing at a
     * budget-safe frequency while its coins are reclaimed and its
     * neighbors re-form the exchange neighborhood around it.
     */
    double quarantineSafeFreqMhz = 200.0;
};

/** Everything a manager needs from the SoC; references stay owned
 *  by the Soc object and outlive the manager. */
struct PmContext
{
    sim::EventQueue &eq;
    noc::Network &net;
    const SocConfig &soc;
    /** Accelerator tiles indexed by node id (nullptr elsewhere). */
    const std::vector<AcceleratorTile *> &tiles;
    std::uint64_t seed = 1;
};

/**
 * Strategy interface.
 *
 * The Soc calls onTaskStart/onTaskEnd as the workload scheduler flips
 * tile activity, and forwards every service-plane packet delivered to a
 * node through handlePacket.
 */
class PowerManager
{
  public:
    PowerManager(const PmContext &ctx, const PmConfig &cfg);
    virtual ~PowerManager() = default;

    PowerManager(const PowerManager &) = delete;
    PowerManager &operator=(const PowerManager &) = delete;

    virtual const char *name() const = 0;

    /** Bring the scheme up (initial coin spread / initial targets). */
    virtual void start() = 0;

    /** A task began executing on a managed tile. */
    virtual void onTaskStart(noc::NodeId tile) = 0;

    /** The task on a managed tile finished. */
    virtual void onTaskEnd(noc::NodeId tile) = 0;

    /**
     * Fault-plane notifications (see Soc::installFaultPlane). A crash
     * destroys the tile's PM state — for BlitzCoin that includes the
     * coins in its registers; a restart brings the tile back with
     * cleared registers; freeze/thaw is a clock-gated stall with state
     * retained. Managers that keep no per-tile hardware state (the
     * centralized schemes re-poll every round) can ignore them.
     */
    virtual void onNodeCrash(noc::NodeId tile) { (void)tile; }
    virtual void onNodeRestart(noc::NodeId tile) { (void)tile; }
    virtual void onNodeFrozen(noc::NodeId tile) { (void)tile; }
    virtual void onNodeThawed(noc::NodeId tile) { (void)tile; }

    /** Service-plane packet delivered at @p at. */
    virtual void
    handlePacket(noc::NodeId at, const noc::Packet &pkt)
    {
        (void)at;
        (void)pkt;
    }

    /**
     * Compromise the scheme's per-tile state with @p plan (see
     * Soc::installByzantinePlan). Only BlitzCoin has per-tile protocol
     * state to corrupt; the centralized schemes ignore the plan.
     */
    virtual void
    installByzantine(fault::ByzantinePlan &plan)
    {
        (void)plan;
    }

    /**
     * Attach an event tracer (nullptr detaches): every settled
     * reallocation emits a "pm"/"settle" complete span from the
     * activity change to the settle tick. Strategies may add their own
     * events. Disabled costs one branch per settle, not per tick.
     */
    virtual void setTrace(trace::Tracer *t) { tracer_ = t; }

    /**
     * Register the manager's observables on @p reg as sampled gauges
     * (response count/mean/max; strategies add scheme-specific ones,
     * e.g. BC's cluster error and per-unit balances). The registry
     * samples on its own cadence; registration itself schedules
     * nothing.
     */
    virtual void registerMetrics(trace::Registry &reg);

    /** Distribution of measured response times (ticks). */
    const sim::Summary &responseTimes() const { return response_; }

    /** Coin scale in force (mW per coin, pool size). */
    const coin::CoinScale &scale() const { return scale_; }

    /** Configured SoC budget (mW); the cap the trace is checked against. */
    double budgetMw() const { return cfg_.budgetMw; }

    /** Per-node max coin targets under the configured policy. */
    const std::vector<coin::Coins> &maxCoins() const { return maxCoins_; }

  protected:
    /** Mark an activity change at the current tick. */
    void noteActivityChange();

    /** Mark the reallocation for the latest change as complete. */
    void noteSettled();

    /** True when a change is awaiting its settle measurement. */
    bool awaitingSettle() const { return pendingChange_.has_value(); }

    /**
     * True when every managed tile's regulator has reached its target
     * operating point. Response times include this actuation phase:
     * the paper measures until the new V/F point is in effect, not
     * merely until the allocation is decided.
     */
    bool tilesSettled() const;

    /**
     * Strategy-specific "reallocation logically complete" predicate;
     * the settle probe ANDs it with tilesSettled().
     */
    virtual bool settleCondition() { return true; }

    /**
     * Start (if not already running) a periodic probe that records the
     * pending change as settled once settleCondition() and
     * tilesSettled() both hold.
     */
    void armSettleProbe();

    /** One firing of the settle probe; reschedules itself while armed. */
    void probeTick();

    PmContext ctx_;
    PmConfig cfg_;
    coin::CoinScale scale_;
    std::vector<coin::Coins> maxCoins_; ///< by node id
    std::vector<bool> active_;          ///< by node id
    trace::Tracer *tracer_ = nullptr;

  private:
    std::optional<sim::Tick> pendingChange_;
    sim::Summary response_;
    bool probeArmed_ = false;
};

/** Factory over PmConfig::kind. */
std::unique_ptr<PowerManager> makePowerManager(const PmContext &ctx,
                                               const PmConfig &cfg);

} // namespace blitz::soc

#endif // BLITZ_SOC_PM_HPP
