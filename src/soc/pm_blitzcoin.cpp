#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>

#include "fault/byzantine.hpp"
#include "pm_impl.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace blitz::soc {

BlitzCoinPm::BlitzCoinPm(const PmContext &ctx, const PmConfig &cfg)
    : PowerManager(ctx, cfg), plane_(ctx.soc.size())
{
    const auto managed = ctx_.soc.managedAccelerators();
    std::vector<bool> flags(ctx_.soc.size(), false);
    for (noc::NodeId id : managed)
        flags[id] = true;
    auto hoods = coin::managedNeighborhoods(ctx_.net.topology(), flags);

    sim::Rng seeder(ctx_.seed);
    for (noc::NodeId id : managed) {
        PerTile pt;
        pt.unit = std::make_unique<blitzcoin::BlitzCoinUnit>(
            ctx_.eq, ctx_.net, id, cfg_.unit, hoods[id], seeder());
        pt.lut = std::make_unique<blitzcoin::CoinLut>(
            *ctx_.soc.tile(id).curve, scale_, cfg_.coinBits);

        blitzcoin::BlitzCoinUnit *unit = pt.unit.get();
        blitzcoin::CoinLut *lut = pt.lut.get();
        AcceleratorTile *tile = ctx_.tiles[id];
        BLITZ_ASSERT(tile != nullptr, "managed node without a tile");
        unit->onCoinsChanged = [this, lut, tile](coin::Coins has) {
            // Step (2) of the hardware pipeline: LUT converts the coin
            // count to the frequency target driving the UVFR.
            tile->setFreqTargetMhz(lut->freqFor(has));
            coinsMoved();
        };
        // Hot-state mirror: the unit and the tile write their own row
        // through; the audit census and mega-mesh observers then scan
        // packed columns instead of chasing unit pointers.
        unit->attachPlane(&plane_);
        tile->attachPlane(&plane_);
        units_.emplace(id, std::move(pt));
        managedIds_.push_back(id);
    }
    for (auto &[id, pt] : units_)
        audit_.track(*pt.unit);
    audit_.attachPlane(&plane_);
    if (cfg_.guardianEnabled) {
        guardian_ = std::make_unique<blitzcoin::IntegrityGuardian>(
            cfg_.guardian);
        for (auto &[id, pt] : units_)
            guardian_->track(*pt.unit);
        guardian_->setClock([this] { return ctx_.eq.now(); });
        audit_.setGuardian(guardian_.get());
        guardian_->onEscalate = [this](noc::NodeId tile,
                                       blitzcoin::TileHealth h) {
            // Graceful degradation: a quarantined tile is parked at a
            // fixed budget-safe operating point — it keeps computing,
            // but no longer participates in the coin economy (its
            // neighbors shun it and re-form the neighborhood; the
            // audit remints its share to the honest tiles).
            if (h == blitzcoin::TileHealth::Quarantined)
                ctx_.tiles[tile]->setFreqTargetMhz(
                    cfg_.quarantineSafeFreqMhz);
        };
    }
}

void
BlitzCoinPm::installByzantine(fault::ByzantinePlan &plan)
{
    for (auto &[id, pt] : units_)
        plan.corrupt(*pt.unit);
    plan.arm(ctx_.eq, ctx_.net);
}

void
BlitzCoinPm::setTrace(trace::Tracer *t)
{
    PowerManager::setTrace(t);
    for (auto &[id, pt] : units_)
        pt.unit->setTrace(t);
    if (guardian_)
        guardian_->setTrace(t);
}

void
BlitzCoinPm::registerMetrics(trace::Registry &reg)
{
    PowerManager::registerMetrics(reg);
    reg.sampled("pm.cluster_error", [this] { return clusterError(); });
    reg.sampled("pm.cluster_coins", [this] {
        return static_cast<double>(clusterCoins());
    });
    for (auto &[id, pt] : units_) {
        char name[32];
        std::snprintf(name, sizeof name, "pm.coin.has.%d",
                      static_cast<int>(id));
        blitzcoin::BlitzCoinUnit *unit = pt.unit.get();
        reg.sampled(name, [unit] {
            return unit->crashed()
                       ? 0.0
                       : static_cast<double>(unit->has());
        });
    }
    if (guardian_) {
        reg.sampled("guardian.detections", [this] {
            return static_cast<double>(guardian_->detections());
        });
        reg.sampled("guardian.quarantines", [this] {
            return static_cast<double>(guardian_->quarantines());
        });
    }
    reg.sampled("audit.gaps_closed", [this] {
        return static_cast<double>(audit_.gapsClosed());
    });
    reg.sampled("audit.minted", [this] {
        return static_cast<double>(audit_.coinsMinted());
    });
    reg.sampled("audit.burned", [this] {
        return static_cast<double>(audit_.coinsBurned());
    });
}

blitzcoin::BlitzCoinUnit &
BlitzCoinPm::unit(noc::NodeId tile)
{
    auto it = units_.find(tile);
    BLITZ_ASSERT(it != units_.end(), "no BlitzCoin unit on tile ", tile);
    return *it->second.unit;
}

void
BlitzCoinPm::start()
{
    // Spread the pool evenly; the exchange redistributes from any
    // starting point (the Monte-Carlo studies use random spreads).
    audit_.setExpected(scale_.poolCoins);
    const auto n = static_cast<coin::Coins>(units_.size());
    const coin::Coins base = scale_.poolCoins / n;
    coin::Coins leftover = scale_.poolCoins - base * n;
    for (auto &[id, pt] : units_) {
        coin::Coins grant = base + (leftover > 0 ? 1 : 0);
        if (leftover > 0)
            --leftover;
        // Pin each unit's timer chains to its own node's shard; no-op
        // on an unsharded queue.
        // The initial spread is a legitimate grant; without this the
        // guardian's shadow books would read it as counterfeit.
        if (guardian_)
            guardian_->noteGrant(id, grant);
        sim::LocusScope scope(ctx_.eq, id);
        pt.unit->setHas(grant);
        pt.unit->start();
    }
    // Sharded: the recurring audit sweep is armed up front from setup
    // context so its chain lives in the serial lane — the only place
    // reconcile() (which reads and repairs every unit) may run. The
    // legacy path keeps the lazy arm on first crash recovery — unless
    // the guardian is on, whose sweeps ride the same cadence and must
    // run from tick one regardless of crashes.
    if (ctx_.eq.binding().group || guardian_)
        armAuditSweep();
}

void
BlitzCoinPm::onTaskStart(noc::NodeId tile)
{
    noteActivityChange();
    {
        // The max-register write can kick off exchange traffic; charge
        // it to the tile's own locus so its ordering key (and shard)
        // is partition-independent.
        sim::LocusScope scope(ctx_.eq, tile);
        unit(tile).setMax(maxCoins()[tile]);
    }
    active_[tile] = true;
    armSettleProbe();
}

void
BlitzCoinPm::onTaskEnd(noc::NodeId tile)
{
    noteActivityChange();
    {
        sim::LocusScope scope(ctx_.eq, tile);
        unit(tile).setMax(0);
    }
    active_[tile] = false;
    armSettleProbe();
}

bool
BlitzCoinPm::settleCondition()
{
    // Response is measured by sampling the distributed coin state on a
    // fixed cadence — the silicon measurements do the same by scoping
    // the internal PM state (Fig. 20); the base probe additionally
    // waits for the regulators to reach the new operating points.
    return clusterError() < cfg_.settleErr;
}

void
BlitzCoinPm::handlePacket(noc::NodeId at, const noc::Packet &pkt)
{
    auto it = units_.find(at);
    if (it != units_.end())
        it->second.unit->handlePacket(pkt);
}

double
BlitzCoinPm::clusterError() const
{
    // Settle probes sample this on a fixed cadence, so it runs off the
    // SoA plane: three packed columns over the managed id list instead
    // of a map walk through N unit objects. The plane mirrors the unit
    // registers exactly (write-through at every mutation), so the
    // result is bit-identical to the legacy walk.
    const coin::Coins *has = plane_.hasData();
    const coin::Coins *max = plane_.maxData();
    const coin::TilePhase *phase = plane_.phaseData();
    coin::Coins total_has = 0;
    coin::Coins total_max = 0;
    std::size_t counted = 0;
    for (noc::NodeId id : managedIds_) {
        if (phase[id] == coin::TilePhase::Quarantined)
            continue; // fenced coins are outside the economy
        total_has += has[id];
        total_max += max[id];
        ++counted;
    }
    if (total_max == 0 || counted == 0)
        return 0.0; // nothing active: no distribution to converge to
    const double alpha = static_cast<double>(total_has) /
                         static_cast<double>(total_max);
    // *Effective* error: holdings and expectations are both clamped at
    // the tile's saturation point (max coins = coins for Pmax by
    // construction). In an oversupplied phase (alpha > 1) every active
    // tile runs flat out once it holds max coins; coins beyond that
    // change nothing physically, so the response metric must not wait
    // for the surplus to reach exact proportionality.
    double sum = 0.0;
    for (noc::NodeId id : managedIds_) {
        if (phase[id] == coin::TilePhase::Quarantined)
            continue;
        const double m = static_cast<double>(max[id]);
        const double has_eff =
            std::clamp(static_cast<double>(has[id]), 0.0, m);
        const double want_eff = std::clamp(alpha * m, 0.0, m);
        sum += std::abs(has_eff - want_eff);
    }
    return sum / static_cast<double>(counted);
}

coin::Coins
BlitzCoinPm::clusterCoins() const
{
    // Whole-plane alive sum: unmanaged rows are zero, crashed rows
    // hold zero coins (registers cleared at the crash), so this equals
    // the legacy managed-units walk that skipped only quarantine.
    return plane_.aliveCoins();
}

void
BlitzCoinPm::onNodeCrash(noc::NodeId tile)
{
    auto it = units_.find(tile);
    if (it == units_.end())
        return; // outage on an unmanaged node: packets drop, no PM state
    // No LocusScope here: the fault plane schedules outage edges at the
    // affected node's own locus, so this already executes in the right
    // shard (and a scope would trip the parallel-phase assert).
    it->second.unit->crash();
}

void
BlitzCoinPm::onNodeRestart(noc::NodeId tile)
{
    auto it = units_.find(tile);
    if (it == units_.end())
        return;
    blitzcoin::BlitzCoinUnit &u = *it->second.unit;
    // Executes at the tile's own locus (the fault plane pins outage
    // edges there), so the unit mutations land in the owning shard.
    u.restart();
    // The max target is architectural configuration re-applied by the
    // scheduler side at power-up; the coins the tile held are gone and
    // only the audit sweep can remint them.
    u.setMax(active_[tile] ? maxCoins()[tile] : 0);
    u.start();
    // Sharded runs armed the sweep at start() — arming here would pin
    // the recurring audit chain to this tile's locus, and reconcile()
    // must only ever run in the serial lane (it touches every unit).
    if (!ctx_.eq.binding().group)
        armAuditSweep();
}

void
BlitzCoinPm::onNodeFrozen(noc::NodeId tile)
{
    auto it = units_.find(tile);
    if (it != units_.end())
        it->second.unit->stop(); // already at the tile's locus
}

void
BlitzCoinPm::onNodeThawed(noc::NodeId tile)
{
    auto it = units_.find(tile);
    if (it != units_.end())
        it->second.unit->start(); // already at the tile's locus
}

void
BlitzCoinPm::armAuditSweep()
{
    if (auditArmed_)
        return;
    auditArmed_ = true;
    auditTick();
}

void
BlitzCoinPm::auditTick()
{
    // Recurring for the rest of the run: one sweep can misattribute
    // in-flight deltas to the crash and over-mint, but the next sweep
    // observes the landed coins and burns the excess back.
    ctx_.eq.scheduleIn(cfg_.auditPeriod, [this] {
        // Guardian verdicts land before the census so a quarantine
        // decided this sweep is reclaimed by the same reconcile.
        if (guardian_)
            guardian_->sweep();
        audit_.reconcile();
        coinsMoved();
        auditTick();
    }, sim::Priority::Stats);
}

void
BlitzCoinPm::coinsMoved()
{
    // Fast path between probe samples: a movement that brings the
    // cluster under threshold (with actuation already done) is
    // credited immediately. Sharded runs must not take it — the
    // callback fires at the moving unit's locus, and summing every
    // unit's registers from there reads other shards mid-superstep.
    // There the serial-lane probe is the sole settle observer, which
    // also makes the measured response partition-independent (the
    // probe samples quiesced state on a fixed cadence, exactly the
    // external-scope methodology the paper uses, Fig. 20).
    if (ctx_.eq.binding().group)
        return;
    if (awaitingSettle() && settleCondition() && tilesSettled())
        noteSettled();
}

} // namespace blitz::soc
