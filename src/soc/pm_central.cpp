#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "pm_impl.hpp"

namespace blitz::soc {

namespace {

/** RegWrite payload is the power grant in microwatts. */
std::int64_t
toUw(double mw)
{
    return static_cast<std::int64_t>(std::llround(mw * 1000.0));
}

double
fromUw(std::int64_t uw)
{
    return static_cast<double>(uw) / 1000.0;
}

} // namespace

CentralPm::CentralPm(const PmContext &ctx, const PmConfig &cfg,
                     bool roundRobin)
    : PowerManager(ctx, cfg), roundRobin_(roundRobin),
      managed_(ctx.soc.managedAccelerators()),
      grants_(ctx.soc.size(), 0.0)
{
}

void
CentralPm::start()
{
    // Everything idle at boot: one round zeroes all targets.
    startRound(/*fromActivity=*/false);

    if (roundRobin_) {
        // Fairness rotation: periodically advance the grant order so
        // tiles starved by the greedy pass get their turn.
        ctx_.eq.scheduleIn(cfg_.crrRotationPeriod, [this] { rotateTick(); },
                          sim::Priority::Controller);
    }
}

void
CentralPm::rotateTick()
{
    rotation_ = (rotation_ + 1) % std::max<std::size_t>(managed_.size(), 1);
    bool any_active = false;
    for (noc::NodeId id : managed_)
        any_active = any_active || active_[id];
    if (any_active && !roundActive_)
        startRound(/*fromActivity=*/false);
    ctx_.eq.scheduleIn(cfg_.crrRotationPeriod, [this] { rotateTick(); },
                      sim::Priority::Controller);
}

void
CentralPm::onTaskStart(noc::NodeId tile)
{
    noteActivityChange();
    writesApplied_ = false;
    active_[tile] = true;
    activityChanged(tile, true);
}

void
CentralPm::onTaskEnd(noc::NodeId tile)
{
    noteActivityChange();
    writesApplied_ = false;
    active_[tile] = false;
    activityChanged(tile, false);
}

void
CentralPm::activityChanged(noc::NodeId tile, bool nowActive)
{
    (void)nowActive;
    // The tile raises an interrupt to the on-chip controller; the
    // reallocation starts when it lands (NoC latency included).
    noc::Packet pkt;
    pkt.src = tile;
    pkt.dst = ctx_.soc.cpuTile;
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::Interrupt;
    if (tile == ctx_.soc.cpuTile) {
        // Degenerate self-notification (not used by the presets).
        startRound(true);
        return;
    }
    ctx_.net.send(pkt);
}

void
CentralPm::startRound(bool fromActivity)
{
    if (roundActive_) {
        dirty_ = true;
        roundFromActivity_ = roundFromActivity_ || fromActivity;
        return;
    }
    roundActive_ = true;
    roundFromActivity_ = fromActivity;
    pollIdx_ = 0;
    // Firmware wake-up / scheduling overhead before the first poll.
    ctx_.eq.scheduleIn(cfg_.ctrlRoundOverhead, [this] { pollNext(); },
                      sim::Priority::Controller);
}

void
CentralPm::pollNext()
{
    if (pollIdx_ >= managed_.size()) {
        computeAndWrite();
        return;
    }
    noc::Packet pkt;
    pkt.src = ctx_.soc.cpuTile;
    pkt.dst = managed_[pollIdx_];
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::RegRead;
    ctx_.net.send(pkt);
    // Continuation happens when the RegReadResp lands (handlePacket).
}

void
CentralPm::computeAndWrite()
{
    std::vector<double> alloc = computeAllocation();
    for (noc::NodeId id : managed_)
        grants_[id] = alloc[id];
    writeIdx_ = 0;
    writeNext();
}

void
CentralPm::writeNext()
{
    if (writeIdx_ >= managed_.size()) {
        roundActive_ = false;
        if (dirty_) {
            dirty_ = false;
            bool from_activity = roundFromActivity_;
            roundFromActivity_ = false;
            startRound(from_activity);
        }
        return;
    }
    noc::NodeId node = managed_[writeIdx_];
    noc::Packet pkt;
    pkt.src = ctx_.soc.cpuTile;
    pkt.dst = node;
    pkt.plane = noc::Plane::Service;
    pkt.type = noc::MsgType::RegWrite;
    pkt.payload[0] = toUw(grants_[node]);
    pkt.payload[1] =
        (writeIdx_ + 1 == managed_.size() && roundFromActivity_) ? 1 : 0;
    ctx_.net.send(pkt);

    ++writeIdx_;
    // Sequential firmware: one write prepared per controller step.
    ctx_.eq.scheduleIn(cfg_.ctrlCyclesPerTile, [this] { writeNext(); },
                      sim::Priority::Controller);
}

void
CentralPm::handlePacket(noc::NodeId at, const noc::Packet &pkt)
{
    if (at == ctx_.soc.cpuTile) {
        switch (pkt.type) {
          case noc::MsgType::Interrupt:
            startRound(/*fromActivity=*/true);
            break;
          case noc::MsgType::RegReadResp:
            // Bookkeeping cost of digesting one tile's status.
            ctx_.eq.scheduleIn(cfg_.ctrlCyclesPerTile, [this] {
                ++pollIdx_;
                pollNext();
            }, sim::Priority::Controller);
            break;
          default:
            break;
        }
        return;
    }

    switch (pkt.type) {
      case noc::MsgType::RegRead: {
        // CSR read of the tile's activity/status registers.
        noc::Packet reply;
        reply.src = at;
        reply.dst = ctx_.soc.cpuTile;
        reply.plane = noc::Plane::Service;
        reply.type = noc::MsgType::RegReadResp;
        reply.payload[0] = active_[at] ? 1 : 0;
        ctx_.net.send(reply);
        break;
      }
      case noc::MsgType::RegWrite: {
        AcceleratorTile *tile = ctx_.tiles[at];
        BLITZ_ASSERT(tile != nullptr, "RegWrite to a non-accel tile");
        double grant = fromUw(pkt.payload[0]);
        tile->setFreqTargetMhz(tile->curve().freqForPower(grant));
        if (pkt.payload[1] == 1) {
            // Last write of an activity-triggered round has landed;
            // the response completes once the regulators settle.
            writesApplied_ = true;
            armSettleProbe();
        }
        break;
      }
      default:
        break;
    }
}

double
CentralPm::quantize(double powerMw) const
{
    const double unit = scale_.mwPerCoin();
    return std::floor(powerMw / unit) * unit;
}

std::vector<double>
CentralPm::computeAllocation() const
{
    std::vector<double> out(ctx_.soc.size(), 0.0);

    if (!roundRobin_) {
        // BC-C: the BlitzCoin equilibrium computed centrally — every
        // active tile gets budget * w_i / sum(w), w being its coin
        // target, capped at its own Pmax.
        double total_w = 0.0;
        for (noc::NodeId id : managed_) {
            if (active_[id])
                total_w += static_cast<double>(maxCoins()[id]);
        }
        if (total_w <= 0.0)
            return out;
        for (noc::NodeId id : managed_) {
            if (!active_[id])
                continue;
            double share = scale_.budgetMw *
                           static_cast<double>(maxCoins()[id]) / total_w;
            share = std::min(share, ctx_.soc.tile(id).curve->pMax());
            out[id] = quantize(share);
        }
        return out;
    }

    // C-RR: greedy full-power grants in rotating order until the
    // budget runs out; everyone else idles until the rotation brings
    // them to the front (Section V-C).
    double remaining = scale_.budgetMw;
    const std::size_t n = managed_.size();
    for (std::size_t k = 0; k < n && remaining > 0.0; ++k) {
        noc::NodeId id = managed_[(rotation_ + k) % n];
        if (!active_[id])
            continue;
        double grant = std::min(remaining,
                                ctx_.soc.tile(id).curve->pMax());
        grant = quantize(grant);
        out[id] = grant;
        remaining -= grant;
    }
    return out;
}

StaticPm::StaticPm(const PmContext &ctx, const PmConfig &cfg)
    : PowerManager(ctx, cfg)
{
}

void
StaticPm::start()
{
    // One-time proportional split over the provisioned tiles: the
    // share of a tile whose task has finished (or not yet started) is
    // simply wasted, which is the inefficiency the silicon experiment
    // quantifies (Fig. 19 top).
    std::vector<noc::NodeId> participants = cfg_.staticParticipants;
    if (participants.empty())
        participants = ctx_.soc.managedAccelerators();
    double total_w = 0.0;
    for (noc::NodeId id : participants)
        total_w += static_cast<double>(maxCoins()[id]);
    BLITZ_ASSERT(total_w > 0.0, "no tiles to allocate statically");
    for (noc::NodeId id : participants) {
        double share = scale_.budgetMw *
                       static_cast<double>(maxCoins()[id]) / total_w;
        AcceleratorTile *tile = ctx_.tiles[id];
        BLITZ_ASSERT(tile != nullptr, "participant without a tile");
        tile->setFreqTargetMhz(tile->curve().freqForPower(share));
    }
}

void
StaticPm::onTaskStart(noc::NodeId tile)
{
    (void)tile; // static allocation never reacts
}

void
StaticPm::onTaskEnd(noc::NodeId tile)
{
    (void)tile;
}

} // namespace blitz::soc
