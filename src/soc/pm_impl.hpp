/**
 * @file
 * Concrete power-manager implementations (see pm.hpp for the survey).
 * Split from the public header so the Soc-facing API stays small.
 */

#ifndef BLITZ_SOC_PM_IMPL_HPP
#define BLITZ_SOC_PM_IMPL_HPP

#include <map>
#include <memory>
#include <vector>

#include "blitzcoin/audit.hpp"
#include "blitzcoin/coin_lut.hpp"
#include "blitzcoin/guardian.hpp"
#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"
#include "pm.hpp"

namespace blitz::soc {

/**
 * Fully decentralized BlitzCoin manager: one unit + LUT per managed
 * tile; no shared algorithmic state. The manager object itself only
 * wires callbacks and measures global settle time (which on silicon is
 * done with an external scope, Fig. 20).
 */
class BlitzCoinPm : public PowerManager
{
  public:
    BlitzCoinPm(const PmContext &ctx, const PmConfig &cfg);

    const char *name() const override { return "BC"; }
    void start() override;
    void onTaskStart(noc::NodeId tile) override;
    void onTaskEnd(noc::NodeId tile) override;
    void handlePacket(noc::NodeId at, const noc::Packet &pkt) override;
    void onNodeCrash(noc::NodeId tile) override;
    void onNodeRestart(noc::NodeId tile) override;
    void onNodeFrozen(noc::NodeId tile) override;
    void onNodeThawed(noc::NodeId tile) override;
    void installByzantine(fault::ByzantinePlan &plan) override;

    /** The unit on a managed tile (test access). */
    blitzcoin::BlitzCoinUnit &unit(noc::NodeId tile);

    /** The integrity guardian, or nullptr when disabled. */
    blitzcoin::IntegrityGuardian *guardian() { return guardian_.get(); }
    const blitzcoin::IntegrityGuardian *
    guardian() const
    {
        return guardian_.get();
    }

    /** The audit watchdog restoring the pool after crashes. */
    const blitzcoin::ClusterAudit &audit() const { return audit_; }
    blitzcoin::ClusterAudit &audit() { return audit_; }

    /**
     * The SoA mirror of the cluster's hot per-tile state (coins, max,
     * phase, refresh interval, frequency target), indexed by NodeId
     * over the full mesh. Write-through from every unit and managed
     * tile; the audit census reads it. Test/metrics access.
     */
    const coin::StatePlane &plane() const { return plane_; }

    /** Mean coin error over the managed cluster (the Err metric). */
    double clusterError() const;

    /** Sum of coins over the cluster (conservation probe). */
    coin::Coins clusterCoins() const;

    /** Also wires the tracer into every unit. */
    void setTrace(trace::Tracer *t) override;

    /** Adds cluster error/total, per-unit balances, audit counters. */
    void registerMetrics(trace::Registry &reg) override;

  protected:
    bool settleCondition() override;

  private:
    void coinsMoved();

    /** Start (once) the periodic audit sweep after a crash recovery. */
    void armAuditSweep();
    void auditTick();

    struct PerTile
    {
        std::unique_ptr<blitzcoin::BlitzCoinUnit> unit;
        std::unique_ptr<blitzcoin::CoinLut> lut;
    };

    std::map<noc::NodeId, PerTile> units_;
    /// Managed node ids in ascending order — the dense iteration set
    /// for plane scans (units_ is the same set keyed for lookup).
    std::vector<noc::NodeId> managedIds_;
    /// SoA hot-state mirror; rows for every mesh node, written through
    /// by the units and tiles, read by the audit census. Declared
    /// before audit_ only for clarity — attachment happens in the
    /// ctor, and units_ (the writers) outlive neither.
    coin::StatePlane plane_;
    blitzcoin::ClusterAudit audit_{0};
    std::unique_ptr<blitzcoin::IntegrityGuardian> guardian_;
    bool auditArmed_ = false;
};

/**
 * Centralized controller shared by BC-C and C-RR: interrupt-driven
 * reallocation rounds that poll every managed tile, compute, then
 * write every tile's V/F target — all sequentially over the NoC with
 * per-step firmware latency, which is what makes response O(N).
 */
class CentralPm : public PowerManager
{
  public:
    CentralPm(const PmContext &ctx, const PmConfig &cfg, bool roundRobin);

    const char *
    name() const override
    {
        return roundRobin_ ? "C-RR" : "BC-C";
    }

    void start() override;
    void onTaskStart(noc::NodeId tile) override;
    void onTaskEnd(noc::NodeId tile) override;
    void handlePacket(noc::NodeId at, const noc::Packet &pkt) override;

  protected:
    bool
    settleCondition() override
    {
        return writesApplied_;
    }

  private:
    void activityChanged(noc::NodeId tile, bool nowActive);
    void rotateTick();
    void startRound(bool fromActivity);
    void pollNext();
    void computeAndWrite();
    void writeNext();

    /** Target power per node under the scheme's allocation (mW). */
    std::vector<double> computeAllocation() const;

    /** Quantize a power grant to the coin precision (mW). */
    double quantize(double powerMw) const;

    bool roundRobin_;
    std::vector<noc::NodeId> managed_;
    std::size_t rotation_ = 0; ///< C-RR rotation offset
    bool roundActive_ = false;
    bool dirty_ = false;       ///< change arrived mid-round
    bool roundFromActivity_ = false;
    /** The latest activity-triggered round's writes have all landed. */
    bool writesApplied_ = false;
    std::size_t pollIdx_ = 0;
    std::size_t writeIdx_ = 0;
    std::vector<double> grants_; ///< per managed index, mW
};

/** Fixed proportional split applied once at start. */
class StaticPm : public PowerManager
{
  public:
    StaticPm(const PmContext &ctx, const PmConfig &cfg);

    const char *name() const override { return "Static"; }
    void start() override;
    void onTaskStart(noc::NodeId tile) override;
    void onTaskEnd(noc::NodeId tile) override;
};

} // namespace blitz::soc

#endif // BLITZ_SOC_PM_IMPL_HPP
