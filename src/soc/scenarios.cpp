#include "scenarios.hpp"

#include "sim/logging.hpp"

namespace blitz::soc {

namespace {

/** Work cycles for a duration at the tile's full frequency. */
double
workUs(const SocConfig &cfg, noc::NodeId node, double usAtFmax)
{
    return usAtFmax * cfg.tile(node).curve->fMax();
}

} // namespace

workload::Dag
avParallel(const SocConfig &cfg)
{
    workload::Dag dag;
    const noc::NodeId nvdla = cfg.findTile("NVDLA");
    const noc::NodeId fft0 = cfg.findTile("FFT0");
    const noc::NodeId fft1 = cfg.findTile("FFT1");
    const noc::NodeId fft2 = cfg.findTile("FFT2");
    const noc::NodeId vit0 = cfg.findTile("VIT0");
    const noc::NodeId vit1 = cfg.findTile("VIT1");

    // Staggered lengths: completions arrive one by one, each forcing a
    // power reallocation (the transitions magnified in Fig. 16).
    dag.add("nvdla", nvdla, workUs(cfg, nvdla, 600.0));
    dag.add("fft0", fft0, workUs(cfg, fft0, 500.0));
    dag.add("fft1", fft1, workUs(cfg, fft1, 450.0));
    dag.add("fft2", fft2, workUs(cfg, fft2, 400.0));
    dag.add("vit0", vit0, workUs(cfg, vit0, 300.0));
    dag.add("vit1", vit1, workUs(cfg, vit1, 250.0));
    return dag;
}

workload::Dag
avDependent(const SocConfig &cfg, int frames)
{
    BLITZ_ASSERT(frames >= 1, "need at least one frame");
    workload::Dag dag;
    const noc::NodeId nvdla = cfg.findTile("NVDLA");
    const noc::NodeId ffts[3] = {cfg.findTile("FFT0"),
                                 cfg.findTile("FFT1"),
                                 cfg.findTile("FFT2")};
    const noc::NodeId vits[2] = {cfg.findTile("VIT0"),
                                 cfg.findTile("VIT1")};

    workload::TaskId prev_detect = 0;
    bool has_prev = false;
    for (int f = 0; f < frames; ++f) {
        const std::string tag = "f" + std::to_string(f);
        std::vector<workload::TaskId> stage;
        for (int k = 0; k < 3; ++k) {
            std::vector<workload::TaskId> deps;
            if (has_prev)
                deps.push_back(prev_detect);
            stage.push_back(dag.add("fft" + std::to_string(k) + "-" + tag,
                                    ffts[k], workUs(cfg, ffts[k], 120.0),
                                    deps));
        }
        for (int k = 0; k < 2; ++k) {
            std::vector<workload::TaskId> deps;
            if (has_prev)
                deps.push_back(prev_detect);
            stage.push_back(dag.add("vit" + std::to_string(k) + "-" + tag,
                                    vits[k], workUs(cfg, vits[k], 80.0),
                                    deps));
        }
        prev_detect = dag.add("nvdla-" + tag, nvdla,
                              workUs(cfg, nvdla, 150.0), stage);
        has_prev = true;
    }
    return dag;
}

workload::Dag
visionParallel(const SocConfig &cfg)
{
    workload::Dag dag;
    // One staggered task per accelerator; lengths spread 200-500 us.
    const char *names[13] = {"GEMM0", "GEMM1", "GEMM2", "GEMM3",
                             "CONV0", "CONV1", "CONV2", "CONV3",
                             "CONV4", "VIS0", "VIS1", "VIS2", "VIS3"};
    double us = 500.0;
    for (const char *n : names) {
        noc::NodeId node = cfg.findTile(n);
        dag.add(n, node, workUs(cfg, node, us));
        us -= 25.0;
    }
    return dag;
}

workload::Dag
visionDependent(const SocConfig &cfg, int frames)
{
    BLITZ_ASSERT(frames >= 1, "need at least one frame");
    workload::Dag dag;
    const noc::NodeId vis[4] = {cfg.findTile("VIS0"), cfg.findTile("VIS1"),
                                cfg.findTile("VIS2"), cfg.findTile("VIS3")};
    const noc::NodeId conv[5] = {cfg.findTile("CONV0"),
                                 cfg.findTile("CONV1"),
                                 cfg.findTile("CONV2"),
                                 cfg.findTile("CONV3"),
                                 cfg.findTile("CONV4")};
    const noc::NodeId gemmT[4] = {cfg.findTile("GEMM0"),
                                  cfg.findTile("GEMM1"),
                                  cfg.findTile("GEMM2"),
                                  cfg.findTile("GEMM3")};

    std::vector<workload::TaskId> prev;
    for (int f = 0; f < frames; ++f) {
        const std::string tag = "f" + std::to_string(f);
        std::vector<workload::TaskId> vstage;
        for (int k = 0; k < 4; ++k) {
            vstage.push_back(dag.add("vis" + std::to_string(k) + "-" + tag,
                                     vis[k], workUs(cfg, vis[k], 150.0),
                                     prev));
        }
        std::vector<workload::TaskId> cstage;
        for (int k = 0; k < 5; ++k) {
            cstage.push_back(dag.add("conv" + std::to_string(k) + "-" +
                                         tag,
                                     conv[k], workUs(cfg, conv[k], 180.0),
                                     vstage));
        }
        std::vector<workload::TaskId> gstage;
        for (int k = 0; k < 4; ++k) {
            gstage.push_back(dag.add("gemm" + std::to_string(k) + "-" +
                                         tag,
                                     gemmT[k], workUs(cfg, gemmT[k], 120.0),
                                     cstage));
        }
        prev = gstage;
    }
    return dag;
}

workload::Dag
siliconWorkload(const SocConfig &cfg, int accels)
{
    workload::Dag dag;
    struct Entry
    {
        const char *tile;
        double us;
    };
    // NVDLA ends first so the Fig. 20 capture has its activity edge;
    // the remaining tiles keep executing through the transition.
    const Entry seven[7] = {
        {"NVDLA0", 200.0}, {"FFT0", 420.0}, {"FFT1", 390.0},
        {"VIT0", 360.0},   {"VIT1", 330.0}, {"VIT2", 300.0},
        {"VIT3", 270.0},
    };
    int count;
    switch (accels) {
      case 7: count = 7; break;
      case 5: count = 5; break;
      case 4: count = 4; break;
      case 3: count = 3; break;
      default:
        sim::fatal("silicon workload supports 3/4/5/7 accelerators, got ",
                   accels);
    }
    for (int k = 0; k < count; ++k) {
        noc::NodeId node = cfg.findTile(seven[k].tile);
        dag.add(seven[k].tile, node, workUs(cfg, node, seven[k].us));
    }
    return dag;
}

} // namespace blitz::soc
