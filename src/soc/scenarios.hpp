/**
 * @file
 * Workload scenarios of Section V-B.
 *
 * Two dataflow shapes per SoC (Fig. 14): Workload-Parallel (WL-Par),
 * where every accelerator runs concurrently with staggered task lengths
 * so completions create a stream of activity changes, and
 * Workload-Dependent (WL-Dep), where tasks chain in the DAG a realistic
 * application (the mini-ERA autonomous-vehicle pipeline, or a
 * vision -> convolution -> GEMM CNN flow) imposes. Task lengths are
 * specified as time at Fmax and converted to work cycles; under a power
 * cap the effective duration stretches with the granted frequency.
 *
 * The silicon workloads reproduce the prototype measurements: 7, 5, 4
 * or 3 accelerators of the PM cluster driven from one CVA6 core
 * (Section V-D), with the NVDLA task ending first so the Fig. 20
 * response capture has its activity edge.
 */

#ifndef BLITZ_SOC_SCENARIOS_HPP
#define BLITZ_SOC_SCENARIOS_HPP

#include "config.hpp"
#include "workload/dag.hpp"

namespace blitz::soc {

/** WL-Par on the 3x3 AV SoC: all six accelerators, staggered lengths. */
workload::Dag avParallel(const SocConfig &cfg);

/**
 * WL-Dep on the 3x3 AV SoC: per frame, the three FFTs (depth
 * estimation) and two Viterbis (V2V decode) feed the NVDLA detection
 * stage; frames pipeline back-to-back.
 */
workload::Dag avDependent(const SocConfig &cfg, int frames = 3);

/** WL-Par on the 4x4 vision SoC: all 13 accelerators. */
workload::Dag visionParallel(const SocConfig &cfg);

/**
 * WL-Dep on the 4x4 vision SoC: Vision front-ends feed Conv2D layers
 * feeding GEMM classifier stages, per frame.
 */
workload::Dag visionDependent(const SocConfig &cfg, int frames = 3);

/**
 * Silicon-prototype workload on the 6x6 SoC PM cluster.
 * @param accels 7, 5, 4 or 3 concurrently used accelerators.
 */
workload::Dag siliconWorkload(const SocConfig &cfg, int accels = 7);

/** Budget presets used by the paper (mW). */
namespace budgets {

/** 3x3 SoC: 30% and 15% of the 400 mW combined accelerator peak. */
inline constexpr double av30Percent = 120.0;
inline constexpr double av15Percent = 60.0;

/** 4x4 SoC: 33% and 66% of the ~1355 mW combined peak. */
inline constexpr double vision33Percent = 450.0;
inline constexpr double vision66Percent = 900.0;

/** 6x6 PM cluster (510 mW peak): the measurement operating point. */
inline constexpr double silicon = 150.0;

} // namespace budgets

} // namespace blitz::soc

#endif // BLITZ_SOC_SCENARIOS_HPP
