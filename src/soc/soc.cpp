#include "soc.hpp"

#include <algorithm>

#include "record/recorder.hpp"
#include "sim/logging.hpp"
#include "trace/health.hpp"
#include "trace/metrics.hpp"
#include "trace/prof.hpp"
#include "trace/tracer.hpp"

namespace blitz::soc {

Soc::Soc(SocConfig config, const PmConfig &pmCfg, std::uint64_t seed)
    : config_(std::move(config))
{
    config_.validate();
    noc::Topology topo(config_.width, config_.height, /*wrap=*/false);
    net_ = std::make_unique<noc::Network>(eq_, topo);

    if (config_.shards >= 1) {
        // Sharding is only sound for the fully decentralized manager:
        // per-node units own their state and packets execute at their
        // destination's locus. The centralized schemes mutate one
        // controller object from every node's deliveries.
        BLITZ_ASSERT(pmCfg.kind == PmKind::BlitzCoin,
                     "sharded Soc requires the decentralized BC manager");
        group_ = std::make_unique<sim::ShardGroup>(
            eq_, config_.shards,
            sim::columnBands(static_cast<std::uint32_t>(config_.width),
                             static_cast<std::uint32_t>(config_.height),
                             config_.shards));
        net_->enableSharding(*group_);
    }

    tilesByNode_.assign(config_.size(), nullptr);
    for (noc::NodeId id = 0; id < config_.size(); ++id) {
        const TileSpec &spec = config_.tile(id);
        if (spec.type != TileType::Accel)
            continue;
        tileStore_.push_back(std::make_unique<AcceleratorTile>(
            eq_, id, spec.name, *spec.curve));
        tilesByNode_[id] = tileStore_.back().get();
    }

    PmContext ctx{eq_, *net_, config_, tilesByNode_, seed};
    pm_ = makePowerManager(ctx, pmCfg);

    // Route every node's service-plane deliveries into the manager
    // (BlitzCoin units, controller, and tile CSRs all live there).
    // Flits the fault plane damaged fail the endpoint CRC and are
    // discarded here, before any manager sees the garbled payload.
    for (noc::NodeId id = 0; id < config_.size(); ++id) {
        net_->setHandler(id, [this, id](const noc::Packet &pkt) {
            if (pkt.corrupted)
                return;
            pm_->handlePacket(id, pkt);
        });
    }
}

void
Soc::installFaultPlane(fault::FaultPlane &plane)
{
    BLITZ_ASSERT(fault_ == nullptr, "a fault plane is already installed");
    fault_ = &plane;
    plane.attach(*net_);
    plane.onNodeDown = [this](noc::NodeId n) { pm_->onNodeCrash(n); };
    plane.onNodeUp = [this](noc::NodeId n) { pm_->onNodeRestart(n); };
    plane.onNodeFrozen = [this](noc::NodeId n) { pm_->onNodeFrozen(n); };
    plane.onNodeThawed = [this](noc::NodeId n) { pm_->onNodeThawed(n); };
    if (group_)
        plane.enableKeyedStreams(config_.shards);
    plane.armOutageSchedule(eq_);
    if (tracer_)
        plane.setTrace(tracer_);
    if (recorder_)
        plane.setRecorder(recorder_);
}

void
Soc::installByzantinePlan(fault::ByzantinePlan &plan)
{
    BLITZ_ASSERT(byz_ == nullptr,
                 "a byzantine plan is already installed");
    byz_ = &plan;
    pm_->installByzantine(plan);
    if (tracer_)
        plan.setTrace(tracer_);
    if (recorder_)
        plan.setRecorder(recorder_);
}

void
Soc::attachPhysics(PhysicsPlane &plane)
{
    BLITZ_ASSERT(physics_ == nullptr,
                 "a physics plane is already attached");
    physics_ = &plane;
    plane.bind(config_, tilesByNode_);
    if (recorder_)
        plane.setRecorder(recorder_);
    if (metrics_)
        registerPhysicsMetrics(*metrics_);
}

void
Soc::registerPhysicsMetrics(trace::Registry &reg)
{
    reg.sampled("physics.max_temp_c",
                [this] { return physics_->thermal().maxC(); });
    reg.sampled("physics.mean_temp_c",
                [this] { return physics_->thermal().meanC(); });
    reg.sampled("physics.throttled_tiles", [this] {
        return static_cast<double>(physics_->arbiter().throttledCount());
    });
    reg.sampled("physics.rail_max_load", [this] {
        return physics_->rails().maxLoadFraction();
    });
    reg.sampled("physics.throttle_engages", [this] {
        return static_cast<double>(physics_->arbiter().engages());
    });
}

void
Soc::attachMetrics(trace::Registry *reg, sim::Tick interval)
{
    metrics_ = reg;
    metricsEvery_ = interval;
    if (!reg)
        return;
    pm_->registerMetrics(*reg);
    reg->sampled("soc.power_mw", [this] { return totalAccelPowerMw(); });
    reg->sampled("noc.packets_sent", [this] {
        return static_cast<double>(net_->packetsSent());
    });
    reg->sampled("noc.packets_delivered", [this] {
        return static_cast<double>(net_->packetsDelivered());
    });
    reg->sampled("noc.packets_dropped", [this] {
        return static_cast<double>(net_->packetsDropped());
    });
    reg->sampled("noc.total_hops", [this] {
        return static_cast<double>(net_->totalHops());
    });
    reg->sampled("sim.events_scheduled", [this] {
        return static_cast<double>(eq_.totalScheduled());
    });
    reg->sampled("sim.events_executed", [this] {
        return static_cast<double>(eq_.totalExecuted());
    });
    if (physics_)
        registerPhysicsMetrics(*reg);
}

void
Soc::attachTrace(trace::Tracer *t)
{
    tracer_ = t;
    pm_->setTrace(t);
    if (fault_)
        fault_->setTrace(t);
    if (byz_)
        byz_->setTrace(t);
}

void
Soc::attachRecorder(record::FlightRecorder *rec)
{
    recorder_ = rec;
    // Sharded deliveries append from parallel phases; flip the
    // recorder's mutex on before the first concurrent append.
    if (rec && group_)
        rec->setConcurrent(true);
    net_->setRecorder(rec);
    for (auto &t : tileStore_)
        t->setRecorder(rec);
    if (fault_)
        fault_->setRecorder(rec);
    if (byz_)
        byz_->setRecorder(rec);
    if (physics_)
        physics_->setRecorder(rec);
}

Soc::~Soc() = default;

AcceleratorTile &
Soc::tile(noc::NodeId id)
{
    BLITZ_ASSERT(id < tilesByNode_.size() && tilesByNode_[id],
                 "node ", id, " is not an accelerator tile");
    return *tilesByNode_[id];
}

double
Soc::totalAccelPowerMw() const
{
    double total = 0.0;
    for (const auto &t : tileStore_)
        total += t->powerMw();
    return total;
}

void
Soc::fillHealth(trace::HealthReport &report) const
{
    report.bumpDet("soc.tasks_completed",
                   static_cast<double>(tasksCompleted_));
    report.bumpDet("noc.sent",
                   static_cast<double>(net_->packetsSent()));
    report.bumpDet("noc.delivered",
                   static_cast<double>(net_->packetsDelivered()));
    report.bumpDet("noc.dropped",
                   static_cast<double>(net_->packetsDropped()));
    report.bumpDet("noc.hops", static_cast<double>(net_->totalHops()));
    if (fault_) {
        const fault::FaultStats fs = fault_->stats();
        report.bumpDet("fault.drops", static_cast<double>(fs.drops));
        report.bumpDet("fault.delays", static_cast<double>(fs.delays));
        report.bumpDet("fault.duplicates",
                       static_cast<double>(fs.duplicates));
        report.bumpDet("fault.corruptions",
                       static_cast<double>(fs.corruptions));
        report.bumpDet("fault.outage_drops",
                       static_cast<double>(fs.outageDrops));
        report.bumpDet("fault.partition_drops",
                       static_cast<double>(fs.partitionDrops));
    }
    if (physics_)
        physics_->fillHealth(report);
    trace::fillQueueHealth(report, eq_);
    if (group_) {
        report.bumpDet("shard.count",
                       static_cast<double>(group_->shards()));
        report.bumpDet("shard.epochs",
                       static_cast<double>(group_->epochs()));
        report.bumpDet("shard.cross_events",
                       static_cast<double>(group_->crossEvents()));
    }
}

void
Soc::dispatchReady()
{
    BLITZ_ASSERT(dag_ != nullptr, "dispatch without a workload");
    for (const workload::Task &t : dag_->tasks()) {
        if (taskDone_[t.id] || remainingDeps_[t.id] != 0)
            continue;
        AcceleratorTile *tile = tilesByNode_[t.tile];
        BLITZ_ASSERT(tile != nullptr,
                     "task '", t.name, "' targets a non-accel tile");
        auto &queue = tileQueues_[t.tile];
        if (std::find(queue.begin(), queue.end(), t.id) == queue.end())
            queue.push_back(t.id);
        remainingDeps_[t.id] = static_cast<std::size_t>(-1); // queued
    }
    // Start the head-of-line task on every idle tile.
    for (noc::NodeId node = 0; node < tileQueues_.size(); ++node) {
        auto &queue = tileQueues_[node];
        if (queue.empty())
            continue;
        AcceleratorTile *tile = tilesByNode_[node];
        if (tile->busy())
            continue;
        workload::TaskId id = queue.front();
        queue.erase(queue.begin());
        const workload::Task &t = dag_->task(id);
        pm_->onTaskStart(node);
        if (activityTrace_)
            activityTrace_->record(eq_.now(), node, true);
        if (group_) {
            // The completion event fires at the tile's own locus (a
            // coin arrival can re-aim it from there), where the global
            // scheduler state is off-limits. Park the completion in
            // the node's latch; the serial-lane scan picks it up.
            tile->beginTask(t.workCycles, [this, id, node] {
                pendingDoneTask_[node] = static_cast<std::uint32_t>(id) + 1;
                pendingDoneTick_[node] = eq_.now();
            });
        } else {
            tile->beginTask(t.workCycles,
                            [this, id] { onTaskDone(id, eq_.now()); });
        }
    }
}

void
Soc::drainCompletions()
{
    // Latches are written at tile loci, so a single scan can hold
    // completions from different ticks in any node order; process them
    // in (tick, node) order — the activity trace requires monotonic
    // edges, and the deterministic sort keeps the drain shard-count
    // invariant.
    drainBuf_.clear();
    for (noc::NodeId node = 0; node < pendingDoneTask_.size(); ++node) {
        if (pendingDoneTask_[node] == 0)
            continue;
        drainBuf_.push_back({pendingDoneTick_[node],
                             static_cast<std::uint64_t>(node),
                             pendingDoneTask_[node] - 1});
        pendingDoneTask_[node] = 0;
    }
    std::sort(drainBuf_.begin(), drainBuf_.end());
    for (const auto &d : drainBuf_)
        onTaskDone(static_cast<workload::TaskId>(d[2]), d[0]);
}

void
Soc::onTaskDone(workload::TaskId id, sim::Tick completedAt)
{
    const workload::Task &t = dag_->task(id);
    taskDone_[id] = true;
    ++tasksCompleted_;
    lastCompletionTick_ = completedAt;

    // The tile goes idle unless more work is queued on it; either way
    // the manager sees the activity edge.
    pm_->onTaskEnd(t.tile);
    if (activityTrace_)
        activityTrace_->record(completedAt, t.tile, false);

    for (workload::TaskId s : dag_->successors(id)) {
        BLITZ_ASSERT(remainingDeps_[s] > 0, "dependency underflow");
        --remainingDeps_[s];
    }
    // Dispatch after the CPU notices the completion interrupt.
    eq_.scheduleIn(1, [this] { dispatchReady(); },
                   sim::Priority::Controller);
}

SocRunStats
Soc::run(const workload::Dag &dag, const SocRunOptions &opts)
{
    dag.validate();
    dag_ = &dag;
    remainingDeps_.assign(dag.size(), 0);
    taskDone_.assign(dag.size(), false);
    tileQueues_.assign(config_.size(), {});
    pendingDoneTask_.assign(config_.size(), 0);
    pendingDoneTick_.assign(config_.size(), 0);
    tasksCompleted_ = 0;
    lastCompletionTick_ = 0;
    for (const workload::Task &t : dag.tasks())
        remainingDeps_[t.id] = t.deps.size();

    SocRunStats stats;
    // Trace the managed tiles: that is the domain the budget governs
    // (unmanaged accelerators sit outside the PM cluster's cap).
    const auto accels = config_.managedAccelerators();
    std::vector<std::string> names;
    for (noc::NodeId id : accels)
        names.push_back(config_.tile(id).name);
    stats.trace = std::make_unique<power::PowerTrace>(
        accels.size(), pm_->budgetMw());
    activityTrace_ = &stats.activity;
    for (noc::NodeId id : accels)
        stats.activity.setTargetCoins(id, std::max<coin::Coins>(
            pm_->maxCoins()[id], 1));

    // Periodic power sampling (the paper reconstructs traces the same
    // way: per-tile frequency -> Fig. 13 curve -> power).
    // The stored closure keeps only a weak reference to itself so the
    // self-rescheduling chain cannot form an ownership cycle; the strong
    // reference below outlives the event loop, and once run() drops it
    // the `sampling` flag retires any copies still sitting in the queue.
    auto sampler = std::make_shared<std::function<void()>>();
    auto sampling = std::make_shared<bool>(true);
    std::weak_ptr<std::function<void()>> weakSampler = sampler;
    *sampler = [this, weakSampler, sampling, &stats, accels, opts] {
        if (!*sampling)
            return;
        std::vector<double> row;
        row.reserve(accels.size());
        for (noc::NodeId id : accels)
            row.push_back(tilesByNode_[id]->powerMw());
        stats.trace->record(eq_.now(), std::move(row));
        if (auto s = weakSampler.lock())
            eq_.scheduleIn(opts.sampleInterval, *s, sim::Priority::Stats);
    };
    eq_.schedule(0, *sampler, sim::Priority::Stats);

    // Metrics sampling rides the same retire flag as the power sampler
    // so a second run (or destruction) cannot fire a stale closure.
    // The strong reference must live in run()'s scope — the chain only
    // holds weak references to itself, so a block-local owner would die
    // before the loop starts and the tick-0 fire could not reschedule.
    auto msampler = std::make_shared<std::function<void()>>();
    if (metrics_) {
        const sim::Tick every =
            metricsEvery_ > 0 ? metricsEvery_ : opts.sampleInterval;
        std::weak_ptr<std::function<void()>> weakM = msampler;
        *msampler = [this, weakM, sampling, every] {
            if (!*sampling)
                return;
            metrics_->sample(eq_.now());
            if (auto s = weakM.lock())
                eq_.scheduleIn(every, *s, sim::Priority::Stats);
        };
        eq_.schedule(0, *msampler, sim::Priority::Stats);
    }

    // Physics stepping rides the sampler cadence and retire flag. Each
    // firing integrates the *preceding* interval, so the chain starts
    // one interval in (temperatures at t=0 are the initial condition).
    // Priority::Stats places it in the serial lane of a sharded run —
    // quiesced, fixed order — so throttle decisions and the tile caps
    // they actuate are bit-identical at every shard count.
    auto psampler = std::make_shared<std::function<void()>>();
    if (physics_) {
        const sim::Tick every = opts.sampleInterval;
        const double dtNs = static_cast<double>(every) * sim::nsPerTick;
        std::weak_ptr<std::function<void()>> weakP = psampler;
        *psampler = [this, weakP, sampling, every, dtNs] {
            if (!*sampling)
                return;
            physics_->step(dtNs, eq_.now());
            if (auto s = weakP.lock())
                eq_.scheduleIn(every, *s, sim::Priority::Stats);
        };
        eq_.scheduleIn(every, *psampler, sim::Priority::Stats);
    }

    // Sharded: the serial-lane completion scan. Completion latches are
    // written at tile loci during parallel phases; this chain reads
    // them between supersteps (quiesced, fixed node order) and runs
    // the dispatcher — dispatch latency is quantized to the scan
    // cadence, which is identical at every shard count.
    auto cpoller = std::make_shared<std::function<void()>>();
    if (group_) {
        constexpr sim::Tick kCompletionScan = 32;
        std::weak_ptr<std::function<void()>> weakC = cpoller;
        *cpoller = [this, weakC, sampling] {
            if (!*sampling)
                return;
            drainCompletions();
            if (auto s = weakC.lock())
                eq_.scheduleIn(kCompletionScan, *s,
                               sim::Priority::Controller);
        };
        eq_.schedule(0, *cpoller, sim::Priority::Controller);
    }

    pm_->start();
    eq_.scheduleIn(opts.dispatchLatency, [this] { dispatchReady(); },
                   sim::Priority::Controller);

    // Drive the event loop; stop pumping once all tasks completed and
    // the trailing PM traffic has had a short settling window.
    if (group_) {
        // A sharded anchor has no runOne() (events live in leaf queues
        // on worker threads), so pump bounded supersteps and test the
        // completion predicate at each barrier. The stride only decides
        // how far past completion the run coasts; it is identical at
        // every shard count, so sharded results stay shard-count
        // invariant (they differ from the legacy path, which stops on
        // the exact completion event).
        constexpr sim::Tick kStride = 512;
        while (tasksCompleted_ < dag.size() && eq_.now() < opts.maxTime &&
               !eq_.empty()) {
            eq_.runUntil(std::min(opts.maxTime, eq_.now() + kStride));
        }
    } else {
        while (tasksCompleted_ < dag.size() && eq_.now() < opts.maxTime &&
               !eq_.empty()) {
            eq_.runOne();
        }
    }
    stats.completed = tasksCompleted_ == dag.size();
    if (stats.completed && lastCompletionTick_ + 2000 < opts.maxTime &&
        lastCompletionTick_ + 2000 > eq_.now()) {
        // Capture the post-workload power decay in the trace.
        eq_.runUntil(lastCompletionTick_ + 2000);
    }
    *sampling = false;

    stats.execTime = lastCompletionTick_;
    stats.responseTicks = pm_->responseTimes();
    stats.nocPackets = net_->packetsSent();
    activityTrace_ = nullptr;
    dag_ = nullptr;
    return stats;
}

} // namespace blitz::soc
