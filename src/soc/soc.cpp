#include "soc.hpp"

#include <algorithm>

#include "record/recorder.hpp"
#include "sim/logging.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace blitz::soc {

Soc::Soc(SocConfig config, const PmConfig &pmCfg, std::uint64_t seed)
    : config_(std::move(config))
{
    config_.validate();
    noc::Topology topo(config_.width, config_.height, /*wrap=*/false);
    net_ = std::make_unique<noc::Network>(eq_, topo);

    tilesByNode_.assign(config_.size(), nullptr);
    for (noc::NodeId id = 0; id < config_.size(); ++id) {
        const TileSpec &spec = config_.tile(id);
        if (spec.type != TileType::Accel)
            continue;
        tileStore_.push_back(std::make_unique<AcceleratorTile>(
            eq_, id, spec.name, *spec.curve));
        tilesByNode_[id] = tileStore_.back().get();
    }

    PmContext ctx{eq_, *net_, config_, tilesByNode_, seed};
    pm_ = makePowerManager(ctx, pmCfg);

    // Route every node's service-plane deliveries into the manager
    // (BlitzCoin units, controller, and tile CSRs all live there).
    // Flits the fault plane damaged fail the endpoint CRC and are
    // discarded here, before any manager sees the garbled payload.
    for (noc::NodeId id = 0; id < config_.size(); ++id) {
        net_->setHandler(id, [this, id](const noc::Packet &pkt) {
            if (pkt.corrupted)
                return;
            pm_->handlePacket(id, pkt);
        });
    }
}

void
Soc::installFaultPlane(fault::FaultPlane &plane)
{
    BLITZ_ASSERT(fault_ == nullptr, "a fault plane is already installed");
    fault_ = &plane;
    plane.attach(*net_);
    plane.onNodeDown = [this](noc::NodeId n) { pm_->onNodeCrash(n); };
    plane.onNodeUp = [this](noc::NodeId n) { pm_->onNodeRestart(n); };
    plane.onNodeFrozen = [this](noc::NodeId n) { pm_->onNodeFrozen(n); };
    plane.onNodeThawed = [this](noc::NodeId n) { pm_->onNodeThawed(n); };
    plane.armOutageSchedule(eq_);
    if (tracer_)
        plane.setTrace(tracer_);
    if (recorder_)
        plane.setRecorder(recorder_);
}

void
Soc::attachMetrics(trace::Registry *reg, sim::Tick interval)
{
    metrics_ = reg;
    metricsEvery_ = interval;
    if (!reg)
        return;
    pm_->registerMetrics(*reg);
    reg->sampled("soc.power_mw", [this] { return totalAccelPowerMw(); });
    reg->sampled("noc.packets_sent", [this] {
        return static_cast<double>(net_->packetsSent());
    });
    reg->sampled("noc.packets_delivered", [this] {
        return static_cast<double>(net_->packetsDelivered());
    });
    reg->sampled("noc.packets_dropped", [this] {
        return static_cast<double>(net_->packetsDropped());
    });
    reg->sampled("noc.total_hops", [this] {
        return static_cast<double>(net_->totalHops());
    });
    reg->sampled("sim.events_scheduled", [this] {
        return static_cast<double>(eq_.totalScheduled());
    });
    reg->sampled("sim.events_executed", [this] {
        return static_cast<double>(eq_.totalExecuted());
    });
}

void
Soc::attachTrace(trace::Tracer *t)
{
    tracer_ = t;
    pm_->setTrace(t);
    if (fault_)
        fault_->setTrace(t);
}

void
Soc::attachRecorder(record::FlightRecorder *rec)
{
    recorder_ = rec;
    net_->setRecorder(rec);
    for (auto &t : tileStore_)
        t->setRecorder(rec);
    if (fault_)
        fault_->setRecorder(rec);
}

Soc::~Soc() = default;

AcceleratorTile &
Soc::tile(noc::NodeId id)
{
    BLITZ_ASSERT(id < tilesByNode_.size() && tilesByNode_[id],
                 "node ", id, " is not an accelerator tile");
    return *tilesByNode_[id];
}

double
Soc::totalAccelPowerMw() const
{
    double total = 0.0;
    for (const auto &t : tileStore_)
        total += t->powerMw();
    return total;
}

void
Soc::dispatchReady()
{
    BLITZ_ASSERT(dag_ != nullptr, "dispatch without a workload");
    for (const workload::Task &t : dag_->tasks()) {
        if (taskDone_[t.id] || remainingDeps_[t.id] != 0)
            continue;
        AcceleratorTile *tile = tilesByNode_[t.tile];
        BLITZ_ASSERT(tile != nullptr,
                     "task '", t.name, "' targets a non-accel tile");
        auto &queue = tileQueues_[t.tile];
        if (std::find(queue.begin(), queue.end(), t.id) == queue.end())
            queue.push_back(t.id);
        remainingDeps_[t.id] = static_cast<std::size_t>(-1); // queued
    }
    // Start the head-of-line task on every idle tile.
    for (noc::NodeId node = 0; node < tileQueues_.size(); ++node) {
        auto &queue = tileQueues_[node];
        if (queue.empty())
            continue;
        AcceleratorTile *tile = tilesByNode_[node];
        if (tile->busy())
            continue;
        workload::TaskId id = queue.front();
        queue.erase(queue.begin());
        const workload::Task &t = dag_->task(id);
        pm_->onTaskStart(node);
        if (activityTrace_)
            activityTrace_->record(eq_.now(), node, true);
        tile->beginTask(t.workCycles, [this, id] { onTaskDone(id); });
    }
}

void
Soc::onTaskDone(workload::TaskId id)
{
    const workload::Task &t = dag_->task(id);
    taskDone_[id] = true;
    ++tasksCompleted_;
    lastCompletionTick_ = eq_.now();

    // The tile goes idle unless more work is queued on it; either way
    // the manager sees the activity edge.
    pm_->onTaskEnd(t.tile);
    if (activityTrace_)
        activityTrace_->record(eq_.now(), t.tile, false);

    for (workload::TaskId s : dag_->successors(id)) {
        BLITZ_ASSERT(remainingDeps_[s] > 0, "dependency underflow");
        --remainingDeps_[s];
    }
    // Dispatch after the CPU notices the completion interrupt.
    eq_.scheduleIn(1, [this] { dispatchReady(); },
                   sim::Priority::Controller);
}

SocRunStats
Soc::run(const workload::Dag &dag, const SocRunOptions &opts)
{
    dag.validate();
    dag_ = &dag;
    remainingDeps_.assign(dag.size(), 0);
    taskDone_.assign(dag.size(), false);
    tileQueues_.assign(config_.size(), {});
    tasksCompleted_ = 0;
    lastCompletionTick_ = 0;
    for (const workload::Task &t : dag.tasks())
        remainingDeps_[t.id] = t.deps.size();

    SocRunStats stats;
    // Trace the managed tiles: that is the domain the budget governs
    // (unmanaged accelerators sit outside the PM cluster's cap).
    const auto accels = config_.managedAccelerators();
    std::vector<std::string> names;
    for (noc::NodeId id : accels)
        names.push_back(config_.tile(id).name);
    stats.trace = std::make_unique<power::PowerTrace>(
        accels.size(), pm_->budgetMw());
    activityTrace_ = &stats.activity;
    for (noc::NodeId id : accels)
        stats.activity.setTargetCoins(id, std::max<coin::Coins>(
            pm_->maxCoins()[id], 1));

    // Periodic power sampling (the paper reconstructs traces the same
    // way: per-tile frequency -> Fig. 13 curve -> power).
    // The stored closure keeps only a weak reference to itself so the
    // self-rescheduling chain cannot form an ownership cycle; the strong
    // reference below outlives the event loop, and once run() drops it
    // the `sampling` flag retires any copies still sitting in the queue.
    auto sampler = std::make_shared<std::function<void()>>();
    auto sampling = std::make_shared<bool>(true);
    std::weak_ptr<std::function<void()>> weakSampler = sampler;
    *sampler = [this, weakSampler, sampling, &stats, accels, opts] {
        if (!*sampling)
            return;
        std::vector<double> row;
        row.reserve(accels.size());
        for (noc::NodeId id : accels)
            row.push_back(tilesByNode_[id]->powerMw());
        stats.trace->record(eq_.now(), std::move(row));
        if (auto s = weakSampler.lock())
            eq_.scheduleIn(opts.sampleInterval, *s, sim::Priority::Stats);
    };
    eq_.schedule(0, *sampler, sim::Priority::Stats);

    // Metrics sampling rides the same retire flag as the power sampler
    // so a second run (or destruction) cannot fire a stale closure.
    // The strong reference must live in run()'s scope — the chain only
    // holds weak references to itself, so a block-local owner would die
    // before the loop starts and the tick-0 fire could not reschedule.
    auto msampler = std::make_shared<std::function<void()>>();
    if (metrics_) {
        const sim::Tick every =
            metricsEvery_ > 0 ? metricsEvery_ : opts.sampleInterval;
        std::weak_ptr<std::function<void()>> weakM = msampler;
        *msampler = [this, weakM, sampling, every] {
            if (!*sampling)
                return;
            metrics_->sample(eq_.now());
            if (auto s = weakM.lock())
                eq_.scheduleIn(every, *s, sim::Priority::Stats);
        };
        eq_.schedule(0, *msampler, sim::Priority::Stats);
    }

    pm_->start();
    eq_.scheduleIn(opts.dispatchLatency, [this] { dispatchReady(); },
                   sim::Priority::Controller);

    // Drive the event loop; stop pumping once all tasks completed and
    // the trailing PM traffic has had a short settling window.
    while (tasksCompleted_ < dag.size() && eq_.now() < opts.maxTime &&
           !eq_.empty()) {
        eq_.runOne();
    }
    stats.completed = tasksCompleted_ == dag.size();
    if (stats.completed && lastCompletionTick_ + 2000 < opts.maxTime) {
        // Capture the post-workload power decay in the trace.
        eq_.runUntil(lastCompletionTick_ + 2000);
    }
    *sampling = false;

    stats.execTime = lastCompletionTick_;
    stats.responseTicks = pm_->responseTimes();
    stats.nocPackets = net_->packetsSent();
    activityTrace_ = nullptr;
    dag_ = nullptr;
    return stats;
}

} // namespace blitz::soc
