/**
 * @file
 * Full-SoC simulation harness.
 *
 * Assembles the pieces the paper's RTL testbench assembles: the mesh
 * NoC at a fixed 800 MHz, one UVFR-clocked accelerator tile per
 * accelerator slot, a power manager (BC / BC-C / C-RR / Static), and a
 * CPU-side dispatcher that launches DAG workloads onto the tiles. A run
 * produces the quantities the evaluation section reports: execution
 * time, power-management response times, and a sampled power trace.
 */

#ifndef BLITZ_SOC_SOC_HPP
#define BLITZ_SOC_SOC_HPP

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "config.hpp"
#include "fault/byzantine.hpp"
#include "fault/fault_plane.hpp"
#include "noc/network.hpp"
#include "pm.hpp"
#include "power/power_trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "throttler.hpp"
#include "tile.hpp"
#include "workload/dag.hpp"
#include "workload/trace.hpp"

namespace blitz::trace {
class HealthReport;
class Registry;
class Tracer;
}

namespace blitz::soc {

/** Result of one workload run. */
struct SocRunStats
{
    /** Tick at which the last task completed (0 if none ran). */
    sim::Tick execTime = 0;
    /** True when every task finished inside the horizon. */
    bool completed = false;
    /** Power-management response times (ticks). */
    sim::Summary responseTicks;
    /** Sampled accelerator power trace. */
    std::unique_ptr<power::PowerTrace> trace;
    /** Total NoC packets (coin + control traffic). */
    std::uint64_t nocPackets = 0;
    /**
     * Tile-activity edges observed during the run, with coin targets
     * attached — replayable on the behavioral engine for fast
     * design-space sweeps (workload::ActivityTrace::replayOn).
     */
    workload::ActivityTrace activity;

    double
    execTimeUs() const
    {
        return sim::ticksToUs(execTime);
    }

    double
    meanResponseUs() const
    {
        return responseTicks.mean() * sim::nsPerTick * 1e-3;
    }
};

/** Run options. */
struct SocRunOptions
{
    /** Abort horizon (ticks). */
    sim::Tick maxTime = sim::msToTicks(50.0);
    /** Power sampling cadence (ticks); 400 = 0.5 us at 800 MHz. */
    sim::Tick sampleInterval = 400;
    /** CPU dispatch cost per task launch (cycles). */
    sim::Tick dispatchLatency = 64;
};

/**
 * One simulated SoC instance. Build, then run one workload; create a
 * fresh instance per run (state is not reset between runs).
 */
class Soc
{
  public:
    /**
     * @param config tile grid (copied; validated).
     * @param pmCfg power-management strategy and budget.
     * @param seed determinism seed for the whole instance.
     */
    Soc(SocConfig config, const PmConfig &pmCfg, std::uint64_t seed = 1);

    ~Soc();
    Soc(const Soc &) = delete;
    Soc &operator=(const Soc &) = delete;

    const SocConfig &config() const { return config_; }
    PowerManager &pm() { return *pm_; }
    noc::Network &network() { return *net_; }
    sim::EventQueue &eventQueue() { return eq_; }

    /** The shard group driving a sharded instance (null when legacy). */
    sim::ShardGroup *shardGroup() { return group_.get(); }

    /** Accelerator tile at a node. @pre the node hosts an accelerator. */
    AcceleratorTile &tile(noc::NodeId id);

    /**
     * Attach a fault plane to the instance: NoC traffic filters
     * through it, outage windows crash/freeze and restart the managed
     * PM state through the PowerManager::onNode* notifications, and
     * corrupted flits are discarded at the endpoint demux (the
     * link-CRC model). Call before run(); the plane must outlive this
     * Soc, and at most one plane may be installed.
     */
    void installFaultPlane(fault::FaultPlane &plane);

    /**
     * Attach a Byzantine attack plan: the PM's per-tile protocol state
     * is compromised per the plan's specs and the active drivers are
     * armed on the event queue. Call before run(); the plan must
     * outlive this Soc, and at most one plan may be installed. Only
     * the BlitzCoin scheme has per-tile state to corrupt — the
     * centralized schemes ignore the plan.
     */
    void installByzantinePlan(fault::ByzantinePlan &plan);

    /**
     * Attach the physics plane: the RC thermal network, shared
     * regulator rails, and throttler arbiter step on the run's power
     * sampling cadence (the serial lane in a sharded run, so throttle
     * decisions stay bit-identical at every shard count) and clamp
     * tile frequencies through the setThrottleCapMhz funnel. Call
     * before run(); the plane must outlive this Soc, and at most one
     * plane may be attached. A Soc without a plane pays one null
     * check per run; a plane with enforce=false observes without
     * actuating, digest-identical to a detached run.
     */
    void attachPhysics(PhysicsPlane &plane);

    /**
     * Register the instance's observables on @p reg (the PM's gauges —
     * for BC that includes per-unit coin balances — plus reconstructed
     * accelerator power, NoC packet counters, and event-kernel
     * counters) and sample them every @p interval ticks during run()
     * (0 = the run's power sampleInterval). Call before run(); nullptr
     * (the default) schedules nothing, so golden digests are
     * untouched.
     */
    void attachMetrics(trace::Registry *reg, sim::Tick interval = 0);

    /**
     * Wire an event tracer into the power manager (and, for BC, every
     * coin unit) and into any fault plane installed before or after
     * this call. Nullptr detaches.
     */
    void attachTrace(trace::Tracer *t);

    /**
     * Wire the flight recorder into the NoC (deliveries), every
     * accelerator tile (PM actuations via the setFreqTargetMhz
     * funnel), and any installed fault plane (injection decisions).
     * Call before run(); nullptr detaches.
     */
    void attachRecorder(record::FlightRecorder *rec);

    /** Execute a workload to completion (or the horizon). */
    SocRunStats run(const workload::Dag &dag,
                    const SocRunOptions &opts = SocRunOptions{});

    /** Sum of instantaneous accelerator power (mW). */
    double totalAccelPowerMw() const;

    /**
     * Sum the instance's deterministic outcome counters into
     * @p report: NoC totals, event-kernel gauges, shard gauges, fault
     * totals when a plane is installed, and throttle residency when a
     * physics plane is attached. Call after run().
     */
    void fillHealth(trace::HealthReport &report) const;

  private:
    void dispatchReady();
    void onTaskDone(workload::TaskId id, sim::Tick completedAt);
    void drainCompletions();
    void registerPhysicsMetrics(trace::Registry &reg);

    SocConfig config_;
    sim::EventQueue eq_;
    std::unique_ptr<noc::Network> net_;
    std::vector<std::unique_ptr<AcceleratorTile>> tileStore_;
    std::vector<AcceleratorTile *> tilesByNode_;
    std::unique_ptr<PowerManager> pm_;
    fault::FaultPlane *fault_ = nullptr; ///< not owned; may be null
    fault::ByzantinePlan *byz_ = nullptr; ///< not owned; may be null
    PhysicsPlane *physics_ = nullptr;    ///< not owned; may be null
    trace::Registry *metrics_ = nullptr; ///< not owned; may be null
    sim::Tick metricsEvery_ = 0;
    trace::Tracer *tracer_ = nullptr;    ///< not owned; may be null
    record::FlightRecorder *recorder_ = nullptr; ///< not owned

    // Per-run scheduler state.
    workload::ActivityTrace *activityTrace_ = nullptr;
    const workload::Dag *dag_ = nullptr;
    std::vector<std::size_t> remainingDeps_;
    std::vector<bool> taskDone_;
    std::vector<std::vector<workload::TaskId>> tileQueues_; ///< by node
    std::size_t tasksCompleted_ = 0;
    sim::Tick lastCompletionTick_ = 0;
    /**
     * Sharded completion latches, one per node: task id + 1 (0 =
     * none) and the completion tick. A tile's completion event fires
     * at its own node's locus, where the global scheduler state must
     * not be touched — the completion is parked here (single writer:
     * the owning shard) and collected by the serial-lane scan in
     * drainCompletions(), the model of a CPU taking a completion
     * interrupt off a per-device status register.
     */
    std::vector<std::uint32_t> pendingDoneTask_;
    std::vector<sim::Tick> pendingDoneTick_;
    /** Scratch for drainCompletions: (tick, node, task id) triples. */
    std::vector<std::array<std::uint64_t, 3>> drainBuf_;

    // Declared last: destruction must unbind the anchor and join the
    // worker threads before any component the group routes events for
    // (network, tiles, manager) is torn down.
    std::unique_ptr<sim::ShardGroup> group_;
};

} // namespace blitz::soc

#endif // BLITZ_SOC_SOC_HPP
