#include "throttler.hpp"

#include <algorithm>
#include <cmath>

#include "config.hpp"
#include "record/recorder.hpp"
#include "sim/logging.hpp"
#include "tile.hpp"
#include "trace/health.hpp"

namespace blitz::soc {

const char *
throttleSourceName(ThrottleSource s)
{
    switch (s) {
    case ThrottleSource::Thermal:
        return "thermal";
    case ThrottleSource::Rail:
        return "rail";
    case ThrottleSource::BoardTdp:
        return "board-tdp";
    }
    return "?";
}

// ---------------------------------------------------------------- arbiter

ThrottleArbiter::ThrottleArbiter(std::size_t tiles)
{
    Slots s;
    s.cap.fill(kUncappedMhz);
    s.effective = kUncappedMhz;
    slots_.assign(tiles, s);
}

double
ThrottleArbiter::recompute(const Slots &s)
{
    double eff = kUncappedMhz;
    for (double c : s.cap)
        eff = c < eff ? c : eff;
    return eff;
}

bool
ThrottleArbiter::set(std::size_t tile, ThrottleSource src, double capMhz)
{
    BLITZ_ASSERT(tile < slots_.size(), "throttle tile out of range");
    BLITZ_ASSERT(std::isfinite(capMhz) && capMhz >= 0.0,
                 "a throttle cap must be a finite frequency");
    Slots &s = slots_[tile];
    double &slot = s.cap[static_cast<std::size_t>(src)];
    if (slot == kUncappedMhz)
        ++engages_;
    else if (slot != capMhz)
        ++updates_;
    slot = capMhz;
    const double eff = recompute(s);
    const bool changed = eff != s.effective;
    s.effective = eff;
    return changed;
}

bool
ThrottleArbiter::clear(std::size_t tile, ThrottleSource src)
{
    BLITZ_ASSERT(tile < slots_.size(), "throttle tile out of range");
    Slots &s = slots_[tile];
    double &slot = s.cap[static_cast<std::size_t>(src)];
    if (slot == kUncappedMhz)
        return false;
    slot = kUncappedMhz;
    ++releases_;
    const double eff = recompute(s);
    const bool changed = eff != s.effective;
    s.effective = eff;
    return changed;
}

unsigned
ThrottleArbiter::activeMask(std::size_t tile) const
{
    unsigned mask = 0;
    const Slots &s = slots_[tile];
    for (std::size_t i = 0; i < kThrottleSourceCount; ++i) {
        if (s.cap[i] != kUncappedMhz)
            mask |= 1u << i;
    }
    return mask;
}

std::size_t
ThrottleArbiter::throttledCount() const
{
    std::size_t n = 0;
    for (const Slots &s : slots_)
        n += s.effective != kUncappedMhz ? 1 : 0;
    return n;
}

// ----------------------------------------------------------------- plane

PhysicsPlane::PhysicsPlane(PhysicsConfig cfg) : cfg_(std::move(cfg))
{
    BLITZ_ASSERT(cfg_.trip.releaseC <= cfg_.trip.tripC,
                 "thermal release above the trip point");
    BLITZ_ASSERT(cfg_.trip.capFraction > 0.0 &&
                     cfg_.trip.capFraction <= 1.0,
                 "thermal cap fraction outside (0, 1]");
}

PhysicsPlane::~PhysicsPlane() = default;

void
PhysicsPlane::bind(const SocConfig &cfg,
                   const std::vector<AcceleratorTile *> &tilesByNode)
{
    BLITZ_ASSERT(!bound(), "the physics plane is already bound");
    tiles_ = tilesByNode;
    const std::size_t nodes = tiles_.size();
    fMaxMhz_.assign(nodes, 0.0);
    powerMw_.assign(nodes, 0.0);
    accels_.clear();
    for (std::size_t id = 0; id < nodes; ++id) {
        if (!tiles_[id])
            continue;
        accels_.push_back(id);
        fMaxMhz_[id] = tiles_[id]->curve().fMax();
    }

    thermal_ = std::make_unique<power::ThermalModel>(nodes, cfg_.thermal);
    peakTempC_ = cfg_.thermal.initialC;
    if (cfg_.neighborCouplingWPerC > 0.0) {
        // Substrate spreading between mesh-adjacent accelerators:
        // right and down from each node covers every edge once.
        for (std::size_t id : accels_) {
            const std::size_t x = id % static_cast<std::size_t>(cfg.width);
            const std::size_t right = id + 1;
            const std::size_t down =
                id + static_cast<std::size_t>(cfg.width);
            if (x + 1 < static_cast<std::size_t>(cfg.width) &&
                tiles_[right])
                thermal_->addCoupling(id, right,
                                      cfg_.neighborCouplingWPerC);
            if (down < nodes && tiles_[down])
                thermal_->addCoupling(id, down,
                                      cfg_.neighborCouplingWPerC);
        }
    }
    for (const ThermalCouplingSpec &c : cfg_.couplings)
        thermal_->addCoupling(c.a, c.b, c.gWPerC);

    rails_ = std::make_unique<power::RailSet>(nodes);
    railTiles_.clear();
    for (const RailSpec &spec : cfg_.rails) {
        const std::size_t r = rails_->addRail(spec.rail);
        railTiles_.emplace_back();
        const std::vector<noc::NodeId> *members = &spec.tiles;
        std::vector<noc::NodeId> everyAccel;
        if (members->empty()) {
            everyAccel.assign(accels_.begin(), accels_.end());
            members = &everyAccel;
        }
        for (noc::NodeId id : *members) {
            BLITZ_ASSERT(id < nodes && tiles_[id], "rail member ", id,
                         " is not an accelerator tile");
            rails_->assignTile(r, id);
            railTiles_.back().push_back(id);
        }
    }

    arbiter_ = std::make_unique<ThrottleArbiter>(nodes);
}

void
PhysicsPlane::journal(std::uint8_t event, ThrottleSource src,
                      std::size_t tile, double capMhz, sim::Tick now)
{
    if (!recorder_)
        return;
    recorder_->throttle(now, event,
                        static_cast<std::uint8_t>(src),
                        static_cast<std::int64_t>(tile), capMhz,
                        arbiter_->effectiveCapMhz(tile),
                        arbiter_->activeMask(tile));
}

void
PhysicsPlane::assertCap(std::size_t tile, ThrottleSource src,
                        double capMhz, sim::Tick now)
{
    const bool changed = arbiter_->set(tile, src, capMhz);
    if (changed)
        tiles_[tile]->setThrottleCapMhz(arbiter_->effectiveCapMhz(tile));
    journal(record::kThrottleEngage, src, tile, capMhz, now);
}

void
PhysicsPlane::releaseCap(std::size_t tile, ThrottleSource src,
                         sim::Tick now)
{
    const bool changed = arbiter_->clear(tile, src);
    if (changed)
        tiles_[tile]->setThrottleCapMhz(arbiter_->effectiveCapMhz(tile));
    journal(record::kThrottleRelease, src, tile, 0.0, now);
}

void
PhysicsPlane::step(double dtNs, sim::Tick now)
{
    BLITZ_ASSERT(bound(), "step on an unbound physics plane");

    // 1. Sample every tile's instantaneous power (the same Fig. 13
    //    reconstruction the power trace uses).
    totalMw_ = 0.0;
    for (std::size_t id : accels_) {
        const double p = tiles_[id]->powerMw();
        powerMw_[id] = p;
        totalMw_ += p;
    }

    // 2. Integrate the thermal network over the elapsed interval.
    thermal_->step(dtNs, powerMw_.data());
    const double hottest = thermal_->maxC();
    if (hottest > peakTempC_)
        peakTempC_ = hottest;

    // 3. Reconstruct rail currents and advance overcurrent latches.
    rails_->update(powerMw_.data());

    if (!cfg_.enforce) {
        // No caps can be asserted, but keep the residency bookkeeping
        // uniform so an observer-mode report reads all-zero instead of
        // missing.
        throttleResidency_ += arbiter_->throttledCount();
        ++stepCount_;
        return;
    }

    // 4. Per-tile thermal trips (hysteresis band tripC/releaseC).
    for (std::size_t id : accels_) {
        const double t = thermal_->temperatureC(id);
        const bool tripped = arbiter_->active(id, ThrottleSource::Thermal);
        if (!tripped && t >= cfg_.trip.tripC) {
            assertCap(id, ThrottleSource::Thermal,
                      cfg_.trip.capFraction * fMaxMhz_[id], now);
        } else if (tripped && t <= cfg_.trip.releaseC) {
            releaseCap(id, ThrottleSource::Thermal, now);
        }
    }

    // 5. Rail overcurrent: the latch edge fans out to member tiles.
    for (std::size_t r = 0; r < railTiles_.size(); ++r) {
        const power::RailEdge edge = rails_->edge(r);
        if (edge == power::RailEdge::None)
            continue;
        const RailSpec &spec = cfg_.rails[r];
        for (std::size_t id : railTiles_[r]) {
            if (edge == power::RailEdge::Engaged) {
                assertCap(id, ThrottleSource::Rail,
                          spec.capFraction * fMaxMhz_[id], now);
                if (spec.droopV > 0.0)
                    tiles_[id]->injectSupplyDroopV(spec.droopV);
            } else {
                releaseCap(id, ThrottleSource::Rail, now);
            }
        }
    }

    // 6. Board TDP over the total managed draw.
    if (cfg_.board.limitMw > 0.0) {
        if (!boardOver_ && totalMw_ >= cfg_.board.limitMw) {
            boardOver_ = true;
            for (std::size_t id : accels_)
                assertCap(id, ThrottleSource::BoardTdp,
                          cfg_.board.capFraction * fMaxMhz_[id], now);
        } else if (boardOver_ &&
                   totalMw_ <=
                       cfg_.board.releaseFraction * cfg_.board.limitMw) {
            boardOver_ = false;
            for (std::size_t id : accels_)
                releaseCap(id, ThrottleSource::BoardTdp, now);
        }
    }

    // 7. Residency: tile-steps spent under any cap and steps spent
    //    with the board latch engaged. Deterministic (pure function of
    //    the schedule), so HealthReport diffs catch a run whose
    //    throttle behavior drifted even when the final counters agree.
    throttleResidency_ += arbiter_->throttledCount();
    if (boardOver_)
        ++boardLatchResidency_;
    ++stepCount_;
}

void
PhysicsPlane::fillHealth(trace::HealthReport &report) const
{
    report.bumpDet("physics.steps", static_cast<double>(stepCount_));
    report.bumpDet("physics.throttle.residency",
                   static_cast<double>(throttleResidency_));
    report.bumpDet("physics.board.residency",
                   static_cast<double>(boardLatchResidency_));
    report.bumpDet("physics.throttle.engages",
                   static_cast<double>(arbiter_->engages()));
    report.bumpDet("physics.throttle.releases",
                   static_cast<double>(arbiter_->releases()));
    report.bumpDet("physics.throttle.updates",
                   static_cast<double>(arbiter_->updates()));
    report.maxDet("physics.peak_temp_c", peakTempC_);
    report.maxDet("physics.total_power_mw", totalMw_);
}

} // namespace blitz::soc
