/**
 * @file
 * Throttler arbiter and physics plane.
 *
 * BlitzCoin decides where the power budget *should* go; physics
 * decides what the silicon *may* do. This file models the second
 * half, mirroring the dvfs/throttler/regulator split in shipping
 * accelerator firmware: independent limit sources (per-tile thermal
 * trip, per-rail overcurrent, board TDP) each assert a frequency cap,
 * and an arbiter combines them into one effective per-tile cap — the
 * minimum of all active sources — enforced *after* the coin
 * protocol's target through the AcceleratorTile::setThrottleCapMhz
 * funnel. Coins keep flowing while a tile is clamped: the protocol
 * plane never learns about the throttle, which is exactly the
 * adversarial scenario the paper skipped (does decentralized
 * allocation stay stable and coin-conserving while an external
 * limiter fights its targets?).
 *
 * The PhysicsPlane bundles the models (power::ThermalModel,
 * power::RailSet) with the arbiter and steps them on the SoC's
 * power-sampler cadence. It is a one-branch-when-detached observer in
 * the src/trace/ idiom: a Soc without an attached plane pays one null
 * check, and an attached plane with `enforce=false` integrates the
 * physics without ever touching a tile — bit-identical to a detached
 * run (pinned by golden_trace_test).
 *
 * Determinism: step() runs at sim::Priority::Stats, which in a
 * sharded run lands in the BSP serial lane — between supersteps,
 * quiesced, fixed iteration order — so throttle decisions are
 * bit-identical at every shard count.
 */

#ifndef BLITZ_SOC_THROTTLER_HPP
#define BLITZ_SOC_THROTTLER_HPP

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "noc/topology.hpp"
#include "power/rail.hpp"
#include "power/thermal.hpp"
#include "sim/types.hpp"

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::trace {
class HealthReport;
}

namespace blitz::soc {

class AcceleratorTile;
struct SocConfig;

/** Independent limit sources the arbiter combines. */
enum class ThrottleSource : std::uint8_t
{
    Thermal = 0,  ///< per-tile junction temperature trip
    Rail = 1,     ///< shared-rail overcurrent latch
    BoardTdp = 2, ///< whole-board power envelope
};

constexpr std::size_t kThrottleSourceCount = 3;

const char *throttleSourceName(ThrottleSource s);

/** Sentinel cap meaning "source inactive / tile uncapped". */
constexpr double kUncappedMhz = std::numeric_limits<double>::infinity();

/**
 * Combines per-source frequency caps into one per-tile effective cap.
 *
 * Each (tile, source) slot holds a cap in MHz, kUncappedMhz when the
 * source is clear. The effective cap is the minimum over all slots —
 * min is order-free, so sources may engage and release in any
 * interleaving (LIFO, FIFO, arbitrary) and the arbiter lands on the
 * same answer; once every source clears, the effective cap is exactly
 * kUncappedMhz again (no stale caps). tests/throttler_test.cpp drives
 * randomized sequences against a brute-force model of this contract.
 *
 * All storage is sized at construction; set/clear are array writes
 * plus a 3-way min — zero-allocation (tests/alloc_count_test.cpp).
 */
class ThrottleArbiter
{
  public:
    explicit ThrottleArbiter(std::size_t tiles);

    std::size_t tiles() const { return slots_.size(); }

    /**
     * Assert @p capMhz from @p src on @p tile (engage or re-assert).
     * @return true when the tile's *effective* cap changed.
     */
    bool set(std::size_t tile, ThrottleSource src, double capMhz);

    /**
     * Release @p src on @p tile (no-op when already clear).
     * @return true when the tile's effective cap changed.
     */
    bool clear(std::size_t tile, ThrottleSource src);

    /** The cap @p src currently asserts (kUncappedMhz when clear). */
    double capMhz(std::size_t tile, ThrottleSource src) const
    {
        return slots_[tile].cap[static_cast<std::size_t>(src)];
    }

    bool active(std::size_t tile, ThrottleSource src) const
    {
        return capMhz(tile, src) != kUncappedMhz;
    }

    /** Minimum over all active sources; kUncappedMhz when none. */
    double effectiveCapMhz(std::size_t tile) const
    {
        return slots_[tile].effective;
    }

    bool throttled(std::size_t tile) const
    {
        return slots_[tile].effective != kUncappedMhz;
    }

    /** Bit i set = source i active on the tile. */
    unsigned activeMask(std::size_t tile) const;

    /** Tiles with at least one active source. */
    std::size_t throttledCount() const;

    /** Inactive-to-active slot transitions over the lifetime. */
    std::uint64_t engages() const { return engages_; }
    /** Active-to-inactive slot transitions over the lifetime. */
    std::uint64_t releases() const { return releases_; }
    /** Re-assertions of an already-active slot with a new cap. */
    std::uint64_t updates() const { return updates_; }

  private:
    struct Slots
    {
        std::array<double, kThrottleSourceCount> cap;
        double effective;
    };

    static double recompute(const Slots &s);

    std::vector<Slots> slots_;
    std::uint64_t engages_ = 0;
    std::uint64_t releases_ = 0;
    std::uint64_t updates_ = 0;
};

/** Per-tile thermal trip point (hysteresis pair + cap strength). */
struct ThermalTripConfig
{
    /** Engage the thermal cap at or above this junction temp (°C). */
    double tripC = 95.0;
    /** Release once the junction cools to this temp (°C). */
    double releaseC = 85.0;
    /** Cap = capFraction * the tile's Fmax while tripped. */
    double capFraction = 0.5;
};

/** One shared-rail limit source. */
struct RailSpec
{
    power::RailConfig rail{};
    /** Cap = capFraction * Fmax on every member tile while latched. */
    double capFraction = 0.6;
    /**
     * Supply droop (V) injected into every member tile's UVFR when
     * the latch engages — the brownout transient a sagging rail
     * delivers to its point-of-load regulators. 0 disables.
     */
    double droopV = 0.0;
    /** Member tiles; empty = every accelerator tile. */
    std::vector<noc::NodeId> tiles{};
};

/** Whole-board power envelope. */
struct BoardTdpConfig
{
    /** Engage at or above this total accelerator power (mW); 0 = off. */
    double limitMw = 0.0;
    /** Release once total power <= releaseFraction * limit. */
    double releaseFraction = 0.9;
    /** Cap = capFraction * Fmax on every tile while engaged. */
    double capFraction = 0.7;
};

/** Explicit lateral thermal conductance between two nodes. */
struct ThermalCouplingSpec
{
    noc::NodeId a = 0;
    noc::NodeId b = 0;
    double gWPerC = 0.0;
};

/** Everything the physics plane models. */
struct PhysicsConfig
{
    power::ThermalConfig thermal{};
    ThermalTripConfig trip{};
    /** Explicit couplings, applied on top of neighborCouplingWPerC. */
    std::vector<ThermalCouplingSpec> couplings{};
    /**
     * Conductance (W/°C) between every pair of mesh-adjacent
     * accelerator tiles — substrate heat spreading. 0 disables.
     */
    double neighborCouplingWPerC = 0.0;
    std::vector<RailSpec> rails{};
    BoardTdpConfig board{};
    /**
     * When false the plane integrates thermal/rail state and runs the
     * arbiter but never actuates a tile or journals a record — a pure
     * observer, pinned digest-identical to a detached run.
     */
    bool enforce = true;
};

/**
 * The physics plane: thermal RC + rails + arbiter, stepped on the
 * SoC power-sampler cadence. Construct with a config, attach via
 * Soc::attachPhysics() before run(); the plane must outlive the Soc.
 */
class PhysicsPlane
{
  public:
    explicit PhysicsPlane(PhysicsConfig cfg);
    ~PhysicsPlane();
    PhysicsPlane(const PhysicsPlane &) = delete;
    PhysicsPlane &operator=(const PhysicsPlane &) = delete;

    /**
     * Bind to a Soc's tile population (called by Soc::attachPhysics;
     * at most once). Sizes the thermal model and rails and resolves
     * every member list.
     */
    void bind(const SocConfig &cfg,
              const std::vector<AcceleratorTile *> &tilesByNode);

    bool bound() const { return !tiles_.empty(); }

    /** Journal throttle decisions (nullptr detaches). */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

    /**
     * Advance physics by @p dtNs and arbitrate. Called by the Soc's
     * sampler chain at sim::Priority::Stats; allocation-free in
     * steady state.
     */
    void step(double dtNs, sim::Tick now);

    const PhysicsConfig &config() const { return cfg_; }
    const power::ThermalModel &thermal() const { return *thermal_; }
    const power::RailSet &rails() const { return *rails_; }
    const ThrottleArbiter &arbiter() const { return *arbiter_; }

    /** Hottest junction ever seen (°C); ambient before any step. */
    double peakTempC() const { return peakTempC_; }

    /** Total accelerator power at the latest step (mW). */
    double totalPowerMw() const { return totalMw_; }

    /** Board-TDP latch state. */
    bool boardEngaged() const { return boardOver_; }

    std::uint64_t steps() const { return stepCount_; }

    /**
     * Tile-steps spent under any cap (sum of throttledCount() over
     * every step). Deterministic: a residency drift between two runs
     * of the same scenario is a real behavioral difference.
     */
    std::uint64_t throttleResidency() const { return throttleResidency_; }

    /** Steps spent with the board-TDP latch engaged. */
    std::uint64_t boardLatchResidency() const
    {
        return boardLatchResidency_;
    }

    /**
     * Deterministic throttle/latch outcome counters into @p report
     * ("physics.*" keys; residency, engage/release/update totals,
     * peak temperature and power as max-folded gauges).
     */
    void fillHealth(trace::HealthReport &report) const;

  private:
    void assertCap(std::size_t tile, ThrottleSource src, double capMhz,
                   sim::Tick now);
    void releaseCap(std::size_t tile, ThrottleSource src, sim::Tick now);
    void journal(std::uint8_t event, ThrottleSource src,
                 std::size_t tile, double capMhz, sim::Tick now);

    PhysicsConfig cfg_;
    std::unique_ptr<power::ThermalModel> thermal_;
    std::unique_ptr<power::RailSet> rails_;
    std::unique_ptr<ThrottleArbiter> arbiter_;
    record::FlightRecorder *recorder_ = nullptr; ///< not owned

    std::vector<AcceleratorTile *> tiles_; ///< by node; null = no accel
    std::vector<std::size_t> accels_;      ///< nodes hosting accels
    std::vector<double> fMaxMhz_;          ///< by node; 0 = no accel
    std::vector<double> powerMw_;          ///< scratch, by node
    std::vector<std::vector<std::size_t>> railTiles_; ///< per rail

    bool boardOver_ = false;
    double totalMw_ = 0.0;
    double peakTempC_ = 0.0;
    std::uint64_t stepCount_ = 0;
    std::uint64_t throttleResidency_ = 0;
    std::uint64_t boardLatchResidency_ = 0;
};

} // namespace blitz::soc

#endif // BLITZ_SOC_THROTTLER_HPP
