#include "tile.hpp"

#include <algorithm>
#include <cmath>

#include "record/recorder.hpp"
#include "sim/logging.hpp"

namespace blitz::soc {

namespace {

/** Tile-clock cycles executed per NoC tick at a frequency. */
double
cyclesPerTick(double freqMhz)
{
    return freqMhz / (sim::nocFrequencyHz / 1e6);
}

/** Work below this many cycles counts as finished. */
constexpr double completionEpsilon = 0.5;

/**
 * Residual switching activity of an idle tile whose clock still runs
 * (the free-running oscillator keeps toggling while coins drain).
 */
constexpr double idleActivityFraction = 0.15;

} // namespace

AcceleratorTile::AcceleratorTile(sim::EventQueue &eq, noc::NodeId id,
                                 std::string name,
                                 const power::PfCurve &curve,
                                 power::UvfrConfig uvfrCfg)
    : eq_(eq), id_(id), name_(std::move(name)), curve_(&curve),
      uvfr_([&] {
          // The ring oscillator replicates this tile's critical path:
          // at the curve's top voltage it runs at the tile's Fmax.
          uvfrCfg.ro.fMaxMhz = curve.fMax();
          uvfrCfg.ro.vNominal = curve.points().back().voltage;
          uvfrCfg.ldo.vMax = curve.points().back().voltage;
          return uvfrCfg;
      }())
{
    // A cap asserted before the first PM actuation must clamp the
    // regulator's own initial target, not a stale zero.
    pmTargetMhz_ = uvfr_.targetMhz();
}

double
AcceleratorTile::powerMw() const
{
    double f = std::min(freqMhz(), curve_->fMax());
    double active = curve_->powerAt(f);
    if (busy_)
        return active;
    // Idle tile: datapath quiescent, clock tree and leakage remain
    // until the coin drain parks the supply at the 7.5x idle floor.
    return curve_->pIdle() +
           idleActivityFraction * std::max(active - curve_->pIdle(), 0.0);
}

void
AcceleratorTile::setFreqTargetMhz(double freqMhz)
{
    // Close the progress interval at the old frequency first: the
    // clock divider acts instantly when the target drops below the
    // oscillator output, so the effective frequency can change at
    // this very tick, before any control-loop step runs.
    accrueProgress();
    const double target = std::min(freqMhz, curve_->fMax());
    pmTargetMhz_ = target;
    // The physics-plane cap clamps after the PM's decision; the
    // journal keeps the uncapped request (the PM's actual output).
    uvfr_.setTargetMhz(std::min(target, capMhz_));
    if (plane_)
        plane_->writeFreq(id_, uvfr_.targetMhz());
    if (recorder_)
        recorder_->pmActuation(eq_.now(), id_, target);
    accrualFreqMhz_ = this->freqMhz();
    scheduleCompletion();
    kickControlLoop();
}

void
AcceleratorTile::setThrottleCapMhz(double capMhz)
{
    accrueProgress();
    capMhz_ = capMhz;
    uvfr_.setTargetMhz(std::min(pmTargetMhz_, capMhz_));
    if (plane_)
        plane_->writeFreq(id_, uvfr_.targetMhz());
    accrualFreqMhz_ = this->freqMhz();
    scheduleCompletion();
    kickControlLoop();
}

void
AcceleratorTile::injectSupplyDroopV(double droopV)
{
    accrueProgress();
    uvfr_.injectDroopV(droopV);
    accrualFreqMhz_ = this->freqMhz();
    scheduleCompletion();
    kickControlLoop();
}

void
AcceleratorTile::accrueProgress()
{
    const sim::Tick now = eq_.now();
    if (busy_ && now > lastAccrual_) {
        double done = cyclesPerTick(accrualFreqMhz_) *
                      static_cast<double>(now - lastAccrual_);
        done = std::min(done, remainingCycles_);
        remainingCycles_ -= done;
        cyclesDone_ += done;
    }
    lastAccrual_ = now;
    accrualFreqMhz_ = freqMhz();
}

void
AcceleratorTile::scheduleCompletion()
{
    const std::uint64_t gen = ++completionGen_;
    if (!busy_)
        return;
    const double rate = cyclesPerTick(accrualFreqMhz_);
    if (rate <= 0.0)
        return; // clock parked; completion waits for coins
    if (remainingCycles_ <= completionEpsilon) {
        // Degenerate zero-length remainder: finish on the next tick.
        eq_.scheduleIn(1, [this, gen] {
            if (gen != completionGen_)
                return;
            finishCheck();
        });
        return;
    }
    auto ticks = static_cast<sim::Tick>(
        std::ceil(remainingCycles_ / rate));
    eq_.scheduleIn(std::max<sim::Tick>(ticks, 1), [this, gen] {
        if (gen != completionGen_)
            return;
        finishCheck();
    });
}

void
AcceleratorTile::finishCheck()
{
    accrueProgress();
    if (remainingCycles_ <= completionEpsilon) {
        busy_ = false;
        remainingCycles_ = 0.0;
        auto done = std::move(onComplete_);
        onComplete_ = nullptr;
        if (done)
            done();
    } else {
        scheduleCompletion(); // frequency changed mid-flight; re-aim
    }
}

void
AcceleratorTile::beginTask(double workCycles,
                           std::function<void()> onComplete)
{
    BLITZ_ASSERT(!busy_, "tile ", name_, " is already executing");
    BLITZ_ASSERT(workCycles > 0.0, "task with non-positive work");
    accrueProgress();
    busy_ = true;
    remainingCycles_ = workCycles;
    onComplete_ = std::move(onComplete);
    scheduleCompletion();
}

double
AcceleratorTile::progressCycles() const
{
    return busy_ ? remainingCycles_ : 0.0;
}

void
AcceleratorTile::controlStep()
{
    accrueProgress(); // close the interval at the pre-step frequency
    const double before = uvfr_.freqMhz();
    uvfr_.step();
    const double after = uvfr_.freqMhz();
    if (after != before) {
        accrualFreqMhz_ = after;
        scheduleCompletion();
    }
    if (uvfr_.settled() && after == before) {
        // Loop reached steady state: stop stepping until the next
        // target change (kickControlLoop re-arms it).
        loopActive_ = false;
        return;
    }
    const std::uint64_t gen = loopGen_;
    eq_.scheduleIn(uvfr_.controlPeriod(), [this, gen] {
        if (gen != loopGen_ || !loopActive_)
            return;
        controlStep();
    });
}

void
AcceleratorTile::kickControlLoop()
{
    if (loopActive_)
        return;
    loopActive_ = true;
    const std::uint64_t gen = ++loopGen_;
    eq_.scheduleIn(uvfr_.controlPeriod(), [this, gen] {
        if (gen != loopGen_ || !loopActive_)
            return;
        controlStep();
    });
}

} // namespace blitz::soc
