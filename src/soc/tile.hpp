/**
 * @file
 * Accelerator tile model: UVFR-clocked task execution.
 *
 * Each accelerator tile owns a UVFR instance (Fig. 10). The power
 * manager in the NoC domain feeds it frequency targets; the tile clock
 * then slews as the LDO/RO loop settles, and the accelerator consumes
 * its task's work at whatever frequency the clock currently runs.
 * Power is reconstructed from the tile's characterization curve at the
 * instantaneous frequency — exactly how the paper derives its power
 * traces from RTL simulations (Section V-A).
 */

#ifndef BLITZ_SOC_TILE_HPP
#define BLITZ_SOC_TILE_HPP

#include <functional>
#include <limits>
#include <string>

#include "coin/state_plane.hpp"
#include "noc/topology.hpp"
#include "power/pf_curve.hpp"
#include "power/uvfr.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace blitz::record {
class FlightRecorder;
}

namespace blitz::soc {

/**
 * One accelerator tile: UVFR + execution engine.
 */
class AcceleratorTile
{
  public:
    /**
     * @param eq shared event queue.
     * @param id node id (for reports).
     * @param name tile name (for reports).
     * @param curve the tile's power/frequency characterization.
     * @param uvfrCfg regulator parameters; the RO config is overridden
     *        to act as this tile's critical-path replica.
     */
    AcceleratorTile(sim::EventQueue &eq, noc::NodeId id,
                    std::string name, const power::PfCurve &curve,
                    power::UvfrConfig uvfrCfg = power::UvfrConfig{});

    noc::NodeId id() const { return id_; }
    const std::string &name() const { return name_; }
    const power::PfCurve &curve() const { return *curve_; }

    /** Set the UVFR frequency target (MHz); from the PM layer. */
    void setFreqTargetMhz(double freqMhz);

    /**
     * Set the physics-plane frequency cap (MHz); kUncappedMhz
     * (infinity) clears it. The UVFR is always programmed with
     * min(PM target, cap) — the throttler clamps *after* the coin
     * protocol's decision, and the PM's uncapped request is retained
     * so a release restores it exactly. With the cap at its default
     * (infinity) this path is bit-identical to a cap-free tile.
     */
    void setThrottleCapMhz(double capMhz);

    /** Present physics-plane cap (MHz); infinity when uncapped. */
    double throttleCapMhz() const { return capMhz_; }

    /** Last frequency the PM layer requested (MHz, pre-cap). */
    double pmTargetMhz() const { return pmTargetMhz_; }

    /**
     * Inject a supply droop into this tile's UVFR (brownout transient
     * from a sagging shared rail) and let the control loop recover.
     */
    void injectSupplyDroopV(double droopV);

    /**
     * Attach the flight recorder (nullptr detaches). Every frequency
     * target programmed by the PM layer — this is the single actuation
     * funnel all PM policies go through — is journaled as a
     * PmActuation record in milli-MHz.
     */
    void setRecorder(record::FlightRecorder *rec) { recorder_ = rec; }

    /**
     * Attach the SoA state plane (nullptr detaches). Every frequency
     * target programmed through setFreqTargetMhz — the single
     * actuation funnel — is mirrored into this tile's row of the
     * plane's frequency column. Pure observer: nothing reads it back.
     */
    void
    attachPlane(coin::StatePlane *plane)
    {
        plane_ = plane;
        if (plane_)
            plane_->writeFreq(id_, uvfr_.targetMhz());
    }

    /** Present clock frequency (MHz), after regulator dynamics. */
    double freqMhz() const { return uvfr_.freqMhz(); }

    /** Present supply voltage (V). */
    double voltage() const { return uvfr_.voltage(); }

    /** Instantaneous power (mW); the idle floor when the clock stops. */
    double powerMw() const;

    /** True while a task is executing. */
    bool busy() const { return busy_; }

    /**
     * Begin executing a task.
     * @param workCycles work at the tile clock (cycles at any F).
     * @param onComplete invoked at the completion tick.
     * @pre !busy().
     */
    void beginTask(double workCycles, std::function<void()> onComplete);

    /** Cycles of work completed on the current task so far. */
    double progressCycles() const;

    /** Total tile-cycles executed across all tasks. */
    double totalCyclesExecuted() const { return cyclesDone_; }

    const power::Uvfr &uvfr() const { return uvfr_; }

  private:
    /** Fold elapsed time into task progress at the previous frequency. */
    void accrueProgress();

    /** (Re)schedule the completion event at the current frequency. */
    void scheduleCompletion();

    /** Completion-event body: finish or re-aim after a speed change. */
    void finishCheck();

    /** One UVFR control iteration plus execution bookkeeping. */
    void controlStep();

    /** Ensure the control loop is running. */
    void kickControlLoop();

    sim::EventQueue &eq_;
    noc::NodeId id_;
    std::string name_;
    const power::PfCurve *curve_;
    power::Uvfr uvfr_;
    record::FlightRecorder *recorder_ = nullptr;
    coin::StatePlane *plane_ = nullptr; ///< SoA mirror; may be null

    double pmTargetMhz_ = 0.0;
    double capMhz_ = std::numeric_limits<double>::infinity();

    bool busy_ = false;
    double remainingCycles_ = 0.0;
    double cyclesDone_ = 0.0;
    std::function<void()> onComplete_;
    sim::Tick lastAccrual_ = 0;
    double accrualFreqMhz_ = 0.0;
    std::uint64_t completionGen_ = 0;
    bool loopActive_ = false;
    std::uint64_t loopGen_ = 0;
};

} // namespace blitz::soc

#endif // BLITZ_SOC_TILE_HPP
