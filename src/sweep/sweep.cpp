#include "sweep.hpp"

#include <cstdlib>
#include <thread>

namespace blitz::sweep {

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("BLITZ_SWEEP_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
        sim::warn("ignoring invalid BLITZ_SWEEP_THREADS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace blitz::sweep
