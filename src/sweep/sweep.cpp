#include "sweep.hpp"

#include <cstdlib>
#include <thread>

#include "sim/shard.hpp"

namespace blitz::sweep {

std::size_t
defaultThreads()
{
    if (const char *env = std::getenv("BLITZ_SWEEP_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
        sim::warn("ignoring invalid BLITZ_SWEEP_THREADS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    std::size_t threads = hw > 0 ? hw : 1;
    // Replication-level and shard-level parallelism multiply: when the
    // BLITZ_SHARDS knob asks each replication to run sharded, divide
    // the default worker count so shards x workers stays within the
    // machine (an explicit BLITZ_SWEEP_THREADS overrides this).
    const std::size_t shards = sim::defaultShards();
    if (shards > 1)
        threads = std::max<std::size_t>(1, threads / shards);
    return threads;
}

} // namespace blitz::sweep
