/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * Every figure in the reproduction is a Monte-Carlo sweep: the same
 * scenario re-run over many (seed, config) replications whose results
 * are folded into sim::Stats accumulators. The replications are
 * embarrassingly parallel, but naive parallelization breaks the
 * repo's determinism contract (a seed fully determines a run). This
 * harness restores it with two rules:
 *
 *  1. **Stream derivation.** Replication i of a sweep rooted at seed
 *     R draws from its own RNG stream seeded with
 *     `streamSeed(R, i) = splitmix64(R + (i+1) * 0x9e3779b97f4a7c15)`.
 *     The stream depends only on (R, i) — never on which thread runs
 *     the replication or in what order.
 *
 *  2. **Ordered fold.** runSweep() returns per-replication results in
 *     index order; callers fold them serially, so floating-point
 *     accumulation order is fixed.
 *
 * Together these make the aggregate statistics of a sweep bit-identical
 * for any thread count, including 1 (the serial reference).
 *
 * Thread count: explicit via SweepOptions::threads, else the
 * BLITZ_SWEEP_THREADS environment variable, else the hardware
 * concurrency.
 */

#ifndef BLITZ_SWEEP_SWEEP_HPP
#define BLITZ_SWEEP_SWEEP_HPP

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/logging.hpp"
#include "thread_pool.hpp"

namespace blitz::sweep {

/** splitmix64 finalizer — the same mix Rng uses for seed expansion. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Seed of replication @p index in a sweep rooted at @p rootSeed.
 *
 * This is the determinism anchor: the per-replication stream is a pure
 * function of (rootSeed, index), so scheduling cannot perturb results.
 */
constexpr std::uint64_t
streamSeed(std::uint64_t rootSeed, std::uint64_t index)
{
    return splitmix64(rootSeed + (index + 1) * 0x9e3779b97f4a7c15ull);
}

/**
 * Worker count used when SweepOptions::threads is 0: the
 * BLITZ_SWEEP_THREADS environment variable if set and positive, else
 * std::thread::hardware_concurrency(), else 1.
 */
std::size_t defaultThreads();

/** Sweep execution knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultThreads(). */
    std::size_t threads = 0;
};

/**
 * Run @p replications of @p fn across a fixed-size thread pool.
 *
 * @param fn invoked as fn(index, streamSeed(rootSeed, index)) for each
 *        index in [0, replications); must not share mutable state
 *        between invocations.
 * @return the results in index order — identical for any thread
 *         count. The first exception thrown by any replication is
 *         rethrown after the pool drains.
 */
template <typename Fn>
auto
runSweep(std::size_t replications, std::uint64_t rootSeed, Fn &&fn,
         const SweepOptions &opts = {})
    -> std::vector<
        std::invoke_result_t<Fn &, std::size_t, std::uint64_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t, std::uint64_t>;
    static_assert(!std::is_void_v<R>,
                  "sweep replications must return a value");

    std::vector<std::optional<R>> slots(replications);
    if (replications > 0) {
        std::size_t threads = opts.threads ? opts.threads
                                           : defaultThreads();
        threads = std::min(threads, replications);

        std::atomic<std::size_t> next{0};
        std::mutex errMu;
        std::exception_ptr firstError;
        auto drain = [&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= replications)
                    return;
                // Each replication starts from a clean per-thread
                // arena; trials that opt in (e.g. ChaosConfig::arena)
                // reuse the previous trial's chunks instead of
                // re-touching the allocator.
                sim::threadArena().reset();
                try {
                    slots[i].emplace(fn(i, streamSeed(rootSeed, i)));
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (!firstError)
                        firstError = std::current_exception();
                }
            }
        };

        if (threads == 1) {
            // Serial reference path: same work, same order, no pool.
            drain();
        } else {
            ThreadPool pool(threads);
            for (std::size_t t = 0; t < threads; ++t)
                pool.submit(drain);
            pool.wait();
        }
        if (firstError)
            std::rethrow_exception(firstError);
    }

    std::vector<R> out;
    out.reserve(replications);
    for (auto &slot : slots) {
        BLITZ_ASSERT(slot.has_value(), "sweep replication missing");
        out.push_back(std::move(*slot));
    }
    return out;
}

/**
 * Convenience fold: run the sweep and merge results in index order.
 * @param merge invoked as merge(acc, result, index), serially, for
 *        index 0, 1, ... — the fixed order that keeps floating-point
 *        accumulation deterministic.
 */
template <typename Acc, typename Fn, typename Merge>
Acc
runSweepFold(std::size_t replications, std::uint64_t rootSeed, Fn &&fn,
             Merge &&merge, Acc acc = {}, const SweepOptions &opts = {})
{
    auto results =
        runSweep(replications, rootSeed, std::forward<Fn>(fn), opts);
    for (std::size_t i = 0; i < results.size(); ++i)
        merge(acc, results[i], i);
    return acc;
}

/**
 * Lane-merge fold for accumulators with an
 * `absorb(const R &, std::uint32_t lane)` member (trace::Tracer,
 * record::FlightRecorder): run the sweep and absorb each replication's
 * result in index order, stamping the replication index as the lane.
 * The merged stream is bit-identical for any thread count.
 */
template <typename Acc, typename Fn>
Acc
runSweepAbsorb(std::size_t replications, std::uint64_t rootSeed,
               Fn &&fn, const SweepOptions &opts = {})
{
    auto results =
        runSweep(replications, rootSeed, std::forward<Fn>(fn), opts);
    Acc acc{};
    for (std::size_t i = 0; i < results.size(); ++i)
        acc.absorb(results[i], static_cast<std::uint32_t>(i));
    return acc;
}

} // namespace blitz::sweep

#endif // BLITZ_SWEEP_SWEEP_HPP
