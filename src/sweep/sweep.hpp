/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * Every figure in the reproduction is a Monte-Carlo sweep: the same
 * scenario re-run over many (seed, config) replications whose results
 * are folded into sim::Stats accumulators. The replications are
 * embarrassingly parallel, but naive parallelization breaks the
 * repo's determinism contract (a seed fully determines a run). This
 * harness restores it with two rules:
 *
 *  1. **Stream derivation.** Replication i of a sweep rooted at seed
 *     R draws from its own RNG stream seeded with
 *     `streamSeed(R, i) = splitmix64(R + (i+1) * 0x9e3779b97f4a7c15)`.
 *     The stream depends only on (R, i) — never on which thread runs
 *     the replication or in what order.
 *
 *  2. **Ordered fold.** runSweep() returns per-replication results in
 *     index order; callers fold them serially, so floating-point
 *     accumulation order is fixed.
 *
 * Together these make the aggregate statistics of a sweep bit-identical
 * for any thread count, including 1 (the serial reference).
 *
 * Thread count: explicit via SweepOptions::threads, else the
 * BLITZ_SWEEP_THREADS environment variable, else the hardware
 * concurrency.
 */

#ifndef BLITZ_SWEEP_SWEEP_HPP
#define BLITZ_SWEEP_SWEEP_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/logging.hpp"
#include "thread_pool.hpp"

namespace blitz::sweep {

/** splitmix64 finalizer — the same mix Rng uses for seed expansion. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Seed of replication @p index in a sweep rooted at @p rootSeed.
 *
 * This is the determinism anchor: the per-replication stream is a pure
 * function of (rootSeed, index), so scheduling cannot perturb results.
 */
constexpr std::uint64_t
streamSeed(std::uint64_t rootSeed, std::uint64_t index)
{
    return splitmix64(rootSeed + (index + 1) * 0x9e3779b97f4a7c15ull);
}

/**
 * Worker count used when SweepOptions::threads is 0: the
 * BLITZ_SWEEP_THREADS environment variable if set and positive, else
 * std::thread::hardware_concurrency(), else 1.
 */
std::size_t defaultThreads();

/**
 * Wall-clock utilization of one sweep's worker pool, filled by
 * runSweep() when SweepOptions::stats points here. Strictly an
 * introspection output: nothing in the sweep's results depends on it,
 * so the determinism contract is untouched (the HealthReport files it
 * under the nondeterministic wall-clock section).
 */
struct PoolStats
{
    std::size_t threads = 0;       ///< workers the sweep actually used
    std::uint64_t replications = 0;
    double wallSeconds = 0.0;      ///< dispatch-to-drain span
    std::vector<double> workerBusySeconds; ///< per worker, fn() time

    double
    busySeconds() const
    {
        double s = 0.0;
        for (double b : workerBusySeconds)
            s += b;
        return s;
    }

    /** busy / (threads * wall); 1.0 = perfectly packed pool. */
    double
    utilization() const
    {
        const double denom =
            static_cast<double>(threads) * wallSeconds;
        return denom > 0.0 ? busySeconds() / denom : 0.0;
    }

    /** Fold another sweep's stats in (bench runs many scenarios). */
    void
    merge(const PoolStats &o)
    {
        threads = std::max(threads, o.threads);
        replications += o.replications;
        wallSeconds += o.wallSeconds;
        if (workerBusySeconds.size() < o.workerBusySeconds.size())
            workerBusySeconds.resize(o.workerBusySeconds.size(), 0.0);
        for (std::size_t i = 0; i < o.workerBusySeconds.size(); ++i)
            workerBusySeconds[i] += o.workerBusySeconds[i];
    }
};

/** Sweep execution knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = defaultThreads(). */
    std::size_t threads = 0;
    /** When set, runSweep() fills pool utilization here (overwrites). */
    PoolStats *stats = nullptr;
};

/**
 * Run @p replications of @p fn across a fixed-size thread pool.
 *
 * @param fn invoked as fn(index, streamSeed(rootSeed, index)) for each
 *        index in [0, replications); must not share mutable state
 *        between invocations.
 * @return the results in index order — identical for any thread
 *         count. The first exception thrown by any replication is
 *         rethrown after the pool drains.
 */
template <typename Fn>
auto
runSweep(std::size_t replications, std::uint64_t rootSeed, Fn &&fn,
         const SweepOptions &opts = {})
    -> std::vector<
        std::invoke_result_t<Fn &, std::size_t, std::uint64_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t, std::uint64_t>;
    static_assert(!std::is_void_v<R>,
                  "sweep replications must return a value");

    std::vector<std::optional<R>> slots(replications);
    if (replications > 0) {
        std::size_t threads = opts.threads ? opts.threads
                                           : defaultThreads();
        threads = std::min(threads, replications);

        PoolStats *stats = opts.stats;
        if (stats) {
            stats->threads = threads;
            stats->replications = replications;
            stats->wallSeconds = 0.0;
            stats->workerBusySeconds.assign(threads, 0.0);
        }

        using Clock = std::chrono::steady_clock;
        std::atomic<std::size_t> next{0};
        std::mutex errMu;
        std::exception_ptr firstError;
        // Worker w only ever touches workerBusySeconds[w], so the
        // busy accounting needs no lock; the timing never influences
        // which replication runs where (the work-stealing counter
        // does), let alone any result.
        auto drain = [&](std::size_t worker) {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= replications)
                    return;
                // Each replication starts from a clean per-thread
                // arena; trials that opt in (e.g. ChaosConfig::arena)
                // reuse the previous trial's chunks instead of
                // re-touching the allocator.
                sim::threadArena().reset();
                const Clock::time_point t0 =
                    stats ? Clock::now() : Clock::time_point{};
                try {
                    slots[i].emplace(fn(i, streamSeed(rootSeed, i)));
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMu);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                if (stats)
                    stats->workerBusySeconds[worker] +=
                        std::chrono::duration<double>(Clock::now() -
                                                      t0)
                            .count();
            }
        };

        const Clock::time_point sweepStart =
            stats ? Clock::now() : Clock::time_point{};
        if (threads == 1) {
            // Serial reference path: same work, same order, no pool.
            drain(0);
        } else {
            ThreadPool pool(threads);
            for (std::size_t t = 0; t < threads; ++t)
                pool.submit([&drain, t] { drain(t); });
            pool.wait();
        }
        if (stats)
            stats->wallSeconds =
                std::chrono::duration<double>(Clock::now() - sweepStart)
                    .count();
        if (firstError)
            std::rethrow_exception(firstError);
    }

    std::vector<R> out;
    out.reserve(replications);
    for (auto &slot : slots) {
        BLITZ_ASSERT(slot.has_value(), "sweep replication missing");
        out.push_back(std::move(*slot));
    }
    return out;
}

/**
 * Convenience fold: run the sweep and merge results in index order.
 * @param merge invoked as merge(acc, result, index), serially, for
 *        index 0, 1, ... — the fixed order that keeps floating-point
 *        accumulation deterministic.
 */
template <typename Acc, typename Fn, typename Merge>
Acc
runSweepFold(std::size_t replications, std::uint64_t rootSeed, Fn &&fn,
             Merge &&merge, Acc acc = {}, const SweepOptions &opts = {})
{
    auto results =
        runSweep(replications, rootSeed, std::forward<Fn>(fn), opts);
    for (std::size_t i = 0; i < results.size(); ++i)
        merge(acc, results[i], i);
    return acc;
}

/**
 * Lane-merge fold for accumulators with an
 * `absorb(const R &, std::uint32_t lane)` member (trace::Tracer,
 * record::FlightRecorder): run the sweep and absorb each replication's
 * result in index order, stamping the replication index as the lane.
 * The merged stream is bit-identical for any thread count.
 */
template <typename Acc, typename Fn>
Acc
runSweepAbsorb(std::size_t replications, std::uint64_t rootSeed,
               Fn &&fn, const SweepOptions &opts = {})
{
    auto results =
        runSweep(replications, rootSeed, std::forward<Fn>(fn), opts);
    Acc acc{};
    for (std::size_t i = 0; i < results.size(); ++i)
        acc.absorb(results[i], static_cast<std::uint32_t>(i));
    return acc;
}

} // namespace blitz::sweep

#endif // BLITZ_SWEEP_SWEEP_HPP
