#include "thread_pool.hpp"

#include "sim/logging.hpp"

namespace blitz::sweep {

ThreadPool::ThreadPool(std::size_t threads)
{
    BLITZ_ASSERT(threads > 0, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        jobs_.push_back(std::move(job));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock,
                 [this] { return jobs_.empty() && inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock,
                         [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty())
                return; // stop_ set and nothing left to do
            job = std::move(jobs_.front());
            jobs_.pop_front();
            ++inFlight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
            if (jobs_.empty() && inFlight_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace blitz::sweep
