/**
 * @file
 * Fixed-size thread pool for the experiment sweep harness.
 *
 * The pool is deliberately minimal: a bounded set of workers draining a
 * FIFO of jobs behind one mutex. Experiment replications are coarse
 * (milliseconds to seconds of simulation each), so queue contention is
 * irrelevant and simplicity wins — the determinism guarantee of the
 * sweep layer must not depend on anything the pool does.
 */

#ifndef BLITZ_SWEEP_THREAD_POOL_HPP
#define BLITZ_SWEEP_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blitz::sweep {

/**
 * Fixed-size worker pool.
 *
 * Jobs submitted with submit() run on one of the pool's threads in
 * unspecified order; wait() blocks until every submitted job finished.
 * The destructor drains outstanding work before joining.
 */
class ThreadPool
{
  public:
    /** @param threads worker count. @pre threads > 0. */
    explicit ThreadPool(std::size_t threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until all submitted jobs have completed. */
    void wait();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mu_;
    std::condition_variable workCv_; ///< signals workers: job or stop
    std::condition_variable idleCv_; ///< signals wait(): all drained
    std::size_t inFlight_ = 0;       ///< jobs popped but not finished
    bool stop_ = false;
};

} // namespace blitz::sweep

#endif // BLITZ_SWEEP_THREAD_POOL_HPP
