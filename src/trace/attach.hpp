/**
 * @file
 * Convenience wiring between the observability plane and the coin
 * engines. Packet-accurate harnesses (ChaosCluster, Soc) own their
 * attach methods; the behavioral MeshSim keeps its registry-facing
 * surface here. Header-only on purpose: blitz_trace must stay below
 * blitz_coin in the link order (coin engines carry trace hooks), so
 * this helper lives with its callers, which link both.
 */

#ifndef BLITZ_TRACE_ATTACH_HPP
#define BLITZ_TRACE_ATTACH_HPP

#include <cstdio>

#include "coin/engine.hpp"
#include "metrics.hpp"
#include "sim/types.hpp"

namespace blitz::trace {

/**
 * Register the behavioral engine's observables on @p reg — per-tile
 * balances ("coin.has.N"), cluster totals, global/max error, packet
 * and exchange counters — and arm MeshSim::setSampling at @p interval
 * ticks. The gauges read ledger state through callbacks at sample
 * time, so the engine's hot loop is untouched and trial outcomes stay
 * bit-identical with sampling on or off. Call once per (engine,
 * registry) pair, before the first run.
 */
inline void
attachMeshMetrics(coin::MeshSim &sim, Registry &reg, sim::Tick interval)
{
    const coin::Ledger &ledger = sim.ledger();
    reg.sampled("coin.total", [&ledger] {
        return static_cast<double>(ledger.totalHas());
    });
    reg.sampled("coin.total_max", [&ledger] {
        return static_cast<double>(ledger.totalMax());
    });
    reg.sampled("coin.error", [&ledger] { return ledger.globalError(); });
    reg.sampled("coin.max_error", [&ledger] { return ledger.maxError(); });
    reg.sampled("coin.transfers", [&ledger] {
        return static_cast<double>(ledger.transfers());
    });
    reg.sampled("coin.moved", [&ledger] {
        return static_cast<double>(ledger.coinsMoved());
    });
    for (std::size_t i = 0; i < ledger.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "coin.has.%zu", i);
        reg.sampled(name, [&ledger, i] {
            return static_cast<double>(ledger.has(i));
        });
    }
    reg.sampled("engine.packets", [&sim] {
        return static_cast<double>(sim.totalPackets());
    });
    reg.sampled("engine.exchanges", [&sim] {
        return static_cast<double>(sim.totalExchanges());
    });
    reg.sampled("engine.losses", [&sim] {
        return static_cast<double>(sim.totalLosses());
    });
    sim.setSampling(&reg, interval);
}

} // namespace blitz::trace

#endif // BLITZ_TRACE_ATTACH_HPP
