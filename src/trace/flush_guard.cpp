#include "flush_guard.hpp"

#include <atomic>
#include <csignal>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "health.hpp"
#include "metrics.hpp"
#include "tracer.hpp"

namespace blitz::trace {

namespace {

struct Entry
{
    std::uint64_t id;
    FlushGuard::Flush fn;
};

struct State
{
    std::mutex mu;
    std::vector<Entry> entries;
    std::uint64_t nextId = 1;
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<bool> flushing{false};
    bool installed = false;
};

/**
 * Leaked on purpose: flush actions may run during process teardown
 * (signal while statics destruct), so the registry must never be
 * destroyed before them.
 */
State &
state()
{
    static State *s = new State;
    return *s;
}

constexpr int fatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE,
                                SIGILL,  SIGTERM, SIGINT};

extern "C" void
onFatalSignal(int sig)
{
    FlushGuard::flushAll();
    // Restore the default disposition and re-raise so the process
    // still dies with the signal's exit status (and core, if any).
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

FlushGuard::Registration::Registration(Registration &&o) noexcept
    : id_(o.id_), armed_(o.armed_)
{
    o.armed_ = false;
}

FlushGuard::Registration &
FlushGuard::Registration::operator=(Registration &&o) noexcept
{
    if (this != &o) {
        release();
        id_ = o.id_;
        armed_ = o.armed_;
        o.armed_ = false;
    }
    return *this;
}

void
FlushGuard::Registration::release()
{
    if (!armed_)
        return;
    armed_ = false;
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.entries.begin(); it != s.entries.end(); ++it) {
        if (it->id == id_) {
            s.entries.erase(it);
            return;
        }
    }
}

FlushGuard::Registration
FlushGuard::add(Flush fn)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    const std::uint64_t id = s.nextId++;
    s.entries.push_back({id, std::move(fn)});
    return Registration(id);
}

FlushGuard::Registration
FlushGuard::guardTracer(const Tracer &t, std::string path)
{
    return add([&t, path = std::move(path)] {
        std::ofstream os(path);
        if (os)
            t.writeJson(os);
    });
}

FlushGuard::Registration
FlushGuard::guardMetricsCsv(const Registry &reg, std::string path)
{
    return add([&reg, path = std::move(path)] {
        std::ofstream os(path);
        if (os)
            reg.writeCsv(os);
    });
}

FlushGuard::Registration
FlushGuard::guardHealth(const HealthReport &report, std::string path)
{
    return add([&report, path = std::move(path)] {
        std::ofstream os(path);
        if (os)
            report.writeJson(os);
    });
}

void
FlushGuard::flushAll() noexcept
{
    State &s = state();
    // Reentrancy latch: a crash inside a flush action must terminate,
    // not recurse through the handler forever.
    bool expected = false;
    if (!s.flushing.compare_exchange_strong(expected, true))
        return;
    // Snapshot under the lock if we can take it; from a signal
    // handler the lock may be held by the interrupted thread — run
    // from the live vector then (best-effort by design).
    std::vector<Entry> snapshot;
    if (s.mu.try_lock()) {
        snapshot = s.entries;
        s.mu.unlock();
    } else {
        snapshot = s.entries;
    }
    for (Entry &e : snapshot) {
        try {
            if (e.fn)
                e.fn();
        } catch (...) {
            // A failed flush must not mask the original crash.
        }
    }
    s.flushes.fetch_add(1, std::memory_order_relaxed);
    s.flushing.store(false);
}

void
FlushGuard::installSignalHandlers()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.installed)
        return;
    s.installed = true;
    for (int sig : fatalSignals)
        std::signal(sig, onFatalSignal);
}

std::uint64_t
FlushGuard::flushCount()
{
    return state().flushes.load(std::memory_order_relaxed);
}

} // namespace blitz::trace
