/**
 * @file
 * Crash-safe flush of observability output.
 *
 * A chaos crash-window run that dies mid-flight (assertion, sanitizer
 * abort, SIGSEGV in a harness bug) normally loses its whole trace and
 * metrics series, because both are buffered in memory and written at
 * the end. The FlushGuard keeps a process-wide list of flush actions
 * and runs them once on abnormal termination — fatal signals after
 * installSignalHandlers(), or an explicit flushAll() — so partial
 * observability output survives as *valid* JSON/CSV (the writers
 * always emit complete documents of whatever was captured so far).
 *
 * Flush actions run from a signal handler, which is best-effort by
 * nature (buffered I/O is not async-signal-safe); the guard trades
 * strict signal hygiene for the diagnostic value of a flushed
 * timeline, the same call the sanitizer runtimes make. A reentrancy
 * latch makes a crash *inside* a flush terminate instead of looping.
 *
 * Registrations are RAII: the returned handle deregisters on
 * destruction, so a guard scoped to a trial cannot dangle into the
 * next one.
 */

#ifndef BLITZ_TRACE_FLUSH_GUARD_HPP
#define BLITZ_TRACE_FLUSH_GUARD_HPP

#include <cstdint>
#include <functional>
#include <string>

namespace blitz::trace {

class HealthReport;
class Registry;
class Tracer;

class FlushGuard
{
  public:
    using Flush = std::function<void()>;

    /** Deregisters its flush action on destruction (RAII). */
    class Registration
    {
      public:
        Registration() = default;
        ~Registration() { release(); }
        Registration(Registration &&o) noexcept;
        Registration &operator=(Registration &&o) noexcept;
        Registration(const Registration &) = delete;
        Registration &operator=(const Registration &) = delete;

        /** Deregister now (the action will no longer run). */
        void release();

        explicit operator bool() const { return armed_; }

      private:
        friend class FlushGuard;
        explicit Registration(std::uint64_t id)
            : id_(id), armed_(true)
        {
        }

        std::uint64_t id_ = 0;
        bool armed_ = false;
    };

    /** Register an arbitrary flush action (tracer, recorder, ...). */
    [[nodiscard]] static Registration add(Flush fn);

    /** Guard @p t: on flush, write its JSON document to @p path. */
    [[nodiscard]] static Registration guardTracer(const Tracer &t,
                                                  std::string path);

    /** Guard @p reg: on flush, write its CSV series to @p path. */
    [[nodiscard]] static Registration
    guardMetricsCsv(const Registry &reg, std::string path);

    /** Guard @p report: on flush, write its JSON document to @p path. */
    [[nodiscard]] static Registration
    guardHealth(const HealthReport &report, std::string path);

    /**
     * Run every registered action once, in registration order. Safe
     * to call multiple times (each call re-runs the current set);
     * reentrant calls — a flush action crashing — are ignored.
     */
    static void flushAll() noexcept;

    /**
     * Install handlers for the fatal signals (SIGABRT, SIGSEGV,
     * SIGBUS, SIGFPE, SIGILL, SIGTERM, SIGINT) that flushAll() and
     * then re-raise with the default disposition, preserving the
     * process's exit status. Idempotent.
     */
    static void installSignalHandlers();

    /** Completed flushAll() passes (for tests). */
    static std::uint64_t flushCount();
};

} // namespace blitz::trace

#endif // BLITZ_TRACE_FLUSH_GUARD_HPP
