#include "health.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <iterator>
#include <ostream>

namespace blitz::trace {

namespace {

void
printEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/**
 * Print a value so the deterministic section is byte-stable: counters
 * (the common case) as plain integers, everything else with enough
 * digits (%.17g) to round-trip the double exactly.
 */
void
printValue(std::ostream &os, double v)
{
    char buf[40];
    if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15)
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
printSection(std::ostream &os, const char *name,
             const std::vector<HealthReport::Entry> &entries)
{
    os << '"' << name << "\":{";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            os << ',';
        printEscaped(os, entries[i].first);
        os << ':';
        printValue(os, entries[i].second);
    }
    os << '}';
}

/** Minimal scanner over the writeJson() document shape. */
struct Scanner
{
    std::string text;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }

    bool
    string(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return false;
                c = text[pos++];
            }
            out += c;
        }
        if (pos >= text.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number(double &out)
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return false;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
};

bool
parseSection(Scanner &sc, std::vector<HealthReport::Entry> &out)
{
    if (!sc.expect('{'))
        return false;
    if (sc.peek('}'))
        return sc.expect('}');
    for (;;) {
        std::string key;
        double value = 0.0;
        if (!sc.string(key) || !sc.expect(':') || !sc.number(value))
            return false;
        out.emplace_back(std::move(key), value);
        if (sc.peek(',')) {
            sc.expect(',');
            continue;
        }
        return sc.expect('}');
    }
}

} // namespace

void
HealthReport::upsert(std::vector<Entry> &section,
                     std::vector<char> &modes, std::string_view key,
                     double value, int mode)
{
    for (std::size_t i = 0; i < section.size(); ++i) {
        if (section[i].first == key) {
            if (mode == 1)
                section[i].second += value;
            else if (mode == 2)
                section[i].second = section[i].second > value
                                        ? section[i].second
                                        : value;
            else
                section[i].second = value;
            modes[i] = static_cast<char>(mode);
            return;
        }
    }
    section.emplace_back(std::string(key), value);
    modes.push_back(static_cast<char>(mode));
}

void
HealthReport::setDet(std::string_view key, double value)
{
    upsert(det_, detMode_, key, value, 0);
}

void
HealthReport::bumpDet(std::string_view key, double value)
{
    upsert(det_, detMode_, key, value, 1);
}

void
HealthReport::maxDet(std::string_view key, double value)
{
    upsert(det_, detMode_, key, value, 2);
}

void
HealthReport::setWall(std::string_view key, double value)
{
    upsert(wall_, wallMode_, key, value, 0);
}

void
HealthReport::bumpWall(std::string_view key, double value)
{
    upsert(wall_, wallMode_, key, value, 1);
}

void
HealthReport::absorb(const HealthReport &other)
{
    if (run_.empty())
        run_ = other.run_;
    for (std::size_t i = 0; i < other.det_.size(); ++i)
        upsert(det_, detMode_, other.det_[i].first,
               other.det_[i].second, other.detMode_[i]);
    for (std::size_t i = 0; i < other.wall_.size(); ++i)
        upsert(wall_, wallMode_, other.wall_[i].first,
               other.wall_[i].second, other.wallMode_[i]);
}

const double *
HealthReport::findDet(std::string_view key) const
{
    for (const Entry &e : det_)
        if (e.first == key)
            return &e.second;
    return nullptr;
}

const double *
HealthReport::findWall(std::string_view key) const
{
    for (const Entry &e : wall_)
        if (e.first == key)
            return &e.second;
    return nullptr;
}

void
HealthReport::clear()
{
    run_.clear();
    det_.clear();
    wall_.clear();
    detMode_.clear();
    wallMode_.clear();
}

void
HealthReport::writeJson(std::ostream &os) const
{
    os << "{\"blitzHealth\":1,\"run\":";
    printEscaped(os, run_);
    os << ',';
    printSection(os, "deterministic", det_);
    os << ',';
    printSection(os, "wallclock", wall_);
    os << "}\n";
}

bool
HealthReport::parse(std::istream &is)
{
    clear();
    Scanner sc;
    sc.text.assign(std::istreambuf_iterator<char>(is),
                   std::istreambuf_iterator<char>());

    std::string key;
    bool ok = sc.expect('{') && sc.string(key) &&
              key == "blitzHealth" && sc.expect(':');
    double version = 0.0;
    ok = ok && sc.number(version) && version == 1.0;
    while (ok && sc.peek(',')) {
        sc.expect(',');
        if (!sc.string(key) || !sc.expect(':')) {
            ok = false;
            break;
        }
        if (key == "run")
            ok = sc.string(run_);
        else if (key == "deterministic")
            ok = parseSection(sc, det_);
        else if (key == "wallclock")
            ok = parseSection(sc, wall_);
        else
            ok = false;
    }
    if (!ok || !sc.expect('}')) {
        clear();
        return false;
    }
    // The document does not carry fold modes; parsed entries fold as
    // sums (the counter common case) if later absorbed.
    detMode_.assign(det_.size(), 1);
    wallMode_.assign(wall_.size(), 1);
    return true;
}

std::vector<HealthReport::DiffEntry>
HealthReport::diff(const HealthReport &a, const HealthReport &b)
{
    std::vector<DiffEntry> out;
    for (const Entry &ea : a.det_) {
        const double *vb = b.findDet(ea.first);
        if (vb && *vb == ea.second)
            continue;
        DiffEntry d;
        d.key = ea.first;
        d.inA = true;
        d.a = ea.second;
        if (vb) {
            d.inB = true;
            d.b = *vb;
        }
        out.push_back(std::move(d));
    }
    for (const Entry &eb : b.det_) {
        if (a.findDet(eb.first))
            continue;
        DiffEntry d;
        d.key = eb.first;
        d.inB = true;
        d.b = eb.second;
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace blitz::trace
