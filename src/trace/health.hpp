/**
 * @file
 * Per-run health report: one JSON document summarizing a run.
 *
 * A HealthReport is the machine-readable answer to "did this run do
 * what it always does, and where did the wall-clock go?" — the
 * document a scenario-service daemon streams back per request
 * (ROADMAP item 3) and the input `tools/blitz-top` renders.
 *
 * The report is two strictly separated key/value sections:
 *
 *  - **deterministic**: outcome counters that are pure functions of
 *    (config, seed, partition) — coin conservation gaps, remints,
 *    quarantines, throttle residency, fault totals,
 *    event/superstep/mailbox counts, queue and arena high-water
 *    marks. Two runs of the same scenario produce byte-identical
 *    deterministic sections at any *thread* count; domain outcome
 *    keys (coin.*, exchanges.*, fault.*, noc.*, physics.*) are
 *    additionally shard-count-invariant, while the per-shard engine
 *    gauges (queue/shard*, prof/shard*) are deterministic per shard
 *    layout by construction. `blitz-top diff` compares exactly this
 *    section and treats any difference as a finding.
 *
 *  - **wallclock**: timings and utilization (phase nanoseconds,
 *    sweep-pool busy fractions). Expected to differ run to run;
 *    diff only reports them side by side, never as a failure.
 *
 * The separation is load-bearing for the repo's determinism contract:
 * wall-clock data may flow *out* of the simulator into this section,
 * but nothing in here ever flows back in. Keeping the two namespaces
 * in different sections makes "a timing leaked into an outcome"
 * visible as a diff failure instead of a silent heisenbug.
 *
 * The report depends only on sim (layering: blitz_trace -> blitz_sim),
 * so domain planes (fault, soc) fill their counters in from their own
 * side via the fillHealth() members / helpers.
 */

#ifndef BLITZ_TRACE_HEALTH_HPP
#define BLITZ_TRACE_HEALTH_HPP

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blitz::trace {

/** Two-section run summary; see the file comment. */
class HealthReport
{
  public:
    using Entry = std::pair<std::string, double>;

    /** Free-form run label ("bench_chaos d=64", a scenario hash...). */
    void setRun(std::string label) { run_ = std::move(label); }
    const std::string &run() const { return run_; }

    /** Overwrite-or-create a deterministic outcome counter. */
    void setDet(std::string_view key, double value);
    /** Add into a deterministic counter (sum-fold across trials). */
    void bumpDet(std::string_view key, double value);
    /** Max-fold a deterministic gauge (high-water marks). */
    void maxDet(std::string_view key, double value);

    /** Overwrite-or-create a wall-clock entry. */
    void setWall(std::string_view key, double value);
    /** Add into a wall-clock entry. */
    void bumpWall(std::string_view key, double value);

    /** Entries in insertion order (stable across identical runs). */
    const std::vector<Entry> &deterministic() const { return det_; }
    const std::vector<Entry> &wallclock() const { return wall_; }

    /** Value lookup; nullptr when the key is absent. */
    const double *findDet(std::string_view key) const;
    const double *findWall(std::string_view key) const;

    /**
     * Fold @p other into this report, replaying every entry with the
     * fold mode it was created with on the other side — bump-created
     * counters sum, max-created gauges max-fold, set-created values
     * overwrite. The sweep benches fold per-trial reports in
     * replication order with this, so the merged document is
     * bit-identical at any thread count. Parsed reports fold as sums.
     */
    void absorb(const HealthReport &other);

    void clear();

    /**
     * Write the report as one self-describing JSON document:
     * {"blitzHealth":1,"run":...,"deterministic":{...},
     *  "wallclock":{...}}. Integral values print as integers so the
     * deterministic section is byte-stable and diffable as text.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Parse a document writeJson() produced (replacing this report's
     * contents). Returns false — leaving the report cleared — on
     * anything malformed. Not a general JSON parser: it reads the
     * writeJson() shape, which is all blitz-top needs.
     */
    bool parse(std::istream &is);

    /** One deterministic-section difference between two reports. */
    struct DiffEntry
    {
        std::string key;
        bool inA = false;
        bool inB = false;
        double a = 0.0;
        double b = 0.0;
    };

    /**
     * Keys whose deterministic values differ (exact compare — the
     * section is integral counters and bit-stable doubles) or that
     * are present on one side only, in a's insertion order with b's
     * extras appended.
     */
    static std::vector<DiffEntry> diff(const HealthReport &a,
                                       const HealthReport &b);

  private:
    static void upsert(std::vector<Entry> &section,
                       std::vector<char> &modes, std::string_view key,
                       double value, int mode);

    std::string run_;
    std::vector<Entry> det_;
    std::vector<Entry> wall_;
    /** Fold mode per entry (0 set / 1 bump / 2 max), for absorb(). */
    std::vector<char> detMode_;
    std::vector<char> wallMode_;
};

} // namespace blitz::trace

#endif // BLITZ_TRACE_HEALTH_HPP
