#include "metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "sim/logging.hpp"

namespace blitz::trace {

namespace {

/**
 * Shortest round-trip-exact rendering of a double. Metric values are
 * exact simulator state (counters widened to double, tick-derived
 * gauges), so %.17g would print noise digits; try increasing precision
 * until the text parses back bit-identically.
 */
void
printDouble(std::ostream &os, double v)
{
    char buf[40];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    os << buf;
}

void
printJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter:   return "counter";
      case MetricKind::Gauge:     return "gauge";
      case MetricKind::Sampled:   return "sampled";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

void
Registry::addMetric(std::string name, MetricKind kind)
{
    BLITZ_ASSERT(series_.rows_.empty(),
                 "metric '", name,
                 "' registered after the first snapshot");
    for (const MetricDesc &d : schema_)
        BLITZ_ASSERT(d.name != name, "duplicate metric '", name, "'");
    schema_.push_back(MetricDesc{std::move(name), kind});
}

Counter
Registry::counter(std::string name)
{
    addMetric(std::move(name), MetricKind::Counter);
    counterSlots_.push_back(0);
    slotOf_.push_back(counterSlots_.size() - 1);
    return Counter{&counterSlots_.back()};
}

Gauge
Registry::gauge(std::string name)
{
    addMetric(std::move(name), MetricKind::Gauge);
    gaugeSlots_.push_back(0.0);
    slotOf_.push_back(gaugeSlots_.size() - 1);
    return Gauge{&gaugeSlots_.back()};
}

void
Registry::sampled(std::string name, std::function<double()> fn)
{
    BLITZ_ASSERT(fn, "sampled metric '", name, "' needs a callback");
    addMetric(std::move(name), MetricKind::Sampled);
    sampledFns_.push_back(std::move(fn));
    slotOf_.push_back(sampledFns_.size() - 1);
}

sim::Histogram *
Registry::histogram(std::string name, double lo, double hi,
                    std::size_t bins)
{
    addMetric(std::move(name), MetricKind::Histogram);
    histSlots_.emplace_back(lo, hi, bins);
    slotOf_.push_back(histSlots_.size() - 1);
    return &histSlots_.back();
}

void
Registry::sample(sim::Tick tick)
{
    Snapshot row;
    row.tick = tick;
    row.values.reserve(schema_.size());
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        const std::size_t s = slotOf_[i];
        switch (schema_[i].kind) {
          case MetricKind::Counter:
            row.values.push_back(
                static_cast<double>(counterSlots_[s]));
            break;
          case MetricKind::Gauge:
            row.values.push_back(gaugeSlots_[s]);
            break;
          case MetricKind::Sampled:
            row.values.push_back(sampledFns_[s]());
            break;
          case MetricKind::Histogram:
            row.values.push_back(
                static_cast<double>(histSlots_[s].total()));
            break;
        }
    }
    if (series_.schema_.empty())
        series_.schema_ = schema_;
    series_.rows_.push_back(std::move(row));
    series_.cov_.push_back(1);
    if (onSample)
        onSample(series_.rows_.back());
}

MetricsSeries
Registry::series() const
{
    MetricsSeries out = series_;
    if (out.schema_.empty())
        out.schema_ = schema_; // no rows yet: still export the schema
    return out;
}

MetricsSeries
Registry::takeSeries()
{
    if (series_.schema_.empty())
        series_.schema_ = schema_;
    MetricsSeries out = std::move(series_);
    series_ = MetricsSeries{};
    return out;
}

void
Registry::writeCsv(std::ostream &os) const
{
    series().writeCsv(os);
}

void
Registry::writeJson(std::ostream &os) const
{
    // The series body, minus its closing brace, then the histograms.
    os << "{\"series\":";
    series().writeJson(os);
    os << ",\"histograms\":{";
    bool first = true;
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        if (schema_[i].kind != MetricKind::Histogram)
            continue;
        if (!first)
            os << ',';
        first = false;
        const sim::Histogram &h = histSlots_[slotOf_[i]];
        printJsonString(os, schema_[i].name);
        os << ":{\"underflow\":" << h.underflow()
           << ",\"overflow\":" << h.overflow() << ",\"bins\":[";
        for (std::size_t b = 0; b < h.bins(); ++b) {
            if (b)
                os << ',';
            os << "{\"lo\":";
            printDouble(os, h.binLow(b));
            os << ",\"hi\":";
            printDouble(os, h.binHigh(b));
            os << ",\"count\":" << h.binCount(b) << '}';
        }
        os << "]}";
    }
    os << "}}";
}

void
MetricsSeries::merge(const MetricsSeries &other)
{
    if (other.schema_.empty())
        return;
    if (schema_.empty()) {
        *this = other;
        return;
    }
    BLITZ_ASSERT(schema_.size() == other.schema_.size(),
                 "merging metric series with different schemas");
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        BLITZ_ASSERT(schema_[i].name == other.schema_[i].name,
                     "merging metric series with different schemas (",
                     schema_[i].name, " vs ", other.schema_[i].name,
                     ")");
    }
    const std::size_t shared = std::min(rows_.size(),
                                        other.rows_.size());
    for (std::size_t r = 0; r < shared; ++r) {
        BLITZ_ASSERT(rows_[r].tick == other.rows_[r].tick,
                     "merging metric series with misaligned ticks");
        for (std::size_t c = 0; c < rows_[r].values.size(); ++c)
            rows_[r].values[c] += other.rows_[r].values[c];
        cov_[r] += other.cov_[r];
    }
    for (std::size_t r = shared; r < other.rows_.size(); ++r) {
        rows_.push_back(other.rows_[r]);
        cov_.push_back(other.cov_[r]);
    }
}

void
MetricsSeries::writeCsv(std::ostream &os) const
{
    os << "tick,cov";
    for (const MetricDesc &d : schema_)
        os << ',' << d.name;
    os << '\n';
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << rows_[r].tick << ',' << cov_[r];
        for (double v : rows_[r].values) {
            os << ',';
            printDouble(os, v);
        }
        os << '\n';
    }
}

void
MetricsSeries::writeJson(std::ostream &os) const
{
    os << "{\"schema\":[";
    for (std::size_t i = 0; i < schema_.size(); ++i) {
        if (i)
            os << ',';
        os << "{\"name\":";
        printJsonString(os, schema_[i].name);
        os << ",\"kind\":\"" << metricKindName(schema_[i].kind)
           << "\"}";
    }
    os << "],\"snapshots\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            os << ',';
        os << "{\"tick\":" << rows_[r].tick << ",\"cov\":" << cov_[r]
           << ",\"values\":[";
        for (std::size_t c = 0; c < rows_[r].values.size(); ++c) {
            if (c)
                os << ',';
            printDouble(os, rows_[r].values[c]);
        }
        os << "]}";
    }
    os << "]}";
}

} // namespace blitz::trace
